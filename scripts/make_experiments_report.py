#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md (paper-vs-measured for every table).

Usage:  python scripts/make_experiments_report.py [n_jobs] [output]

``n_jobs`` scales each workload (default 1000; 0 = full paper sizes —
slow).  Writes to EXPERIMENTS.md in the repository root by default.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.core.report import generate_experiments_report


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    out = Path(sys.argv[2]) if len(sys.argv) > 2 else (
        Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    )
    t0 = time.time()

    def progress(msg: str) -> None:
        print(f"[{time.time() - t0:7.1f}s] {msg}", flush=True)

    body = generate_experiments_report(
        n_jobs if n_jobs > 0 else None, progress=progress
    )
    out.write_text(body, encoding="utf-8")
    print(f"wrote {out} ({len(body.splitlines())} lines)")


if __name__ == "__main__":
    main()
