#!/usr/bin/env python
"""Diff a fresh benchmark JSON emission against a committed baseline.

The table benches (``benchmarks/bench_table*.py``) and the hot-path
bench write their measurements through ``emit_bench_json`` /
``REPRO_BENCH_JSON``.  This script flattens two such JSON files into
dotted-path -> number maps and compares them:

- *lower-is-better* keys (errors, waits, pass costs, overheads) may not
  grow by more than ``--tolerance`` (relative);
- *higher-is-better* keys (utilization, speedup, events/sec) may not
  shrink by more than ``--tolerance``;
- wall-clock keys (``wall_s``, ``plain_s``, ...) are machine-dependent
  noise and are ignored;
- any other numeric key is informational (reported with ``--verbose``,
  never failing);
- a ``bench_jobs`` mismatch between the two files is an error — numbers
  at different scales are not comparable.

Typical use (the committed baseline lives next to this script)::

    REPRO_BENCH_JOBS=300 REPRO_BENCH_JSON=/tmp/bench.json \
        python -m pytest benchmarks/bench_table04_wait_actual.py -q
    python scripts/check_bench_regression.py \
        --baseline benchmarks/baselines/tables_300.json \
        --current /tmp/bench.json

Exit status: 0 = no regressions, 1 = regression or scale mismatch,
2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterator

__all__ = ["flatten", "direction_of", "compare", "main"]

#: Substrings marking a dotted key as wall-clock noise (ignored).
WALL_CLOCK_MARKERS = (
    "wall_s", "plain_s", "traced_s", "audited_s", "optimized_s",
    "reference_s", "wall_time", "pass_cost_us", "duration",
    # Ratios of wall clocks are as machine-dependent as the clocks
    # themselves; the benches assert their own speedup floors.
    "gain_x",
    # Service query-storm throughput/latency: wall-clock; the bench
    # asserts its own floors under REPRO_BENCH_STRICT_GAIN=1.
    "predictions_per_s", "epochs_per_s", "latency_p",
)
#: Substrings marking a key where smaller numbers are better.
LOWER_BETTER_MARKERS = (
    "error", "wait", "overhead", "fallback", "cache_miss", "flushes",
    "parity_fail",
)
#: Substrings marking a key where bigger numbers are better.
HIGHER_BETTER_MARKERS = (
    "utilization", "speedup", "events_per_s", "cache_hit",
)


def flatten(value: object, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Yield (dotted-path, number) for every numeric leaf of ``value``.

    Lists of row dicts (the table emissions) are keyed by the row's
    ``Workload``/``Scheduling Algorithm``-style identity fields when
    present, falling back to the index, so reordering rows does not
    create spurious diffs.
    """
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield prefix, float(value)
        return
    if isinstance(value, dict):
        for key, sub in value.items():
            sub_prefix = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(sub, sub_prefix)
        return
    if isinstance(value, list):
        for index, item in enumerate(value):
            label = str(index)
            if isinstance(item, dict):
                identity = [
                    str(item[f])
                    for f in ("Workload", "workload", "Scheduling Algorithm",
                              "Algorithm", "policy", "Predictor")
                    if f in item
                ]
                if identity:
                    label = "/".join(identity)
            yield from flatten(item, f"{prefix}[{label}]")


def direction_of(key: str) -> str:
    """'ignore', 'lower', 'higher', or 'info' for a dotted key."""
    lowered = key.lower()
    if any(m in lowered for m in WALL_CLOCK_MARKERS):
        return "ignore"
    if any(m in lowered for m in HIGHER_BETTER_MARKERS):
        return "higher"
    if any(m in lowered for m in LOWER_BETTER_MARKERS):
        return "lower"
    return "info"


def compare(
    baseline: dict, current: dict, *, tolerance: float
) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing two bench JSON dicts."""
    if baseline.get("bench_jobs") != current.get("bench_jobs"):
        return (
            [
                "bench_jobs mismatch: baseline ran at "
                f"{baseline.get('bench_jobs')!r}, current at "
                f"{current.get('bench_jobs')!r} — rerun at the same scale"
            ],
            [],
        )
    base_map = dict(flatten(baseline))
    cur_map = dict(flatten(current))
    regressions: list[str] = []
    notes: list[str] = []
    for key in sorted(base_map.keys() & cur_map.keys()):
        if key == "bench_jobs":
            continue
        direction = direction_of(key)
        if direction == "ignore":
            continue
        base, cur = base_map[key], cur_map[key]
        if direction == "info":
            if base != cur:
                notes.append(f"{key}: {base:g} -> {cur:g}")
            continue
        # Tiny absolute values amplify relative noise below anything a
        # schedule change would produce; treat them as equal.
        if abs(base) < 1e-9 and abs(cur) < 1e-9:
            continue
        limit = abs(base) * tolerance + 1e-9
        if direction == "lower" and cur - base > limit:
            regressions.append(
                f"{key}: {base:g} -> {cur:g} (lower is better, "
                f"+{100.0 * (cur - base) / abs(base):.1f}%)"
            )
        elif direction == "higher" and base - cur > limit:
            regressions.append(
                f"{key}: {base:g} -> {cur:g} (higher is better, "
                f"-{100.0 * (base - cur) / abs(base):.1f}%)"
            )
    only_base = sorted(base_map.keys() - cur_map.keys())
    if only_base:
        notes.append(
            f"{len(only_base)} baseline key(s) missing from current "
            f"(first: {only_base[0]})"
        )
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly emitted JSON to check")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative drift (default 0.05 = 5%%)")
    parser.add_argument("--verbose", action="store_true",
                        help="also print informational diffs")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        with open(args.current, "r", encoding="utf-8") as fh:
            current = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    regressions, notes = compare(baseline, current, tolerance=args.tolerance)
    if args.verbose:
        for note in notes:
            print(f"note: {note}")
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}")
        print(f"{len(regressions)} regression(s) vs {args.baseline}")
        return 1
    print(
        f"no regressions vs {args.baseline} "
        f"(tolerance {100.0 * args.tolerance:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
