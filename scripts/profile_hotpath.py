#!/usr/bin/env python
"""Profile one replay of a paper workload through the simulator hot path.

Replays ``--workload`` under ``--policy`` with the scheduler running on
user maxima (``max`` estimator, the paper's §3 configuration), reports
throughput counters from the engine itself (events processed, scheduling
passes) and, with ``--profile``, the cProfile top functions by
cumulative time.  ``--engine reference`` profiles the pre-overhaul
:class:`ReferenceSimulator` instead, which is how the before/after
numbers in the hot-path PR were produced.

Examples::

    PYTHONPATH=src python scripts/profile_hotpath.py --workload ANL --policy backfill --jobs 3000 --profile
    PYTHONPATH=src python scripts/profile_hotpath.py --workload CTC --policy lwf --jobs 0 --json
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
import time

from repro.core.registry import make_policy, make_predictor
from repro.obs import Instrumentation, format_histogram
from repro.predictors.base import PointEstimator
from repro.scheduler.reference import (
    ReferenceBackfillPolicy,
    ReferenceFCFSPolicy,
    ReferenceLWFPolicy,
    ReferenceSimulator,
)
from repro.scheduler.simulator import Simulator
from repro.workloads.archive import PAPER_WORKLOADS, load_paper_workload

REFERENCE_POLICIES = {
    "fcfs": ReferenceFCFSPolicy,
    "lwf": ReferenceLWFPolicy,
    "backfill": ReferenceBackfillPolicy,
}


def build(args):
    trace = load_paper_workload(
        args.workload, n_jobs=None if args.jobs <= 0 else args.jobs
    )
    estimator = PointEstimator(make_predictor(args.predictor, trace))
    if args.engine == "reference":
        policy = REFERENCE_POLICIES[args.policy]()
        sim = ReferenceSimulator(policy, estimator, trace.total_nodes)
    else:
        policy = make_policy(args.policy)
        # detail mode: per-pass wall timing into the pass-duration
        # histogram plus estimate-cache hit counting — this script exists
        # to look inside the hot path, so pay for the extra visibility.
        sim = Simulator(
            policy,
            estimator,
            trace.total_nodes,
            instrumentation=Instrumentation(detail=True),
        )
    return trace, sim


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="ANL", choices=sorted(PAPER_WORKLOADS))
    parser.add_argument(
        "--policy", default="backfill", choices=("fcfs", "lwf", "backfill", "easy")
    )
    parser.add_argument(
        "--predictor",
        default="max",
        help="scheduler estimator (registry name; default: max, per paper §3)",
    )
    parser.add_argument(
        "--engine",
        default="optimized",
        choices=("optimized", "reference"),
        help="reference = pre-overhaul engine (no EASY support)",
    )
    parser.add_argument(
        "--jobs", type=int, default=3000, help="jobs to replay (0 = full trace)"
    )
    parser.add_argument(
        "--profile", action="store_true", help="print cProfile top functions"
    )
    parser.add_argument(
        "--top", type=int, default=20, help="profile rows to print (with --profile)"
    )
    parser.add_argument(
        "--json", action="store_true", help="print measurements as one JSON object"
    )
    args = parser.parse_args(argv)
    if args.engine == "reference" and args.policy == "easy":
        parser.error("the reference engine has no EASY policy")

    trace, sim = build(args)

    profiler = cProfile.Profile() if args.profile else None
    t0 = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    result = sim.run(trace)
    if profiler is not None:
        profiler.disable()
    wall = time.perf_counter() - t0

    passes = max(sim.schedule_passes, 1)
    stats = {
        "workload": args.workload,
        "policy": args.policy,
        "engine": args.engine,
        "predictor": args.predictor,
        "jobs": len(result.records),
        "total_nodes": trace.total_nodes,
        "wall_s": wall,
        "events_processed": sim.events_processed,
        "events_per_s": sim.events_processed / wall if wall > 0 else float("inf"),
        "schedule_passes": sim.schedule_passes,
        "pass_cost_us": wall / passes * 1e6,
        "utilization_percent": result.utilization_percent,
        "mean_wait_min": result.mean_wait_minutes,
    }
    snapshot = sim.metrics_snapshot()
    stats["metrics"] = snapshot

    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(
            f"{stats['workload']} / {stats['policy']} / {stats['engine']} engine: "
            f"{stats['jobs']} jobs on {stats['total_nodes']} nodes"
        )
        print(
            f"  wall {wall:.3f}s | {stats['events_per_s']:.0f} events/s | "
            f"{stats['schedule_passes']} passes | {stats['pass_cost_us']:.1f} us/pass"
        )
        print(
            f"  utilization {stats['utilization_percent']:.1f}% | "
            f"mean wait {stats['mean_wait_min']:.1f} min"
        )
        pass_hist = snapshot["histograms"].get("sim.pass_duration_seconds")
        if pass_hist is not None and pass_hist["count"] > 0:
            print()
            print(
                format_histogram(
                    pass_hist, title="scheduling-pass wall duration (s)"
                )
            )

    if profiler is not None:
        out = io.StringIO()
        pstats.Stats(profiler, stream=out).sort_stats("cumulative").print_stats(
            args.top
        )
        print(out.getvalue())
    return 0


if __name__ == "__main__":
    sys.exit(main())
