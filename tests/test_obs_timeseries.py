"""StateSeries: reservoir behavior, offline rebuild, rendering."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.registry import make_predictor
from repro.obs import (
    Instrumentation,
    ListSink,
    StateSeries,
    Tracer,
    format_timeseries,
    sparkline,
)
from repro.predictors.base import PointEstimator
from repro.scheduler.policies import BackfillPolicy
from repro.scheduler.simulator import Simulator
from repro.workloads.archive import load_paper_workload


def _push(series, t, **overrides):
    sample = dict(
        queued=2, running=3, free_nodes=4, total_nodes=16,
        min_request=2, backlog_node_s=10.0,
    )
    sample.update(overrides)
    series.push(t, **sample)


class TestReservoir:
    def test_points_stay_bounded_and_keep_endpoints(self):
        series = StateSeries(max_points=64)
        for i in range(5000):
            _push(series, float(i))
        assert len(series) <= 64
        assert series.min_dt > 0.0
        assert series.points[0]["t"] == 0.0
        assert series.points[-1]["t"] == 4999.0

    def test_dense_burst_overwrites_last_point(self):
        series = StateSeries()
        series.min_dt = 10.0
        _push(series, 0.0, queued=1)
        _push(series, 5.0, queued=7)  # within min_dt: overwrite
        assert len(series) == 1
        assert series.points[0]["queued"] == 7
        _push(series, 50.0, queued=2)  # past min_dt: append
        assert len(series) == 2

    def test_min_points_floor(self):
        with pytest.raises(ValueError):
            StateSeries(max_points=4)

    def test_point_fields(self):
        series = StateSeries()
        _push(series, 1.0, free_nodes=3, total_nodes=10, min_request=5)
        point = series.points[0]
        assert point["used_nodes"] == 7
        assert point["util"] == pytest.approx(0.7)
        # free (3) < narrowest request (5): all free nodes are stranded
        assert point["stranded_free"] == 3
        _push(series, 2.0, free_nodes=6, total_nodes=10, min_request=5)
        assert series.points[-1]["stranded_free"] == 0
        _push(series, 3.0, min_request=None, queued=0)
        assert series.points[-1]["stranded_free"] == 0

    def test_values_and_unknown_metric(self):
        series = StateSeries()
        _push(series, 1.0)
        assert series.values("queue") == [2]  # alias -> "queued"
        assert series.values("queued") == [2]  # raw field works too
        with pytest.raises(KeyError, match="unknown metric"):
            series.values("nope")

    def test_to_jsonl_path_and_filelike(self, tmp_path):
        series = StateSeries()
        _push(series, 1.0)
        _push(series, 2.0)
        out = tmp_path / "points.jsonl"
        assert series.to_jsonl(str(out)) == 2
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["t"] == 1.0
        buf = io.StringIO()
        assert series.to_jsonl(buf) == 2
        assert buf.getvalue() == out.read_text()


class TestOfflineRebuild:
    def _events(self, policy="P"):
        # job 1: 4 nodes, waits 0; job 2: 2 nodes, waits 5
        return [
            {"type": "job_submitted", "policy": policy, "job_id": 1,
             "sim_time": 0.0, "nodes": 4, "wall_time": 0.0},
            {"type": "job_started", "policy": policy, "job_id": 1,
             "sim_time": 0.0, "nodes": 4, "wait_s": 0.0, "wall_time": 0.0},
            {"type": "job_submitted", "policy": policy, "job_id": 2,
             "sim_time": 5.0, "nodes": 2, "wall_time": 0.0},
            {"type": "job_finished", "policy": policy, "job_id": 1,
             "sim_time": 10.0, "wall_time": 0.0},
            {"type": "job_started", "policy": policy, "job_id": 2,
             "sim_time": 10.0, "nodes": 2, "wait_s": 5.0, "wall_time": 0.0},
            {"type": "job_finished", "policy": policy, "job_id": 2,
             "sim_time": 20.0, "wall_time": 0.0},
        ]

    def test_rebuild_counts_and_backlog(self):
        series = StateSeries.from_events(self._events(), total_nodes=8)
        assert not series.approximate_total
        assert series.values("running") == [0, 1, 1, 0, 1, 0]
        assert series.values("queue") == [1, 0, 1, 1, 0, 0]
        # backlog at t=10 (job_finished sample): job 2 queued since t=5
        # with 2 nodes -> 2 * 5 node-seconds.
        assert series.points[3]["backlog_node_s"] == pytest.approx(10.0)
        assert series.values("util")[1] == pytest.approx(4 / 8)

    def test_total_nodes_inferred_from_peak(self):
        series = StateSeries.from_events(self._events())
        assert series.approximate_total
        # peak concurrent allocation is job 1's 4 nodes
        assert series.points[1]["util"] == pytest.approx(1.0)

    def test_multi_policy_requires_selection(self):
        events = self._events("A") + self._events("B")
        with pytest.raises(ValueError, match="interleaves"):
            StateSeries.from_events(events)
        series = StateSeries.from_events(events, policy="A", total_nodes=8)
        assert len(series) == 6

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="no life-cycle events"):
            StateSeries.from_events(self._events(), policy="missing")

    def test_live_observer_matches_offline_rebuild(self):
        """The live series (observer hooks) and the offline rebuild of
        the same replay's trace sample identical state."""
        wl = load_paper_workload("ANL", n_jobs=80)
        sink = ListSink()
        inst = Instrumentation(tracer=Tracer(sink), timeseries=True)
        estimator = PointEstimator(
            make_predictor("max", wl), instrumentation=inst
        )
        sim = Simulator(
            BackfillPolicy(), estimator, wl.total_nodes, instrumentation=inst
        )
        sim.run(wl)
        live = inst.timeseries
        assert isinstance(live, StateSeries)
        offline = StateSeries.from_events(
            sink.events, total_nodes=wl.total_nodes
        )
        key = ("t", "queued", "running", "used_nodes", "backlog_node_s")
        assert [
            tuple(p[k] for k in key) for p in live.points
        ] == [tuple(p[k] for k in key) for p in offline.points]


class TestRendering:
    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_flat(self):
        assert sparkline([0.0, 0.0, 0.0]) == "   "
        assert sparkline([3.0, 3.0]) == "▄▄"

    def test_sparkline_pools_to_width(self):
        out = sparkline(list(range(1000)), width=40)
        assert len(out) == 40
        assert out[-1] == "█"
        assert out[0] == " "  # minimum maps to the lowest level

    def test_format_timeseries(self):
        series = StateSeries()
        _push(series, 0.0, queued=0)
        _push(series, 100.0, queued=9)
        text = format_timeseries(series, "queue", width=10)
        assert "queue over simulated time" in text
        assert "2 samples" in text
        assert "max=9" in text

    def test_format_empty_series(self):
        assert "(no samples)" in format_timeseries(StateSeries(), "util")

    def test_format_flags_inferred_total(self):
        series = StateSeries.from_events([
            {"type": "job_submitted", "policy": "P", "job_id": 1,
             "sim_time": 0.0, "nodes": 2, "wall_time": 0.0},
            {"type": "job_started", "policy": "P", "job_id": 1,
             "sim_time": 1.0, "nodes": 2, "wait_s": 1.0, "wall_time": 0.0},
        ])
        assert "inferred from peak" in format_timeseries(series, "util")
