"""Tests for repro.workloads.transform."""

from __future__ import annotations

import pytest

from repro.workloads.job import Trace
from repro.workloads.stats import offered_load
from repro.workloads.transform import (
    compress_interarrival,
    filter_jobs,
    head,
    merge,
    shift,
)
from tests.conftest import make_job


def _trace():
    jobs = [
        make_job(job_id=1, submit_time=100.0, run_time=50.0, nodes=2),
        make_job(job_id=2, submit_time=300.0, run_time=50.0, nodes=2),
        make_job(job_id=3, submit_time=500.0, run_time=50.0, nodes=4),
    ]
    return Trace(jobs, total_nodes=8, name="t")


class TestCompress:
    def test_halves_gaps(self):
        out = compress_interarrival(_trace(), 2.0)
        assert [j.submit_time for j in out] == [100.0, 200.0, 300.0]

    def test_first_submission_fixed(self):
        out = compress_interarrival(_trace(), 3.0)
        assert out[0].submit_time == 100.0

    def test_run_times_and_nodes_untouched(self):
        out = compress_interarrival(_trace(), 2.0)
        assert [j.run_time for j in out] == [50.0, 50.0, 50.0]
        assert [j.nodes for j in out] == [2, 2, 4]

    def test_raises_offered_load(self):
        t = _trace()
        assert offered_load(compress_interarrival(t, 2.0)) > offered_load(t)

    def test_factor_one_identity(self):
        out = compress_interarrival(_trace(), 1.0)
        assert [j.submit_time for j in out] == [100.0, 300.0, 500.0]

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            compress_interarrival(_trace(), 0.0)

    def test_empty_trace(self):
        empty = Trace([], total_nodes=4)
        assert len(compress_interarrival(empty, 2.0)) == 0

    def test_name_suffix(self):
        assert compress_interarrival(_trace(), 2.0).name == "tx2"


class TestHeadFilter:
    def test_head(self):
        out = head(_trace(), 2)
        assert [j.job_id for j in out] == [1, 2]

    def test_head_more_than_len(self):
        assert len(head(_trace(), 99)) == 3

    def test_head_zero(self):
        assert len(head(_trace(), 0)) == 0

    def test_head_negative_raises(self):
        with pytest.raises(ValueError):
            head(_trace(), -1)

    def test_filter_jobs(self):
        out = filter_jobs(_trace(), lambda j: j.nodes == 2)
        assert [j.job_id for j in out] == [1, 2]

    def test_metadata_preserved(self):
        out = head(_trace(), 1)
        assert out.total_nodes == 8


class TestShift:
    def test_shifts_all(self):
        out = shift(_trace(), 50.0)
        assert [j.submit_time for j in out] == [150.0, 350.0, 550.0]

    def test_negative_shift_allowed_when_valid(self):
        out = shift(_trace(), -100.0)
        assert out[0].submit_time == 0.0

    def test_negative_result_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            shift(_trace(), -150.0)

    def test_run_times_untouched(self):
        out = shift(_trace(), 10.0)
        assert [j.run_time for j in out] == [50.0, 50.0, 50.0]


class TestMerge:
    def _two(self):
        a = Trace(
            [make_job(job_id=1, submit_time=0.0, user="u", executable="e")],
            total_nodes=8,
            name="A",
        )
        b = Trace(
            [
                make_job(job_id=1, submit_time=5.0, user="u", executable="e"),
                make_job(job_id=2, submit_time=9.0, user="v", executable=None),
            ],
            total_nodes=32,
            name="B",
        )
        return a, b

    def test_ids_unique(self):
        merged = merge(self._two())
        ids = [j.job_id for j in merged]
        assert len(set(ids)) == len(ids) == 3

    def test_identities_prefixed(self):
        merged = merge(self._two())
        users = {j.user for j in merged}
        assert users == {"A:u", "B:u", "B:v"}
        assert any(j.executable == "A:e" for j in merged)
        assert any(j.executable is None for j in merged)

    def test_sorted_by_submit(self):
        merged = merge(self._two())
        times = [j.submit_time for j in merged]
        assert times == sorted(times)

    def test_total_nodes_default_max(self):
        assert merge(self._two()).total_nodes == 32

    def test_total_nodes_override(self):
        assert merge(self._two(), total_nodes=64).total_nodes == 64

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge([])
