"""Additional tests for the whole-table experiment drivers."""

from __future__ import annotations

import pytest

from repro.core.experiment import (
    _resolve_traces,
    run_scheduling_table,
    run_wait_time_table,
    run_wait_time_experiment,
)


class TestResolveTraces:
    def test_names_resolve_with_scaling(self):
        traces = _resolve_traces(["ANL", "SDSC96"], 60)
        assert [t.name for t in traces] == ["ANL", "SDSC96"]
        assert all(len(t) == 60 for t in traces)

    def test_trace_objects_pass_through(self, small_trace):
        [same] = _resolve_traces([small_trace], None)
        assert same is small_trace

    def test_default_is_all_four(self):
        traces = _resolve_traces(None, 30)
        assert [t.name for t in traces] == ["ANL", "CTC", "SDSC95", "SDSC96"]


class TestTableDriversByName:
    def test_scheduling_table_by_names(self):
        cells = run_scheduling_table(
            "actual", workloads=["SDSC95"], algorithms=("lwf",), n_jobs=80
        )
        assert len(cells) == 1
        assert cells[0].workload == "SDSC95"
        assert cells[0].n_jobs == 80

    def test_wait_table_by_names(self):
        cells = run_wait_time_table(
            "actual", workloads=["ANL"], algorithms=("fcfs",), n_jobs=80
        )
        assert len(cells) == 1
        assert cells[0].mean_error_minutes == pytest.approx(0.0, abs=1e-6)

    def test_templates_forwarded(self, anl_trace):
        from repro.predictors.templates import Template

        cells = run_scheduling_table(
            "smith",
            workloads=[anl_trace],
            algorithms=("lwf",),
            templates=[Template()],
        )
        assert len(cells) == 1

    def test_custom_scheduler_predictor(self, anl_trace):
        """§3 default is max; an oracle-driven scheduler is also allowed."""
        cell_default, _, _ = run_wait_time_experiment(anl_trace, "backfill", "actual")
        cell_oracle, _, _ = run_wait_time_experiment(
            anl_trace, "backfill", "actual", scheduler_predictor="actual"
        )
        # With the scheduler itself on actual run times and the predictor
        # on actual run times, the only error source is later arrivals —
        # strictly fewer divergences than the max-driven default.
        assert cell_oracle.mean_error_minutes <= cell_default.mean_error_minutes + 1e-6
