"""Tests for repro.workloads.stats."""

from __future__ import annotations

import pytest

from repro.workloads.job import Trace
from repro.workloads.stats import offered_load, summarize
from tests.conftest import make_job


def _trace():
    jobs = [
        make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=4, user="a",
                 queue="q1"),
        make_job(job_id=2, submit_time=100.0, run_time=200.0, nodes=2, user="b",
                 queue="q2"),
    ]
    return Trace(jobs, total_nodes=8, name="s")


class TestOfferedLoad:
    def test_value(self):
        # work = 400 + 400 = 800 node-s; span = 0 .. 300 s; capacity 8.
        assert offered_load(_trace()) == pytest.approx(800 / (300 * 8))

    def test_empty(self):
        assert offered_load(Trace([], total_nodes=4)) == 0.0

    def test_single_instantaneous(self):
        t = Trace([make_job(job_id=1, run_time=0.0)], total_nodes=4)
        assert offered_load(t) == 0.0


class TestSummarize:
    def test_counts(self):
        s = summarize(_trace())
        assert s.n_jobs == 2
        assert s.total_nodes == 8
        assert s.n_users == 2
        assert s.n_queues == 2

    def test_mean_run_time_minutes(self):
        s = summarize(_trace())
        assert s.mean_run_time_minutes == pytest.approx(150.0 / 60.0)

    def test_median(self):
        s = summarize(_trace())
        assert s.median_run_time_minutes == pytest.approx(150.0 / 60.0)

    def test_as_row_keys(self):
        row = summarize(_trace()).as_row()
        assert set(row) == {
            "Workload",
            "Nodes",
            "Requests",
            "Mean Run Time (minutes)",
            "Offered Load",
        }

    def test_empty_trace(self):
        s = summarize(Trace([], total_nodes=4, name="e"))
        assert s.n_jobs == 0
        assert s.mean_run_time_minutes == 0.0
