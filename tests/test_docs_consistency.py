"""Keep the documentation synchronized with the code.

These tests fail when a bench, example, or documented module is added or
removed without updating the corresponding document — cheap insurance
against the docs rotting.
"""

from __future__ import annotations

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


class TestBenchmarkDocs:
    def test_every_bench_listed_in_benchmarks_md(self):
        doc = (ROOT / "docs" / "benchmarks.md").read_text()
        benches = sorted(p.name for p in (ROOT / "benchmarks").glob("bench_*.py"))
        missing = [b for b in benches if b not in doc]
        assert not missing, f"benches missing from docs/benchmarks.md: {missing}"

    def test_no_phantom_benches_in_docs(self):
        doc = (ROOT / "docs" / "benchmarks.md").read_text()
        # (?<!\w) keeps names embedded in longer ones — e.g. the
        # scripts/check_bench_regression.py checker — from matching.
        referenced = set(re.findall(r"(?<!\w)bench_\w+\.py", doc))
        existing = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        phantom = referenced - existing
        assert not phantom, f"docs reference non-existent benches: {phantom}"


class TestReadme:
    def test_examples_listed(self):
        readme = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme, f"{example.name} not in README"

    def test_quickstart_snippet_runs(self):
        """The README's quickstart code must actually work."""
        from repro import load_paper_workload, run_scheduling_experiment

        trace = load_paper_workload("ANL", n_jobs=60)
        cell, result = run_scheduling_experiment(trace, "backfill", "smith")
        assert cell.utilization_percent > 0


class TestDesignInventory:
    def test_design_module_references_exist(self):
        """Every `repro.x.y` module path DESIGN.md names must import."""
        import importlib

        design = (ROOT / "DESIGN.md").read_text()
        for match in sorted(set(re.findall(r"`(repro(?:\.\w+)+)`", design))):
            importlib.import_module(match)

    def test_design_bench_references_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for match in sorted(set(re.findall(r"benchmarks/(bench_\w+\.py)", design))):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_experiments_md_exists_and_fresh_format(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "# EXPERIMENTS" in text
        for no in (1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15):
            assert f"## Table {no} " in text
