"""Tests for repro.stats.ci: t quantiles, intervals, running moments."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.ci import RunningMoments, mean_confidence_interval, t_quantile


class TestTQuantile:
    def test_median_is_zero(self):
        assert t_quantile(5, 0.5) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self):
        assert t_quantile(7, 0.9) == pytest.approx(-t_quantile(7, 0.1))

    def test_known_value(self):
        # t_{0.975} with 10 degrees of freedom is 2.228 (standard tables).
        assert t_quantile(10, 0.975) == pytest.approx(2.228, abs=5e-3)

    def test_heavier_tail_than_normal(self):
        assert t_quantile(3, 0.95) > t_quantile(300, 0.95)

    def test_converges_to_normal(self):
        assert t_quantile(10_000, 0.975) == pytest.approx(1.96, abs=0.01)

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            t_quantile(0, 0.9)

    def test_cached(self):
        assert t_quantile(9, 0.95) == t_quantile(9, 0.95)


class TestMeanConfidenceInterval:
    def test_mean_recovered(self):
        m, _ = mean_confidence_interval([2.0, 4.0, 6.0])
        assert m == pytest.approx(4.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])

    def test_zero_variance_zero_width(self):
        _, hw = mean_confidence_interval([5.0, 5.0, 5.0])
        assert hw == pytest.approx(0.0)

    def test_width_grows_with_spread(self):
        _, tight = mean_confidence_interval([10.0, 10.1, 9.9])
        _, wide = mean_confidence_interval([1.0, 19.0, 10.0])
        assert wide > tight

    def test_prediction_wider_than_mean_ci(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        _, pred = mean_confidence_interval(data, prediction=True)
        _, mean = mean_confidence_interval(data, prediction=False)
        assert pred > mean

    def test_higher_confidence_wider(self):
        data = [1.0, 3.0, 7.0, 2.0]
        _, w90 = mean_confidence_interval(data, 0.90)
        _, w99 = mean_confidence_interval(data, 0.99)
        assert w99 > w90

    def test_prediction_width_shrinks_slowly_with_n(self):
        # Prediction interval converges to t*s, not 0, as n grows.
        rng = np.random.default_rng(0)
        small = rng.normal(0, 1, 10)
        big = rng.normal(0, 1, 10_000)
        _, hw_big = mean_confidence_interval(big)
        assert hw_big == pytest.approx(1.645, abs=0.1)  # ~z_{0.95} * sigma
        _, hw_small = mean_confidence_interval(small)
        assert hw_small > 0


class TestRunningMoments:
    def test_matches_numpy(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        rm = RunningMoments()
        for x in data:
            rm.add(x)
        assert rm.count == 6
        assert rm.mean == pytest.approx(np.mean(data))
        assert rm.variance == pytest.approx(np.var(data, ddof=1))

    def test_remove_inverts_add(self):
        rm = RunningMoments()
        for x in [2.0, 7.0, 11.0]:
            rm.add(x)
        rm.add(100.0)
        rm.remove(100.0)
        assert rm.count == 3
        assert rm.mean == pytest.approx(np.mean([2.0, 7.0, 11.0]))
        assert rm.variance == pytest.approx(np.var([2.0, 7.0, 11.0], ddof=1))

    def test_remove_to_empty(self):
        rm = RunningMoments()
        rm.add(5.0)
        rm.remove(5.0)
        assert rm.count == 0
        assert rm.mean == 0.0

    def test_remove_from_empty_raises(self):
        with pytest.raises(ValueError):
            RunningMoments().remove(1.0)

    def test_variance_zero_below_two(self):
        rm = RunningMoments()
        rm.add(3.0)
        assert rm.variance == 0.0

    def test_interval_requires_two(self):
        rm = RunningMoments()
        rm.add(1.0)
        with pytest.raises(ValueError):
            rm.interval()

    def test_interval_matches_batch(self):
        data = [1.0, 5.0, 2.0, 8.0]
        rm = RunningMoments()
        for x in data:
            rm.add(x)
        m1, hw1 = rm.interval(0.9)
        m2, hw2 = mean_confidence_interval(data, 0.9)
        assert m1 == pytest.approx(m2)
        assert hw1 == pytest.approx(hw2)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_property_sliding_window_matches_batch(self, values):
        """Adding all then removing the first half equals the second half."""
        half = len(values) // 2
        rm = RunningMoments()
        for x in values:
            rm.add(x)
        for x in values[:half]:
            rm.remove(x)
        rest = values[half:]
        assert rm.count == len(rest)
        assert rm.mean == pytest.approx(np.mean(rest), rel=1e-6, abs=1e-3)
        if len(rest) >= 2:
            assert rm.variance >= 0.0
            assert rm.variance == pytest.approx(
                np.var(rest, ddof=1), rel=1e-4, abs=1.0
            )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_property_variance_never_negative(self, values):
        rm = RunningMoments()
        for x in values:
            rm.add(x)
        assert rm.variance >= 0.0
        assert rm.std == pytest.approx(math.sqrt(rm.variance))
