"""Property-based tests for Monte-Carlo wait intervals (waitpred.uncertainty).

Invariants that must hold for *any* system state:

- Percentile ordering: ``lo <= median <= hi`` always, and intervals are
  nested in the confidence level (a 95% interval contains the 50% one
  computed from the same sampled worlds).
- Degenerate collapse: when every sampled world is identical (a
  zero-interval predictor), the Monte-Carlo interval collapses to a
  single point — the deterministic answer of
  :func:`repro.waitpred.fast.predict_start_fast` on the point estimates.
- Batched/scalar parity: the vectorized many-worlds engine must be
  bit-identical, world by world, to the scalar per-world loop it
  replaced — same per-world starts for a shared duration matrix, and
  the same ``wait_samples`` and percentiles as a verbatim replica of
  the pre-vectorization sampling loop for the same integer seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import PointEstimator, Prediction, RuntimePredictor
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.simulator import QueuedJob, RunningJob, SystemSnapshot
from repro.utils.rng import rng_from_seed
from repro.waitpred.fast import predict_start_fast
from repro.waitpred.manyworlds import (
    encode_snapshot,
    predict_starts_batch,
    sample_durations,
    scalar_starts,
)
from repro.waitpred.uncertainty import predict_wait_interval
from repro.workloads.job import Job

_TOTAL_NODES = 32
_Z90 = 1.645


class StubPredictor(RuntimePredictor):
    """Predicts each job's actual run time with a fixed interval width."""

    name = "stub"
    elapsed_invariant = True

    def __init__(self, interval: float) -> None:
        self.interval = interval

    def predict(self, job, elapsed=0.0, now=0.0):
        return Prediction(estimate=job.run_time, interval=self.interval)


@st.composite
def snapshots(draw):
    """A feasible system state: running jobs fit the machine, >= 1 queued."""
    now = draw(st.floats(100.0, 10_000.0))
    running = []
    free = _TOTAL_NODES
    for i in range(draw(st.integers(0, 3))):
        nodes = draw(st.integers(1, _TOTAL_NODES // 2))
        if nodes > free:
            break
        free -= nodes
        start = draw(st.floats(0.0, now))
        job = Job(
            job_id=100 + i,
            submit_time=start,
            run_time=draw(st.floats(1.0, 20_000.0)),
            nodes=nodes,
            user="u",
            executable="x",
        )
        running.append(RunningJob(job, start))
    queued = []
    for i in range(draw(st.integers(1, 4))):
        job = Job(
            job_id=200 + i,
            submit_time=draw(st.floats(0.0, now)),
            run_time=draw(st.floats(1.0, 20_000.0)),
            nodes=draw(st.integers(1, _TOTAL_NODES)),
            user="u",
            executable="x",
        )
        queued.append(QueuedJob(job))
    return SystemSnapshot(
        now=now, running=tuple(running), queued=tuple(queued),
        total_nodes=_TOTAL_NODES,
    )


@given(
    snap=snapshots(),
    interval=st.floats(0.0, 5_000.0),
    seed=st.integers(0, 2**16),
    policy=st.sampled_from([FCFSPolicy, BackfillPolicy]),
)
@settings(max_examples=50, deadline=None)
def test_property_percentiles_are_ordered(snap, interval, seed, policy):
    est = PointEstimator(StubPredictor(interval))
    target = snap.queued[-1].job_id
    iv = predict_wait_interval(
        snap, policy(), est, target, samples=16, seed=seed
    )
    assert iv.lo <= iv.median <= iv.hi
    # Waits are measured from `now`; a queued job never starts in the past.
    assert iv.lo >= 0.0


@given(
    snap=snapshots(),
    interval=st.floats(1.0, 5_000.0),
    seed=st.integers(0, 2**16),
    lo_conf=st.floats(0.2, 0.6),
    hi_conf=st.floats(0.7, 0.99),
)
@settings(max_examples=50, deadline=None)
def test_property_intervals_nest_in_confidence(snap, interval, seed, lo_conf, hi_conf):
    """Same sampled worlds, higher confidence => containing interval."""
    est = PointEstimator(StubPredictor(interval))
    target = snap.queued[-1].job_id
    narrow = predict_wait_interval(
        snap, FCFSPolicy(), est, target,
        samples=24, confidence=lo_conf, seed=seed,
    )
    wide = predict_wait_interval(
        snap, FCFSPolicy(), est, target,
        samples=24, confidence=hi_conf, seed=seed,
    )
    assert wide.lo <= narrow.lo + 1e-9
    assert narrow.hi <= wide.hi + 1e-9
    assert narrow.median == pytest.approx(wide.median)


@given(
    snap=snapshots(),
    seed=st.integers(0, 2**16),
    policy=st.sampled_from([FCFSPolicy, BackfillPolicy]),
)
@settings(max_examples=50, deadline=None)
def test_property_identical_worlds_collapse_to_fast_answer(snap, seed, policy):
    """Zero run-time spread: every percentile equals the deterministic
    predict_start_fast start time."""
    est = PointEstimator(StubPredictor(0.0))
    target = snap.queued[-1].job_id
    iv = predict_wait_interval(
        snap, policy(), est, target, samples=12, seed=seed
    )
    durations = {
        rj.job_id: max(est.predict(rj.job, rj.elapsed(snap.now), snap.now), 1e-6)
        for rj in snap.running
    }
    durations.update(
        {
            qj.job_id: max(est.predict(qj.job, 0.0, snap.now), 1e-6)
            for qj in snap.queued
        }
    )
    expected = predict_start_fast(snap, policy(), durations, target) - snap.now
    assert iv.width == pytest.approx(0.0, abs=1e-9)
    assert iv.median == pytest.approx(expected)
    assert iv.lo == pytest.approx(expected)
    assert iv.hi == pytest.approx(expected)


class SpottyPredictor(RuntimePredictor):
    """Abstains on every third job so the fallback chain runs too."""

    name = "spotty"
    elapsed_invariant = True

    def __init__(self, level: float) -> None:
        self.level = level

    def predict(self, job, elapsed=0.0, now=0.0):
        if job.job_id % 3 == 0:
            return None
        return Prediction(
            estimate=job.run_time * (1.0 + 0.1 * (job.job_id % 2)),
            interval=self.level * job.run_time,
        )


def _old_loop_interval(snapshot, policy, estimator, target_job_id,
                       *, samples, confidence=0.80, seed=0):
    """Verbatim replica of the pre-vectorization per-world sampling loop."""
    rng = rng_from_seed(seed)
    now = snapshot.now
    params = {}
    for rj in snapshot.running:
        elapsed = rj.elapsed(now)
        point = estimator.predict(rj.job, elapsed, now)
        rich = estimator.predictor.predict(rj.job, elapsed, now)
        sigma = (rich.interval / _Z90) if rich is not None else 0.0
        params[rj.job_id] = (point, sigma)
    for qj in snapshot.queued:
        point = estimator.predict(qj.job, 0.0, now)
        rich = estimator.predictor.predict(qj.job, 0.0, now)
        sigma = (rich.interval / _Z90) if rich is not None else 0.0
        params[qj.job_id] = (point, sigma)
    waits = np.empty(samples)
    for s in range(samples):
        durations = {
            jid: max(point + sigma * float(rng.standard_normal()), 1e-6)
            if sigma > 0
            else max(point, 1e-6)
            for jid, (point, sigma) in params.items()
        }
        start = predict_start_fast(snapshot, policy, durations, target_job_id)
        waits[s] = start - now
    half = 100.0 * (1.0 - confidence) / 2.0
    return (
        float(np.median(waits)),
        float(np.percentile(waits, half)),
        float(np.percentile(waits, 100.0 - half)),
        waits,
    )


@given(
    snap=snapshots(),
    interval=st.floats(0.0, 5_000.0),
    seed=st.integers(0, 2**16),
    policy=st.sampled_from([FCFSPolicy, BackfillPolicy, LWFPolicy]),
)
@settings(max_examples=50, deadline=None)
def test_property_batched_starts_match_scalar_worlds(snap, interval, seed, policy):
    """Same duration matrix => bit-identical per-world starts.

    Covers the batched FCFS shortcut, the batched backfill shortcut,
    and the scalar fallback dispatch (LWF has no shortcut).
    """
    est = PointEstimator(StubPredictor(interval))
    target = snap.queued[-1].job_id
    enc = encode_snapshot(snap, est)
    durations = sample_durations(enc, 8, rng_from_seed(seed))
    batched = predict_starts_batch(snap, policy(), enc, durations, target)
    reference = scalar_starts(snap, policy(), enc, durations, target)
    assert np.array_equal(batched, reference)


@given(
    snap=snapshots(),
    level=st.sampled_from([0.0, 0.05, 0.5, 2.0]),
    seed=st.integers(0, 2**16),
    samples=st.integers(2, 12),
    policy=st.sampled_from([FCFSPolicy, BackfillPolicy, LWFPolicy]),
)
@settings(max_examples=50, deadline=None)
def test_property_engine_reproduces_scalar_loop_bit_identically(
    snap, level, seed, samples, policy
):
    """Same integer seed => the vectorized engine returns exactly the
    wait samples and percentiles of the scalar per-world loop it
    replaced, including jobs the predictor abstains on."""
    est = PointEstimator(SpottyPredictor(level))
    target = snap.queued[-1].job_id
    med, lo, hi, waits = _old_loop_interval(
        snap, policy(), est, target, samples=samples, seed=seed
    )
    iv = predict_wait_interval(
        snap, policy(), est, target, samples=samples, seed=seed
    )
    assert np.array_equal(np.asarray(iv.wait_samples), waits)
    assert (iv.median, iv.lo, iv.hi) == (med, lo, hi)
