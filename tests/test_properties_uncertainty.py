"""Property-based tests for Monte-Carlo wait intervals (waitpred.uncertainty).

Two invariants that must hold for *any* system state:

- Percentile ordering: ``lo <= median <= hi`` always, and intervals are
  nested in the confidence level (a 95% interval contains the 50% one
  computed from the same sampled worlds).
- Degenerate collapse: when every sampled world is identical (a
  zero-interval predictor), the Monte-Carlo interval collapses to a
  single point — the deterministic answer of
  :func:`repro.waitpred.fast.predict_start_fast` on the point estimates.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import PointEstimator, Prediction, RuntimePredictor
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy
from repro.scheduler.simulator import QueuedJob, RunningJob, SystemSnapshot
from repro.waitpred.fast import predict_start_fast
from repro.waitpred.uncertainty import predict_wait_interval
from repro.workloads.job import Job

_TOTAL_NODES = 32


class StubPredictor(RuntimePredictor):
    """Predicts each job's actual run time with a fixed interval width."""

    name = "stub"
    elapsed_invariant = True

    def __init__(self, interval: float) -> None:
        self.interval = interval

    def predict(self, job, elapsed=0.0, now=0.0):
        return Prediction(estimate=job.run_time, interval=self.interval)


@st.composite
def snapshots(draw):
    """A feasible system state: running jobs fit the machine, >= 1 queued."""
    now = draw(st.floats(100.0, 10_000.0))
    running = []
    free = _TOTAL_NODES
    for i in range(draw(st.integers(0, 3))):
        nodes = draw(st.integers(1, _TOTAL_NODES // 2))
        if nodes > free:
            break
        free -= nodes
        start = draw(st.floats(0.0, now))
        job = Job(
            job_id=100 + i,
            submit_time=start,
            run_time=draw(st.floats(1.0, 20_000.0)),
            nodes=nodes,
            user="u",
            executable="x",
        )
        running.append(RunningJob(job, start))
    queued = []
    for i in range(draw(st.integers(1, 4))):
        job = Job(
            job_id=200 + i,
            submit_time=draw(st.floats(0.0, now)),
            run_time=draw(st.floats(1.0, 20_000.0)),
            nodes=draw(st.integers(1, _TOTAL_NODES)),
            user="u",
            executable="x",
        )
        queued.append(QueuedJob(job))
    return SystemSnapshot(
        now=now, running=tuple(running), queued=tuple(queued),
        total_nodes=_TOTAL_NODES,
    )


@given(
    snap=snapshots(),
    interval=st.floats(0.0, 5_000.0),
    seed=st.integers(0, 2**16),
    policy=st.sampled_from([FCFSPolicy, BackfillPolicy]),
)
@settings(max_examples=50, deadline=None)
def test_property_percentiles_are_ordered(snap, interval, seed, policy):
    est = PointEstimator(StubPredictor(interval))
    target = snap.queued[-1].job_id
    iv = predict_wait_interval(
        snap, policy(), est, target, samples=16, seed=seed
    )
    assert iv.lo <= iv.median <= iv.hi
    # Waits are measured from `now`; a queued job never starts in the past.
    assert iv.lo >= 0.0


@given(
    snap=snapshots(),
    interval=st.floats(1.0, 5_000.0),
    seed=st.integers(0, 2**16),
    lo_conf=st.floats(0.2, 0.6),
    hi_conf=st.floats(0.7, 0.99),
)
@settings(max_examples=50, deadline=None)
def test_property_intervals_nest_in_confidence(snap, interval, seed, lo_conf, hi_conf):
    """Same sampled worlds, higher confidence => containing interval."""
    est = PointEstimator(StubPredictor(interval))
    target = snap.queued[-1].job_id
    narrow = predict_wait_interval(
        snap, FCFSPolicy(), est, target,
        samples=24, confidence=lo_conf, seed=seed,
    )
    wide = predict_wait_interval(
        snap, FCFSPolicy(), est, target,
        samples=24, confidence=hi_conf, seed=seed,
    )
    assert wide.lo <= narrow.lo + 1e-9
    assert narrow.hi <= wide.hi + 1e-9
    assert narrow.median == pytest.approx(wide.median)


@given(
    snap=snapshots(),
    seed=st.integers(0, 2**16),
    policy=st.sampled_from([FCFSPolicy, BackfillPolicy]),
)
@settings(max_examples=50, deadline=None)
def test_property_identical_worlds_collapse_to_fast_answer(snap, seed, policy):
    """Zero run-time spread: every percentile equals the deterministic
    predict_start_fast start time."""
    est = PointEstimator(StubPredictor(0.0))
    target = snap.queued[-1].job_id
    iv = predict_wait_interval(
        snap, policy(), est, target, samples=12, seed=seed
    )
    durations = {
        rj.job_id: max(est.predict(rj.job, rj.elapsed(snap.now), snap.now), 1e-6)
        for rj in snap.running
    }
    durations.update(
        {
            qj.job_id: max(est.predict(qj.job, 0.0, snap.now), 1e-6)
            for qj in snap.queued
        }
    )
    expected = predict_start_fast(snap, policy(), durations, target) - snap.now
    assert iv.width == pytest.approx(0.0, abs=1e-9)
    assert iv.median == pytest.approx(expected)
    assert iv.lo == pytest.approx(expected)
    assert iv.hi == pytest.approx(expected)
