"""Tests for the vectorized many-worlds engine and its batched profile.

The batched :class:`BatchAvailabilityProfile` must behave, world by
world, exactly like S independent scalar
:class:`AvailabilityProfile` instances fed the same releases and the
same reservation sequence: identical anchors from ``reserve``,
identical ``earliest_start`` answers, identical free-count queries, and
the same never-clears errors.  Internally the batch profile is allowed
to be a *refinement* of the scalar step function — equal-time releases
stay as zero-width twin columns — so state comparisons merge those
twins first (mirroring ``tests/test_properties_reservations.py``'s
style of checking invariants over random operation sequences).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import PointEstimator, Prediction, RuntimePredictor
from repro.scheduler.policies import BackfillPolicy, LWFPolicy
from repro.scheduler.policies.backfill import (
    AvailabilityProfile,
    BatchAvailabilityProfile,
)
from repro.scheduler.simulator import QueuedJob, RunningJob, SystemSnapshot
from repro.utils.rng import rng_from_seed
from repro.waitpred.manyworlds import (
    encode_snapshot,
    predict_starts_batch,
    sample_durations,
    scalar_starts,
    sweep_estimates,
)
from repro.workloads.job import Job


def assert_worlds_match_scalars(batch, scalars, total):
    """Each batch world, twins merged, equals its scalar profile."""
    for s, scalar in enumerate(scalars):
        c = int(batch.count[s])
        bt = batch.times[s, :c]
        bf = batch.free[s, :c]
        dup = bt[1:] == bt[:-1]
        # A zero-width twin never reports less free than its run-last.
        assert np.all(bf[:-1][dup] >= bf[1:][dup])
        last = np.ones(c, dtype=bool)
        last[:-1] = ~dup
        assert np.array_equal(bt[last], np.array(scalar.times))
        assert np.array_equal(bf[last], np.array(scalar.free))
        # Padding invariant: everything past count is (+inf, total).
        assert np.all(np.isinf(batch.times[s, c:]))
        assert np.all(batch.free[s, c:] == total)


@st.composite
def profile_scenarios(draw):
    n_worlds = draw(st.integers(1, 5))
    total = draw(st.integers(4, 48))
    # Cap at total so the [1]*n_rel fallback below can never release
    # more nodes than the machine has (total >= 4, so min() is safe).
    n_rel = draw(st.integers(0, min(5, total)))
    rel_nodes = [draw(st.integers(1, max(1, total // 3))) for _ in range(n_rel)]
    while sum(rel_nodes) > total:
        rel_nodes = [max(n // 2, 1) for n in rel_nodes]
        if sum(rel_nodes) <= n_rel:
            break
    if sum(rel_nodes) > total:
        rel_nodes = [1] * n_rel
    free0 = draw(st.integers(0, total - sum(rel_nodes)))
    start = draw(st.floats(-5.0, 5.0))
    rel_times = [
        [start + draw(st.floats(-2.0, 20.0)) for _ in range(n_rel)]
        for _ in range(n_worlds)
    ]
    if n_rel >= 2 and draw(st.booleans()):
        for row in rel_times:
            row[1] = row[0]  # exact equal-time run in every world
    ops = []
    for _ in range(draw(st.integers(1, 8))):
        kind = draw(st.sampled_from(["nofloor", "floored", "earliest"]))
        nodes = draw(st.integers(1, total))
        durs = [
            draw(st.floats(1e-6, 15.0)) for _ in range(n_worlds)
        ]
        floors = [start + draw(st.floats(-1.0, 25.0)) for _ in range(n_worlds)]
        ops.append((kind, nodes, durs, floors))
    return n_worlds, total, free0, start, rel_times, rel_nodes, ops


@given(case=profile_scenarios())
@settings(max_examples=60, deadline=None)
def test_property_batch_profile_tracks_scalar_profiles(case):
    """Random seed + reservation sequences: anchors, state, and errors
    all match a per-world scalar profile exactly."""
    n_worlds, total, free0, start, rel_times, rel_nodes, ops = case
    batch = BatchAvailabilityProfile.from_releases(
        start, free0, total, np.asarray(rel_times), np.asarray(rel_nodes)
    )
    scalars = [
        AvailabilityProfile.from_releases(
            start, free0, total,
            [(rel_times[s][r], rel_nodes[r]) for r in range(len(rel_nodes))],
        )
        for s in range(n_worlds)
    ]
    assert_worlds_match_scalars(batch, scalars, total)
    for kind, nodes, durs, floors in ops:
        durs = np.asarray(durs)
        try:
            if kind == "nofloor":
                got = batch.reserve(nodes, durs)
            elif kind == "floored":
                got = batch.reserve(nodes, durs, not_before=np.asarray(floors))
            else:
                got = batch.earliest_start(nodes, durs)
        except RuntimeError:
            # The batch raises only when some world never clears; the
            # scalar profile for such a world must agree.
            raised = 0
            for s in range(n_worlds):
                try:
                    scalars[s].earliest_start(nodes, float(durs[s]))
                except RuntimeError:
                    raised += 1
            assert raised > 0
            return
        for s in range(n_worlds):
            if kind == "nofloor":
                expected = scalars[s].reserve(nodes, float(durs[s]))
            elif kind == "floored":
                expected = scalars[s].reserve(
                    nodes, float(durs[s]), not_before=float(floors[s])
                )
            else:
                expected = scalars[s].earliest_start(nodes, float(durs[s]))
            assert got[s] == expected
        assert_worlds_match_scalars(batch, scalars, total)


class TestBatchAvailabilityProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchAvailabilityProfile(0.0, 5, 4, 3)  # free > total
        with pytest.raises(ValueError):
            BatchAvailabilityProfile(0.0, -1, 4, 3)
        with pytest.raises(ValueError):
            BatchAvailabilityProfile(0.0, 2, 4, 0)  # no worlds
        with pytest.raises(ValueError):
            BatchAvailabilityProfile.from_releases(
                0.0, 2, 4, np.zeros(3), np.ones(3, dtype=np.int64)
            )  # release_times must be 2-D
        with pytest.raises(ValueError):
            BatchAvailabilityProfile.from_releases(
                0.0, 2, 4, np.zeros((2, 3)), np.ones(2, dtype=np.int64)
            )  # shape mismatch
        with pytest.raises(ValueError):
            BatchAvailabilityProfile.from_releases(
                0.0, 2, 4, np.ones((2, 1)), np.zeros(1, dtype=np.int64)
            )  # release of zero nodes
        with pytest.raises(RuntimeError):
            BatchAvailabilityProfile.from_releases(
                0.0, 2, 4, np.ones((2, 1)), np.asarray([3])
            )  # 2 free + 3 released > 4 total
        profile = BatchAvailabilityProfile(0.0, 4, 4, 2)
        with pytest.raises(ValueError):
            profile.reserve(5, np.ones(2))  # wider than the machine
        with pytest.raises(ValueError):
            profile.earliest_start(5, np.ones(2))
        with pytest.raises(ValueError):
            profile.reserve(1, np.asarray([-1.0, 1.0]))  # negative duration

    def test_never_clears_raises_like_scalar(self):
        profile = BatchAvailabilityProfile.from_releases(
            0.0, 1, 8, np.asarray([[5.0], [9.0]]), np.asarray([3])
        )
        scalar = AvailabilityProfile.from_releases(0.0, 1, 8, [(5.0, 3)])
        with pytest.raises(RuntimeError):
            profile.reserve(6, np.full(2, 2.0))
        with pytest.raises(RuntimeError):
            scalar.reserve(6, 2.0)

    def test_earliest_start_does_not_mutate(self):
        profile = BatchAvailabilityProfile.from_releases(
            0.0, 2, 8, np.asarray([[4.0, 7.0], [3.0, 9.0]]), np.asarray([3, 3])
        )
        count = profile.count.copy()
        w = int(count.max())
        times = profile.times[:, :w].copy()
        free = profile.free[:, :w].copy()
        profile.earliest_start(4, np.full(2, 2.0))
        profile.earliest_start(4, np.full(2, 2.0), not_before=np.full(2, 1.0))
        # Capacity buffers may grow, but the tracked state must not move.
        assert np.array_equal(profile.count, count)
        assert np.array_equal(profile.times[:, :w], times)
        assert np.array_equal(profile.free[:, :w], free)

    def test_capacity_growth_preserves_worlds(self):
        """Many reserves through a deliberately tiny initial capacity."""
        profile = BatchAvailabilityProfile(0.0, 4, 4, 3, capacity=1)
        scalars = [AvailabilityProfile(0.0, 4, 4) for _ in range(3)]
        rng = rng_from_seed(11)
        for _ in range(12):
            durs = rng.uniform(0.5, 4.0, size=3)
            got = profile.reserve(2, durs)
            for s in range(3):
                assert got[s] == scalars[s].reserve(2, float(durs[s]))
        assert_worlds_match_scalars(profile, scalars, 4)

    def test_free_at_matches_scalar(self):
        rel = np.asarray([[2.0, 2.0, 6.0], [1.0, 4.0, 6.0]])
        nodes = np.asarray([2, 1, 3])
        profile = BatchAvailabilityProfile.from_releases(0.0, 1, 8, rel, nodes)
        scalars = [
            AvailabilityProfile.from_releases(
                0.0, 1, 8, [(float(rel[s, r]), int(nodes[r])) for r in range(3)]
            )
            for s in range(2)
        ]
        for q in (0.0, 1.5, 2.0, 5.0, 7.0):
            got = profile.free_at(q)
            for s in range(2):
                assert got[s] == scalars[s].free_at(q)
        with pytest.raises(ValueError):
            profile.free_at(-1.0)  # scalar raises here too


class CountingPredictor(RuntimePredictor):
    name = "counting"
    elapsed_invariant = True

    def __init__(self):
        self.calls = 0

    def predict(self, job, elapsed=0.0, now=0.0):
        self.calls += 1
        if job.job_id % 5 == 0:
            return None  # abstain -> estimator fallback chain
        return Prediction(estimate=job.run_time, interval=0.5 * job.run_time)


def small_snapshot():
    running = Job(job_id=1, submit_time=0.0, run_time=50.0, nodes=4,
                  user="u", executable="x")
    q1 = Job(job_id=5, submit_time=5.0, run_time=30.0, nodes=6,
             user="u", executable="x")  # abstained on (id % 5 == 0)
    q2 = Job(job_id=7, submit_time=6.0, run_time=20.0, nodes=2,
             user="u", executable="x")
    return SystemSnapshot(
        now=10.0,
        running=(RunningJob(running, 0.0),),
        queued=(QueuedJob(q1), QueuedJob(q2)),
        total_nodes=8,
    )


class TestEncodeAndSample:
    def test_each_job_predicted_exactly_once(self):
        """The double-predict of the original loop is gone: one rich
        prediction per job, fallback only on abstention."""
        snap = small_snapshot()
        predictor = CountingPredictor()
        enc = encode_snapshot(snap, PointEstimator(predictor))
        # One call per covered job; only the abstaining job pays a second
        # call inside the estimator's fallback chain (the old loop paid
        # two calls for every job).
        assert predictor.calls == enc.n_jobs + 1
        assert enc.n_jobs == 3
        assert enc.n_running == 1
        assert enc.job_ids() == (1, 5, 7)
        assert enc.sigma[1] == 0.0  # abstained job has no spread

    def test_sample_durations_matches_sequential_scalar_draws(self):
        snap = small_snapshot()
        enc = encode_snapshot(snap, PointEstimator(CountingPredictor()))
        durations = sample_durations(enc, 4, rng_from_seed(3))
        rng = rng_from_seed(3)
        for s in range(4):
            for j in range(enc.n_jobs):
                sigma = enc.sigma[j]
                if sigma > 0:
                    expected = max(
                        enc.point[j] + sigma * float(rng.standard_normal()), 1e-6
                    )
                else:
                    expected = max(enc.point[j], 1e-6)
                assert durations[s, j] == expected

    def test_unknown_target_raises(self):
        snap = small_snapshot()
        enc = encode_snapshot(snap, PointEstimator(CountingPredictor()))
        durations = sample_durations(enc, 2, rng_from_seed(0))
        with pytest.raises(KeyError):
            predict_starts_batch(snap, BackfillPolicy(), enc, durations, 999)

    def test_fallback_policy_routes_through_scalar_loop(self):
        snap = small_snapshot()
        enc = encode_snapshot(snap, PointEstimator(CountingPredictor()))
        durations = sample_durations(enc, 3, rng_from_seed(1))
        batched = predict_starts_batch(snap, LWFPolicy(), enc, durations, 7)
        reference = scalar_starts(snap, LWFPolicy(), enc, durations, 7)
        assert np.array_equal(batched, reference)


class TestSweepEstimates:
    def test_level_zero_is_deterministic_anchor(self):
        snap = small_snapshot()
        est = PointEstimator(CountingPredictor())
        points = sweep_estimates(
            snap, BackfillPolicy(), est, 7, levels=(0.0, 0.5), samples=16, seed=5
        )
        assert len(points) == 2
        base = points[0]
        assert base.level == 0.0
        assert base.spread == pytest.approx(0.0)
        assert base.std_wait == pytest.approx(0.0)
        assert base.stable_fraction == pytest.approx(1.0)
        assert points[1].level == 0.5

    def test_common_random_numbers_are_deterministic(self):
        snap = small_snapshot()
        est = PointEstimator(CountingPredictor())
        a = sweep_estimates(snap, BackfillPolicy(), est, 7, samples=12, seed=9)
        b = sweep_estimates(snap, BackfillPolicy(), est, 7, samples=12, seed=9)
        assert a == b

    def test_validation(self):
        snap = small_snapshot()
        est = PointEstimator(CountingPredictor())
        with pytest.raises(ValueError):
            sweep_estimates(snap, BackfillPolicy(), est, 7, samples=1)
        with pytest.raises(ValueError):
            sweep_estimates(
                snap, BackfillPolicy(), est, 7, levels=(-0.1,), samples=4
            )
