"""Property suite for the estimate-epoch contract (predictors.base).

The simulator caches queued-job estimates across scheduling passes,
flushing only when ``PointEstimator.history_epoch`` moves.  That is
sound iff every predictor honors the contract: *predictions are a pure
function of (job, elapsed) while the advertised epoch is unchanged*.

The suite checks the contract behaviorally.  An :class:`EpochCache`
mimics the simulator exactly — serve a memoized prediction while the
epoch marker is unchanged, recompute otherwise — and is driven through
randomized job lifecycle interleavings next to an identically-fed,
never-caching twin estimator.  A conforming predictor makes the two
agree bit-for-bit on every probe; the meta-test at the bottom shows the
suite has teeth by feeding it a predictor that mutates history without
bumping its epoch and watching the cache serve a stale value.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.adaptive import (
    DecayedMeanPredictor,
    OnlineMeanPredictor,
    OnlineRegressionPredictor,
)
from repro.predictors.base import PointEstimator, Prediction, RuntimePredictor
from repro.predictors.gibbons import GibbonsPredictor
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template, default_templates
from tests.test_properties_predictors import job_batches


class EpochCache:
    """The simulator's cross-pass estimate cache, reduced to its essence.

    Serves memoized ``predict`` results while ``history_epoch`` is
    unchanged; any movement of the marker flushes everything.  ``None``
    (volatile) disables caching entirely.
    """

    def __init__(self, estimator: PointEstimator) -> None:
        self.estimator = estimator
        self._cache: dict[tuple, float] = {}
        self._marker: object = object()  # matches no real epoch

    def predict(self, job, elapsed: float, now: float) -> float:
        marker = self.estimator.history_epoch
        if marker is None:
            return self.estimator.predict(job, elapsed, now)
        if marker != self._marker:
            self._cache.clear()
            self._marker = marker
        key = (job.job_id, elapsed)
        if key not in self._cache:
            self._cache[key] = self.estimator.predict(job, elapsed, now)
        return self._cache[key]


_FACTORIES = {
    "actual": lambda: ActualRuntimePredictor(),
    "max": lambda: MaxRuntimePredictor({"q16s": 900.0, "q64l": 4000.0}),
    "smith": lambda: SmithPredictor(
        [Template(), Template(characteristics=("u",)),
         Template(characteristics=("u", "e"), node_range_size=8)]
    ),
    "gibbons": lambda: GibbonsPredictor(),
    "online-mean": lambda: OnlineMeanPredictor(default_templates(None)),
    "online-rls": lambda: OnlineRegressionPredictor(default_templates(None)),
    "decayed-mean": lambda: DecayedMeanPredictor(default_templates(None)),
}


@st.composite
def lifecycles(draw):
    """A batch of jobs plus a random interleaving of their lifecycles.

    Each job's submit -> start -> finish order is preserved; across jobs
    the events interleave arbitrarily — exactly the stream a replay
    produces.
    """
    batch = draw(job_batches(min_size=3, max_size=10))
    stage = [0] * len(batch)
    pending = list(range(len(batch)))
    events: list[tuple[str, int]] = []
    while pending:
        pick = draw(st.integers(0, len(pending) - 1))
        i = pending[pick]
        events.append((("submit", "start", "finish")[stage[i]], i))
        stage[i] += 1
        if stage[i] == 3:
            pending.remove(i)
    return batch, events


def _drive(name: str, batch, events) -> None:
    """Feed cached and uncached twins one stream; probes must agree."""
    cached_est = PointEstimator(_FACTORIES[name]())
    direct_est = PointEstimator(_FACTORIES[name]())
    cache = EpochCache(cached_est)
    probes = [j.with_(job_id=1000 + i) for i, j in enumerate(batch[:3])]
    clock = 0.0
    for etype, i in events:
        job = batch[i]
        clock += 1.0
        for est in (cached_est, direct_est):
            getattr(est, f"on_{etype}")(job, clock)
        for probe in probes:
            assert cache.predict(probe, 0.0, clock) == direct_est.predict(
                probe, 0.0, clock
            ), f"{name}: cached and uncached estimates diverged"


@pytest.mark.parametrize("name", sorted(_FACTORIES))
@given(lifecycle=lifecycles())
@settings(max_examples=25, deadline=None)
def test_property_epoch_contract_makes_caching_exact(name, lifecycle):
    batch, events = lifecycle
    _drive(name, batch, events)


@given(lifecycle=lifecycles())
@settings(max_examples=25, deadline=None)
def test_property_volatile_estimator_disables_caching(lifecycle):
    """volatile=True advertises no epoch; the cache must pass through."""
    batch, events = lifecycle
    est = PointEstimator(SmithPredictor([Template()]), volatile=True)
    cache = EpochCache(est)
    assert est.history_epoch is None
    for etype, i in events:
        est_probe = batch[i]
        getattr(est, f"on_{etype}")(batch[i], 0.0)
        assert cache.predict(est_probe, 0.0, 0.0) == est.predict(est_probe, 0.0, 0.0)
    assert cache._cache == {}


class _EpochlessLearner(RuntimePredictor):
    """Deliberately broken: learns on finish, never moves its epoch."""

    name = "broken"
    history_epoch = 0  # frozen marker despite mutable history
    elapsed_invariant = True

    def __init__(self) -> None:
        self.values: list[float] = []

    def predict(self, job, elapsed=0.0, now=0.0):
        if not self.values:
            return None
        return Prediction(sum(self.values) / len(self.values), 0.0)

    def on_finish(self, job, now):
        self.values.append(job.run_time)


def test_meta_broken_predictor_is_caught(job_factory):
    """The suite detects a contract violation: with a max-run-time probe
    (so no fallback-mean consumption masks it), the stale cache survives
    a history change and diverges from the uncached twin."""
    cached_est = PointEstimator(_EpochlessLearner())
    direct_est = PointEstimator(_EpochlessLearner())
    cache = EpochCache(cached_est)
    probe = job_factory(max_run_time=500.0)

    # Prime the cache while the learner has no history (falls to max).
    assert cache.predict(probe, 0.0, 0.0) == direct_est.predict(probe, 0.0, 0.0)

    done = job_factory(run_time=100.0)
    cached_est.on_finish(done, 1.0)
    direct_est.on_finish(done, 1.0)

    # History changed, epoch did not: the cache serves the stale maximum
    # while the honest twin serves the learned mean.
    assert direct_est.predict(probe, 0.0, 1.0) == 100.0
    assert cache.predict(probe, 0.0, 1.0) == 500.0
