"""Tests for the Feitelson workload model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.analysis import repetition_stats, within_group_dispersion
from repro.workloads.feitelson import feitelson_trace
from repro.workloads.stats import offered_load


def trace(n=800, nodes=64, **kw):
    return feitelson_trace(n_jobs=n, total_nodes=nodes, seed=3, **kw)


class TestFeitelsonModel:
    def test_deterministic(self):
        a = feitelson_trace(n_jobs=100, total_nodes=64, seed=9)
        b = feitelson_trace(n_jobs=100, total_nodes=64, seed=9)
        assert [j.run_time for j in a] == [j.run_time for j in b]
        assert [j.submit_time for j in a] == [j.submit_time for j in b]

    def test_seed_sensitivity(self):
        a = feitelson_trace(n_jobs=100, total_nodes=64, seed=1)
        b = feitelson_trace(n_jobs=100, total_nodes=64, seed=2)
        assert [j.run_time for j in a] != [j.run_time for j in b]

    def test_job_count(self):
        assert len(trace(n=321)) == 321

    def test_sizes_within_machine(self):
        t = trace()
        assert all(1 <= j.nodes <= 64 for j in t)

    def test_powers_of_two_dominate(self):
        t = trace(n=2000)
        pow2 = sum(1 for j in t if j.nodes & (j.nodes - 1) == 0)
        assert pow2 / len(t) > 0.6

    def test_small_sizes_more_common(self):
        t = trace(n=2000)
        small = sum(1 for j in t if j.nodes <= 8)
        large = sum(1 for j in t if j.nodes >= 32)
        assert small > large

    def test_repeated_runs_present(self):
        stats = repetition_stats(trace(n=1500))
        assert stats.repeat_fraction > 0.3
        assert stats.mean_runs_per_identity > 1.2

    def test_reruns_have_similar_runtimes(self):
        assert within_group_dispersion(trace(n=1500)) < 0.6

    def test_offered_load_near_target(self):
        t = trace(n=2500, offered_load=0.6)
        assert offered_load(t) == pytest.approx(0.6, abs=0.2)

    def test_max_run_times_bound_actuals(self):
        t = trace()
        for j in t:
            assert j.max_run_time is not None
            assert j.max_run_time >= j.run_time

    def test_runtime_size_correlation_positive(self):
        t = trace(n=3000)
        sizes = np.array([j.nodes for j in t], dtype=float)
        rts = np.array([j.run_time for j in t], dtype=float)
        corr = np.corrcoef(np.log(sizes + 1), np.log(rts))[0, 1]
        assert corr > 0.02

    def test_heavy_tail(self):
        rts = np.array([j.run_time for j in trace(n=3000)])
        assert rts.max() / np.median(rts) > 10.0

    def test_available_fields(self):
        assert trace(n=10).available_fields == frozenset({"u", "e", "n"})

    def test_validation(self):
        with pytest.raises(ValueError):
            feitelson_trace(n_jobs=0, total_nodes=16)
        with pytest.raises(ValueError):
            feitelson_trace(n_jobs=10, total_nodes=16, offered_load=2.0)

    def test_runs_under_schedulers(self):
        from repro.core.experiment import run_scheduling_experiment

        t = trace(n=300)
        for policy in ("fcfs", "lwf", "backfill"):
            cell, res = run_scheduling_experiment(t, policy, "actual")
            assert len(res) == 300
            assert res.max_concurrent_nodes() <= 64
