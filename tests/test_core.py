"""Tests for repro.core: registry, experiment drivers, table formatting."""

from __future__ import annotations

import pytest

from repro.core.experiment import (
    run_runtime_prediction_experiment,
    run_scheduling_experiment,
    run_scheduling_table,
    run_wait_time_experiment,
    run_wait_time_table,
)
from repro.core.registry import PREDICTOR_NAMES, POLICY_NAMES, make_policy, make_predictor
from repro.core.tables import format_table
from repro.predictors.downey import DowneyPredictor
from repro.predictors.gibbons import GibbonsPredictor
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy


class TestRegistry:
    def test_all_names_buildable(self, anl_trace):
        for name in PREDICTOR_NAMES:
            assert make_predictor(name, anl_trace) is not None
        for name in POLICY_NAMES:
            assert make_policy(name) is not None

    def test_predictor_types(self, anl_trace):
        assert isinstance(make_predictor("actual", anl_trace), ActualRuntimePredictor)
        assert isinstance(make_predictor("max", anl_trace), MaxRuntimePredictor)
        assert isinstance(make_predictor("smith", anl_trace), SmithPredictor)
        assert isinstance(make_predictor("gibbons", anl_trace), GibbonsPredictor)
        assert isinstance(
            make_predictor("downey-average", anl_trace), DowneyPredictor
        )

    def test_downey_kinds(self, anl_trace):
        assert make_predictor("downey-average", anl_trace).kind == "average"
        assert make_predictor("downey-median", anl_trace).kind == "median"

    def test_smith_templates_override(self, anl_trace):
        custom = [Template(characteristics=("u",))]
        p = make_predictor("smith", anl_trace, templates=custom)
        assert list(p.templates) == custom

    def test_policy_types(self):
        assert isinstance(make_policy("fcfs"), FCFSPolicy)
        assert isinstance(make_policy("lwf"), LWFPolicy)
        assert isinstance(make_policy("backfill"), BackfillPolicy)

    def test_unknown_names_raise(self, anl_trace):
        with pytest.raises(KeyError):
            make_predictor("oracle", anl_trace)
        with pytest.raises(KeyError):
            make_policy("sjf")


class TestExperimentDrivers:
    def test_scheduling_cell_fields(self, anl_trace):
        cell, result = run_scheduling_experiment(anl_trace, "lwf", "actual")
        assert cell.workload == "ANL"
        assert cell.algorithm == "LWF"
        assert cell.predictor == "actual"
        assert 0 < cell.utilization_percent <= 100.0
        assert cell.mean_wait_minutes >= 0.0
        assert cell.n_jobs == len(anl_trace)
        row = cell.as_row()
        assert row["Workload"] == "ANL"
        assert "Utilization (percent)" in row

    def test_wait_time_cell_fields(self, anl_trace):
        cell, report, result = run_wait_time_experiment(anl_trace, "lwf", "actual")
        assert cell.algorithm == "LWF"
        assert cell.mean_error_minutes >= 0.0
        assert cell.n_jobs == len(anl_trace)
        assert "Mean Error (minutes)" in cell.as_row()

    def test_fcfs_actual_wait_error_zero(self, anl_trace):
        cell, _, _ = run_wait_time_experiment(anl_trace, "fcfs", "actual")
        assert cell.mean_error_minutes == pytest.approx(0.0, abs=1e-6)

    def test_runtime_prediction_cell(self, anl_trace):
        cell = run_runtime_prediction_experiment(anl_trace, "actual")
        assert cell.mean_error_minutes == pytest.approx(0.0)
        cell_max = run_runtime_prediction_experiment(anl_trace, "max")
        assert cell_max.mean_error_minutes > 0.0

    def test_table_driver_covers_grid(self, anl_trace, sdsc_trace):
        cells = run_scheduling_table(
            "actual", workloads=[anl_trace, sdsc_trace], algorithms=("lwf",)
        )
        assert [(c.workload, c.algorithm) for c in cells] == [
            ("ANL", "LWF"),
            ("SDSC95", "LWF"),
        ]

    def test_wait_table_driver(self, anl_trace):
        cells = run_wait_time_table(
            "actual", workloads=[anl_trace], algorithms=("lwf", "backfill")
        )
        assert len(cells) == 2
        assert {c.algorithm for c in cells} == {"LWF", "Backfill"}

    def test_utilization_invariant_across_predictors(self, anl_trace):
        """The paper's §4 finding: predictors barely move utilization."""
        u = {}
        for pred in ("actual", "max", "smith"):
            cell, _ = run_scheduling_experiment(anl_trace, "lwf", pred)
            u[pred] = cell.utilization_percent
        spread = max(u.values()) - min(u.values())
        assert spread < 5.0


class TestFormatTable:
    def test_renders_columns(self):
        rows = [
            {"Workload": "ANL", "Mean": 97.75},
            {"Workload": "CTC", "Mean": 171.14},
        ]
        text = format_table(rows, title="Table 1")
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "Workload" in lines[1]
        assert "ANL" in text and "171.14" in text

    def test_numeric_right_aligned(self):
        rows = [{"n": 5}, {"n": 12345}]
        text = format_table(rows)
        data_lines = text.splitlines()[2:]
        assert data_lines[0].endswith("5")
        assert data_lines[1].endswith("12345")

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_missing_cell_rendered_empty(self):
        text = format_table([{"a": 1}, {"a": None}])
        assert text  # no crash
