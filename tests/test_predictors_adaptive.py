"""Tests for the online-learning predictors (predictors.adaptive)."""

from __future__ import annotations

import math

import pytest

from repro.predictors.adaptive import (
    DecayedMeanPredictor,
    OnlineMeanPredictor,
    OnlineRegressionPredictor,
    _DecayedMoments,
)
from repro.predictors.base import warm_start
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template, default_templates
from repro.workloads.job import Trace
from tests.conftest import make_job

UE = Template(characteristics=("u", "e"))
U = Template(characteristics=("u",))


class TestValidation:
    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            OnlineMeanPredictor([U], confidence=0.0)
        with pytest.raises(ValueError):
            OnlineMeanPredictor([U], confidence=1.0)

    def test_empty_template_set_rejected(self):
        with pytest.raises(ValueError):
            OnlineMeanPredictor([])

    def test_decay_bounds(self):
        with pytest.raises(ValueError):
            DecayedMeanPredictor([U], decay=0.0)
        with pytest.raises(ValueError):
            DecayedMeanPredictor([U], decay=1.5)

    def test_ridge_positive(self):
        with pytest.raises(ValueError):
            OnlineRegressionPredictor([U], ridge=0.0)


class TestOnlineMean:
    def test_no_history_predicts_none(self):
        p = OnlineMeanPredictor([U])
        assert p.predict(make_job()) is None

    def test_one_point_is_not_enough(self):
        p = OnlineMeanPredictor([U])
        p.on_finish(make_job(run_time=100.0), 0.0)
        assert p.predict(make_job()) is None

    def test_category_mean_after_two_points(self):
        p = OnlineMeanPredictor([U])
        p.on_finish(make_job(user="alice", run_time=100.0), 0.0)
        p.on_finish(make_job(user="alice", run_time=300.0), 0.0)
        pred = p.predict(make_job(user="alice"))
        assert pred.estimate == pytest.approx(200.0)
        assert pred.interval > 0.0
        assert pred.source == f"online-mean:{U.describe()}"

    def test_uncovered_job_served_from_global_pool(self):
        p = OnlineMeanPredictor([U])
        p.on_finish(make_job(user="alice", run_time=100.0), 0.0)
        p.on_finish(make_job(user="bob", run_time=300.0), 0.0)
        # carol has no (u) category yet; the global pool answers.
        pred = p.predict(make_job(user="carol"))
        assert pred.estimate == pytest.approx(200.0)
        assert pred.source == "online-mean:global"

    def test_epoch_bumps_once_per_completion(self):
        p = OnlineMeanPredictor([U, UE])
        assert p.history_epoch == 0
        p.on_finish(make_job(), 0.0)
        p.on_finish(make_job(), 0.0)
        assert p.history_epoch == 2
        assert p.updates == 2

    def test_relative_template_scales_by_job_maximum(self):
        p = OnlineMeanPredictor([Template(characteristics=("u",), relative=True)])
        p.on_finish(make_job(user="a", run_time=100.0, max_run_time=200.0), 0.0)
        p.on_finish(make_job(user="a", run_time=300.0, max_run_time=600.0), 0.0)
        # Both completions ran half their maximum.
        pred = p.predict(make_job(user="a", max_run_time=1000.0))
        assert pred.estimate == pytest.approx(500.0)

    def test_smallest_interval_template_wins(self):
        p = OnlineMeanPredictor([Template(), U])
        # (u)=alice is tight (identical times); the global template is wide.
        for rt in (100.0, 100.0):
            p.on_finish(make_job(user="alice", run_time=rt), 0.0)
        for rt in (10.0, 5000.0):
            p.on_finish(make_job(user="bob", run_time=rt), 0.0)
        pred = p.predict(make_job(user="alice"))
        assert pred.estimate == pytest.approx(100.0)
        assert pred.source == f"online-mean:{U.describe()}"

    def test_matches_smith_over_same_templates(self, anl_trace):
        """Streaming moments == Smith's stored-point means, bit for bit,
        for unbounded mean templates at elapsed 0."""
        templates = default_templates(anl_trace.available_fields)
        jobs = list(anl_trace)
        smith = warm_start(SmithPredictor(templates), jobs[:300])
        online = warm_start(OnlineMeanPredictor(templates), jobs[:300])
        checked = 0
        for probe in jobs[300:360]:
            ps = smith.predict(probe, 0.0, probe.submit_time)
            po = online.predict(probe, 0.0, probe.submit_time)
            if ps is None:
                continue
            checked += 1
            assert po is not None
            assert po.estimate == pytest.approx(ps.estimate, rel=1e-9)
            assert po.interval == pytest.approx(ps.interval, rel=1e-9)
        assert checked > 10

    def test_for_trace_uses_trace_fields(self):
        jobs = [make_job(user="a", queue=None, max_run_time=100.0) for _ in range(3)]
        trace = Trace(jobs, total_nodes=16, name="t")
        p = OnlineMeanPredictor.for_trace(trace)
        assert any(t.relative for t in p.templates)


class TestOnlineRegression:
    def test_learns_exact_linear_trend_in_log_nodes(self):
        p = OnlineRegressionPredictor([U], ridge=1e-9)
        # run_time = 50 + 100 * log1p(nodes), noiselessly.
        for nodes in (1, 2, 4, 8, 16, 32):
            p.on_finish(
                make_job(user="a", nodes=nodes,
                         run_time=50.0 + 100.0 * math.log1p(nodes)),
                0.0,
            )
        pred = p.predict(make_job(user="a", nodes=64))
        assert pred.estimate == pytest.approx(50.0 + 100.0 * math.log1p(64), rel=1e-4)
        assert pred.interval == pytest.approx(0.0, abs=1e-2)

    def test_needs_three_points(self):
        p = OnlineRegressionPredictor([U])
        p.on_finish(make_job(user="a", nodes=2, run_time=100.0), 0.0)
        p.on_finish(make_job(user="a", nodes=8, run_time=200.0), 0.0)
        assert p.predict(make_job(user="a")) is None
        p.on_finish(make_job(user="a", nodes=16, run_time=300.0), 0.0)
        assert p.predict(make_job(user="a")) is not None


class TestDecayedMean:
    def test_recency_dominates(self):
        """A regime change: old jobs ran 100s, recent ones 1000s."""
        decayed = DecayedMeanPredictor([U], decay=0.5)
        plain = OnlineMeanPredictor([U])
        for rt in [100.0] * 10 + [1000.0] * 3:
            job = make_job(user="a", run_time=rt)
            decayed.on_finish(job, 0.0)
            plain.on_finish(job, 0.0)
        probe = make_job(user="a")
        assert decayed.predict(probe).estimate > plain.predict(probe).estimate
        assert decayed.predict(probe).estimate > 800.0

    def test_decay_one_degenerates_to_plain_mean(self):
        decayed = DecayedMeanPredictor([U], decay=1.0)
        plain = OnlineMeanPredictor([U])
        for rt in (100.0, 250.0, 700.0):
            job = make_job(user="a", run_time=rt)
            decayed.on_finish(job, 0.0)
            plain.on_finish(job, 0.0)
        probe = make_job(user="a")
        assert decayed.predict(probe).estimate == pytest.approx(
            plain.predict(probe).estimate
        )

    def test_effective_sample_size(self):
        m = _DecayedMoments()
        for _ in range(5):
            m.add(10.0, 1.0)
        assert m.n_eff == pytest.approx(5.0)
        d = _DecayedMoments()
        for _ in range(50):
            d.add(10.0, 0.5)
        # Heavy decay: effective history is ~3 jobs no matter the count.
        assert d.n_eff < 3.1
