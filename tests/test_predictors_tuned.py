"""Tests for the GA-tuned template sets."""

from __future__ import annotations

import pytest

from repro.core.registry import make_predictor
from repro.predictors.replay import replay_prediction_error
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template
from repro.predictors.tuned import (
    TUNED_TEMPLATES,
    TUNED_TEMPLATES_BY_ALGORITHM,
    tuned_templates,
)
from repro.workloads.fields import WORKLOAD_FIELDS


class TestTunedTemplates:
    def test_all_four_workloads_covered(self):
        assert set(TUNED_TEMPLATES) == {"ANL", "CTC", "SDSC95", "SDSC96"}

    def test_template_counts_within_paper_cap(self):
        for name, templates in TUNED_TEMPLATES.items():
            assert 1 <= len(templates) <= 10, name

    def test_all_templates_valid(self):
        for templates in TUNED_TEMPLATES.values():
            for t in templates:
                assert isinstance(t, Template)  # ctor already validated

    def test_characteristics_match_workload_fields(self):
        """Tuned sets only reference fields their workload records."""
        for name, templates in TUNED_TEMPLATES.items():
            available = WORKLOAD_FIELDS[name].available
            for t in templates:
                assert set(t.characteristics) <= available, (name, t)

    def test_relative_only_where_maxima_exist(self):
        for name, templates in TUNED_TEMPLATES.items():
            if not WORKLOAD_FIELDS[name].has_max_run_time:
                assert not any(t.relative for t in templates), name

    def test_lookup_helper(self):
        assert tuned_templates("ANL") is TUNED_TEMPLATES["ANL"]
        with pytest.raises(KeyError, match="no tuned template set"):
            tuned_templates("LANL")


class TestPerAlgorithmSets:
    def test_all_eight_pairs_present(self):
        expected = {
            (w, a)
            for w in ("ANL", "CTC", "SDSC95", "SDSC96")
            for a in ("lwf", "backfill")
        }
        assert set(TUNED_TEMPLATES_BY_ALGORITHM) == expected

    def test_counts_within_cap(self):
        for key, templates in TUNED_TEMPLATES_BY_ALGORITHM.items():
            assert 1 <= len(templates) <= 10, key

    def test_characteristics_match_workload(self):
        for (w, _a), templates in TUNED_TEMPLATES_BY_ALGORITHM.items():
            available = WORKLOAD_FIELDS[w].available
            for t in templates:
                assert set(t.characteristics) <= available, (w, t)

    def test_relative_only_with_maxima(self):
        for (w, _a), templates in TUNED_TEMPLATES_BY_ALGORITHM.items():
            if not WORKLOAD_FIELDS[w].has_max_run_time:
                assert not any(t.relative for t in templates), w

    def test_lookup_with_algorithm(self):
        assert (
            tuned_templates("ANL", "lwf")
            is TUNED_TEMPLATES_BY_ALGORITHM[("ANL", "lwf")]
        )

    def test_lookup_falls_back_for_fcfs(self):
        assert tuned_templates("ANL", "fcfs") is TUNED_TEMPLATES["ANL"]

    def test_per_algorithm_sets_usable(self, anl_trace):
        """Each set drives a real predictor without errors."""
        from repro.predictors.replay import replay_prediction_error

        for algo in ("lwf", "backfill"):
            p = SmithPredictor(tuned_templates("ANL", algo))
            report = replay_prediction_error(anl_trace, p)
            assert report.mean_abs_error >= 0.0
            assert report.n_predicted > 0


class TestRegistryIntegration:
    def test_smith_tuned_uses_tuned_set(self, anl_trace):
        p = make_predictor("smith-tuned", anl_trace)
        assert isinstance(p, SmithPredictor)
        assert p.templates == TUNED_TEMPLATES["ANL"]

    def test_smith_tuned_falls_back_for_unknown_trace(self, anl_trace):
        from repro.workloads.transform import head

        other = head(anl_trace, 50, name="custom")
        p = make_predictor("smith-tuned", other)
        assert isinstance(p, SmithPredictor)

    def test_compressed_trace_name_resolves(self, sdsc_trace):
        from repro.workloads.transform import compress_interarrival

        hard = compress_interarrival(sdsc_trace, 2.0)  # name "SDSC95x2"
        p = make_predictor("smith-tuned", hard)
        assert p.templates == TUNED_TEMPLATES["SDSC95"]

    def test_tuned_beats_or_matches_defaults_on_anl(self, anl_trace):
        tuned = replay_prediction_error(
            anl_trace, make_predictor("smith-tuned", anl_trace)
        )
        default = replay_prediction_error(
            anl_trace, make_predictor("smith", anl_trace)
        )
        # Searched on these synthetic workloads; at worst a small loss on
        # a different slice length.
        assert tuned.mean_abs_error <= default.mean_abs_error * 1.15
