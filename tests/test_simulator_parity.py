"""Golden parity: the optimized engine must reproduce the reference engine.

The hot-path overhaul (cross-pass estimate caching, O(1) bookkeeping,
batch-built availability profiles, early-exit scheduling passes) claims
to change *nothing* about the schedules produced.  These tests replay
each paper workload — at a reduced job count — through both the
optimized :class:`repro.scheduler.Simulator` and the naive
:class:`repro.scheduler.reference.ReferenceSimulator` under FCFS, LWF
and conservative backfill, and assert the results are **bit-identical**:
same records in the same order, same start/finish floats, and same
per-job predicted waits when a wait-time observer rides along.

Property tests at the bottom pin the rebuilt
:class:`AvailabilityProfile` operations (``rebuild``/``from_releases``,
fused ``reserve``) to the primitive ``add_release`` +
``earliest_start`` + ``carve`` semantics on random sequences.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_predictor
from repro.obs import (
    PROVENANCE_EVENT_TYPES,
    Instrumentation,
    ListSink,
    Tracer,
    validate_event,
)
from repro.predictors.base import PointEstimator
from repro.scheduler.policies import (
    BackfillPolicy,
    EASYBackfillPolicy,
    FCFSPolicy,
    LWFPolicy,
)
from repro.scheduler.policies.backfill import AvailabilityProfile
from repro.scheduler.reference import (
    ReferenceBackfillPolicy,
    ReferenceFCFSPolicy,
    ReferenceLWFPolicy,
    ReferenceSimulator,
)
from repro.scheduler.simulator import Simulator
from repro.waitpred.predictor import WaitTimePredictor
from repro.workloads.archive import PAPER_WORKLOADS, load_paper_workload
from repro.workloads.job import Job, Trace

#: Reduced replay length per workload; override to widen the net.
PARITY_JOBS = int(os.environ.get("REPRO_PARITY_JOBS", "300"))

POLICY_PAIRS = {
    "FCFS": (FCFSPolicy, ReferenceFCFSPolicy),
    "LWF": (LWFPolicy, ReferenceLWFPolicy),
    "Backfill": (BackfillPolicy, ReferenceBackfillPolicy),
}

_TRACES: dict[str, Trace] = {}


def parity_trace(workload: str) -> Trace:
    trace = _TRACES.get(workload)
    if trace is None:
        trace = _TRACES[workload] = load_paper_workload(
            workload, n_jobs=PARITY_JOBS
        )
    return trace


def assert_identical_results(res_opt, res_ref) -> None:
    assert len(res_opt.records) == len(res_ref.records)
    # JobRecord is a frozen dataclass: equality is exact float equality
    # on submit/start/finish — no tolerances anywhere in this file.
    assert res_opt.records == res_ref.records


@pytest.mark.parametrize("workload", sorted(PAPER_WORKLOADS))
@pytest.mark.parametrize("policy_name", sorted(POLICY_PAIRS))
def test_schedule_parity_smith_estimator(workload, policy_name):
    """Optimized vs. reference replay with a history-growing estimator.

    The Smith predictor's history grows at every completion, exercising
    the estimate cache's epoch invalidation; identical records prove the
    cache never serves a stale estimate to a scheduling decision.
    """
    trace = parity_trace(workload)
    opt_cls, ref_cls = POLICY_PAIRS[policy_name]

    sim_opt = Simulator(
        opt_cls(),
        PointEstimator(make_predictor("smith", trace)),
        trace.total_nodes,
    )
    res_opt = sim_opt.run(trace)

    sim_ref = ReferenceSimulator(
        ref_cls(),
        PointEstimator(make_predictor("smith", trace)),
        trace.total_nodes,
    )
    res_ref = sim_ref.run(trace)

    assert_identical_results(res_opt, res_ref)
    assert sim_opt.started_times == sim_ref.started_times


@pytest.mark.parametrize("policy_name", sorted(POLICY_PAIRS))
def test_schedule_parity_max_estimator(policy_name):
    """Same gate under the paper's §3 scheduler setup (user maxima)."""
    trace = parity_trace("ANL")
    opt_cls, ref_cls = POLICY_PAIRS[policy_name]
    res_opt = Simulator(
        opt_cls(), PointEstimator(make_predictor("max", trace)), trace.total_nodes
    ).run(trace)
    res_ref = ReferenceSimulator(
        ref_cls(), PointEstimator(make_predictor("max", trace)), trace.total_nodes
    ).run(trace)
    assert_identical_results(res_opt, res_ref)


@pytest.mark.parametrize("workload", sorted(PAPER_WORKLOADS))
@pytest.mark.parametrize("policy_name", sorted(POLICY_PAIRS))
def test_predicted_waits_parity(workload, policy_name):
    """The wait-time observer sees identical state in both engines.

    Scheduler on user maxima, observer predicting waits with the Smith
    predictor via forward simulation — the paper's Tables 4-9 pipeline.
    Predicted waits must match float-for-float.
    """
    trace = load_paper_workload(workload, n_jobs=min(PARITY_JOBS, 150))
    opt_cls, ref_cls = POLICY_PAIRS[policy_name]

    def run_engine(engine_cls, policy_cls):
        sim = engine_cls(
            policy_cls(),
            PointEstimator(make_predictor("max", trace)),
            trace.total_nodes,
        )
        observer = WaitTimePredictor(opt_cls(), make_predictor("smith", trace))
        sim.add_observer(observer)
        res = sim.run(trace)
        return res, observer.predicted_waits

    res_opt, waits_opt = run_engine(Simulator, opt_cls)
    res_ref, waits_ref = run_engine(ReferenceSimulator, ref_cls)

    assert_identical_results(res_opt, res_ref)
    assert waits_opt == waits_ref


@pytest.mark.parametrize("policy_name", sorted(POLICY_PAIRS))
def test_counter_parity(policy_name):
    """The registry counters agree between the engines.

    Events and job life-cycle counts are invariants of the replay, so
    they must match exactly.  ``schedule_passes`` is *not* an invariant:
    the optimized engine's zero-free-nodes early exit skips passes the
    reference engine counts (and the skipped passes provably start
    nothing), so the only sound assertion is optimized <= reference.
    """
    trace = parity_trace("ANL")
    opt_cls, ref_cls = POLICY_PAIRS[policy_name]
    sim_opt = Simulator(
        opt_cls(), PointEstimator(make_predictor("max", trace)), trace.total_nodes
    )
    sim_opt.run(trace)
    sim_ref = ReferenceSimulator(
        ref_cls(), PointEstimator(make_predictor("max", trace)), trace.total_nodes
    )
    sim_ref.run(trace)

    snap_opt = sim_opt.metrics_snapshot()["counters"]
    snap_ref = sim_ref.metrics_snapshot()["counters"]
    for name in (
        "sim.events_processed",
        "sim.jobs_submitted",
        "sim.jobs_started",
        "sim.jobs_finished",
    ):
        assert snap_opt[name] == snap_ref[name], name
    assert snap_opt["sim.schedule_passes"] <= snap_ref["sim.schedule_passes"]
    # ...and the back-compat properties read the same counters.
    assert sim_opt.events_processed == snap_opt["sim.events_processed"]
    assert sim_ref.events_processed == snap_ref["sim.events_processed"]
    assert sim_opt.schedule_passes == snap_opt["sim.schedule_passes"]
    assert sim_ref.schedule_passes == snap_ref["sim.schedule_passes"]


# ----------------------------------------------------------------------
# instrumentation gating parity: tracing / provenance must not touch
# the schedule, and the disabled path must never reach a sink
# ----------------------------------------------------------------------
ALL_POLICIES = {
    "FCFS": FCFSPolicy,
    "LWF": LWFPolicy,
    "Backfill": BackfillPolicy,
    "EASY": EASYBackfillPolicy,
}


class SpySink:
    """A *disabled* sink that still counts ``emit`` calls: any call at
    all means the supposedly zero-cost disabled path did work."""

    enabled = False

    def __init__(self) -> None:
        self.calls = 0

    def emit(self, event: dict) -> None:  # pragma: no cover - must not run
        self.calls += 1

    def close(self) -> None:
        pass


def _replay(policy_cls, trace, inst=None):
    sim = Simulator(
        policy_cls(),
        PointEstimator(make_predictor("max", trace), instrumentation=inst),
        trace.total_nodes,
        instrumentation=inst if inst is not None else Instrumentation(),
    )
    return sim.run(trace)


@pytest.mark.parametrize("policy_name", sorted(ALL_POLICIES))
def test_provenance_replay_schedule_identical(policy_name):
    """Plain, traced, and traced+provenance replays are bit-identical.

    Provenance mode re-routes the policies through traced walks that do
    extra (value-deterministic) estimate lookups and origin bookkeeping;
    the schedules must not move by a single float.
    """
    trace = parity_trace("ANL")
    policy_cls = ALL_POLICIES[policy_name]

    res_plain = _replay(policy_cls, trace)
    plain_sink = ListSink()
    res_traced = _replay(
        policy_cls, trace, Instrumentation(tracer=Tracer(plain_sink))
    )
    detail_sink = ListSink()
    res_detail = _replay(
        policy_cls, trace,
        Instrumentation(tracer=Tracer(detail_sink), detail=True),
    )

    assert res_plain.records == res_traced.records
    assert res_plain.records == res_detail.records

    # Provenance events appear only in detail (provenance) mode...
    assert not [
        e for e in plain_sink.events if e["type"] in PROVENANCE_EVENT_TYPES
    ]
    provenance = [
        e for e in detail_sink.events if e["type"] in PROVENANCE_EVENT_TYPES
    ]
    # ...where every policy finds contention to attribute on this trace,
    # and every emitted event passes the schema (blocker kinds included).
    assert provenance
    for event in provenance:
        validate_event(event)


@pytest.mark.parametrize("policy_name", sorted(ALL_POLICIES))
def test_disabled_instrumentation_never_reaches_sink(policy_name):
    """With a disabled sink the replay makes zero ``emit`` calls and the
    schedule matches an uninstrumented run exactly — the off path costs
    one attribute check, nothing more."""
    trace = parity_trace("ANL")
    policy_cls = ALL_POLICIES[policy_name]
    spy = SpySink()
    res_spy = _replay(
        policy_cls, trace,
        Instrumentation(tracer=Tracer(spy), detail=True),
    )
    res_plain = _replay(policy_cls, trace)
    assert spy.calls == 0
    assert res_spy.records == res_plain.records


# ----------------------------------------------------------------------
# property parity of the rebuilt profile operations
# ----------------------------------------------------------------------
TOTAL_NODES = 16


@st.composite
def release_sets(draw):
    total = draw(st.integers(2, 32))
    free = draw(st.integers(0, total))
    budget = total - free
    raw = draw(
        st.lists(st.tuples(st.floats(0.0, 1000.0), st.integers(1, 8)), max_size=8)
    )
    releases = []
    for t, n in raw:
        n = min(n, budget)
        if n <= 0:
            continue
        budget -= n
        releases.append((t, n))
    return total, free, releases


@given(ops=release_sets())
@settings(max_examples=150, deadline=None)
def test_property_rebuild_matches_add_release(ops):
    """Batch construction == one add_release per pair, any input order."""
    total, free, releases = ops
    reference = AvailabilityProfile(0.0, free, total)
    for t, n in releases:
        reference.add_release(t, n)
    batch = AvailabilityProfile.from_releases(0.0, free, total, releases)
    assert batch.times == reference.times
    assert batch.free == reference.free
    # Rebuild of a dirty profile resets completely.
    batch.rebuild(0.0, free, releases)
    assert batch.times == reference.times
    assert batch.free == reference.free


@st.composite
def reserve_sequences(draw):
    total, free, releases = draw(release_sets())
    requests = draw(
        st.lists(
            st.tuples(
                st.integers(1, 8),
                st.floats(0.0, 400.0),
                st.one_of(st.none(), st.floats(0.0, 800.0)),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return total, free, releases, requests


@given(ops=reserve_sequences())
@settings(max_examples=150, deadline=None)
def test_property_reserve_matches_earliest_start_plus_carve(ops):
    """Fused reserve == earliest_start followed by carve, step for step."""
    total, free, releases, requests = ops
    a = AvailabilityProfile.from_releases(0.0, free, total, releases)
    b = AvailabilityProfile.from_releases(0.0, free, total, releases)
    for nodes, duration, not_before in requests:
        if nodes > max(a.free):
            continue  # would never clear; the policy never issues these
        start_a = a.earliest_start(nodes, duration, not_before=not_before)
        a.carve(start_a, duration, nodes)
        start_b = b.reserve(nodes, duration, not_before=not_before)
        assert start_b == start_a
        assert b.times == a.times
        assert b.free == a.free


@st.composite
def parity_traces(draw, max_jobs=14):
    n = draw(st.integers(1, max_jobs))
    jobs = []
    for i in range(n):
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=draw(st.floats(0.0, 1000.0)),
                run_time=draw(st.floats(0.0, 500.0)),
                nodes=draw(st.integers(1, TOTAL_NODES)),
                user=draw(st.sampled_from(["a", "b", "c"])),
                max_run_time=draw(
                    st.one_of(st.none(), st.floats(1.0, 2000.0))
                ),
            )
        )
    return Trace(jobs, total_nodes=TOTAL_NODES)


@pytest.mark.parametrize("policy_name", sorted(POLICY_PAIRS))
@given(trace=parity_traces())
@settings(max_examples=30, deadline=None)
def test_property_engine_parity_random_traces(policy_name, trace):
    """Random adversarial traces (zero run times, equal submits, full-width
    jobs) produce identical schedules in both engines."""
    opt_cls, ref_cls = POLICY_PAIRS[policy_name]
    res_opt = Simulator(
        opt_cls(), PointEstimator(make_predictor("max", trace)), TOTAL_NODES
    ).run(trace)
    res_ref = ReferenceSimulator(
        ref_cls(), PointEstimator(make_predictor("max", trace)), TOTAL_NODES
    ).run(trace)
    assert_identical_results(res_opt, res_ref)
