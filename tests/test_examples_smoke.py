"""Smoke tests: every example script runs end to end at tiny scale."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

_CASES = [
    ("quickstart.py", ["200"]),
    ("scheduling_comparison.py", ["ANL", "150"]),
    ("wait_time_prediction.py", ["120"]),
    ("template_search.py", ["ANL", "200", "2"]),
    ("swf_trace.py", []),
    ("coallocation.py", ["200"]),
    ("resource_selection.py", ["150"]),
    ("observability.py", ["150"]),
]


@pytest.mark.parametrize("script,args", _CASES, ids=[c[0] for c in _CASES])
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_all_examples_covered():
    """Every script in examples/ has a smoke test."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {name for name, _ in _CASES}
