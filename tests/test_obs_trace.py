"""Tracer, spans, sinks, and the trace event schema."""

import io
import json
import os
import subprocess
import sys
import time

import pytest

from repro.obs import (
    NULL_TRACER,
    Histogram,
    JsonlSink,
    ListSink,
    NullSink,
    Tracer,
    TraceSchemaError,
    read_jsonl,
    summarize_events,
    validate_event,
    validate_events,
    validate_jsonl,
)


class TestEmit:
    def test_events_carry_type_and_wall_time(self):
        sink = ListSink()
        tracer = Tracer(sink)
        tracer.emit("job_submitted", sim_time=1.0, job_id=7, policy="FCFS")
        (event,) = sink.events
        assert event["type"] == "job_submitted"
        assert event["job_id"] == 7
        assert event["policy"] == "FCFS"
        assert "wall_time" in event

    def test_extra_fields_pass_through(self):
        sink = ListSink()
        Tracer(sink).emit("job_started", sim_time=0.0, job_id=1, wait_s=3.0, nodes=4)
        assert sink.events[0]["nodes"] == 4

    def test_null_sink_emits_nothing(self):
        tracer = Tracer(NullSink())
        assert tracer.enabled is False
        tracer.emit("job_submitted", sim_time=0.0, job_id=1)  # no-op, no error


class TestSpans:
    def test_span_times_and_emits(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer", policy="FCFS") as span:
            span.annotate(started=2)
        (event,) = sink.events
        assert event["type"] == "span"
        assert event["name"] == "outer"
        assert event["duration_s"] >= 0.0
        assert event["started"] == 2
        assert span.duration_s == event["duration_s"]

    def test_nested_spans_record_parent(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.emit("replan_triggered", sim_time=0.0, cause="test")
        inner_event, inner_span, outer_span = sink.events
        assert inner_event["parent"] == "inner"
        assert inner_span["name"] == "inner"
        assert inner_span["parent"] == "outer"
        assert "parent" not in outer_span
        assert tracer._stack == []

    def test_span_exception_safe(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (event,) = sink.events
        assert event["ok"] is False
        assert event["error"] == "RuntimeError"
        assert tracer._stack == []  # stack unwound despite the raise

    def test_disabled_span_is_shared_noop(self):
        s1 = NULL_TRACER.span("a")
        s2 = NULL_TRACER.span("b")
        assert s1 is s2  # no allocation on the disabled path
        with s1 as span:
            span.annotate(anything=1)

    def test_disabled_span_still_feeds_histogram(self):
        hist = Histogram("h", (10.0,))
        with NULL_TRACER.span("timed", histogram=hist):
            pass
        assert hist.count == 1


class TestJsonlRoundTrip:
    def test_file_round_trip_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            tracer = Tracer(sink)
            tracer.emit("job_submitted", sim_time=0.0, job_id=1, nodes=2)
            with tracer.span("schedule_pass", sim_time=0.0, policy="LWF"):
                tracer.emit(
                    "job_started", sim_time=0.0, job_id=1, wait_s=0.0, depth=0
                )
        assert sink.events_written == 3
        events = read_jsonl(str(path))
        assert validate_events(events) == 3
        assert validate_jsonl(str(path)) == 3
        assert [e["type"] for e in events] == [
            "job_submitted",
            "job_started",
            "span",
        ]
        # events emitted inside a span are attributed to it
        assert events[1]["parent"] == "schedule_pass"

    def test_file_object_sink_flushes_not_closes(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        Tracer(sink).emit("replan_triggered", sim_time=0.0, cause="x")
        sink.close()
        assert not buf.closed
        assert validate_events(read_jsonl(io.StringIO(buf.getvalue()))) == 1

    def test_invalid_json_line_raises(self):
        with pytest.raises(TraceSchemaError, match="line 1"):
            read_jsonl(io.StringIO("{not json}\n"))


class TestJsonlBuffering:
    def test_holds_until_buffer_full_then_writes_whole_chunk(self):
        buf = io.StringIO()
        sink = JsonlSink(buf, buffer_lines=3)
        tracer = Tracer(sink)
        tracer.emit("replan_triggered", sim_time=0.0, cause="a")
        tracer.emit("replan_triggered", sim_time=1.0, cause="b")
        assert buf.getvalue() == ""  # below the threshold: nothing on disk
        assert sink.events_written == 2
        tracer.emit("replan_triggered", sim_time=2.0, cause="c")
        lines = buf.getvalue().splitlines()
        assert len(lines) == 3  # third emit flushed the whole chunk
        assert all(json.loads(line)["type"] == "replan_triggered" for line in lines)

    def test_explicit_flush_drains_partial_buffer(self):
        buf = io.StringIO()
        sink = JsonlSink(buf, buffer_lines=100)
        sink.emit({"type": "span", "wall_time": 0.0, "name": "x", "duration_s": 0.1})
        sink.flush()
        assert len(buf.getvalue().splitlines()) == 1
        sink.flush()  # idempotent on an empty buffer
        assert len(buf.getvalue().splitlines()) == 1

    def test_buffer_lines_below_one_rejected(self):
        with pytest.raises(ValueError, match="buffer_lines"):
            JsonlSink(io.StringIO(), buffer_lines=0)

    def test_context_manager_flushes_on_exit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path), buffer_lines=100) as sink:
            Tracer(sink).emit("job_submitted", sim_time=0.0, job_id=1, nodes=2)
            assert path.read_text() == ""  # still buffered inside the block
        assert validate_jsonl(str(path)) == 1

    def test_killed_writer_leaves_only_whole_valid_lines(self, tmp_path):
        """SIGKILL mid-replay must not leave truncated JSONL lines.

        The sink owns its handle unbuffered, so each flush is one whole-
        lines ``os.write`` — the pre-fix sink routed chunks through
        Python's buffered text layer, whose ~8 KiB blocks spill without
        respect for line boundaries.  The payload is padded to ~800
        bytes/line so every 7-line chunk (~5.6 KiB) spans those block
        boundaries, which is exactly where the old sink could tear.

        One tear remains beyond userland control: the kernel's write
        path checks for fatal signals at page boundaries, so SIGKILL can
        truncate the single in-flight write itself, leaving a partial
        *final* line with no trailing newline.  The hard guarantee —
        every newline-terminated line parses, validates, and the job ids
        are gap-free 1..N — is asserted on every attempt and never
        relaxed; only the kernel-tear signature (an unterminated tail
        fragment) triggers a bounded rerun, as does a slow runner that
        produced no output before the deadline.
        """
        import repro

        script = (
            "import sys\n"
            "from repro.obs import JsonlSink, Tracer\n"
            "tracer = Tracer(JsonlSink(sys.argv[1], buffer_lines=7))\n"
            "pad = 'x' * 700\n"
            "i = 0\n"
            "while True:\n"
            "    i += 1\n"
            "    tracer.emit('job_submitted', sim_time=float(i), job_id=i,\n"
            "                nodes=1, note=pad)\n"
        )
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        torn_tails = 0
        for attempt in range(3):
            path = tmp_path / f"killed-{attempt}.jsonl"
            proc = subprocess.Popen(
                [sys.executable, "-c", script, str(path)], env=env
            )
            try:
                deadline = time.time() + 20.0
                produced = False
                while time.time() < deadline:
                    if path.exists() and path.stat().st_size > 64 * 1024:
                        produced = True
                        break
                    time.sleep(0.01)
            finally:
                proc.kill()
                proc.wait()
            if not produced:
                continue
            raw = path.read_bytes()
            *whole, tail = raw.split(b"\n")
            # Hard assertions — every complete line must be flawless no
            # matter where the kill landed.
            events = read_jsonl(io.StringIO(b"\n".join(whole).decode("utf-8")))
            assert validate_events(events) == len(events) >= 1
            assert [e["job_id"] for e in events] == list(range(1, len(events) + 1))
            if tail == b"":
                break  # clean kill: the file is whole lines, nothing else
            torn_tails += 1  # kernel tore the final write mid-page: rerun
        else:
            raise AssertionError(
                f"no clean attempt in 3 tries ({torn_tails} kernel-torn tails)"
            )


class TestSchema:
    def test_unknown_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown event type"):
            validate_event({"type": "job_teleported", "wall_time": 0.0})

    def test_missing_required_field_rejected(self):
        with pytest.raises(TraceSchemaError, match="wait_s"):
            validate_event(
                {"type": "job_started", "wall_time": 0.0, "job_id": 1, "sim_time": 0.0}
            )

    def test_missing_wall_time_rejected(self):
        with pytest.raises(TraceSchemaError, match="wall_time"):
            validate_event({"type": "job_submitted", "job_id": 1, "sim_time": 0.0})

    def test_reservation_needs_an_id(self):
        base = {"type": "reservation_placed", "wall_time": 0.0, "sim_time": 0.0,
                "start_s": 5.0}
        with pytest.raises(TraceSchemaError, match="job_id or res_id"):
            validate_event(base)
        validate_event(dict(base, job_id=3))
        validate_event(dict(base, res_id=1))

    def test_field_type_checks(self):
        with pytest.raises(TraceSchemaError, match="must be a number"):
            validate_event(
                {"type": "job_submitted", "wall_time": 0.0, "job_id": 1,
                 "sim_time": "soon"}
            )
        with pytest.raises(TraceSchemaError, match="must be an int"):
            validate_event(
                {"type": "job_submitted", "wall_time": 0.0, "job_id": True,
                 "sim_time": 0.0}
            )
        with pytest.raises(TraceSchemaError, match="must be a string"):
            validate_event(
                {"type": "job_submitted", "wall_time": 0.0, "job_id": 1,
                 "sim_time": 0.0, "policy": 7}
            )

    def test_non_dict_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event([1, 2, 3])

    def test_runtime_predicted_requires_prediction_fields(self):
        base = {"type": "runtime_predicted", "wall_time": 0.0, "sim_time": 0.0,
                "job_id": 1}
        with pytest.raises(TraceSchemaError, match="predicted_run_s"):
            validate_event(base)
        validate_event(
            dict(base, predicted_run_s=120.0, predictor="smith", source="u/e")
        )

    def test_prediction_resolved_requires_known_kind(self):
        base = {"type": "prediction_resolved", "wall_time": 0.0, "sim_time": 9.0,
                "job_id": 1, "predictor": "smith", "predicted_s": 10.0,
                "actual_s": 12.0}
        with pytest.raises(TraceSchemaError, match="kind"):
            validate_event(base)
        with pytest.raises(TraceSchemaError, match="kind"):
            validate_event(dict(base, kind="walk_time"))
        validate_event(dict(base, kind="run_time", error_s=-2.0))
        validate_event(dict(base, kind="wait_time"))


class TestSummarize:
    def test_counts_by_policy_and_type(self):
        events = [
            {"type": "job_started", "policy": "FCFS"},
            {"type": "job_started", "policy": "FCFS"},
            {"type": "job_started", "policy": "LWF"},
            {"type": "span"},
        ]
        rows = summarize_events(events)
        assert rows == [
            {"Policy": "-", "Event": "span", "Count": 1},
            {"Policy": "FCFS", "Event": "job_started", "Count": 2},
            {"Policy": "LWF", "Event": "job_started", "Count": 1},
        ]
