"""Smoke tests for ``scripts/profile_hotpath.py``."""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO_ROOT, "scripts", "profile_hotpath.py")


def _run(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, SCRIPT, *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


@pytest.mark.slow
def test_profile_hotpath_text_output_with_histogram():
    proc = _run("--workload", "ANL", "--policy", "backfill", "--jobs", "150")
    assert proc.returncode == 0, proc.stderr
    assert "events/s" in proc.stdout
    assert "scheduling-pass wall duration" in proc.stdout
    assert "p50=" in proc.stdout


@pytest.mark.slow
def test_profile_hotpath_json_includes_metrics():
    proc = _run(
        "--workload", "ANL", "--policy", "fcfs", "--jobs", "150", "--json"
    )
    assert proc.returncode == 0, proc.stderr
    stats = json.loads(proc.stdout)
    assert stats["jobs"] == 150
    counters = stats["metrics"]["counters"]
    assert counters["sim.jobs_started"] == 150
    assert counters["sim.events_processed"] == stats["events_processed"]
    # detail mode times every pass into the histogram
    hist = stats["metrics"]["histograms"]["sim.pass_duration_seconds"]
    assert hist["count"] == stats["schedule_passes"]


@pytest.mark.slow
def test_profile_hotpath_reference_engine():
    proc = _run(
        "--workload", "ANL", "--policy", "backfill", "--jobs", "120",
        "--engine", "reference", "--json",
    )
    assert proc.returncode == 0, proc.stderr
    stats = json.loads(proc.stdout)
    assert stats["engine"] == "reference"
    assert stats["metrics"]["counters"]["sim.jobs_finished"] == 120
