"""Shared fixtures: compact deterministic jobs and traces.

Also registers the hypothesis profiles the property suites run under:
``default`` keeps local runs exploratory, ``ci`` pins the derandomized
mode CI uses so a red build is reproducible from its log alone.  Select
with ``HYPOTHESIS_PROFILE=ci`` (the coverage workflow does).
"""

from __future__ import annotations

import itertools
import os

import pytest
from hypothesis import settings

from repro.workloads.job import Job, Trace
from repro.workloads.archive import load_paper_workload

settings.register_profile("default", deadline=None)
settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

_ids = itertools.count(1)


def make_job(
    *,
    job_id: int | None = None,
    submit_time: float = 0.0,
    run_time: float = 600.0,
    nodes: int = 4,
    user: str | None = "alice",
    executable: str | None = "sim",
    queue: str | None = None,
    max_run_time: float | None = None,
    **kwargs,
) -> Job:
    """A job with compact defaults; job ids auto-increment if omitted."""
    return Job(
        job_id=job_id if job_id is not None else next(_ids),
        submit_time=submit_time,
        run_time=run_time,
        nodes=nodes,
        user=user,
        executable=executable,
        queue=queue,
        max_run_time=max_run_time,
        **kwargs,
    )


@pytest.fixture
def job_factory():
    return make_job


@pytest.fixture
def small_trace() -> Trace:
    """Five jobs on a 10-node machine exercising queueing and overlap."""
    jobs = [
        make_job(job_id=1, submit_time=0.0, run_time=1000.0, nodes=6, user="a"),
        make_job(job_id=2, submit_time=10.0, run_time=500.0, nodes=6, user="b"),
        make_job(job_id=3, submit_time=20.0, run_time=100.0, nodes=2, user="a"),
        make_job(job_id=4, submit_time=30.0, run_time=2000.0, nodes=10, user="c"),
        make_job(job_id=5, submit_time=40.0, run_time=50.0, nodes=1, user="b"),
    ]
    return Trace(jobs, total_nodes=10, name="small")


@pytest.fixture(scope="session")
def anl_trace() -> Trace:
    """A 400-job slice of the synthetic ANL workload (session cached)."""
    return load_paper_workload("ANL", n_jobs=400)


@pytest.fixture(scope="session")
def sdsc_trace() -> Trace:
    """A 400-job slice of the synthetic SDSC95 workload (session cached)."""
    return load_paper_workload("SDSC95", n_jobs=400)
