"""Tests for Simulator.run(until_time=...) mid-flight stopping."""

from __future__ import annotations

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import FCFSPolicy
from repro.scheduler.simulator import Simulator
from repro.workloads.job import Trace
from tests.conftest import make_job


def fresh_sim(total_nodes=10):
    return Simulator(FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), total_nodes)


class TestUntilTime:
    def test_stops_before_future_events(self, small_trace):
        sim = fresh_sim()
        sim.load_trace(small_trace)
        sim.run(until_time=15.0)
        # Jobs 1 (t=0) and 2 (t=10) submitted; 3-5 not yet.
        seen = {r.job_id for r in sim.running} | {q.job_id for q in sim.queued}
        assert seen == {1, 2}
        assert sim.now == 15.0

    def test_resume_completes_everything(self, small_trace):
        sim = fresh_sim()
        sim.load_trace(small_trace)
        sim.run(until_time=15.0)
        result = sim.run()
        assert len(result) == len(small_trace)

    def test_split_run_equals_single_run(self, anl_trace):
        from repro.workloads.transform import head

        trace = head(anl_trace, 120)
        whole = fresh_sim(trace.total_nodes)
        r_whole = whole.run(trace)

        split = fresh_sim(trace.total_nodes)
        split.load_trace(trace)
        midpoint = trace[60].submit_time
        split.run(until_time=midpoint)
        r_split = split.run()
        assert [(r.job_id, r.start_time) for r in r_whole.records] == [
            (r.job_id, r.start_time) for r in r_split.records
        ]

    def test_until_time_before_first_event(self, small_trace):
        sim = fresh_sim()
        sim.load_trace(small_trace)
        # First submission is at t=0, so nothing at all may process if we
        # stop strictly before it... t=0 events process at until_time=0.
        sim.run(until_time=-1.0)
        assert not sim.running and not sim.queued

    def test_state_live_at_boundary(self):
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=10),
            make_job(job_id=2, submit_time=5.0, run_time=10.0, nodes=10),
        ]
        sim = fresh_sim()
        sim.load_trace(Trace(jobs, total_nodes=10))
        sim.run(until_time=50.0)
        assert [r.job_id for r in sim.running] == [1]
        assert [q.job_id for q in sim.queued] == [2]
        assert sim.pool.free == 0
