"""Unit tests for the FCFS, LWF and backfill policies."""

from __future__ import annotations

import pytest

from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.policies.backfill import AvailabilityProfile
from tests.conftest import make_job
from tests.fakes import FakeView


def ids(selection):
    return [qj.job_id for qj in selection]


class TestFCFS:
    def test_starts_in_arrival_order(self):
        view = FakeView(
            total_nodes=10,
            queued=[
                make_job(job_id=1, submit_time=0, nodes=4),
                make_job(job_id=2, submit_time=1, nodes=4),
            ],
        )
        assert ids(FCFSPolicy().select(view)) == [1, 2]

    def test_blocks_behind_wide_head(self):
        view = FakeView(
            total_nodes=10,
            free_nodes=5,
            queued=[
                make_job(job_id=1, submit_time=0, nodes=8),  # does not fit
                make_job(job_id=2, submit_time=1, nodes=1),  # fits but must wait
            ],
        )
        assert ids(FCFSPolicy().select(view)) == []

    def test_partial_start(self):
        view = FakeView(
            total_nodes=10,
            queued=[
                make_job(job_id=1, submit_time=0, nodes=6),
                make_job(job_id=2, submit_time=1, nodes=6),
            ],
        )
        assert ids(FCFSPolicy().select(view)) == [1]

    def test_empty_queue(self):
        assert ids(FCFSPolicy().select(FakeView())) == []


class TestLWF:
    def test_orders_by_work_not_arrival(self):
        view = FakeView(
            total_nodes=10,
            queued=[
                make_job(job_id=1, submit_time=0, nodes=4, run_time=1000.0),
                make_job(job_id=2, submit_time=1, nodes=4, run_time=10.0),
            ],
        )
        assert ids(LWFPolicy().select(view)) == [2, 1]

    def test_work_is_nodes_times_time(self):
        # job 1: 2 nodes * 100 s = 200; job 2: 8 nodes * 30 s = 240.
        view = FakeView(
            total_nodes=10,
            queued=[
                make_job(job_id=1, submit_time=1, nodes=2, run_time=100.0),
                make_job(job_id=2, submit_time=0, nodes=8, run_time=30.0),
            ],
        )
        assert ids(LWFPolicy().select(view)) == [1, 2]

    def test_skips_blocked_wide_job(self):
        """Greedy LWF lets small jobs flow around a stalled wide one."""
        view = FakeView(
            total_nodes=10,
            free_nodes=4,
            queued=[
                make_job(job_id=1, submit_time=0, nodes=8, run_time=1.0),  # least work
                make_job(job_id=2, submit_time=1, nodes=2, run_time=50.0),
            ],
        )
        assert ids(LWFPolicy().select(view)) == [2]

    def test_uses_estimates_not_actuals(self):
        view = FakeView(
            total_nodes=10,
            free_nodes=4,
            queued=[
                make_job(job_id=1, submit_time=0, nodes=4, run_time=10.0),
                make_job(job_id=2, submit_time=1, nodes=4, run_time=1000.0),
            ],
            estimates={1: 10_000.0, 2: 1.0},  # estimates invert the truth
        )
        assert ids(LWFPolicy().select(view)) == [2]

    def test_tie_breaks_by_arrival(self):
        view = FakeView(
            total_nodes=10,
            queued=[
                make_job(job_id=2, submit_time=5, nodes=2, run_time=100.0),
                make_job(job_id=1, submit_time=0, nodes=2, run_time=100.0),
            ],
        )
        assert ids(LWFPolicy().select(view)) == [1, 2]


class TestAvailabilityProfile:
    def test_immediate_start_when_free(self):
        p = AvailabilityProfile(0.0, 5, 10)
        assert p.earliest_start(4, 100.0) == 0.0

    def test_waits_for_release(self):
        p = AvailabilityProfile(0.0, 2, 10)
        p.add_release(50.0, 8)
        assert p.earliest_start(4, 100.0) == 50.0

    def test_hole_too_short_is_rejected(self):
        # 4 nodes free until t=10, then a carve drops below; the job needs
        # the nodes for 100 s continuously.
        p = AvailabilityProfile(0.0, 4, 10)
        p.carve(10.0, 100.0, 3)  # only 1 free in [10, 110)
        assert p.earliest_start(4, 100.0) == 110.0

    def test_carve_reduces_free(self):
        p = AvailabilityProfile(0.0, 10, 10)
        p.carve(5.0, 10.0, 6)
        assert p.free_at(4.9) == 10
        assert p.free_at(5.0) == 4
        assert p.free_at(14.9) == 4
        assert p.free_at(15.0) == 10

    def test_carve_overcommit_raises(self):
        p = AvailabilityProfile(0.0, 4, 10)
        with pytest.raises(RuntimeError, match="overcommitted"):
            p.carve(0.0, 10.0, 5)

    def test_release_beyond_capacity_raises(self):
        p = AvailabilityProfile(0.0, 10, 10)
        with pytest.raises(RuntimeError, match="capacity"):
            p.add_release(5.0, 1)

    def test_request_wider_than_machine_raises(self):
        p = AvailabilityProfile(0.0, 10, 10)
        with pytest.raises(ValueError, match="machine size"):
            p.earliest_start(11, 1.0)


class TestBackfill:
    def test_fcfs_when_everything_fits(self):
        view = FakeView(
            total_nodes=10,
            queued=[
                make_job(job_id=1, submit_time=0, nodes=4),
                make_job(job_id=2, submit_time=1, nodes=4),
            ],
        )
        assert ids(BackfillPolicy().select(view)) == [1, 2]

    def test_backfills_short_job_into_hole(self):
        # Running: 6 nodes until t=100. Head needs 8 (waits to 100, reserved
        # on [100, 100+50)).  A 30s 4-node job fits in the hole before 100.
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=6, run_time=100.0), 0.0)],
            queued=[
                make_job(job_id=1, submit_time=0, nodes=8, run_time=50.0),
                make_job(job_id=2, submit_time=1, nodes=4, run_time=30.0),
            ],
        )
        assert ids(BackfillPolicy().select(view)) == [2]

    def test_does_not_delay_reservation(self):
        # Same as above but the backfill candidate runs 200 s, which would
        # hold 4 nodes past t=100 and delay the head's 8-node reservation.
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=6, run_time=100.0), 0.0)],
            queued=[
                make_job(job_id=1, submit_time=0, nodes=8, run_time=50.0),
                make_job(job_id=2, submit_time=1, nodes=4, run_time=200.0),
            ],
        )
        assert ids(BackfillPolicy().select(view)) == []

    def test_estimates_drive_backfill_decision(self):
        # Actual run time would delay the reservation, but the scheduler
        # believes the 30 s estimate and backfills anyway.
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=6, run_time=100.0), 0.0)],
            queued=[
                make_job(job_id=1, submit_time=0, nodes=8, run_time=50.0),
                make_job(job_id=2, submit_time=1, nodes=4, run_time=500.0),
            ],
            estimates={9: 100.0, 1: 50.0, 2: 30.0},
        )
        assert ids(BackfillPolicy().select(view)) == [2]

    def test_conservative_reservations_protect_second_in_line(self):
        # Two blocked wide jobs; a backfill that wouldn't delay the first
        # but would delay the second must not start.
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=10, run_time=100.0), 0.0)],
            queued=[
                make_job(job_id=1, submit_time=0, nodes=10, run_time=100.0),
                make_job(job_id=2, submit_time=1, nodes=10, run_time=100.0),
                # 300s job fits "now" only in profile terms after both
                # reservations; with zero free nodes nothing starts anyway.
                make_job(job_id=3, submit_time=2, nodes=1, run_time=300.0),
            ],
        )
        assert ids(BackfillPolicy().select(view)) == []

    def test_running_elapsed_shortens_remaining(self):
        # Job 9 started at t=-80 with a 100 s estimate: 20 s remain.  The
        # 8-node head reserves [20, 70); a 15 s backfill fits before that.
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=6, run_time=100.0), -80.0)],
            queued=[
                make_job(job_id=1, submit_time=0, nodes=8, run_time=50.0),
                make_job(job_id=2, submit_time=1, nodes=4, run_time=15.0),
            ],
        )
        assert ids(BackfillPolicy().select(view)) == [2]
