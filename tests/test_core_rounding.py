"""Half-up rounding for the paper's integer table columns."""

from __future__ import annotations

from repro.core.experiment import RuntimePredictionCell, WaitTimeCell
from repro.core.rounding import round_half_up


class TestRoundHalfUp:
    def test_halves_round_up_not_to_even(self):
        # Bare round() is banker's rounding: round(86.5) == 86.
        assert round_half_up(86.5) == 87
        assert round_half_up(87.5) == 88
        assert round_half_up(0.5) == 1
        assert round_half_up(1.5) == 2
        assert round_half_up(2.5) == 3

    def test_negative_halves_round_away_from_zero(self):
        assert round_half_up(-0.5) == -1
        assert round_half_up(-86.5) == -87

    def test_non_halves_unchanged(self):
        assert round_half_up(86.4) == 86
        assert round_half_up(86.6) == 87
        assert round_half_up(0.0) == 0

    def test_integer_digits_return_int(self):
        assert isinstance(round_half_up(86.5), int)

    def test_fractional_digits(self):
        assert round_half_up(2.345, 2) == 2.35
        assert round_half_up(2.5, 1) == 2.5
        assert isinstance(round_half_up(2.345, 2), float)


class TestTableRowsUseHalfUp:
    def test_wait_time_percent_column(self):
        cell = WaitTimeCell(
            workload="ANL",
            algorithm="LWF",
            predictor="max",
            mean_error_minutes=10.0,
            percent_of_mean_wait=86.5,
            mean_wait_minutes=12.0,
            n_jobs=100,
        )
        assert cell.as_row()["Percentage of Mean Wait Time"] == 87

    def test_runtime_prediction_percent_column(self):
        cell = RuntimePredictionCell(
            workload="CTC",
            predictor="smith",
            mean_error_minutes=40.0,
            percent_of_mean_run_time=42.5,
            n_jobs=100,
        )
        assert cell.as_row()["Percentage of Mean Run Time"] == 43
