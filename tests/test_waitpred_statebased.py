"""Tests for the state-based wait predictor (paper §5 future work)."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import LWFPolicy
from repro.scheduler.simulator import Simulator
from repro.waitpred.evaluation import evaluate_wait_predictions
from repro.waitpred.statebased import (
    StateBasedWaitPredictor,
    StateFeatures,
    StateTemplate,
)
from tests.conftest import make_job


def estimator():
    return PointEstimator(ActualRuntimePredictor())


class TestStateFeatures:
    def test_extract_bins(self):
        f = StateFeatures.extract(
            now=7 * 3600.0,  # 07:00 on day 0 (a weekday)
            queued_count=5,
            queued_work=12_345.0,
            free_nodes=30,
            total_nodes=40,
            job_nodes=8,
            job_runtime_estimate=900.0,
        )
        assert f.qlen == 3  # log2(5)=2 -> +1
        assert f.qwork == 5  # log10(12345)=4 -> +1
        assert f.free == 3  # 75% free -> top quartile
        assert f.nodes == 4  # log2(8)=3 -> +1
        assert f.rt == 3  # log10(900)=2 -> +1
        assert f.tod == 1  # 06:00-12:00
        assert f.dow == 0

    def test_weekend_flag(self):
        f = StateFeatures.extract(
            now=5.5 * 86400.0,
            queued_count=0,
            queued_work=0.0,
            free_nodes=0,
            total_nodes=4,
            job_nodes=1,
            job_runtime_estimate=1.0,
        )
        assert f.dow == 1

    def test_zero_bins(self):
        f = StateFeatures.extract(
            now=0.0,
            queued_count=0,
            queued_work=0.0,
            free_nodes=0,
            total_nodes=4,
            job_nodes=1,
            job_runtime_estimate=0.0,
        )
        assert f.qlen == 0 and f.qwork == 0 and f.rt == 0

    def test_key_projection(self):
        f = StateFeatures(qlen=1, qwork=2, free=3, nodes=4, rt=5, tod=6, dow=0)
        assert f.key(("qlen", "rt")) == (1, 5)
        assert f.key(()) == ()


class TestStateTemplate:
    def test_unknown_feature(self):
        with pytest.raises(ValueError, match="unknown state feature"):
            StateTemplate(("queue_depth",))

    def test_duplicate_feature(self):
        with pytest.raises(ValueError, match="duplicate"):
            StateTemplate(("qlen", "qlen"))

    def test_describe(self):
        assert StateTemplate(("qlen", "tod")).describe() == "(qlen, tod)"

    def test_bad_history(self):
        with pytest.raises(ValueError):
            StateTemplate((), max_history=1)


class TestPredictor:
    def test_requires_templates(self):
        with pytest.raises(ValueError):
            StateBasedWaitPredictor(estimator(), templates=())

    def test_ramp_up_uses_running_mean(self):
        p = StateBasedWaitPredictor(estimator())
        # No observations at all: predicts 0.
        f = StateFeatures(0, 0, 0, 1, 1, 0, 0)
        assert p.predict_from_features(f) is None

    def test_learns_congestion_signal(self):
        """Jobs submitted into a long queue must inherit long waits."""
        p = StateBasedWaitPredictor(
            estimator(), templates=(StateTemplate(("qlen",)),)
        )

        class ViewStub:
            def __init__(self, now, queued, free):
                self.now = now
                self.queued = queued
                self.free_nodes = free
                self.total_nodes = 10

        from repro.scheduler.simulator import QueuedJob

        # Train: two epochs of "empty queue -> short wait" and
        # "8-deep queue -> long wait".
        for i in range(4):
            short_job = make_job(job_id=100 + i, run_time=60.0)
            p.on_submit(ViewStub(0.0, [QueuedJob(short_job)], 10), QueuedJob(short_job))
            p.on_start(ViewStub(10.0, [], 10), short_job)  # 10 s wait
            long_job = make_job(job_id=200 + i, run_time=60.0)
            deep = [QueuedJob(make_job(job_id=300 + 10 * i + k)) for k in range(8)]
            p.on_submit(
                ViewStub(0.0, deep + [QueuedJob(long_job)], 0), QueuedJob(long_job)
            )
            p.on_start(ViewStub(5000.0, [], 10), long_job)  # 5000 s wait

        probe_short = p.predict_from_features(
            StateFeatures(qlen=0, qwork=0, free=3, nodes=1, rt=1, tod=0, dow=0)
        )
        probe_long = p.predict_from_features(
            StateFeatures(qlen=4, qwork=0, free=0, nodes=1, rt=1, tod=0, dow=0)
        )
        assert probe_short == pytest.approx(10.0)
        assert probe_long == pytest.approx(5000.0)

    def test_max_history_window(self):
        p = StateBasedWaitPredictor(
            estimator(), templates=(StateTemplate((), max_history=2),)
        )

        class ViewStub:
            now = 0.0
            queued = []
            free_nodes = 1
            total_nodes = 1

        from repro.scheduler.simulator import QueuedJob

        for i, wait in enumerate((1000.0, 10.0, 20.0)):
            job = make_job(job_id=i + 1)
            view = ViewStub()
            view.queued = [QueuedJob(job)]
            p.on_submit(view, QueuedJob(job))
            done = ViewStub()
            done.now = wait
            p.on_start(done, job)
        f = StateFeatures(0, 0, 3, 1, 1, 0, 0)
        # Only the last two observations (10, 20) remain.
        assert p.predict_from_features(f) == pytest.approx(15.0)

    def test_end_to_end_on_trace(self, anl_trace):
        """Full replay: produces a prediction for every job and a sane error."""
        from repro.workloads.transform import head

        trace = head(anl_trace, 300)
        policy = LWFPolicy()
        sched_est = estimator()
        sim = Simulator(policy, sched_est, trace.total_nodes)
        obs = StateBasedWaitPredictor(estimator())
        sim.add_observer(obs)
        result = sim.run(trace)
        report = evaluate_wait_predictions(result, obs.predicted_waits)
        assert report.n_jobs == len(trace)
        assert report.mean_abs_error >= 0.0
        assert obs.category_count > 0

    def test_unseen_job_start_ignored(self):
        p = StateBasedWaitPredictor(estimator())

        class ViewStub:
            now = 50.0

        p.on_start(ViewStub(), make_job(job_id=999))  # must not raise
        assert p.predicted_waits == {}
