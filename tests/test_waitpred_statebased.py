"""Tests for the state-based wait predictor (paper §5 future work)."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import LWFPolicy
from repro.scheduler.simulator import Simulator
from repro.waitpred.evaluation import evaluate_wait_predictions
from repro.waitpred.statebased import (
    StateBasedWaitPredictor,
    StateFeatures,
    StateTemplate,
    _log2_bin,
    _log10_bin,
)
from tests.conftest import make_job


def estimator():
    return PointEstimator(ActualRuntimePredictor())


class TestStateFeatures:
    def test_extract_bins(self):
        f = StateFeatures.extract(
            now=7 * 3600.0,  # 07:00 on day 0 (a weekday)
            queued_count=5,
            queued_work=12_345.0,
            free_nodes=30,
            total_nodes=40,
            job_nodes=8,
            job_runtime_estimate=900.0,
        )
        assert f.qlen == 3  # log2(5)=2 -> +1
        assert f.qwork == 5  # log10(12345)=4 -> +1
        assert f.free == 3  # 75% free -> top quartile
        assert f.nodes == 4  # log2(8)=3 -> +1
        assert f.rt == 3  # log10(900)=2 -> +1
        assert f.tod == 1  # 06:00-12:00
        assert f.dow == 0

    def test_weekend_flag(self):
        f = StateFeatures.extract(
            now=5.5 * 86400.0,
            queued_count=0,
            queued_work=0.0,
            free_nodes=0,
            total_nodes=4,
            job_nodes=1,
            job_runtime_estimate=1.0,
        )
        assert f.dow == 1

    def test_zero_bins(self):
        f = StateFeatures.extract(
            now=0.0,
            queued_count=0,
            queued_work=0.0,
            free_nodes=0,
            total_nodes=4,
            job_nodes=1,
            job_runtime_estimate=0.0,
        )
        assert f.qlen == 0 and f.qwork == 0 and f.rt == 0

    def test_key_projection(self):
        f = StateFeatures(qlen=1, qwork=2, free=3, nodes=4, rt=5, tod=6, dow=0)
        assert f.key(("qlen", "rt")) == (1, 5)
        assert f.key(()) == ()


class TestBinBoundaries:
    """Exact powers must land in their own bin on every platform.

    ``int(math.log2/log10(value))`` is one libm rounding away from
    binning ``2**29`` or ``10**3`` into the previous magnitude; the
    binning now uses exact integer arithmetic, so every boundary is
    checked exhaustively across the feature ranges.
    """

    def test_log2_every_power_to_2_40(self):
        for k in range(41):
            v = float(2**k)
            assert _log2_bin(v) == k + 1, f"2**{k}"
            # Just below the boundary falls in the previous bin.
            if k >= 1:
                assert _log2_bin(v - 1.0) == k, f"2**{k} - 1"
            # Just above stays in the same bin.
            assert _log2_bin(v + 1.0) == k + 1 + (1 if k == 0 else 0)

    def test_log10_every_power_to_10_12(self):
        for k in range(13):
            v = float(10**k)
            assert _log10_bin(v) == k + 1, f"10**{k}"
            if k >= 1:
                assert _log10_bin(v - 1.0) == k, f"10**{k} - 1"
                assert _log10_bin(v * 0.999999) == k, f"10**{k} * 0.999999"

    def test_sub_unit_values_bin_zero(self):
        for fn in (_log2_bin, _log10_bin):
            assert fn(0.0) == 0
            assert fn(0.5) == 0
            assert fn(0.999999) == 0
            assert fn(-3.0) == 0

    def test_non_power_values(self):
        assert _log2_bin(3.0) == 2
        assert _log2_bin(5.0) == 3
        assert _log10_bin(12_345.0) == 5
        assert _log10_bin(999.0) == 3


class TestStateTemplate:
    def test_unknown_feature(self):
        with pytest.raises(ValueError, match="unknown state feature"):
            StateTemplate(("queue_depth",))

    def test_duplicate_feature(self):
        with pytest.raises(ValueError, match="duplicate"):
            StateTemplate(("qlen", "qlen"))

    def test_describe(self):
        assert StateTemplate(("qlen", "tod")).describe() == "(qlen, tod)"

    def test_bad_history(self):
        with pytest.raises(ValueError):
            StateTemplate((), max_history=1)


class TestPredictor:
    def test_requires_templates(self):
        with pytest.raises(ValueError):
            StateBasedWaitPredictor(estimator(), templates=())

    def test_ramp_up_uses_running_mean(self):
        p = StateBasedWaitPredictor(estimator())
        # No observations at all: predicts 0.
        f = StateFeatures(0, 0, 0, 1, 1, 0, 0)
        assert p.predict_from_features(f) is None

    def test_learns_congestion_signal(self):
        """Jobs submitted into a long queue must inherit long waits."""
        p = StateBasedWaitPredictor(
            estimator(), templates=(StateTemplate(("qlen",)),)
        )

        class ViewStub:
            def __init__(self, now, queued, free):
                self.now = now
                self.queued = queued
                self.free_nodes = free
                self.total_nodes = 10

        from repro.scheduler.simulator import QueuedJob

        # Train: two epochs of "empty queue -> short wait" and
        # "8-deep queue -> long wait".
        for i in range(4):
            short_job = make_job(job_id=100 + i, run_time=60.0)
            p.on_submit(ViewStub(0.0, [QueuedJob(short_job)], 10), QueuedJob(short_job))
            p.on_start(ViewStub(10.0, [], 10), short_job)  # 10 s wait
            long_job = make_job(job_id=200 + i, run_time=60.0)
            deep = [QueuedJob(make_job(job_id=300 + 10 * i + k)) for k in range(8)]
            p.on_submit(
                ViewStub(0.0, deep + [QueuedJob(long_job)], 0), QueuedJob(long_job)
            )
            p.on_start(ViewStub(5000.0, [], 10), long_job)  # 5000 s wait

        probe_short = p.predict_from_features(
            StateFeatures(qlen=0, qwork=0, free=3, nodes=1, rt=1, tod=0, dow=0)
        )
        probe_long = p.predict_from_features(
            StateFeatures(qlen=4, qwork=0, free=0, nodes=1, rt=1, tod=0, dow=0)
        )
        assert probe_short == pytest.approx(10.0)
        assert probe_long == pytest.approx(5000.0)

    def test_max_history_window(self):
        p = StateBasedWaitPredictor(
            estimator(), templates=(StateTemplate((), max_history=2),)
        )

        class ViewStub:
            now = 0.0
            queued = []
            free_nodes = 1
            total_nodes = 1

        from repro.scheduler.simulator import QueuedJob

        for i, wait in enumerate((1000.0, 10.0, 20.0)):
            job = make_job(job_id=i + 1)
            view = ViewStub()
            view.queued = [QueuedJob(job)]
            p.on_submit(view, QueuedJob(job))
            done = ViewStub()
            done.now = wait
            p.on_start(done, job)
        f = StateFeatures(0, 0, 3, 1, 1, 0, 0)
        # Only the last two observations (10, 20) remain.
        assert p.predict_from_features(f) == pytest.approx(15.0)

    def test_end_to_end_on_trace(self, anl_trace):
        """Full replay: produces a prediction for every job and a sane error."""
        from repro.workloads.transform import head

        trace = head(anl_trace, 300)
        policy = LWFPolicy()
        sched_est = estimator()
        sim = Simulator(policy, sched_est, trace.total_nodes)
        obs = StateBasedWaitPredictor(estimator())
        sim.add_observer(obs)
        result = sim.run(trace)
        report = evaluate_wait_predictions(result, obs.predicted_waits)
        assert report.n_jobs == len(trace)
        assert report.mean_abs_error >= 0.0
        assert obs.category_count > 0

    def test_unseen_job_start_ignored(self):
        p = StateBasedWaitPredictor(estimator())

        class ViewStub:
            now = 50.0

        p.on_start(ViewStub(), make_job(job_id=999))  # must not raise
        assert p.predicted_waits == {}


class TestEstimateMemoization:
    """The per-epoch estimate memo must change nothing but the call count."""

    def _replay(self, trace, *, volatile: bool):
        policy = LWFPolicy()
        sim = Simulator(policy, estimator(), trace.total_nodes)
        # volatile=True advertises history_epoch=None, which disables the
        # memo while leaving every individual prediction identical.
        obs_est = PointEstimator(ActualRuntimePredictor(), volatile=volatile)
        obs = StateBasedWaitPredictor(obs_est)
        sim.add_observer(obs)
        sim.run(trace)
        return obs.predicted_waits, obs_est.predict_calls

    def test_features_identical_with_and_without_memo(self, anl_trace):
        from repro.workloads.transform import head

        trace = head(anl_trace, 200)
        memo_waits, memo_calls = self._replay(trace, volatile=False)
        plain_waits, plain_calls = self._replay(trace, volatile=True)
        # Bit-identical predictions: the memo stores raw estimates and
        # reuses them through the exact same float operations.
        assert memo_waits == plain_waits
        # And it actually memoizes: far fewer estimator invocations.
        assert memo_calls < plain_calls

    def test_started_jobs_evicted_from_memo(self):
        p = StateBasedWaitPredictor(estimator())

        class ViewStub:
            def __init__(self, now, queued, free):
                self.now = now
                self.queued = queued
                self.free_nodes = free
                self.total_nodes = 10

        from repro.scheduler.simulator import QueuedJob

        first = make_job(job_id=1, run_time=60.0)
        p.on_submit(ViewStub(0.0, [QueuedJob(first)], 10), QueuedJob(first))
        assert 1 in p._estimate_cache
        p.on_start(ViewStub(5.0, [], 10), first)
        assert 1 not in p._estimate_cache
