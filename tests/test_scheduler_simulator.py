"""Tests for the event-driven simulator engine."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.simulator import Simulator
from repro.workloads.job import Trace
from tests.conftest import make_job


def actual_estimator() -> PointEstimator:
    return PointEstimator(ActualRuntimePredictor())


def run_fcfs(jobs, total_nodes=10):
    sim = Simulator(FCFSPolicy(), actual_estimator(), total_nodes)
    return sim.run(Trace(jobs, total_nodes=total_nodes))


class TestBasicRuns:
    def test_single_job_runs_immediately(self):
        res = run_fcfs([make_job(job_id=1, submit_time=5.0, run_time=100.0, nodes=4)])
        assert res[1].start_time == 5.0
        assert res[1].finish_time == 105.0
        assert res[1].wait_time == 0.0

    def test_all_jobs_complete(self, small_trace):
        sim = Simulator(FCFSPolicy(), actual_estimator(), 10)
        res = sim.run(small_trace)
        assert len(res) == len(small_trace)

    def test_queueing_when_machine_full(self):
        res = run_fcfs(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=10),
                make_job(job_id=2, submit_time=1.0, run_time=50.0, nodes=10),
            ]
        )
        assert res[2].start_time == 100.0
        assert res[2].wait_time == 99.0

    def test_fcfs_head_of_line_blocking(self):
        res = run_fcfs(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=6),
                make_job(job_id=2, submit_time=1.0, run_time=100.0, nodes=6),
                make_job(job_id=3, submit_time=2.0, run_time=10.0, nodes=1),
            ]
        )
        # Job 3 fits at t=2 but FCFS blocks it behind job 2.
        assert res[2].start_time == 100.0
        assert res[3].start_time == 100.0

    def test_backfill_fills_the_hole(self):
        sim = Simulator(BackfillPolicy(), actual_estimator(), 10)
        res = sim.run(
            Trace(
                [
                    make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=6),
                    make_job(job_id=2, submit_time=1.0, run_time=100.0, nodes=6),
                    make_job(job_id=3, submit_time=2.0, run_time=10.0, nodes=1),
                ],
                total_nodes=10,
            )
        )
        assert res[3].start_time == 2.0  # backfilled immediately
        assert res[2].start_time == 100.0  # not delayed by the backfill

    def test_lwf_runs_small_work_first(self):
        sim = Simulator(LWFPolicy(), actual_estimator(), 10)
        res = sim.run(
            Trace(
                [
                    make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=10),
                    make_job(job_id=2, submit_time=1.0, run_time=1000.0, nodes=5),
                    make_job(job_id=3, submit_time=2.0, run_time=10.0, nodes=5),
                ],
                total_nodes=10,
            )
        )
        # At t=100 both 2 and 3 wait; LWF starts the lesser work (job 3) first
        # and both fit side by side anyway; job 3 must not wait for job 2.
        assert res[3].start_time == 100.0
        assert res[2].start_time == 100.0

    def test_finish_frees_nodes_for_same_time_submit(self):
        # Finish at t=100 processed before submit at t=100.
        res = run_fcfs(
            [
                make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=10),
                make_job(job_id=2, submit_time=100.0, run_time=10.0, nodes=10),
            ]
        )
        assert res[2].start_time == 100.0


class TestInvariants:
    def test_capacity_never_exceeded(self, anl_trace):
        sim = Simulator(BackfillPolicy(), actual_estimator(), anl_trace.total_nodes)
        res = sim.run(anl_trace)
        assert res.max_concurrent_nodes() <= anl_trace.total_nodes

    def test_every_job_starts_after_submit(self, anl_trace):
        sim = Simulator(LWFPolicy(), actual_estimator(), anl_trace.total_nodes)
        res = sim.run(anl_trace)
        for rec in res.records:
            assert rec.start_time >= rec.submit_time

    def test_run_time_preserved(self, small_trace):
        sim = Simulator(FCFSPolicy(), actual_estimator(), 10)
        res = sim.run(small_trace)
        for job in small_trace:
            assert res[job.job_id].run_time == pytest.approx(job.run_time)

    def test_fcfs_starts_in_arrival_order(self, anl_trace):
        sim = Simulator(FCFSPolicy(), actual_estimator(), anl_trace.total_nodes)
        res = sim.run(anl_trace)
        by_submit = sorted(res.records, key=lambda r: (r.submit_time, r.job_id))
        starts = [r.start_time for r in by_submit]
        assert starts == sorted(starts)

    def test_trace_node_mismatch_raises(self, small_trace):
        sim = Simulator(FCFSPolicy(), actual_estimator(), 99)
        with pytest.raises(ValueError, match="declares"):
            sim.run(small_trace)

    def test_deterministic_replay(self, anl_trace):
        r1 = Simulator(BackfillPolicy(), actual_estimator(), anl_trace.total_nodes).run(
            anl_trace
        )
        r2 = Simulator(BackfillPolicy(), actual_estimator(), anl_trace.total_nodes).run(
            anl_trace
        )
        assert [(r.job_id, r.start_time) for r in r1.records] == [
            (r.job_id, r.start_time) for r in r2.records
        ]


class TestEstimatorEffects:
    def test_max_estimates_change_backfill_schedule(self):
        """Loose maxima block a backfill that exact knowledge allows."""
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=4,
                     max_run_time=100.0),
            make_job(job_id=2, submit_time=1.0, run_time=100.0, nodes=8,
                     max_run_time=100.0),
            # Fits in the 6-node hole for 90 s with exact knowledge, but its
            # declared max (500 s) would overlap job 2's 8-node reservation
            # at t=100 (only 10-5=5 nodes would be free).
            make_job(job_id=3, submit_time=2.0, run_time=90.0, nodes=5,
                     max_run_time=500.0),
        ]
        trace = Trace(jobs, total_nodes=10)
        res_actual = Simulator(BackfillPolicy(), actual_estimator(), 10).run(trace)
        res_max = Simulator(
            BackfillPolicy(), PointEstimator(MaxRuntimePredictor()), 10
        ).run(trace)
        assert res_actual[3].start_time == 2.0
        assert res_max[3].start_time > 2.0

    def test_estimator_on_finish_called(self, small_trace):
        calls: list[int] = []

        class Spy:
            def predict(self, job, elapsed, now):
                return job.run_time

            def on_finish(self, job, now):
                calls.append(job.job_id)

        sim = Simulator(FCFSPolicy(), Spy(), 10)
        sim.run(small_trace)
        assert sorted(calls) == [1, 2, 3, 4, 5]


class TestObservers:
    def test_observer_hooks_fire(self, small_trace):
        events: list[tuple[str, int]] = []

        class Obs:
            def on_submit(self, view, qj):
                events.append(("submit", qj.job_id))

            def on_start(self, view, job):
                events.append(("start", job.job_id))

            def on_finish(self, view, job):
                events.append(("finish", job.job_id))

        sim = Simulator(FCFSPolicy(), actual_estimator(), 10)
        sim.add_observer(Obs())
        sim.run(small_trace)
        kinds = [k for k, _ in events]
        assert kinds.count("submit") == 5
        assert kinds.count("start") == 5
        assert kinds.count("finish") == 5
        # A job's submit precedes its start precedes its finish.
        for jid in range(1, 6):
            assert events.index(("submit", jid)) < events.index(("start", jid))
            assert events.index(("start", jid)) < events.index(("finish", jid))

    def test_observer_sees_new_job_in_queue(self, small_trace):
        seen: dict[int, bool] = {}

        class Obs:
            def on_submit(self, view, qj):
                seen[qj.job_id] = any(q.job_id == qj.job_id for q in view.queued)

        sim = Simulator(FCFSPolicy(), actual_estimator(), 10)
        sim.add_observer(Obs())
        sim.run(small_trace)
        assert all(seen.values())
