"""Integration tests asserting the paper's qualitative findings.

These run reduced-size versions of the actual experiments and check the
*shapes* the paper reports — who beats whom, what is invariant — rather
than absolute minutes, which depend on the (synthetic) trace.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import (
    run_runtime_prediction_experiment,
    run_scheduling_experiment,
    run_wait_time_experiment,
)
from repro.workloads.archive import load_paper_workload
from repro.workloads.transform import compress_interarrival

N_JOBS = 500


@pytest.fixture(scope="module")
def anl():
    return load_paper_workload("ANL", n_jobs=N_JOBS)


@pytest.fixture(scope="module")
def sdsc():
    return load_paper_workload("SDSC95", n_jobs=N_JOBS)


class TestTable4Shapes:
    """Wait-time prediction with actual run times."""

    def test_fcfs_has_no_builtin_error(self, anl):
        cell, _, _ = run_wait_time_experiment(anl, "fcfs", "actual")
        assert cell.mean_error_minutes == pytest.approx(0.0, abs=1e-6)

    def test_lwf_builtin_error_exceeds_backfill(self, anl):
        lwf, _, _ = run_wait_time_experiment(anl, "lwf", "actual")
        bf, _, _ = run_wait_time_experiment(anl, "backfill", "actual")
        assert lwf.percent_of_mean_wait > bf.percent_of_mean_wait

    def test_backfill_builtin_error_small(self, anl):
        bf, _, _ = run_wait_time_experiment(anl, "backfill", "actual")
        # Paper: 3-10% across workloads; allow slack for the synthetic trace.
        assert bf.percent_of_mean_wait < 30.0


class TestTable5And6Shapes:
    """Max run times are a much worse wait-time predictor than Smith."""

    @pytest.mark.parametrize("algo", ["fcfs", "lwf", "backfill"])
    def test_smith_beats_max(self, anl, algo):
        max_cell, _, _ = run_wait_time_experiment(anl, algo, "max")
        smith_cell, _, _ = run_wait_time_experiment(anl, algo, "smith")
        assert smith_cell.mean_error_minutes < max_cell.mean_error_minutes

    def test_max_error_exceeds_mean_wait(self, anl):
        """Paper Table 5: max-run-time errors are 94-350% of mean wait."""
        cell, _, _ = run_wait_time_experiment(anl, "backfill", "max")
        assert cell.percent_of_mean_wait > 100.0


class TestRuntimePredictionShapes:
    """§3: Smith's run-time predictions beat max/Gibbons/Downey."""

    def test_predictor_ordering_on_anl(self, anl):
        errors = {
            name: run_runtime_prediction_experiment(anl, name).mean_error_minutes
            for name in ("actual", "max", "smith", "gibbons",
                         "downey-average", "downey-median")
        }
        assert errors["actual"] == pytest.approx(0.0)
        assert errors["smith"] < errors["max"]
        assert errors["smith"] < errors["downey-average"]
        assert errors["smith"] < errors["downey-median"]
        # Gibbons is the strongest competitor; require Smith within 20%.
        assert errors["smith"] < 1.2 * errors["gibbons"]

    def test_smith_beats_max_on_sdsc(self, sdsc):
        smith = run_runtime_prediction_experiment(sdsc, "smith")
        mx = run_runtime_prediction_experiment(sdsc, "max")
        assert smith.mean_error_minutes < mx.mean_error_minutes


class TestTables10To12Shapes:
    """Scheduling performance."""

    def test_utilization_invariant_across_predictors(self, anl):
        utils = []
        for pred in ("actual", "max", "smith", "gibbons"):
            cell, _ = run_scheduling_experiment(anl, "backfill", pred)
            utils.append(cell.utilization_percent)
        assert max(utils) - min(utils) < 6.0

    def test_lwf_mean_wait_below_backfill(self, anl):
        """Paper Table 10: LWF posts lower mean waits than backfill."""
        lwf, _ = run_scheduling_experiment(anl, "lwf", "actual")
        bf, _ = run_scheduling_experiment(anl, "backfill", "actual")
        assert lwf.mean_wait_minutes < bf.mean_wait_minutes

    def test_smith_beats_max_for_backfill(self, anl):
        """§4: better run-time predictions help backfill's mean wait."""
        smith, _ = run_scheduling_experiment(anl, "backfill", "smith")
        mx, _ = run_scheduling_experiment(anl, "backfill", "max")
        assert smith.mean_wait_minutes < mx.mean_wait_minutes

    def test_smith_close_to_oracle_for_lwf(self, anl):
        """Paper: LWF tolerates estimate error (big-vs-small suffices)."""
        smith, _ = run_scheduling_experiment(anl, "lwf", "smith")
        oracle, _ = run_scheduling_experiment(anl, "lwf", "actual")
        assert smith.mean_wait_minutes <= 1.6 * oracle.mean_wait_minutes + 2.0


class TestCompressionExperiment:
    """§4: doubling the SDSC offered load ('hard' scheduling)."""

    def test_compression_raises_waits(self, sdsc):
        compressed = compress_interarrival(sdsc, 2.0)
        base, _ = run_scheduling_experiment(sdsc, "backfill", "actual")
        hard, _ = run_scheduling_experiment(compressed, "backfill", "actual")
        assert hard.mean_wait_minutes > base.mean_wait_minutes

    def test_compressed_utilization_rises(self, sdsc):
        compressed = compress_interarrival(sdsc, 2.0)
        base, _ = run_scheduling_experiment(sdsc, "lwf", "actual")
        hard, _ = run_scheduling_experiment(compressed, "lwf", "actual")
        assert hard.utilization_percent > base.utilization_percent
