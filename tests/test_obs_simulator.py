"""Instrumentation wired through the replay engine.

The contract under test: tracing and metrics never change the schedule,
every scheduler decision shows up as an event, and the registry counters
agree with the result records.
"""

import pytest

from repro.core.registry import make_predictor
from repro.obs import Instrumentation, ListSink, Tracer, validate_events
from repro.predictors.base import PointEstimator
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.simulator import Simulator
from repro.waitpred.statebased import StateBasedWaitPredictor
from repro.workloads.archive import load_paper_workload

JOBS = 150


@pytest.fixture(scope="module")
def trace():
    return load_paper_workload("ANL", n_jobs=JOBS)


def _replay(trace, policy_cls, predictor="max", instrumentation=None):
    sim = Simulator(
        policy_cls(),
        PointEstimator(make_predictor(predictor, trace)),
        trace.total_nodes,
        instrumentation=instrumentation,
    )
    return sim.run(trace), sim


@pytest.mark.parametrize("policy_cls", [FCFSPolicy, LWFPolicy, BackfillPolicy])
def test_tracing_preserves_schedule_and_counts_decisions(trace, policy_cls):
    res_plain, _ = _replay(trace, policy_cls)
    sink = ListSink()
    res_traced, sim = _replay(
        trace, policy_cls, instrumentation=Instrumentation(tracer=Tracer(sink))
    )
    assert res_traced.records == res_plain.records

    validate_events(sink.events)
    by_type = {}
    for e in sink.events:
        by_type[e["type"]] = by_type.get(e["type"], 0) + 1
    assert by_type["job_submitted"] == JOBS
    assert by_type["job_started"] == JOBS
    assert by_type["job_finished"] == JOBS
    # every pass was timed into a span (time_passes defaults on while tracing)
    assert by_type["span"] == sim.schedule_passes
    snap = sim.metrics_snapshot()
    assert snap["histograms"]["sim.pass_duration_seconds"]["count"] == (
        sim.schedule_passes
    )


def test_registry_counters_match_records(trace):
    res, sim = _replay(trace, BackfillPolicy)
    counters = sim.metrics_snapshot()["counters"]
    assert counters["sim.jobs_submitted"] == JOBS
    assert counters["sim.jobs_started"] == JOBS
    assert counters["sim.jobs_finished"] == len(res.records) == JOBS
    hists = sim.metrics_snapshot()["histograms"]
    # the wait histogram saw every start; depth tracking (a queue walk
    # per selecting pass) is a detail/tracing feature and stays off here
    assert hists["sim.wait_time_seconds"]["count"] == JOBS
    assert hists["sim.backfill_depth"]["count"] == 0
    assert counters["sim.jobs_backfilled"] == 0


def test_detail_mode_tracks_backfill_depth(trace):
    _, sim = _replay(
        trace, BackfillPolicy, instrumentation=Instrumentation(detail=True)
    )
    snap = sim.metrics_snapshot()
    hists = snap["histograms"]
    assert hists["sim.backfill_depth"]["count"] == JOBS
    # jobs_backfilled counts exactly the starts with depth > 0
    depth_counts = hists["sim.backfill_depth"]["counts"]
    assert snap["counters"]["sim.jobs_backfilled"] == JOBS - depth_counts[0]


def test_backfill_emits_reservation_events(trace):
    sink = ListSink()
    _replay(
        trace, BackfillPolicy, instrumentation=Instrumentation(tracer=Tracer(sink))
    )
    placed = [e for e in sink.events if e["type"] == "reservation_placed"]
    shifted = [e for e in sink.events if e["type"] == "reservation_shifted"]
    assert placed, "backfill under load must place reservations"
    assert all(e["start_s"] > e["sim_time"] for e in placed)
    assert all(e["cause"] == "backfill_replan" for e in placed)
    # replans move reservations on this workload
    assert shifted
    assert all(e["start_s"] != e["previous_start_s"] for e in shifted)
    # backfilled jobs carry their queue depth
    backfilled = [e for e in sink.events if e["type"] == "job_backfilled"]
    assert backfilled
    assert all(e["depth"] > 0 for e in backfilled)


def test_epoch_flush_emits_replan_triggered(trace):
    """A history-growing estimator flushes the cache; detail+trace records it."""
    sink = ListSink()
    _, sim = _replay(
        trace,
        BackfillPolicy,
        predictor="smith",
        instrumentation=Instrumentation(tracer=Tracer(sink), detail=True),
    )
    counters = sim.metrics_snapshot()["counters"]
    assert counters["sim.estimate_cache_flushes"] > 0
    replans = [e for e in sink.events if e["type"] == "replan_triggered"]
    assert len(replans) == counters["sim.estimate_cache_flushes"]
    assert all(e["cause"] == "history_epoch_advanced" for e in replans)


def test_detail_mode_counts_cache_hits(trace):
    _, sim = _replay(
        trace, BackfillPolicy, instrumentation=Instrumentation(detail=True)
    )
    counters = sim.metrics_snapshot()["counters"]
    assert counters["sim.estimate_cache_hits"] > 0
    assert counters["sim.estimate_cache_misses"] > 0
    # every estimate the policy consumed was either a hit or a miss, and
    # every miss called through to the estimator adapter
    assert counters["estimator.predict_calls"] >= counters[
        "sim.estimate_cache_misses"
    ]


def test_default_mode_counts_misses_only(trace):
    _, sim = _replay(trace, BackfillPolicy)
    counters = sim.metrics_snapshot()["counters"]
    # misses coincide with predictor calls (already expensive); hits are
    # only counted in detail mode to keep the hot path clean
    assert counters["sim.estimate_cache_misses"] > 0
    assert counters["sim.estimate_cache_hits"] == 0


def test_statebased_observer_metrics_and_events(trace):
    sink = ListSink()
    obs = Instrumentation(tracer=Tracer(sink))
    estimator = PointEstimator(make_predictor("max", trace))
    sim = Simulator(
        BackfillPolicy(), estimator, trace.total_nodes, instrumentation=obs
    )
    predictor = StateBasedWaitPredictor(
        PointEstimator(make_predictor("max", trace)), instrumentation=obs
    )
    sim.add_observer(predictor)
    sim.run(trace)

    counters = sim.metrics_snapshot()["counters"]
    assert counters["statebased.predictions"] == JOBS
    assert counters["statebased.observations"] == JOBS
    assert counters["statebased.rampup_fallbacks"] >= 1
    assert sim.metrics_snapshot()["gauges"]["statebased.categories"] >= 1
    predicted = [e for e in sink.events if e["type"] == "wait_predicted"]
    assert len(predicted) == JOBS
    validate_events(predicted)
