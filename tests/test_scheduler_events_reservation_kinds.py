"""Event-kind ordering tests including the reservation kinds."""

from __future__ import annotations

from repro.scheduler.events import FINISH, RES_END, RES_START, SUBMIT, EventQueue


class TestReservationEventOrdering:
    def test_same_instant_full_ordering(self):
        q = EventQueue()
        q.push(10.0, SUBMIT, "submit")
        q.push(10.0, RES_START, "res-start")
        q.push(10.0, FINISH, "finish")
        q.push(10.0, RES_END, "res-end")
        order = [q.pop()[2] for _ in range(4)]
        assert order == ["finish", "res-end", "res-start", "submit"]

    def test_releases_precede_claims(self):
        # The semantic requirement: at one instant, freed capacity
        # (FINISH, RES_END) is visible before new claims (RES_START).
        q = EventQueue()
        q.push(5.0, RES_START, "claim")
        q.push(5.0, RES_END, "release")
        assert q.pop()[2] == "release"

    def test_time_dominates_kind(self):
        q = EventQueue()
        q.push(1.0, SUBMIT, "early-submit")
        q.push(2.0, FINISH, "late-finish")
        assert q.pop()[2] == "early-submit"

    def test_kind_constants_are_distinct_and_ordered(self):
        kinds = [FINISH, RES_END, RES_START, SUBMIT]
        assert kinds == sorted(kinds)
        assert len(set(kinds)) == 4
