"""Online prediction-accuracy monitoring (repro.obs.accuracy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import DEFAULT_DRIFT_WINDOW, AccuracyMonitor, GroupStats


def make_group(**kwargs) -> GroupStats:
    kwargs.setdefault("window", DEFAULT_DRIFT_WINDOW)
    return GroupStats("run_time", "smith", **kwargs)


class TestGroupStats:
    def test_mae_bias_and_split(self):
        g = make_group()
        g.observe(10.0, 20.0)  # under by 10
        g.observe(30.0, 20.0)  # over by 10
        g.observe(20.0, 20.0)  # exact
        assert g.n == 3
        assert g.mae == pytest.approx(20.0 / 3.0)
        assert g.bias == pytest.approx(0.0)
        assert g.under == 1 and g.over == 1 and g.exact == 1
        assert g.under_fraction == pytest.approx(1.0 / 3.0)
        assert g.over_fraction == pytest.approx(1.0 / 3.0)

    def test_quantiles_match_numpy(self):
        g = make_group()
        errors = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for e in errors:
            g.observe(e, 0.0)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert g.quantile(q) == pytest.approx(
                float(np.percentile(errors, 100.0 * q))
            )

    def test_quantile_edge_cases(self):
        g = make_group()
        assert g.quantile(0.5) is None  # no observations yet
        g.observe(7.0, 0.0)
        assert g.quantile(0.0) == g.quantile(1.0) == 7.0
        with pytest.raises(ValueError, match="quantile"):
            g.quantile(1.5)

    def test_tail_ratio(self):
        g = make_group()
        for _ in range(99):
            g.observe(10.0, 0.0)
        g.observe(1000.0, 0.0)  # one heavy-tail misprediction
        assert g.tail_ratio == pytest.approx(
            float(np.percentile([10.0] * 99 + [1000.0], 99)) / 10.0
        )
        assert g.tail_ratio > 1.0

    def test_tail_ratio_none_when_p50_zero(self):
        g = make_group()
        assert g.tail_ratio is None
        g.observe(5.0, 5.0)
        g.observe(5.0, 5.0)
        g.observe(5.0, 5.0)  # all exact: p50 == 0
        assert g.tail_ratio is None

    def test_rolling_mae_and_drift(self):
        g = make_group(window=2)
        g.observe(1.0, 0.0)
        g.observe(1.0, 0.0)
        assert g.drift_ratio == pytest.approx(1.0)  # recent == history
        g.observe(10.0, 0.0)
        g.observe(10.0, 0.0)
        # window holds [10, 10]; run-to-date MAE is 5.5.
        assert g.rolling_mae == pytest.approx(10.0)
        assert g.drift_ratio == pytest.approx(10.0 / 5.5)
        assert g.drift_ratio > 1.0  # predictor currently worse than history

    def test_drift_none_without_signal(self):
        g = make_group()
        assert g.drift_ratio is None  # no observations
        g.observe(3.0, 3.0)
        assert g.drift_ratio is None  # zero MAE: ratio undefined

    def test_window_below_one_rejected(self):
        with pytest.raises(ValueError, match="window"):
            make_group(window=0)

    def test_per_key_drilldown(self):
        g = make_group()
        g.observe(10.0, 20.0, key="u/e")
        g.observe(40.0, 20.0, key="u/e")
        g.observe(25.0, 20.0, key="fallback_max")
        g.observe(0.0, 1.0)  # keyless: counted in totals only
        snap = g.snapshot()
        assert snap["keys"]["u/e"] == {"n": 2, "mae": 15.0, "under": 1, "over": 1}
        assert snap["keys"]["fallback_max"]["n"] == 1
        assert snap["n"] == 4

    def test_snapshot_is_json_ready(self):
        import json

        g = make_group()
        g.observe(10.0, 12.0, key="u")
        snap = g.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["kind"] == "run_time"
        assert snap["predictor"] == "smith"
        assert snap["p50"] == snap["p90"] == snap["p99"] == snap["max"] == 2.0


class TestAccuracyMonitor:
    def test_groups_keyed_by_kind_and_predictor(self):
        mon = AccuracyMonitor()
        mon.observe("run_time", "smith", 10.0, 20.0)
        mon.observe("run_time", "max", 100.0, 20.0)
        mon.observe("wait_time", "smith", 5.0, 2.0)
        assert len(mon) == 3
        assert mon.total_observations == 3
        assert [(g.kind, g.predictor) for g in mon.groups()] == [
            ("run_time", "max"),
            ("run_time", "smith"),
            ("wait_time", "smith"),
        ]
        assert mon.group("run_time", "smith").mae == pytest.approx(10.0)
        assert mon.group("wait_time", "max") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown prediction kind"):
            AccuracyMonitor().observe("walk_time", "smith", 1.0, 2.0)

    def test_window_below_one_rejected(self):
        with pytest.raises(ValueError, match="window"):
            AccuracyMonitor(window=0)

    def test_from_events_matches_streaming(self):
        mon = AccuracyMonitor()
        events = []
        for i, (pred, actual) in enumerate([(10.0, 12.0), (30.0, 25.0), (8.0, 8.0)]):
            mon.observe("run_time", "smith", pred, actual, key="u/e")
            events.append(
                {
                    "type": "prediction_resolved",
                    "wall_time": 0.0,
                    "sim_time": float(i),
                    "job_id": i,
                    "kind": "run_time",
                    "predictor": "smith",
                    "predicted_s": pred,
                    "actual_s": actual,
                    "source": "u/e",
                }
            )
        events.append({"type": "job_submitted", "job_id": 9, "sim_time": 0.0})
        rebuilt = AccuracyMonitor.from_events(events)
        assert rebuilt.snapshot() == mon.snapshot()

    def test_summary_rows_most_observed_first(self):
        mon = AccuracyMonitor()
        mon.observe("wait_time", "state-based", 60.0, 0.0)
        for _ in range(3):
            mon.observe("run_time", "smith", 120.0, 60.0)
        rows = mon.summary_rows()
        assert [r["Predictor"] for r in rows] == ["smith", "state-based"]
        assert rows[0]["N"] == 3
        assert rows[0]["MAE (min)"] == pytest.approx(1.0)
        assert rows[0]["Over %"] == 100
        assert rows[1]["Tail"] == 1.0  # single sample: p99 == p50
