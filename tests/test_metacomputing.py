"""Tests for the metacomputing broker and routing strategies."""

from __future__ import annotations

import pytest

from repro.metacomputing import (
    LeastQueuedWorkRouting,
    Machine,
    MetaSimulator,
    PredictedWaitRouting,
    RandomRouting,
    RoundRobinRouting,
)
from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy
from repro.workloads.job import Trace
from tests.conftest import make_job


def machine(name, nodes=16, policy=None):
    return Machine(
        name,
        policy or FCFSPolicy(),
        PointEstimator(ActualRuntimePredictor()),
        nodes,
    )


def arrivals(jobs):
    return Trace(jobs, total_nodes=512, name="arrivals")


class TestMachine:
    def test_fits(self):
        m = machine("a", nodes=8)
        assert m.fits(make_job(nodes=8))
        assert not m.fits(make_job(nodes=9))

    def test_submit_oversized_raises(self):
        m = machine("a", nodes=4)
        with pytest.raises(ValueError, match="needs"):
            m.submit(make_job(nodes=8), 0.0)

    def test_advance_and_queued_work(self):
        m = machine("a", nodes=4)
        m.submit(make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=4), 0.0)
        m.submit(make_job(job_id=2, submit_time=1.0, run_time=200.0, nodes=2), 1.0)
        m.advance_to(5.0)
        # Job 1 running, job 2 queued: queued work = 2 * 200.
        assert m.queued_work(5.0) == pytest.approx(400.0)

    def test_drain_completes(self):
        m = machine("a")
        m.submit(make_job(job_id=1, submit_time=0.0, run_time=50.0), 0.0)
        m.drain()
        assert len(m.sim.result()) == 1


class TestMetaSimulator:
    def test_requires_machines(self):
        with pytest.raises(ValueError):
            MetaSimulator([], RoundRobinRouting())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MetaSimulator([machine("a"), machine("a")], RoundRobinRouting())

    def test_every_job_placed_once(self):
        jobs = [make_job(job_id=i, submit_time=float(i), nodes=2) for i in range(1, 9)]
        meta = MetaSimulator([machine("a"), machine("b")], RoundRobinRouting())
        result = meta.run(arrivals(jobs))
        assert result.n_jobs == 8
        assert set(result.placements) == {j.job_id for j in jobs}

    def test_round_robin_alternates(self):
        jobs = [make_job(job_id=i, submit_time=float(i), nodes=1) for i in range(1, 5)]
        meta = MetaSimulator([machine("a"), machine("b")], RoundRobinRouting())
        result = meta.run(arrivals(jobs))
        assert [result.placements[i] for i in range(1, 5)] == ["a", "b", "a", "b"]

    def test_wide_job_only_on_big_machine(self):
        jobs = [make_job(job_id=1, submit_time=0.0, nodes=32)]
        meta = MetaSimulator(
            [machine("small", nodes=8), machine("big", nodes=64)],
            RandomRouting(seed=0),
        )
        result = meta.run(arrivals(jobs))
        assert result.placements[1] == "big"

    def test_job_fitting_nowhere_raises(self):
        jobs = [make_job(job_id=1, submit_time=0.0, nodes=500)]
        meta = MetaSimulator([machine("a", nodes=8)], RoundRobinRouting())
        with pytest.raises(ValueError, match="fits no machine"):
            meta.run(arrivals(jobs))

    def test_random_routing_deterministic_by_seed(self):
        jobs = [make_job(job_id=i, submit_time=float(i), nodes=1) for i in range(1, 20)]
        r1 = MetaSimulator(
            [machine("a"), machine("b")], RandomRouting(seed=5)
        ).run(arrivals(jobs))
        r2 = MetaSimulator(
            [machine("a"), machine("b")], RandomRouting(seed=5)
        ).run(arrivals(jobs))
        assert r1.placements == r2.placements

    def test_machine_share(self):
        jobs = [make_job(job_id=i, submit_time=float(i), nodes=1) for i in range(1, 5)]
        result = MetaSimulator(
            [machine("a"), machine("b")], RoundRobinRouting()
        ).run(arrivals(jobs))
        assert result.machine_share("a") == pytest.approx(0.5)


class TestLoadSensitiveRouting:
    def _machines(self):
        return [machine("a", nodes=16), machine("b", nodes=16)]

    def test_least_work_avoids_busy_machine(self):
        ms = self._machines()
        # Pre-load machine a with a long queue.
        ms[0].submit(make_job(job_id=900, submit_time=0.0, run_time=5000.0,
                              nodes=16), 0.0)
        ms[0].submit(make_job(job_id=901, submit_time=0.0, run_time=5000.0,
                              nodes=16), 0.0)
        ms[0].advance_to(1.0)
        ms[1].advance_to(1.0)
        strategy = LeastQueuedWorkRouting()
        chosen = strategy.choose(ms, make_job(job_id=1, nodes=4), 1.0)
        assert chosen.name == "b"

    def test_predicted_wait_avoids_busy_machine(self):
        ms = self._machines()
        ms[0].submit(make_job(job_id=900, submit_time=0.0, run_time=5000.0,
                              nodes=16), 0.0)
        ms[0].submit(make_job(job_id=901, submit_time=0.0, run_time=5000.0,
                              nodes=16), 0.0)
        ms[0].advance_to(1.0)
        ms[1].advance_to(1.0)
        strategy = PredictedWaitRouting()
        chosen = strategy.choose(ms, make_job(job_id=1, nodes=4), 1.0)
        assert chosen.name == "b"

    def test_predicted_wait_sees_through_queue_length(self):
        """A machine with many *tiny* queued jobs can still be the faster
        choice — predicted wait sees it, queue length does not."""
        ms = [machine("many-small", nodes=16), machine("one-huge", nodes=16)]
        for i in range(4):
            ms[0].submit(
                make_job(job_id=900 + i, submit_time=0.0, run_time=10.0, nodes=16),
                0.0,
            )
        ms[1].submit(
            make_job(job_id=950, submit_time=0.0, run_time=50_000.0, nodes=16), 0.0
        )
        for m in ms:
            m.advance_to(1.0)
        probe = make_job(job_id=1, nodes=16)
        fast = PredictedWaitRouting().choose(ms, probe, 1.0)
        assert fast.name == "many-small"

    def test_end_to_end_predicted_beats_round_robin(self):
        """On an asymmetric federation, informed routing lowers waits."""

        def build(strategy):
            ms = [
                Machine("big", BackfillPolicy(),
                        PointEstimator(ActualRuntimePredictor()), 32),
                Machine("small", BackfillPolicy(),
                        PointEstimator(ActualRuntimePredictor()), 8),
            ]
            return MetaSimulator(ms, strategy)

        jobs = [
            make_job(job_id=i, submit_time=float(i * 50), run_time=2000.0,
                     nodes=8)
            for i in range(1, 25)
        ]
        rr = build(RoundRobinRouting()).run(arrivals(jobs))
        pw = build(PredictedWaitRouting()).run(arrivals(jobs))
        assert pw.mean_wait_minutes <= rr.mean_wait_minutes
