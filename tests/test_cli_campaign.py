"""CLI smoke tests for ``--progress``/``--journal`` and ``repro-sched campaign``."""

import json

from repro.cli import main
from repro.obs.campaign import check_campaign_journal, read_campaign_journal


def _grid_args(journal, *extra):
    return [
        "scheduling",
        "--workloads", "ANL",
        "--algorithms", "fcfs",
        "--predictors", "actual", "max",
        "--n-jobs", "50",
        "--parallel", "2",
        "--journal", str(journal),
        *extra,
    ]


def test_parallel_run_writes_checkable_journal(tmp_path, capsys):
    journal = tmp_path / "campaign.jsonl"
    assert main(_grid_args(journal)) == 0
    out = capsys.readouterr().out
    assert "scheduling experiment" in out
    stats = check_campaign_journal(read_campaign_journal(str(journal)))
    assert stats["cells_total"] == 2
    assert stats["cells_done"] == 2


def test_progress_renders_status_line(tmp_path, capsys):
    journal = tmp_path / "campaign.jsonl"
    assert main(_grid_args(journal, "--progress")) == 0
    err = capsys.readouterr().err
    assert "cells" in err  # the live status line landed on stderr


def test_serial_run_ignores_flags_and_writes_no_journal(tmp_path, capsys):
    journal = tmp_path / "never.jsonl"
    code = main(
        [
            "scheduling",
            "--workloads", "ANL",
            "--algorithms", "fcfs",
            "--predictors", "actual",
            "--n-jobs", "50",
            "--journal", str(journal),
            "--progress",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "parallel runs only" in captured.err
    assert not journal.exists()


def test_campaign_check_and_summary(tmp_path, capsys):
    journal = tmp_path / "campaign.jsonl"
    main(_grid_args(journal))
    capsys.readouterr()

    assert main(["campaign", str(journal), "--check"]) == 0
    assert "campaign check OK" in capsys.readouterr().err

    assert main(["campaign", str(journal), "--summary"]) == 0
    out = capsys.readouterr().out
    assert "2/2 cells done" in out
    assert "INCOMPLETE" not in out

    assert main(["campaign", str(journal), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["complete"] is True
    assert [c["cell_index"] for c in summary["cells"]["completed"]] == [0, 1]


def test_campaign_check_fails_cleanly_on_truncated_journal(tmp_path, capsys):
    journal = tmp_path / "campaign.jsonl"
    main(_grid_args(journal))
    capsys.readouterr()
    # Tear the final line mid-record, as a SIGKILL mid-write would.
    text = journal.read_text()
    journal.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])

    assert main(["campaign", str(journal), "--check"]) == 1
    assert "campaign check FAILED" in capsys.readouterr().err

    # The lenient summary still replays the whole-line records...
    assert main(["campaign", str(journal), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["cells_done"] == 2
    # ...but the torn campaign_finished line is gone, so it reads as live.
    assert summary["complete"] is False


def test_campaign_check_fails_cleanly_on_incomplete_journal(tmp_path, capsys):
    journal = tmp_path / "campaign.jsonl"
    main(_grid_args(journal))
    capsys.readouterr()
    lines = journal.read_text().splitlines()
    assert json.loads(lines[-1])["type"] == "campaign_finished"
    journal.write_text("\n".join(lines[:-1]) + "\n")

    assert main(["campaign", str(journal), "--check"]) == 1
    assert "incomplete" in capsys.readouterr().err


def test_campaign_on_missing_file_fails_cleanly(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    assert main(["campaign", str(missing), "--check"]) == 1
    assert "FAILED" in capsys.readouterr().err
    assert main(["campaign", str(missing)]) == 1
    assert "FAILED" in capsys.readouterr().err


def test_misprediction_journal(tmp_path, capsys):
    journal = tmp_path / "mis.jsonl"
    code = main(
        [
            "misprediction",
            "--workloads", "ANL",
            "--algorithms", "backfill",
            "--levels", "0", "1",
            "--n-jobs", "40",
            "--parallel", "2",
            "--journal", str(journal),
        ]
    )
    assert code == 0
    assert "misprediction degradation" in capsys.readouterr().out
    events = read_campaign_journal(str(journal))
    stats = check_campaign_journal(events)
    assert stats["cells_total"] == 2
    assert stats["cells_done"] == 2


def test_campaign_summary_of_empty_journal_says_so(tmp_path, capsys):
    """An empty journal must not render as an all-zero 'finished'
    campaign summary — it gets an explicit message instead."""
    journal = tmp_path / "empty.jsonl"
    journal.write_text("")
    assert main(["campaign", str(journal), "--summary"]) == 0
    out = capsys.readouterr().out
    assert f"empty campaign journal (0 events): {journal}" in out
    assert "cells done" not in out
