"""Tests for the misprediction-cost harness (experiments.misprediction)."""

from __future__ import annotations

import pytest

from repro.core.experiment import run_scheduling_experiment
from repro.core.parallel import CellSpec, ExperimentPlan
from repro.experiments.misprediction import (
    DegradationCurve,
    ErrorModel,
    NoisyPredictor,
    run_misprediction_campaign,
    run_misprediction_experiment,
)
from repro.predictors.simple import ActualRuntimePredictor
from repro.workloads.archive import load_paper_workload
from tests.conftest import make_job


@pytest.fixture(scope="module")
def tiny_anl():
    return load_paper_workload("ANL", n_jobs=120)


class TestErrorModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorModel(kind="bogus")
        with pytest.raises(ValueError):
            ErrorModel(level=-0.1)

    def test_zero_level_is_identity(self):
        m = ErrorModel(level=0.0)
        assert m.apply(123.4, job_id=7) == 123.4

    def test_draws_are_deterministic_per_job_and_seed(self):
        a = ErrorModel(level=0.5, seed=3)
        b = ErrorModel(level=0.5, seed=3)
        assert a.gauss(42) == b.gauss(42)
        assert a.gauss(42) != a.gauss(43)
        assert ErrorModel(level=0.5, seed=4).gauss(42) != a.gauss(42)

    def test_multiplicative_is_median_preserving_scale(self):
        m = ErrorModel(kind="multiplicative", level=0.5, seed=0)
        est = m.apply(100.0, job_id=1)
        assert est > 0.0
        assert est == pytest.approx(100.0 * (m.apply(1.0, job_id=1)))

    def test_additive_floors_at_zero(self):
        m = ErrorModel(kind="additive", level=1e9, seed=0)
        draws = [m.apply(1.0, job_id=i) for i in range(20)]
        assert all(d >= 0.0 for d in draws)

    def test_describe(self):
        assert ErrorModel(kind="additive", level=0.25).describe() == "additive@0.25"


class TestNoisyPredictor:
    def test_zero_level_returns_base_prediction_object(self):
        """No float round trip at level 0: the base's Prediction object
        itself passes through."""
        from repro.predictors.base import Prediction, RuntimePredictor

        singleton = Prediction(estimate=500.0, interval=3.0)

        class Fixed(RuntimePredictor):
            def predict(self, job, elapsed=0.0, now=0.0):
                return singleton

        noisy = NoisyPredictor(Fixed(), ErrorModel(level=0.0))
        assert noisy.predict(make_job(), 0.0, 0.0) is singleton

    def test_noise_is_stable_across_calls(self):
        noisy = NoisyPredictor(ActualRuntimePredictor(), ErrorModel(level=0.5))
        job = make_job(run_time=500.0)
        assert noisy.predict(job).estimate == noisy.predict(job).estimate

    def test_proxies_epoch_and_invariance(self):
        base = ActualRuntimePredictor()
        noisy = NoisyPredictor(base, ErrorModel(level=0.5))
        assert noisy.history_epoch == base.history_epoch
        assert noisy.elapsed_invariant == base.elapsed_invariant


class TestExperiment:
    def test_zero_error_cell_bit_identical_to_oracle(self, tiny_anl):
        """The acceptance anchor: level 0 == the plain 'actual' cell."""
        for algo in ("backfill", "easy"):
            noisy_cell, noisy_result = run_misprediction_experiment(
                tiny_anl, algo, ErrorModel(level=0.0)
            )
            plain_cell, plain_result = run_scheduling_experiment(
                tiny_anl, algo, "actual"
            )
            assert noisy_cell.mean_wait_minutes == plain_cell.mean_wait_minutes
            assert noisy_cell.utilization_percent == plain_cell.utilization_percent
            assert (
                noisy_cell.mean_bounded_slowdown
                == plain_result.mean_bounded_slowdown()
                == noisy_result.mean_bounded_slowdown()
            )
            assert noisy_cell.injected_mae_minutes == 0.0

    def test_error_perturbs_the_schedule(self, tiny_anl):
        base, _ = run_misprediction_experiment(tiny_anl, "lwf", ErrorModel(level=0.0))
        noisy, _ = run_misprediction_experiment(
            tiny_anl, "lwf", ErrorModel(level=2.0)
        )
        assert noisy.injected_mae_minutes > 0.0
        assert noisy.mean_wait_minutes != base.mean_wait_minutes

    def test_cell_row_shape(self, tiny_anl):
        cell, _ = run_misprediction_experiment(tiny_anl, "fcfs", ErrorModel())
        row = cell.as_row()
        assert row["Workload"] == "ANL"
        assert row["Scheduling Algorithm"] == "FCFS"
        assert "Level" in row and "Injected MAE (min)" in row


class TestDegradationCurve:
    def _cell(self, tiny_anl, level):
        cell, _ = run_misprediction_experiment(
            tiny_anl, "fcfs", ErrorModel(level=level)
        )
        return cell

    def test_cells_must_be_level_ordered(self, tiny_anl):
        cells = (self._cell(tiny_anl, 1.0), self._cell(tiny_anl, 0.0))
        with pytest.raises(ValueError):
            DegradationCurve("ANL", "FCFS", "multiplicative", cells)
        DegradationCurve("ANL", "FCFS", "multiplicative", cells[::-1])

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            DegradationCurve("ANL", "FCFS", "multiplicative", ())

    def test_rows_carry_zero_anchored_degradation(self, tiny_anl):
        curve = DegradationCurve(
            "ANL", "FCFS", "multiplicative",
            (self._cell(tiny_anl, 0.0), self._cell(tiny_anl, 1.0)),
        )
        rows = curve.rows()
        assert rows[0]["Wait vs oracle (%)"] == 0.0
        assert isinstance(rows[1]["Wait vs oracle (%)"], float)


class TestCampaign:
    def test_curve_grid_shape(self, tiny_anl):
        curves = run_misprediction_campaign(
            workloads=[tiny_anl],
            algorithms=("backfill", "easy"),
            levels=(0.0, 0.5, 1.0),
        )
        assert [c.algorithm for c in curves] == ["Backfill", "EASY"]
        for curve in curves:
            assert [c.error_level for c in curve.cells] == [0.0, 0.5, 1.0]
            assert curve.baseline.error_level == 0.0
            assert curve.degradation_percent(curve.baseline) == 0.0

    def test_levels_sorted_before_running(self, tiny_anl):
        curves = run_misprediction_campaign(
            workloads=[tiny_anl], algorithms=("fcfs",), levels=(1.0, 0.0)
        )
        assert [c.error_level for c in curves[0].cells] == [0.0, 1.0]

    def test_empty_levels_rejected(self, tiny_anl):
        with pytest.raises(ValueError):
            run_misprediction_campaign(workloads=[tiny_anl], levels=())

    def test_parallel_equals_serial(self, tiny_anl):
        kwargs = dict(
            workloads=[tiny_anl],
            algorithms=("backfill",),
            levels=(0.0, 1.0),
        )
        serial = run_misprediction_campaign(**kwargs, max_workers=1)
        parallel = run_misprediction_campaign(**kwargs, max_workers=2)
        assert serial == parallel


class TestParallelSpecs:
    def test_misprediction_spec_requires_error_kind(self):
        with pytest.raises(ValueError):
            CellSpec(kind="misprediction", workload="ANL",
                     algorithm="fcfs", predictor="actual")

    def test_plan_orders_levels_ascending(self):
        plan = ExperimentPlan.for_misprediction(
            workloads=("ANL",), algorithms=("fcfs",), levels=(1.0, 0.0, 0.5),
            n_jobs=50,
        )
        assert [s.error_level for s in plan.cells] == [0.0, 0.5, 1.0]
        assert all(s.kind == "misprediction" for s in plan.cells)


class TestCLI:
    def test_misprediction_subcommand_parallel_smoke(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "misprediction",
                "--workloads", "ANL",
                "--n-jobs", "100",
                "--levels", "0", "0.5", "1",
                "--parallel", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # One curve per (workload, default algorithms backfill+easy),
        # three levels each.
        assert "misprediction degradation (ANL, Backfill" in out
        assert "misprediction degradation (ANL, EASY" in out
        assert out.count("multiplicative") >= 6
        assert "Wait vs oracle (%)" in out
