"""CLI smoke tests for ``repro-sched explain`` and ``timeline``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import read_jsonl


@pytest.fixture(scope="module")
def detail_trace(tmp_path_factory):
    out = tmp_path_factory.mktemp("explain") / "trace.jsonl"
    code = main([
        "trace", "--workload", "ANL", "--n-jobs", "100",
        "--algorithms", "backfill", "--predictor", "max",
        "--detail", "--wait-pred", "state", "-o", str(out),
    ])
    assert code == 0
    return out


def _started_job_ids(trace_path, n):
    events = read_jsonl(str(trace_path))
    ids = [
        e["job_id"] for e in events
        if e["type"] == "job_started" and e.get("wait_s", 0.0) > 0.0
    ]
    return ids[:n]


def test_explain_text_output(detail_trace, capsys):
    job_id = _started_job_ids(detail_trace, 1)[0]
    code = main(["explain", str(detail_trace), "--job", str(job_id)])
    out = capsys.readouterr().out
    assert code == 0
    assert f"job {job_id}" in out
    assert "wait decomposition" in out
    assert "timeline" in out


def test_explain_multiple_jobs_json(detail_trace, capsys):
    ids = _started_job_ids(detail_trace, 3)
    code = main([
        "explain", str(detail_trace), "--json",
        "--job", *[str(i) for i in ids],
    ])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out)
    assert [exp["job_id"] for exp in payload] == ids
    for exp in payload:
        decomposition = exp["decomposition"]
        assert sum(decomposition.values()) == pytest.approx(
            exp["wait_s"], abs=1e-6
        )


def test_explain_no_timeline(detail_trace, capsys):
    job_id = _started_job_ids(detail_trace, 1)[0]
    code = main([
        "explain", str(detail_trace), "--job", str(job_id), "--no-timeline",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "timeline" not in out


def test_explain_unknown_job_fails(detail_trace, capsys):
    code = main(["explain", str(detail_trace), "--job", "999999"])
    assert code == 1
    assert "explain FAILED" in capsys.readouterr().err


def test_explain_empty_trace_fails(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    code = main(["explain", str(empty), "--job", "1"])
    assert code == 1
    assert "empty trace (0 events)" in capsys.readouterr().err


def test_timeline_renders_sparklines(detail_trace, capsys):
    code = main([
        "timeline", str(detail_trace), "--metric", "util", "queue",
        "--width", "40",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "util over simulated time" in out
    assert "queue over simulated time" in out


def test_timeline_writes_points(detail_trace, tmp_path, capsys):
    out_file = tmp_path / "points.jsonl"
    code = main(["timeline", str(detail_trace), "-o", str(out_file)])
    captured = capsys.readouterr()
    assert code == 0
    points = [json.loads(line) for line in out_file.read_text().splitlines()]
    assert points
    assert {"t", "queued", "running", "util"} <= set(points[0])
    assert f"wrote {out_file}" in captured.err


def test_timeline_empty_trace_fails(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    code = main(["timeline", str(empty)])
    assert code == 1
    assert "empty trace (0 events)" in capsys.readouterr().err
