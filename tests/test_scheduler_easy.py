"""Tests for the EASY (aggressive) backfill variant."""

from __future__ import annotations

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import BackfillPolicy, EASYBackfillPolicy
from repro.scheduler.simulator import Simulator
from tests.conftest import make_job
from tests.fakes import FakeView


def ids(selection):
    return [qj.job_id for qj in selection]


class TestEASYSelect:
    def test_fcfs_when_everything_fits(self):
        view = FakeView(
            total_nodes=10,
            queued=[
                make_job(job_id=1, submit_time=0, nodes=4),
                make_job(job_id=2, submit_time=1, nodes=4),
            ],
        )
        assert ids(EASYBackfillPolicy().select(view)) == [1, 2]

    def test_backfills_without_delaying_head(self):
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=6, run_time=100.0), 0.0)],
            queued=[
                make_job(job_id=1, submit_time=0, nodes=8, run_time=50.0),
                make_job(job_id=2, submit_time=1, nodes=4, run_time=30.0),
            ],
        )
        assert ids(EASYBackfillPolicy().select(view)) == [2]

    def test_refuses_backfill_that_delays_head(self):
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=6, run_time=100.0), 0.0)],
            queued=[
                make_job(job_id=1, submit_time=0, nodes=8, run_time=50.0),
                make_job(job_id=2, submit_time=1, nodes=4, run_time=500.0),
            ],
        )
        assert ids(EASYBackfillPolicy().select(view)) == []

    def test_only_head_is_protected(self):
        """EASY's defining behaviour: a backfill may delay the SECOND
        blocked job, which conservative backfill would forbid."""
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=10, run_time=100.0), 0.0)],
            queued=[
                # Head: needs the whole machine, reserved at t=100.
                make_job(job_id=1, submit_time=0, nodes=10, run_time=50.0),
                # Second blocked wide job (would be reserved at 150 by
                # conservative backfill).
                make_job(job_id=2, submit_time=1, nodes=10, run_time=50.0),
                # Narrow long job: fits only after the head at t=150+,
                # delaying job 2 — conservative forbids, EASY doesn't care...
                make_job(job_id=3, submit_time=2, nodes=1, run_time=1000.0),
            ],
            free_nodes=0,
        )
        # Machine is full: nothing starts now either way; this documents
        # equal behaviour at zero free nodes.
        assert ids(EASYBackfillPolicy().select(view)) == []
        assert ids(BackfillPolicy().select(view)) == []

    def test_easy_starts_job_conservative_blocks(self):
        # Running: 9 nodes until t=100. Head (10 nodes) reserved at 100.
        # Job 2 (10 nodes) would be conservatively reserved at 200.
        # Job 3 (1 node, 150 s): ends at 150 <= head start? No -> would
        # delay the head? Head needs 10 nodes at t=100; job 3 holds 1
        # node until 150 -> delays head under both. Use a shorter job
        # that ends before 100 but after conservative job 2's needs are
        # irrelevant... Construct: job 3 runs 90 s (ends t=90 < 100):
        # fine for both. To split the two policies the backfill must
        # overlap job 2's reservation but not the head's: impossible
        # while the head starts first on a full-width reservation — so
        # give job 2 a *narrow* profile hole instead.
        view = FakeView(
            now=0.0,
            total_nodes=10,
            running=[(make_job(job_id=9, nodes=9, run_time=100.0), 0.0)],
            queued=[
                # Head: 2 nodes, fits ONLY at t=100? free=1 -> blocked now;
                # reserved at t=100.
                make_job(job_id=1, submit_time=0, nodes=2, run_time=1000.0),
                # Second: 8 nodes, conservative reserves at t=100 as well
                # (10 - 2 = 8 free).
                make_job(job_id=2, submit_time=1, nodes=8, run_time=1000.0),
                # Narrow 1-node job, 400 s: starting now delays nobody's
                # head reservation (head needs 2 of 10 at t=100; 1 node
                # held until 400 leaves 9 >= 2) but DOES delay job 2's
                # conservative reservation (needs 8 at t=100; only
                # 10-2-1=7 free).
                make_job(job_id=3, submit_time=2, nodes=1, run_time=400.0),
            ],
        )
        assert ids(EASYBackfillPolicy().select(view)) == [3]
        assert ids(BackfillPolicy().select(view)) == []


class TestEASYEndToEnd:
    def test_invariants_on_trace(self, anl_trace):
        sim = Simulator(
            EASYBackfillPolicy(),
            PointEstimator(ActualRuntimePredictor()),
            anl_trace.total_nodes,
        )
        res = sim.run(anl_trace)
        assert len(res) == len(anl_trace)
        assert res.max_concurrent_nodes() <= anl_trace.total_nodes
        for rec in res.records:
            assert rec.start_time >= rec.submit_time

    def test_easy_at_least_as_aggressive_as_conservative(self, anl_trace):
        """EASY's weaker protection must not reduce utilization."""
        est = PointEstimator(ActualRuntimePredictor())
        easy = Simulator(EASYBackfillPolicy(), est, anl_trace.total_nodes).run(
            anl_trace
        )
        conservative = Simulator(
            BackfillPolicy(),
            PointEstimator(ActualRuntimePredictor()),
            anl_trace.total_nodes,
        ).run(anl_trace)
        assert easy.makespan <= conservative.makespan * 1.05

    def test_registry_builds_easy(self):
        from repro.core.registry import make_policy

        assert isinstance(make_policy("easy"), EASYBackfillPolicy)
