"""CLI smoke tests for ``repro-sched trace``."""

import json

from repro.cli import main
from repro.obs import read_jsonl, validate_events


def _run(capsys, out, *extra):
    code = main(
        [
            "trace",
            "--workload", "ANL",
            "--n-jobs", "120",
            "--algorithms", "backfill", "fcfs",
            "--predictor", "max",
            "-o", str(out),
            *extra,
        ]
    )
    return code, capsys.readouterr().out


def test_trace_writes_valid_jsonl(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, _ = _run(capsys, out)
    assert code == 0
    events = read_jsonl(str(out))
    assert validate_events(events) == len(events)
    # one started and one finished event per job per policy
    for policy in ("Backfill", "FCFS"):
        started = [
            e for e in events
            if e["type"] == "job_started" and e.get("policy") == policy
        ]
        finished = [
            e for e in events
            if e["type"] == "job_finished" and e.get("policy") == policy
        ]
        assert len(started) == 120
        assert len(finished) == 120


def test_trace_check_and_summary(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, stdout = _run(capsys, out, "--check", "--summary")
    assert code == 0
    assert "trace summary" in stdout
    assert "job_started" in stdout
    assert "Backfill" in stdout and "FCFS" in stdout


def test_trace_metrics_json(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, stdout = _run(capsys, out, "--metrics")
    assert code == 0
    merged = json.loads(stdout)
    # both replays merged: 120 jobs x 2 policies
    assert merged["counters"]["sim.jobs_started"] == 240
    assert merged["counters"]["sim.jobs_finished"] == 240
    assert merged["histograms"]["sim.wait_time_seconds"]["count"] == 240


def test_trace_detail_emits_cache_events(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, _ = _run(capsys, out, "--detail")
    assert code == 0
    events = read_jsonl(str(out))
    assert any(e["type"] == "cache_miss" for e in events)


def test_trace_detail_emits_provenance_events(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, _ = _run(capsys, out, "--detail")
    assert code == 0
    events = read_jsonl(str(out))
    assert any(e["type"] == "reservation_binding" for e in events)
    assert any(e["type"] == "start_blocked" for e in events)
    # ...and none without --detail.
    code, _ = _run(capsys, out)
    assert code == 0
    events = read_jsonl(str(out))
    assert not any(
        e["type"] in ("start_blocked", "reservation_binding",
                      "backfill_hole_used")
        for e in events
    )


def test_trace_from_inspects_existing_file(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, _ = _run(capsys, out)
    assert code == 0
    code = main(["trace", "--from", str(out), "--check", "--summary"])
    captured = capsys.readouterr()
    assert code == 0
    assert "trace check OK" in captured.err
    assert "trace summary" in captured.out
    assert "job_started" in captured.out


def test_trace_from_empty_file_says_so(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    code = main(["trace", "--from", str(empty), "--summary"])
    captured = capsys.readouterr()
    assert code == 0
    assert f"empty trace (0 events): {empty}" in captured.out
    assert "(no rows)" not in captured.out


def test_trace_from_missing_file_fails_cleanly(tmp_path, capsys):
    code = main(["trace", "--from", str(tmp_path / "nope.jsonl")])
    assert code == 1
    assert "trace FAILED" in capsys.readouterr().err
