"""CLI smoke tests for ``repro-sched trace``."""

import json

from repro.cli import main
from repro.obs import read_jsonl, validate_events


def _run(capsys, out, *extra):
    code = main(
        [
            "trace",
            "--workload", "ANL",
            "--n-jobs", "120",
            "--algorithms", "backfill", "fcfs",
            "--predictor", "max",
            "-o", str(out),
            *extra,
        ]
    )
    return code, capsys.readouterr().out


def test_trace_writes_valid_jsonl(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, _ = _run(capsys, out)
    assert code == 0
    events = read_jsonl(str(out))
    assert validate_events(events) == len(events)
    # one started and one finished event per job per policy
    for policy in ("Backfill", "FCFS"):
        started = [
            e for e in events
            if e["type"] == "job_started" and e.get("policy") == policy
        ]
        finished = [
            e for e in events
            if e["type"] == "job_finished" and e.get("policy") == policy
        ]
        assert len(started) == 120
        assert len(finished) == 120


def test_trace_check_and_summary(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, stdout = _run(capsys, out, "--check", "--summary")
    assert code == 0
    assert "trace summary" in stdout
    assert "job_started" in stdout
    assert "Backfill" in stdout and "FCFS" in stdout


def test_trace_metrics_json(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, stdout = _run(capsys, out, "--metrics")
    assert code == 0
    merged = json.loads(stdout)
    # both replays merged: 120 jobs x 2 policies
    assert merged["counters"]["sim.jobs_started"] == 240
    assert merged["counters"]["sim.jobs_finished"] == 240
    assert merged["histograms"]["sim.wait_time_seconds"]["count"] == 240


def test_trace_detail_emits_cache_events(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, _ = _run(capsys, out, "--detail")
    assert code == 0
    events = read_jsonl(str(out))
    assert any(e["type"] == "cache_miss" for e in events)
