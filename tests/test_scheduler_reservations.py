"""Tests for advance reservations (paper §5 co-allocation support)."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.scheduler.policies import BackfillPolicy, EASYBackfillPolicy, FCFSPolicy
from repro.scheduler.reservations import Reservation, ReservationRecord
from repro.scheduler.simulator import Simulator
from repro.workloads.job import Trace
from tests.conftest import make_job


def sim_with(policy, jobs, reservations, total_nodes=10):
    sim = Simulator(policy, PointEstimator(ActualRuntimePredictor()), total_nodes)
    sim.add_reservations(reservations)
    result = sim.run(Trace(jobs, total_nodes=total_nodes))
    return sim, result


class TestReservationValidation:
    def test_bad_nodes(self):
        with pytest.raises(ValueError):
            Reservation(1, 0.0, 10.0, 0)

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            Reservation(1, 0.0, 0.0, 2)

    def test_negative_start(self):
        with pytest.raises(ValueError):
            Reservation(1, -5.0, 10.0, 2)

    def test_too_wide_rejected_by_simulator(self):
        sim = Simulator(FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), 4)
        with pytest.raises(ValueError, match="nodes"):
            sim.add_reservations([Reservation(1, 0.0, 10.0, 8)])

    def test_past_start_rejected(self):
        sim = Simulator(FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), 4)
        sim.now = 100.0
        with pytest.raises(ValueError, match="past"):
            sim.add_reservations([Reservation(1, 50.0, 10.0, 2)])

    def test_record_delay(self):
        rec = ReservationRecord(1, 100.0, 130.0, 4, 60.0)
        assert rec.delay == 30.0


class TestReservationActivation:
    def test_on_time_when_machine_free(self):
        sim, _ = sim_with(FCFSPolicy(), [], [Reservation(1, 100.0, 50.0, 6)])
        [rec] = sim.reservation_records
        assert rec.actual_start == 100.0
        assert rec.delay == 0.0

    def test_blocks_jobs_during_window(self):
        # Reservation holds 6 of 10 nodes on [100, 200); a 6-node job
        # arriving at 150 must wait until 200.
        sim, result = sim_with(
            FCFSPolicy(),
            [make_job(job_id=1, submit_time=150.0, run_time=10.0, nodes=6)],
            [Reservation(1, 100.0, 100.0, 6)],
        )
        assert result[1].start_time == 200.0

    def test_delayed_by_myopic_fcfs_job(self):
        # FCFS ignores the upcoming reservation and starts a long 8-node
        # job at t=0; the reservation (5 nodes at t=100) must wait until
        # the job ends at t=500.
        sim, _ = sim_with(
            FCFSPolicy(),
            [make_job(job_id=1, submit_time=0.0, run_time=500.0, nodes=8)],
            [Reservation(1, 100.0, 50.0, 5)],
        )
        [rec] = sim.reservation_records
        assert rec.actual_start == 500.0
        assert rec.delay == 400.0

    def test_waiting_reservation_beats_queued_job(self):
        # At t=500 the machine frees: the waiting reservation (5 nodes)
        # claims before the queued 8-node job, which must wait for the
        # reservation window to close.
        sim, result = sim_with(
            FCFSPolicy(),
            [
                make_job(job_id=1, submit_time=0.0, run_time=500.0, nodes=8),
                make_job(job_id=2, submit_time=10.0, run_time=10.0, nodes=8),
            ],
            [Reservation(1, 100.0, 50.0, 5)],
        )
        [rec] = sim.reservation_records
        assert rec.actual_start == 500.0
        assert result[2].start_time == pytest.approx(550.0)

    def test_backfill_protects_reservation(self):
        """Reservation-aware backfill refuses the job FCFS would start."""
        jobs = [make_job(job_id=1, submit_time=0.0, run_time=500.0, nodes=8)]
        res = [Reservation(1, 100.0, 50.0, 5)]
        sim_bf, result_bf = sim_with(BackfillPolicy(), jobs, res)
        [rec] = sim_bf.reservation_records
        # Backfill sees the job's 500 s estimate colliding with the
        # window and delays the JOB instead of the reservation.
        assert rec.delay == 0.0
        assert result_bf[1].start_time == pytest.approx(150.0)

    def test_easy_protects_reservation(self):
        jobs = [make_job(job_id=1, submit_time=0.0, run_time=500.0, nodes=8)]
        res = [Reservation(1, 100.0, 50.0, 5)]
        sim_easy, result_easy = sim_with(EASYBackfillPolicy(), jobs, res)
        [rec] = sim_easy.reservation_records
        assert rec.delay == 0.0
        assert result_easy[1].start_time == pytest.approx(150.0)

    def test_backfill_protection_only_as_good_as_estimates(self):
        """With loose maxima the window is protected; with *under*-
        estimates a job overruns into the window and delays it."""
        # Scheduler believes the job runs 50 s (fits before t=100), but
        # it actually runs 300 s.
        job = make_job(
            job_id=1, submit_time=0.0, run_time=300.0, nodes=8, max_run_time=50.0
        )
        sim = Simulator(BackfillPolicy(), PointEstimator(MaxRuntimePredictor()), 10)
        sim.add_reservations([Reservation(1, 100.0, 50.0, 5)])
        sim.run(Trace([job], total_nodes=10))
        [rec] = sim.reservation_records
        assert rec.delay == pytest.approx(200.0)  # waits for the overrun

    def test_multiple_reservations_fifo_activation(self):
        sim, _ = sim_with(
            FCFSPolicy(),
            [make_job(job_id=1, submit_time=0.0, run_time=400.0, nodes=10)],
            [
                Reservation(1, 100.0, 50.0, 6),
                Reservation(2, 120.0, 50.0, 4),
            ],
        )
        recs = {r.res_id: r for r in sim.reservation_records}
        # Both wait for t=400; both fit together (6+4=10) and start then.
        assert recs[1].actual_start == 400.0
        assert recs[2].actual_start == 400.0

    def test_capacity_never_exceeded_with_reservations(self, anl_trace):
        from repro.workloads.transform import head

        trace = head(anl_trace, 200)
        sim = Simulator(
            BackfillPolicy(),
            PointEstimator(ActualRuntimePredictor()),
            trace.total_nodes,
        )
        span = trace.span
        sim.add_reservations(
            [
                Reservation(i, span * i / 5.0 + 1.0, 3600.0, trace.total_nodes // 4)
                for i in range(1, 4)
            ]
        )
        result = sim.run(trace)
        assert len(result) == len(trace)
        assert len(sim.reservation_records) == 3
        # Job concurrency plus active reservations never exceeded the pool
        # (the pool itself raises otherwise, so completing is the check).
        assert result.max_concurrent_nodes() <= trace.total_nodes
