"""Tests for repro.utils: RNG plumbing and time helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import rng_from_seed, spawn_rng
from repro.utils.timeutils import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    format_duration,
    minutes,
    seconds_to_minutes,
)


class TestRng:
    def test_seed_determinism(self):
        a = rng_from_seed(42).uniform(size=5)
        b = rng_from_seed(42).uniform(size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng_from_seed(1).uniform(size=5)
        b = rng_from_seed(2).uniform(size=5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert rng_from_seed(g) is g

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)

    def test_spawn_count(self):
        children = spawn_rng(rng_from_seed(0), count=3)
        assert len(children) == 3

    def test_spawn_streams_independent(self):
        c1, c2 = spawn_rng(rng_from_seed(0), count=2)
        assert not np.array_equal(c1.uniform(size=8), c2.uniform(size=8))

    def test_spawn_deterministic(self):
        a = spawn_rng(rng_from_seed(5), count=2)[1].uniform(size=4)
        b = spawn_rng(rng_from_seed(5), count=2)[1].uniform(size=4)
        assert np.array_equal(a, b)

    def test_spawn_rejects_zero(self):
        with pytest.raises(ValueError):
            spawn_rng(rng_from_seed(0), count=0)


class TestTimeUtils:
    def test_constants(self):
        assert MINUTE == 60.0
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY

    def test_minutes_roundtrip(self):
        assert seconds_to_minutes(minutes(97.75)) == pytest.approx(97.75)

    def test_format_zero(self):
        assert format_duration(0.0) == "00:00:00"

    def test_format_hms(self):
        assert format_duration(2 * HOUR + 3 * MINUTE + 4) == "02:03:04"

    def test_format_days(self):
        assert format_duration(DAY + HOUR) == "1d 01:00:00"

    def test_format_negative(self):
        assert format_duration(-90.0) == "-00:01:30"
