"""Property-based tests for reservations under random workloads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.reservations import Reservation
from repro.scheduler.simulator import Simulator
from repro.workloads.job import Job, Trace

TOTAL = 16


@st.composite
def scenario(draw):
    n_jobs = draw(st.integers(1, 10))
    jobs = [
        Job(
            job_id=i + 1,
            submit_time=draw(st.floats(0, 500)),
            run_time=draw(st.floats(0, 300)),
            nodes=draw(st.integers(1, TOTAL)),
        )
        for i in range(n_jobs)
    ]
    n_res = draw(st.integers(1, 4))
    reservations = [
        Reservation(
            res_id=i + 1,
            start_time=draw(st.floats(0, 800)),
            duration=draw(st.floats(1, 200)),
            nodes=draw(st.integers(1, TOTAL)),
        )
        for i in range(n_res)
    ]
    return jobs, reservations


@pytest.mark.parametrize("policy_cls", [FCFSPolicy, LWFPolicy, BackfillPolicy])
@given(case=scenario())
@settings(max_examples=40, deadline=None)
def test_property_reservations_never_break_invariants(policy_cls, case):
    jobs, reservations = case
    sim = Simulator(policy_cls(), PointEstimator(ActualRuntimePredictor()), TOTAL)
    sim.add_reservations(reservations)
    result = sim.run(Trace(jobs, total_nodes=TOTAL))
    # Every job completed; capacity held (NodePool raises otherwise).
    assert len(result) == len(jobs)
    # Every reservation activated exactly once, never early.
    assert len(sim.reservation_records) == len(reservations)
    by_id = {r.res_id: r for r in sim.reservation_records}
    for res in reservations:
        rec = by_id[res.res_id]
        assert rec.actual_start >= res.start_time - 1e-9
        assert rec.nodes == res.nodes
    # Nothing left behind.
    assert not sim.waiting_reservations
    assert not sim.active_reservations
    assert not sim.pending_reservations
    assert sim.pool.free == TOTAL


@given(case=scenario())
@settings(max_examples=30, deadline=None)
def test_property_job_plus_reservation_capacity(case):
    """Concurrent job nodes + reservation nodes never exceed the pool.

    Reconstructed from records: at any reservation's active interval the
    jobs overlapping it must fit in the remaining nodes.
    """
    jobs, reservations = case
    sim = Simulator(BackfillPolicy(), PointEstimator(ActualRuntimePredictor()), TOTAL)
    sim.add_reservations(reservations)
    result = sim.run(Trace(jobs, total_nodes=TOTAL))
    for res_rec in sim.reservation_records:
        r_start = res_rec.actual_start
        r_end = r_start + res_rec.duration
        overlap_nodes = sum(
            rec.nodes
            for rec in result.records
            if rec.start_time < r_end - 1e-9 and rec.finish_time > r_start + 1e-9
            and rec.run_time > 0
        )
        # Overlapping jobs may not all be simultaneous, so this is a
        # conservative check only when it already fits; the strict check
        # is pointwise at the reservation start.
        at_start = sum(
            rec.nodes
            for rec in result.records
            if rec.start_time <= r_start + 1e-9
            and rec.finish_time > r_start + 1e-9
            and rec.run_time > 0
        )
        assert at_start + res_rec.nodes <= TOTAL + 0
