"""Tests for Monte-Carlo wait-prediction intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.predictors.base import PointEstimator, warm_start
from repro.predictors.simple import ActualRuntimePredictor
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy
from repro.scheduler.simulator import QueuedJob, RunningJob, SystemSnapshot
from repro.utils.rng import rng_from_seed
from repro.waitpred.uncertainty import WaitInterval, predict_wait_interval
from tests.conftest import make_job


def snapshot_with_queue():
    running = make_job(job_id=1, submit_time=0.0, nodes=10, run_time=999.0,
                       user="bob", executable="long")
    target = make_job(job_id=2, submit_time=100.0, nodes=10, run_time=10.0,
                      user="bob", executable="long")
    return SystemSnapshot(
        now=100.0,
        running=(RunningJob(running, 0.0),),
        queued=(QueuedJob(target),),
        total_nodes=10,
    )


class TestPredictWaitInterval:
    def test_oracle_degenerate_interval(self):
        """Zero run-time uncertainty => zero-width wait interval."""
        snap = snapshot_with_queue()
        est = PointEstimator(ActualRuntimePredictor())
        iv = predict_wait_interval(snap, FCFSPolicy(), est, 2, samples=10)
        assert iv.width == pytest.approx(0.0)
        assert iv.median == pytest.approx(999.0 - 100.0)

    def test_uncertain_history_widens_interval(self):
        snap = snapshot_with_queue()
        # Train a Smith predictor with scattered run times for the
        # running job's identity -> wide prediction interval.
        smith = SmithPredictor([Template(characteristics=("u", "e"))])
        warm_start(
            smith,
            [
                make_job(job_id=100 + i, user="bob", executable="long",
                         run_time=rt)
                for i, rt in enumerate((200.0, 800.0, 1400.0, 2600.0))
            ],
        )
        est = PointEstimator(smith)
        iv = predict_wait_interval(snap, FCFSPolicy(), est, 2, samples=60, seed=3)
        assert iv.width > 0.0
        assert iv.lo <= iv.median <= iv.hi
        # The point prediction (mean 1250 total, 100 elapsed) sits inside.
        assert iv.lo <= 1250.0 - 100.0 <= iv.hi + 1e-6

    def test_deterministic_given_seed(self):
        snap = snapshot_with_queue()
        smith = SmithPredictor([Template(characteristics=("u", "e"))])
        warm_start(
            smith,
            [
                make_job(job_id=100 + i, user="bob", executable="long",
                         run_time=rt)
                for i, rt in enumerate((500.0, 900.0, 1500.0))
            ],
        )
        est = PointEstimator(smith)
        a = predict_wait_interval(snap, FCFSPolicy(), est, 2, samples=20, seed=7)
        b = predict_wait_interval(snap, FCFSPolicy(), est, 2, samples=20, seed=7)
        assert a == b

    def test_confidence_controls_width(self):
        snap = snapshot_with_queue()
        smith = SmithPredictor([Template(characteristics=("u", "e"))])
        warm_start(
            smith,
            [
                make_job(job_id=100 + i, user="bob", executable="long",
                         run_time=rt)
                for i, rt in enumerate((300.0, 900.0, 2100.0, 3000.0))
            ],
        )
        est = PointEstimator(smith)
        narrow = predict_wait_interval(
            snap, FCFSPolicy(), est, 2, samples=80, confidence=0.5, seed=1
        )
        wide = predict_wait_interval(
            snap, FCFSPolicy(), est, 2, samples=80, confidence=0.95, seed=1
        )
        assert wide.width >= narrow.width

    def test_backfill_policy_supported(self):
        snap = snapshot_with_queue()
        est = PointEstimator(ActualRuntimePredictor())
        iv = predict_wait_interval(snap, BackfillPolicy(), est, 2, samples=5)
        assert iv.median >= 0.0

    def test_validation(self):
        snap = snapshot_with_queue()
        est = PointEstimator(ActualRuntimePredictor())
        with pytest.raises(ValueError):
            predict_wait_interval(snap, FCFSPolicy(), est, 2, samples=1)
        with pytest.raises(ValueError):
            predict_wait_interval(snap, FCFSPolicy(), est, 2, confidence=1.0)


def _uncertain_estimator():
    smith = SmithPredictor([Template(characteristics=("u", "e"))])
    warm_start(
        smith,
        [
            make_job(job_id=100 + i, user="bob", executable="long", run_time=rt)
            for i, rt in enumerate((200.0, 800.0, 1400.0, 2600.0))
        ],
    )
    return PointEstimator(smith)


class TestWaitIntervalAccessors:
    def test_samples_are_retained(self):
        snap = snapshot_with_queue()
        iv = predict_wait_interval(
            snap, FCFSPolicy(), _uncertain_estimator(), 2, samples=25, seed=4
        )
        assert len(iv.wait_samples) == 25

    def test_mean_and_percentile_come_from_the_sample_vector(self):
        snap = snapshot_with_queue()
        iv = predict_wait_interval(
            snap, FCFSPolicy(), _uncertain_estimator(), 2, samples=40, seed=4
        )
        waits = np.asarray(iv.wait_samples)
        assert iv.mean == pytest.approx(float(np.mean(waits)))
        assert iv.percentile(50.0) == pytest.approx(iv.median)
        assert iv.percentile(10.0) == pytest.approx(float(np.percentile(waits, 10.0)))
        assert iv.percentile(0.0) == pytest.approx(float(waits.min()))
        assert iv.percentile(100.0) == pytest.approx(float(waits.max()))

    def test_percentile_range_validated(self):
        snap = snapshot_with_queue()
        iv = predict_wait_interval(
            snap, FCFSPolicy(), _uncertain_estimator(), 2, samples=5, seed=0
        )
        with pytest.raises(ValueError):
            iv.percentile(-0.1)
        with pytest.raises(ValueError):
            iv.percentile(100.1)

    def test_accessors_require_retained_samples(self):
        bare = WaitInterval(median=5.0, lo=1.0, hi=9.0, confidence=0.8, samples=3)
        with pytest.raises(ValueError):
            bare.mean
        with pytest.raises(ValueError):
            bare.percentile(50.0)


class TestGeneratorSeedPassThrough:
    def test_generator_seed_matches_integer_seed(self):
        snap = snapshot_with_queue()
        est = _uncertain_estimator()
        from_int = predict_wait_interval(
            snap, FCFSPolicy(), est, 2, samples=20, seed=7
        )
        from_gen = predict_wait_interval(
            snap, FCFSPolicy(), est, 2, samples=20, seed=rng_from_seed(7)
        )
        assert from_int == from_gen

    def test_threaded_generator_advances_and_is_reproducible(self):
        """One generator threaded through two queries draws two disjoint
        chunks of a single stream — repeatable from the same seed."""
        snap = snapshot_with_queue()
        est = _uncertain_estimator()
        rng = rng_from_seed(11)
        first = predict_wait_interval(snap, FCFSPolicy(), est, 2, samples=15, seed=rng)
        second = predict_wait_interval(snap, FCFSPolicy(), est, 2, samples=15, seed=rng)
        assert first.wait_samples != second.wait_samples  # the stream moved
        rng2 = rng_from_seed(11)
        again_first = predict_wait_interval(
            snap, FCFSPolicy(), est, 2, samples=15, seed=rng2
        )
        again_second = predict_wait_interval(
            snap, FCFSPolicy(), est, 2, samples=15, seed=rng2
        )
        assert (first, second) == (again_first, again_second)
