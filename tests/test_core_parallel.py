"""Parallel table execution: serial↔parallel parity and failure paths.

The injected cell functions live at module level so they pickle by
reference into pool workers.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.experiment import (
    run_scheduling_table,
    run_wait_time_table,
)
from repro.core.parallel import (
    CellSpec,
    ExperimentPlan,
    ParallelExecutionError,
    execute_cell,
    run_table_parallel,
)
from repro.obs.metrics import merge_snapshots

#: Small enough that the whole grid replays in a couple of seconds.
N_JOBS = 60

WORKLOADS = ["ANL", "SDSC95"]
ALGORITHMS = ("lwf", "backfill")


# ----------------------------------------------------------------------
# injected cell functions (module-level: shipped to workers by name)
# ----------------------------------------------------------------------
def _raise_for_lwf(spec: CellSpec):
    if spec.algorithm == "lwf":
        raise RuntimeError("injected failure")
    return execute_cell(spec)


def _always_raise(spec: CellSpec):
    raise ValueError(f"cell {spec.workload}/{spec.algorithm} always fails")


def _stall(spec: CellSpec):
    time.sleep(3.0)
    return execute_cell(spec)


def _fail_first_attempt(spec: CellSpec):
    """Raise on the first call per cell, succeed on the retry.

    Cross-process state goes through a marker file in the directory the
    test exports via ``REPRO_TEST_FLAKY_DIR`` before the pool forks.
    """
    marker = os.path.join(
        os.environ["REPRO_TEST_FLAKY_DIR"],
        f"{spec.workload}-{spec.algorithm}-{spec.predictor}",
    )
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return execute_cell(spec)


# ----------------------------------------------------------------------
# parity
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_scheduling_table_parity(self, workers):
        serial = run_scheduling_table(
            "actual", workloads=WORKLOADS, algorithms=ALGORITHMS, n_jobs=N_JOBS
        )
        parallel = run_scheduling_table(
            "actual",
            workloads=WORKLOADS,
            algorithms=ALGORITHMS,
            n_jobs=N_JOBS,
            max_workers=workers,
        )
        # Dataclass equality *and* identical (stable) ordering.
        assert parallel == serial

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_wait_time_table_parity(self, workers):
        serial = run_wait_time_table(
            "max", workloads=["ANL"], algorithms=("fcfs", "lwf"), n_jobs=N_JOBS
        )
        parallel = run_wait_time_table(
            "max",
            workloads=["ANL"],
            algorithms=("fcfs", "lwf"),
            n_jobs=N_JOBS,
            max_workers=workers,
        )
        assert parallel == serial

    def test_trace_objects_with_provenance(self):
        from repro.workloads.archive import load_paper_workload

        trace = load_paper_workload("SDSC95", n_jobs=N_JOBS)
        serial = run_scheduling_table("actual", workloads=[trace], algorithms=("lwf",))
        parallel = run_scheduling_table(
            "actual", workloads=[trace], algorithms=("lwf",), max_workers=2
        )
        assert parallel == serial

    def test_trace_without_provenance_rejected(self, small_trace):
        with pytest.raises(ValueError, match="provenance"):
            run_scheduling_table(
                "actual", workloads=[small_trace], algorithms=("lwf",), max_workers=2
            )

    def test_merged_metrics_equal_sum_of_cell_snapshots(self):
        plan = ExperimentPlan.for_table(
            "scheduling",
            "actual",
            workloads=WORKLOADS,
            algorithms=ALGORITHMS,
            n_jobs=N_JOBS,
        )
        run = run_table_parallel(plan, max_workers=2)
        assert not run.failures
        expected = merge_snapshots(*(c.metrics for c in run.cells))
        merged = run.merged_metrics()
        assert merged["counters"] == expected["counters"]
        assert merged["histograms"] == expected["histograms"]

    def test_parallel_metrics_totals_match_serial(self):
        serial = run_scheduling_table(
            "actual", workloads=WORKLOADS, algorithms=ALGORITHMS, n_jobs=N_JOBS
        )
        plan = ExperimentPlan.for_table(
            "scheduling",
            "actual",
            workloads=WORKLOADS,
            algorithms=ALGORITHMS,
            n_jobs=N_JOBS,
        )
        run = run_table_parallel(plan, max_workers=4)
        serial_counters = merge_snapshots(*(c.metrics for c in serial))["counters"]
        assert run.merged_metrics()["counters"] == serial_counters


# ----------------------------------------------------------------------
# plan / spec construction
# ----------------------------------------------------------------------
class TestPlan:
    def test_plan_orders_workload_outer_algorithm_inner(self):
        plan = ExperimentPlan.for_table(
            "scheduling", "max", workloads=["ANL", "CTC"], algorithms=("lwf", "backfill")
        )
        assert [(s.workload, s.algorithm) for s in plan.cells] == [
            ("ANL", "lwf"),
            ("ANL", "backfill"),
            ("CTC", "lwf"),
            ("CTC", "backfill"),
        ]

    def test_grid_plan_matches_cli_row_order(self):
        plan = ExperimentPlan.for_grid(
            "scheduling",
            workloads=("ANL", "CTC"),
            algorithms=("lwf",),
            predictors=("actual", "max"),
        )
        assert [(s.workload, s.predictor) for s in plan.cells] == [
            ("ANL", "actual"),
            ("ANL", "max"),
            ("CTC", "actual"),
            ("CTC", "max"),
        ]

    def test_spec_validates(self):
        with pytest.raises(ValueError, match="kind"):
            CellSpec("tables", "ANL", "lwf", "max")
        with pytest.raises(ValueError, match="workload"):
            CellSpec("scheduling", "NERSC", "lwf", "max")

    def test_execute_cell_inline_equals_serial_driver(self):
        spec = CellSpec("scheduling", "ANL", "lwf", "actual", n_jobs=N_JOBS)
        [serial] = run_scheduling_table(
            "actual", workloads=["ANL"], algorithms=("lwf",), n_jobs=N_JOBS
        )
        assert execute_cell(spec) == serial


# ----------------------------------------------------------------------
# failure paths
# ----------------------------------------------------------------------
class TestFailures:
    def _plan(self, algorithms=ALGORITHMS):
        return ExperimentPlan.for_table(
            "scheduling",
            "actual",
            workloads=["ANL"],
            algorithms=algorithms,
            n_jobs=N_JOBS,
        )

    def test_worker_exception_becomes_cell_failure(self):
        run = run_table_parallel(
            self._plan(), max_workers=2, retries=0, cell_fn=_raise_for_lwf
        )
        by_algo = {r.spec.algorithm: r for r in run.results}
        assert by_algo["backfill"].ok  # the healthy cell still completed
        failed = by_algo["lwf"]
        assert not failed.ok
        assert failed.failure.kind == "error"
        assert "injected failure" in failed.failure.error
        assert failed.failure.attempts == 1
        # The run as a whole survives: one result slot per planned cell.
        assert len(run.results) == 2
        assert len(run.failures) == 1

    def test_retry_budget_is_bounded(self):
        run = run_table_parallel(
            self._plan(("lwf",)), max_workers=1, retries=2, cell_fn=_always_raise
        )
        [result] = run.results
        assert result.failure is not None
        assert result.failure.attempts == 3  # initial try + 2 retries
        assert result.attempts == 3

    def test_retry_then_succeed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        run = run_table_parallel(
            self._plan(("lwf",)), max_workers=1, retries=1, cell_fn=_fail_first_attempt
        )
        [result] = run.results
        assert result.ok
        assert result.attempts == 2
        [serial] = run_scheduling_table(
            "actual", workloads=["ANL"], algorithms=("lwf",), n_jobs=N_JOBS
        )
        assert result.cell == serial

    def test_timeout_becomes_cell_failure(self):
        run = run_table_parallel(
            self._plan(("lwf",)),
            max_workers=1,
            timeout=0.4,
            retries=0,
            cell_fn=_stall,
        )
        [result] = run.results
        assert not result.ok
        assert result.failure.kind == "timeout"
        assert result.duration_s >= 0.4

    def test_table_driver_raises_on_failures(self):
        plan_error = ParallelExecutionError(
            run_table_parallel(
                self._plan(("lwf",)), max_workers=1, retries=0, cell_fn=_always_raise
            ).failures
        )
        assert "lwf" in str(plan_error)
        assert plan_error.failures[0].kind == "error"

    def test_error_message_names_coordinates_and_retries(self):
        failures = run_table_parallel(
            self._plan(), max_workers=1, retries=2, cell_fn=_always_raise
        ).failures
        message = str(ParallelExecutionError(failures))
        assert message.startswith("2 cell(s) failed:")
        for algo in ALGORITHMS:
            assert f"ANL/{algo}/actual" in message
        assert "error after 3 attempt(s) (2 retries)" in message
        assert "always fails" in message

    def test_error_message_includes_misprediction_error_model(self):
        spec = CellSpec(
            "misprediction", "ANL", "backfill", "actual",
            error_kind="multiplicative", error_level=0.5,
        )
        assert spec.describe() == (
            "ANL/backfill/actual [multiplicative error, level=0.5]"
        )
        from repro.core.parallel import CellFailure

        message = str(ParallelExecutionError(
            [CellFailure(spec=spec, kind="timeout",
                         error="cell exceeded 1.0s", attempts=1)]
        ))
        assert "multiplicative error, level=0.5" in message
        assert "timeout after 1 attempt(s) (0 retries)" in message


# ----------------------------------------------------------------------
# campaign telemetry through the driver
# ----------------------------------------------------------------------
class TestTelemetry:
    def _plan(self):
        return ExperimentPlan.for_table(
            "scheduling",
            "actual",
            workloads=["ANL"],
            algorithms=ALGORITHMS,
            n_jobs=N_JOBS,
        )

    def test_telemetered_run_is_bit_identical_and_journals(self, tmp_path):
        from repro.obs.campaign import CampaignTelemetry, check_campaign_journal
        from repro.obs.schema import read_jsonl

        plain = run_table_parallel(self._plan(), max_workers=2)
        journal = tmp_path / "campaign.jsonl"
        with CampaignTelemetry(str(journal)) as telemetry:
            telemetered = run_table_parallel(
                self._plan(), max_workers=2, telemetry=telemetry
            )
        # The science is identical; only the observability differs.
        assert [r.cell for r in telemetered.results] == [
            r.cell for r in plain.results
        ]
        assert all(r.resources is None for r in plain.results)
        for r in telemetered.results:
            assert r.resources is not None
            assert r.resources.pid > 0
            assert r.resources.wall_s > 0
        events = read_jsonl(str(journal))
        stats = check_campaign_journal(events)
        assert stats["cells_total"] == len(self._plan())
        assert stats["cells_done"] == len(self._plan())
        assert stats["cells_failed"] == 0
        dispatched = [e for e in events if e["type"] == "cell_dispatched"]
        assert {(e["workload"], e["algorithm"], e["predictor"])
                for e in dispatched} == {
            ("ANL", a, "actual") for a in ALGORITHMS
        }

    def test_telemetry_journals_failures_and_retries(self, tmp_path):
        from repro.obs.campaign import CampaignTelemetry, check_campaign_journal
        from repro.obs.schema import read_jsonl

        journal = tmp_path / "failing.jsonl"
        with CampaignTelemetry(str(journal)) as telemetry:
            run = run_table_parallel(
                self._plan(), max_workers=2, retries=1,
                cell_fn=_raise_for_lwf, telemetry=telemetry,
            )
        assert len(run.failures) == 1
        events = read_jsonl(str(journal))
        stats = check_campaign_journal(events)
        assert stats["cells_done"] == 1 and stats["cells_failed"] == 1
        retried = [e for e in events if e["type"] == "cell_retried"]
        assert len(retried) == 1
        [failed] = [e for e in events if e["type"] == "cell_failed"]
        assert failed["kind"] == "error"
        assert failed["attempts"] == 2
        assert failed["algorithm"] == "lwf"

    def test_telemetry_default_off_leaves_no_resources(self):
        run = run_table_parallel(self._plan(), max_workers=2)
        assert all(r.resources is None for r in run.results)

    def test_monitor_sees_live_state_without_sink(self):
        from repro.obs.campaign import CampaignTelemetry

        telemetry = CampaignTelemetry()  # no journal, monitor only
        run = run_table_parallel(
            self._plan(), max_workers=2, telemetry=telemetry
        )
        assert not run.failures
        assert telemetry.monitor.cells_done == len(self._plan())
        assert telemetry.monitor.finished_wall is not None
        assert telemetry.monitor.utilization() > 0
