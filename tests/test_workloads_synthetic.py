"""Tests for repro.workloads.synthetic: generator structure and calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.timeutils import HOUR, MINUTE
from repro.workloads.stats import offered_load
from repro.workloads.synthetic import (
    QueueSpec,
    SyntheticWorkloadSpec,
    generate_trace,
    make_paragon_queues,
)


def _spec(**kw) -> SyntheticWorkloadSpec:
    base = dict(
        name="test",
        total_nodes=64,
        n_jobs=600,
        mean_run_time=60 * MINUTE,
        offered_load=0.5,
        n_users=20,
    )
    base.update(kw)
    return SyntheticWorkloadSpec(**base)


class TestSpecValidation:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            _spec(n_jobs=0)

    def test_rejects_silly_load(self):
        with pytest.raises(ValueError):
            _spec(offered_load=2.0)

    def test_rejects_negative_mean(self):
        with pytest.raises(ValueError):
            _spec(mean_run_time=-1.0)

    def test_rejects_repeat_prob_one(self):
        with pytest.raises(ValueError):
            _spec(repeat_prob=1.0)


class TestGeneration:
    def test_deterministic(self):
        spec = _spec()
        a = generate_trace(spec, seed=7)
        b = generate_trace(spec, seed=7)
        assert [j.submit_time for j in a] == [j.submit_time for j in b]
        assert [j.run_time for j in a] == [j.run_time for j in b]
        assert [j.user for j in a] == [j.user for j in b]

    def test_seed_changes_output(self):
        spec = _spec()
        a = generate_trace(spec, seed=1)
        b = generate_trace(spec, seed=2)
        assert [j.run_time for j in a] != [j.run_time for j in b]

    def test_job_count_and_override(self):
        spec = _spec()
        assert len(generate_trace(spec, seed=0)) == 600
        assert len(generate_trace(spec, seed=0, n_jobs=50)) == 50

    def test_nodes_within_machine(self):
        trace = generate_trace(_spec(), seed=0)
        assert all(1 <= j.nodes <= 64 for j in trace)

    def test_mean_run_time_near_target(self):
        trace = generate_trace(_spec(n_jobs=3000), seed=0)
        mean = np.mean([j.run_time for j in trace])
        # Clipping pulls the mean somewhat below target; require the ballpark.
        assert 0.7 * 60 * MINUTE <= mean <= 1.3 * 60 * MINUTE

    def test_offered_load_near_target(self):
        trace = generate_trace(_spec(n_jobs=3000), seed=1)
        assert offered_load(trace) == pytest.approx(0.5, abs=0.12)

    def test_repeated_app_runs_have_similar_run_times(self):
        """The structural property history predictors rely on."""
        trace = generate_trace(_spec(n_jobs=2000, has_executable=True), seed=3)
        by_app: dict[str, list[float]] = {}
        for j in trace:
            by_app.setdefault(j.executable, []).append(j.run_time)
        big = [v for v in by_app.values() if len(v) >= 10]
        assert big, "expected repeatedly-run applications"
        # Within-app spread must be well below the trace-wide spread.
        within = np.mean([np.std(np.log(v)) for v in big])
        overall = np.std(np.log([j.run_time for j in trace]))
        assert within < 0.75 * overall

    def test_max_run_time_bounds_run_time(self):
        trace = generate_trace(_spec(has_max_run_time=True), seed=0)
        for j in trace:
            assert j.max_run_time is not None
            assert j.max_run_time >= j.run_time

    def test_no_max_run_time_when_disabled(self):
        trace = generate_trace(_spec(has_max_run_time=False), seed=0)
        assert all(j.max_run_time is None for j in trace)

    def test_types_assigned(self):
        trace = generate_trace(
            _spec(
                job_types=("batch", "interactive"),
                interactive_type="interactive",
                interactive_fraction=0.3,
            ),
            seed=0,
        )
        kinds = {j.job_type for j in trace}
        assert kinds == {"batch", "interactive"}
        inter = [j for j in trace if j.job_type == "interactive"]
        batch = [j for j in trace if j.job_type == "batch"]
        assert np.mean([j.run_time for j in inter]) < np.mean(
            [j.run_time for j in batch]
        )

    def test_queue_limits_respected(self):
        queues = make_paragon_queues(64)
        trace = generate_trace(_spec(queues=queues), seed=0)
        by_name = {q.name: q for q in queues}
        for j in trace:
            q = by_name[j.queue]
            assert j.nodes <= q.max_nodes
            assert j.run_time <= q.max_run_time + 1e-6

    def test_submit_times_sorted_nonnegative(self):
        trace = generate_trace(_spec(), seed=0)
        times = [j.submit_time for j in trace]
        assert times == sorted(times)
        assert times[0] >= 0.0

    def test_script_field(self):
        trace = generate_trace(_spec(has_script=True), seed=0)
        assert all(j.script and j.script.endswith(".ll") for j in trace)

    def test_arguments_only_with_flag(self):
        with_args = generate_trace(
            _spec(has_executable=True, has_arguments=True), seed=0
        )
        assert any(j.arguments for j in with_args)
        without = generate_trace(_spec(has_executable=True), seed=0)
        assert all(j.arguments is None for j in without)


class TestParagonQueues:
    def test_queue_count_in_paper_range(self):
        queues = make_paragon_queues(400)
        assert 29 <= len(queues) <= 35

    def test_names_unique(self):
        queues = make_paragon_queues(400)
        assert len({q.name for q in queues}) == len(queues)

    def test_admits(self):
        q = QueueSpec("q16m", 16, 4 * HOUR)
        assert q.admits(16, 4 * HOUR)
        assert not q.admits(17, 1.0)
        assert not q.admits(1, 5 * HOUR)

    def test_covers_machine(self):
        queues = make_paragon_queues(400)
        assert max(q.max_nodes for q in queues) == 400
