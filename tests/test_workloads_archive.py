"""Tests for repro.workloads.archive: the four paper workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.timeutils import MINUTE
from repro.workloads.archive import PAPER_WORKLOADS, load_paper_workload
from repro.workloads.fields import WORKLOAD_FIELDS

#: Table 1 of the paper: (total nodes, requests, mean run time minutes).
_TABLE1 = {
    "ANL": (80, 7994, 97.75),
    "CTC": (512, 13217, 171.14),
    "SDSC95": (400, 22885, 108.21),
    "SDSC96": (400, 22337, 166.98),
}


class TestSpecs:
    def test_names(self):
        assert set(PAPER_WORKLOADS) == set(_TABLE1)

    @pytest.mark.parametrize("name", sorted(_TABLE1))
    def test_table1_parameters(self, name):
        nodes, requests, mean_rt = _TABLE1[name]
        spec = PAPER_WORKLOADS[name]
        assert spec.total_nodes == nodes
        assert spec.n_jobs == requests
        assert spec.mean_run_time == pytest.approx(mean_rt * MINUTE)

    def test_anl_uses_80_nodes_not_120(self):
        # The paper's footnote: the trace lost a third of its requests, so
        # simulations run against 80 nodes.
        assert PAPER_WORKLOADS["ANL"].total_nodes == 80

    def test_sdsc_has_queues_ctc_anl_do_not(self):
        assert PAPER_WORKLOADS["SDSC95"].queues
        assert PAPER_WORKLOADS["SDSC96"].queues
        assert not PAPER_WORKLOADS["ANL"].queues
        assert not PAPER_WORKLOADS["CTC"].queues

    def test_max_run_times_per_table2(self):
        assert PAPER_WORKLOADS["ANL"].has_max_run_time
        assert PAPER_WORKLOADS["CTC"].has_max_run_time
        assert not PAPER_WORKLOADS["SDSC95"].has_max_run_time
        assert not PAPER_WORKLOADS["SDSC96"].has_max_run_time


class TestLoad:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            load_paper_workload("LANL")

    def test_scaled_load(self):
        trace = load_paper_workload("CTC", n_jobs=100)
        assert len(trace) == 100
        assert trace.total_nodes == 512

    def test_available_fields_stamped(self):
        trace = load_paper_workload("ANL", n_jobs=50)
        assert trace.available_fields == WORKLOAD_FIELDS["ANL"].available

    def test_deterministic_by_default(self):
        a = load_paper_workload("SDSC96", n_jobs=80)
        b = load_paper_workload("SDSC96", n_jobs=80)
        assert [j.run_time for j in a] == [j.run_time for j in b]

    def test_seed_override(self):
        a = load_paper_workload("SDSC96", n_jobs=80, seed=1)
        b = load_paper_workload("SDSC96", n_jobs=80, seed=2)
        assert [j.run_time for j in a] != [j.run_time for j in b]

    def test_sdsc_years_differ(self):
        a = load_paper_workload("SDSC95", n_jobs=80)
        b = load_paper_workload("SDSC96", n_jobs=80)
        assert [j.run_time for j in a] != [j.run_time for j in b]

    @pytest.mark.parametrize("name", sorted(_TABLE1))
    def test_fields_match_table2(self, name, request):
        trace = load_paper_workload(name, n_jobs=200)
        catalog = WORKLOAD_FIELDS[name]
        sample = trace[0]
        assert (sample.user is not None) == ("u" in catalog)
        assert (sample.queue is not None) == ("q" in catalog)
        assert (sample.executable is not None) == ("e" in catalog)
        assert (sample.script is not None) == ("s" in catalog)
        assert (sample.max_run_time is not None) == catalog.has_max_run_time

    def test_mean_run_time_ordering_matches_table1(self):
        # CTC and SDSC96 are the long-job workloads; SDSC95 and ANL shorter.
        means = {
            name: np.mean([j.run_time for j in load_paper_workload(name, n_jobs=1500)])
            for name in _TABLE1
        }
        assert means["CTC"] > means["SDSC95"]
        assert means["SDSC96"] > means["SDSC95"]
