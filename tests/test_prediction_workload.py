"""Tests for recorded prediction workloads (§2.1 methodology)."""

from __future__ import annotations

import pytest

from repro.predictors.ga import GAConfig, TemplateSearch
from repro.predictors.prediction_workload import (
    Insertion,
    PredictionRequest,
    PredictionWorkload,
    record_prediction_workload,
    replay_workload_error,
)
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template
from tests.conftest import make_job


@pytest.fixture(scope="module")
def anl_small():
    from repro.workloads.archive import load_paper_workload

    return load_paper_workload("ANL", n_jobs=200)


class TestRecording:
    def test_every_job_inserted_once(self, anl_small):
        wl = record_prediction_workload(anl_small, "lwf")
        inserted = [e.job.job_id for e in wl.events if isinstance(e, Insertion)]
        assert sorted(inserted) == sorted(j.job_id for j in anl_small)

    def test_events_time_ordered(self, anl_small):
        wl = record_prediction_workload(anl_small, "backfill")
        times = [e.time for e in wl.events]
        assert times == sorted(times)

    def test_backfill_requests_include_running_jobs(self, anl_small):
        """Backfill predicts running jobs (elapsed > 0); LWF does not."""
        bf = record_prediction_workload(anl_small, "backfill")
        lwf = record_prediction_workload(anl_small, "lwf")
        bf_elapsed = [
            e.elapsed
            for e in bf.events
            if isinstance(e, PredictionRequest) and e.elapsed > 0
        ]
        lwf_elapsed = [
            e.elapsed
            for e in lwf.events
            if isinstance(e, PredictionRequest) and e.elapsed > 0
        ]
        assert bf_elapsed  # conditions on elapsed time
        assert not lwf_elapsed  # only waiting jobs are predicted

    def test_fcfs_generates_no_requests(self, anl_small):
        """FCFS never consults run-time estimates."""
        wl = record_prediction_workload(anl_small, "fcfs")
        assert wl.n_requests == 0
        assert wl.n_insertions == len(anl_small)

    def test_backfill_heavier_than_lwf(self, anl_small):
        """Backfill predicts strictly more (running + waiting jobs)."""
        bf = record_prediction_workload(anl_small, "backfill")
        lwf = record_prediction_workload(anl_small, "lwf")
        assert bf.n_requests >= lwf.n_requests

    def test_name_encodes_pair(self, anl_small):
        wl = record_prediction_workload(anl_small, "lwf")
        assert wl.name == "ANL/lwf"


class TestSubsample:
    def _workload(self, n_req=10, n_ins=4):
        events = []
        for i in range(n_req):
            events.append(
                PredictionRequest(job=make_job(job_id=i + 1), elapsed=0.0,
                                  time=float(i))
            )
            if i % 3 == 0 and i // 3 < n_ins:
                events.append(Insertion(job=make_job(job_id=100 + i), time=float(i)))
        return PredictionWorkload(name="w", events=tuple(events))

    def test_caps_requests_keeps_insertions(self):
        wl = self._workload()
        sub = wl.subsample(4)
        assert sub.n_requests == 4
        assert sub.n_insertions == wl.n_insertions

    def test_noop_when_under_cap(self):
        wl = self._workload()
        assert wl.subsample(100) is wl

    def test_validation(self):
        with pytest.raises(ValueError):
            self._workload().subsample(0)


class TestReplayWorkloadError:
    def test_oracle_zero_error(self, anl_small):
        wl = record_prediction_workload(anl_small, "lwf")
        assert replay_workload_error(wl, ActualRuntimePredictor()) == pytest.approx(0.0)

    def test_smith_beats_max_on_recorded_stream(self, anl_small):
        wl = record_prediction_workload(anl_small, "backfill")
        smith_err = replay_workload_error(
            wl, SmithPredictor.for_trace(anl_small)
        )
        max_err = replay_workload_error(
            wl, MaxRuntimePredictor.from_trace(anl_small)
        )
        assert smith_err < max_err

    def test_empty_workload(self):
        wl = PredictionWorkload(name="empty", events=())
        assert replay_workload_error(wl, ActualRuntimePredictor()) == 0.0

    def test_insertions_affect_later_requests(self):
        job_hist = make_job(job_id=1, user="a", run_time=100.0)
        job_hist2 = make_job(job_id=2, user="a", run_time=120.0)
        probe = make_job(job_id=3, user="a", run_time=110.0)
        wl = PredictionWorkload(
            name="w",
            events=(
                Insertion(job=job_hist, time=0.0),
                Insertion(job=job_hist2, time=1.0),
                PredictionRequest(job=probe, elapsed=0.0, time=2.0),
            ),
        )
        err = replay_workload_error(
            wl, SmithPredictor([Template(characteristics=("u",))])
        )
        assert err == pytest.approx(0.0)  # mean(100, 120) == 110


class TestGAWithPredictionWorkload:
    def test_search_runs_on_recorded_stream(self, anl_small):
        wl = record_prediction_workload(anl_small, "backfill")
        cfg = GAConfig(population=6, generations=2, eval_jobs=150, seed=0)
        search = TemplateSearch(anl_small, config=cfg, prediction_workload=wl)
        templates, history = search.run()
        assert 1 <= len(templates) <= 10
        assert len(history.best_errors) == 2
        assert history.best_errors[-1] <= history.best_errors[0] + 1e-9
