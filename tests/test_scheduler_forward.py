"""Tests for forward simulation (the wait-time prediction engine)."""

from __future__ import annotations

import pytest

from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.simulator import (
    QueuedJob,
    RunningJob,
    SystemSnapshot,
    forward_simulate,
)
from tests.conftest import make_job


def snap(now=0.0, running=(), queued=(), total_nodes=10):
    return SystemSnapshot(
        now=now,
        running=tuple(RunningJob(j, s) for j, s in running),
        queued=tuple(QueuedJob(j) for j in queued),
        total_nodes=total_nodes,
    )


class TestForwardSimulate:
    def test_immediate_start_when_machine_free(self):
        target = make_job(job_id=1, submit_time=0.0, nodes=4, run_time=100.0)
        s = snap(queued=[target])
        start = forward_simulate(s, FCFSPolicy(), {1: 100.0}, 1)
        assert start == 0.0

    def test_waits_for_predicted_completion(self):
        running = make_job(job_id=1, submit_time=0.0, nodes=10, run_time=999.0)
        target = make_job(job_id=2, submit_time=50.0, nodes=10, run_time=10.0)
        s = snap(now=50.0, running=[(running, 0.0)], queued=[target])
        # Predicted total 200 s for the running job, started at 0: ends 200.
        start = forward_simulate(s, FCFSPolicy(), {1: 200.0, 2: 10.0}, 2)
        assert start == pytest.approx(200.0)

    def test_elapsed_subtracted_from_running_prediction(self):
        running = make_job(job_id=1, submit_time=0.0, nodes=10, run_time=999.0)
        target = make_job(job_id=2, submit_time=80.0, nodes=10, run_time=10.0)
        s = snap(now=80.0, running=[(running, 0.0)], queued=[target])
        # 200 s total prediction, 80 already elapsed: 120 remain.
        start = forward_simulate(s, FCFSPolicy(), {1: 200.0, 2: 10.0}, 2)
        assert start == pytest.approx(200.0)

    def test_prediction_shorter_than_elapsed_clamped(self):
        running = make_job(job_id=1, submit_time=0.0, nodes=10, run_time=999.0)
        target = make_job(job_id=2, submit_time=300.0, nodes=10, run_time=10.0)
        s = snap(now=300.0, running=[(running, 0.0)], queued=[target])
        # Predicted 100 s but it has already run 300: treated as ending now.
        start = forward_simulate(s, FCFSPolicy(), {1: 100.0, 2: 10.0}, 2)
        assert start == pytest.approx(300.0, abs=1e-3)

    def test_fcfs_respects_queue_ahead(self):
        ahead = make_job(job_id=1, submit_time=0.0, nodes=10, run_time=500.0)
        target = make_job(job_id=2, submit_time=1.0, nodes=1, run_time=10.0)
        s = snap(now=1.0, queued=[ahead, target])
        start = forward_simulate(s, FCFSPolicy(), {1: 500.0, 2: 10.0}, 2)
        assert start == pytest.approx(501.0)

    def test_lwf_lets_target_jump_ahead(self):
        ahead = make_job(job_id=1, submit_time=0.0, nodes=10, run_time=500.0)
        target = make_job(job_id=2, submit_time=1.0, nodes=10, run_time=10.0)
        s = snap(now=1.0, queued=[ahead, target])
        start = forward_simulate(s, LWFPolicy(), {1: 500.0, 2: 10.0}, 2)
        assert start == pytest.approx(1.0)

    def test_backfill_prediction_uses_scheduler_estimates(self):
        """Durations and scheduler estimates are decoupled.

        The running job truly ends at 100 (duration), but the scheduler
        believes 500 (estimate) and so reserves the 8-wide head at t=500;
        the 4-node target (believed 300 s) backfills at once.
        """
        running = make_job(job_id=1, submit_time=0.0, nodes=6, run_time=100.0)
        head = make_job(job_id=2, submit_time=1.0, nodes=8, run_time=100.0)
        target = make_job(job_id=3, submit_time=2.0, nodes=4, run_time=300.0)
        s = snap(now=2.0, running=[(running, 0.0)], queued=[head, target])
        durations = {1: 100.0, 2: 100.0, 3: 300.0}
        estimates = {1: 500.0, 2: 100.0, 3: 300.0}
        start = forward_simulate(
            s, BackfillPolicy(), durations, 3, estimates=estimates
        )
        assert start == pytest.approx(2.0)
        # With self-consistent estimates the backfill would delay the head
        # (ends 100, target holds 4 nodes to 302), so the target waits.
        start2 = forward_simulate(s, BackfillPolicy(), durations, 3)
        assert start2 > 2.0

    def test_missing_target_prediction_raises(self):
        target = make_job(job_id=1, submit_time=0.0, nodes=4)
        s = snap(queued=[target])
        with pytest.raises(KeyError, match="target"):
            forward_simulate(s, FCFSPolicy(), {}, 1)

    def test_no_future_arrivals_interfere(self):
        # Only snapshot jobs exist; target starts as soon as they clear.
        r1 = make_job(job_id=1, submit_time=0.0, nodes=5, run_time=50.0)
        r2 = make_job(job_id=2, submit_time=0.0, nodes=5, run_time=80.0)
        target = make_job(job_id=3, submit_time=10.0, nodes=10, run_time=5.0)
        s = snap(now=10.0, running=[(r1, 0.0), (r2, 0.0)], queued=[target])
        start = forward_simulate(s, FCFSPolicy(), {1: 50.0, 2: 80.0, 3: 5.0}, 3)
        assert start == pytest.approx(80.0)

    def test_matches_real_simulation_for_fcfs_with_truth(self):
        """With exact durations and no later arrivals, the forward sim
        reproduces the real FCFS start time."""
        from repro.predictors.base import PointEstimator
        from repro.predictors.simple import ActualRuntimePredictor
        from repro.scheduler.simulator import Simulator
        from repro.workloads.job import Trace

        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=120.0, nodes=7),
            make_job(job_id=2, submit_time=5.0, run_time=60.0, nodes=7),
            make_job(job_id=3, submit_time=6.0, run_time=30.0, nodes=7),
        ]
        trace = Trace(jobs, total_nodes=10)
        sim = Simulator(FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), 10)
        res = sim.run(trace)
        # Reconstruct the snapshot at job 3's submission by hand.
        s = snap(
            now=6.0,
            running=[(jobs[0], 0.0)],
            queued=[jobs[1], jobs[2]],
        )
        start = forward_simulate(
            s, FCFSPolicy(), {1: 120.0, 2: 60.0, 3: 30.0}, 3
        )
        assert start == pytest.approx(res[3].start_time)
