"""Property-based tests of simulator invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.scheduler.policies import (
    BackfillPolicy,
    EASYBackfillPolicy,
    FCFSPolicy,
    LWFPolicy,
)
from repro.scheduler.policies.backfill import AvailabilityProfile
from repro.scheduler.simulator import Simulator
from repro.workloads.job import Job, Trace

TOTAL_NODES = 16


@st.composite
def traces(draw, max_jobs=14):
    n = draw(st.integers(1, max_jobs))
    jobs = []
    for i in range(n):
        submit = draw(st.floats(0.0, 1000.0))
        run = draw(st.floats(0.0, 500.0))
        nodes = draw(st.integers(1, TOTAL_NODES))
        max_rt = draw(
            st.one_of(st.none(), st.floats(1.0, 2000.0).map(lambda v: v + run))
        )
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=submit,
                run_time=run,
                nodes=nodes,
                user=draw(st.sampled_from(["a", "b", "c"])),
                max_run_time=max_rt,
            )
        )
    return Trace(jobs, total_nodes=TOTAL_NODES)


POLICIES = [FCFSPolicy, LWFPolicy, BackfillPolicy, EASYBackfillPolicy]


@pytest.mark.parametrize("policy_cls", POLICIES)
@given(trace=traces())
@settings(max_examples=40, deadline=None)
def test_property_schedule_invariants(policy_cls, trace):
    """Every policy: all jobs run once, capacity and causality hold."""
    sim = Simulator(
        policy_cls(), PointEstimator(ActualRuntimePredictor()), TOTAL_NODES
    )
    res = sim.run(trace)
    assert len(res) == len(trace)
    assert res.max_concurrent_nodes() <= TOTAL_NODES
    for job in trace:
        rec = res[job.job_id]
        assert rec.start_time >= job.submit_time
        assert rec.finish_time == pytest.approx(rec.start_time + job.run_time)


@given(trace=traces())
@settings(max_examples=30, deadline=None)
def test_property_fcfs_start_order_follows_arrival(trace):
    sim = Simulator(FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), TOTAL_NODES)
    res = sim.run(trace)
    recs = sorted(res.records, key=lambda r: (r.submit_time, r.job_id))
    starts = [r.start_time for r in recs]
    assert all(a <= b + 1e-9 for a, b in zip(starts, starts[1:]))


@given(trace=traces())
@settings(max_examples=30, deadline=None)
def test_property_backfill_never_worse_than_fcfs_makespan(trace):
    """Conservative backfill with exact estimates can only tighten the
    schedule relative to FCFS (it starts a job early only when no earlier
    arrival is delayed)."""
    fcfs = Simulator(
        FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), TOTAL_NODES
    ).run(trace)
    bf = Simulator(
        BackfillPolicy(), PointEstimator(ActualRuntimePredictor()), TOTAL_NODES
    ).run(trace)
    assert bf.makespan <= fcfs.makespan + 1e-6


@given(trace=traces())
@settings(max_examples=25, deadline=None)
def test_property_estimator_choice_never_breaks_invariants(trace):
    """Even wildly wrong estimates must never violate capacity."""
    sim = Simulator(
        BackfillPolicy(), PointEstimator(MaxRuntimePredictor()), TOTAL_NODES
    )
    res = sim.run(trace)
    assert res.max_concurrent_nodes() <= TOTAL_NODES
    assert len(res) == len(trace)


@st.composite
def profile_ops(draw):
    total = draw(st.integers(2, 32))
    free = draw(st.integers(0, total))
    releases = draw(
        st.lists(
            st.tuples(st.floats(0.0, 1000.0), st.integers(1, 8)), max_size=6
        )
    )
    return total, free, releases


@given(
    ops=profile_ops(),
    nodes=st.integers(1, 8),
    duration=st.floats(0.0, 500.0),
)
@settings(max_examples=80, deadline=None)
def test_property_profile_earliest_start_is_feasible(ops, nodes, duration):
    total, free, releases = ops
    profile = AvailabilityProfile(0.0, free, total)
    budget = total - free
    for t, n in releases:
        n = min(n, budget)
        if n <= 0:
            continue
        budget -= n
        profile.add_release(t, n)
    if nodes > total:
        return
    # Feasible iff some tail of the profile reaches `nodes` free; inside
    # the backfill policy this always holds (every busy node has a
    # release), but the API must fail loudly otherwise.
    if max(profile.free) < nodes:
        with pytest.raises(RuntimeError, match="no feasible start"):
            profile.earliest_start(nodes, duration)
        return
    start = profile.earliest_start(nodes, duration)
    # Feasibility: enough free nodes across the whole window.
    for t in np.linspace(start, start + max(duration - 1e-9, 0.0), 7):
        assert profile.free_at(float(t)) >= nodes
    # Carving the result must not overcommit.
    profile.carve(start, duration, nodes)
