"""Tests for the online prediction service (repro.service).

The two load-bearing properties:

- **Incremental snapshot parity** — the service's event-fed mirror of
  scheduler state equals a from-scratch :meth:`Simulator.snapshot`
  after *any* replay prefix (hypothesis-generated traces, policies and
  stop points).
- **Epoch-cache bit-identity** — a cached answer equals the uncached
  :func:`repro.waitpred.predictor.predict_wait` computation exactly
  (``==``, not approx), and repeated queries between events are served
  from the cache.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.simulator import Simulator
from repro.service import (
    PredictionServer,
    PredictionService,
    ServiceClient,
    SimulatorFeed,
    UnknownJobError,
    job_from_wire,
    job_to_wire,
)
from repro.waitpred.predictor import predict_wait
from repro.workloads.job import Job, Trace
from tests.conftest import make_job

TOTAL = 12

_POLICIES = (FCFSPolicy, BackfillPolicy, LWFPolicy)


def _estimator() -> PointEstimator:
    return PointEstimator(MaxRuntimePredictor(), default=300.0)


def _service(policy, *, total=TOTAL, **kwargs) -> PredictionService:
    return PredictionService(policy, _estimator(), total, **kwargs)


@st.composite
def traces(draw):
    """A random small trace: contention guaranteed by tight arrivals."""
    n = draw(st.integers(2, 12))
    jobs = []
    t = 0.0
    for jid in range(1, n + 1):
        t += draw(st.floats(0.0, 30.0))
        jobs.append(
            Job(
                job_id=jid,
                submit_time=t,
                run_time=draw(st.floats(1.0, 300.0)),
                nodes=draw(st.integers(1, TOTAL)),
                max_run_time=draw(st.floats(1.0, 600.0)),
            )
        )
    return Trace(jobs, total_nodes=TOTAL, name="svc-prop")


class TestSnapshotParity:
    @given(trace=traces(), policy_idx=st.integers(0, len(_POLICIES) - 1),
           stop_frac=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_property_incremental_equals_fresh_snapshot(
        self, trace, policy_idx, stop_frac
    ):
        """After any replay prefix the mirrored state is the state."""
        policy = _POLICIES[policy_idx]()
        svc = _service(policy)
        sim = Simulator(_POLICIES[policy_idx](), _estimator(), TOTAL)
        sim.add_observer(SimulatorFeed(svc))
        span = max(j.submit_time for j in trace.jobs) + 600.0
        sim.run(trace, until_time=stop_frac * span)
        # The simulator clock advances past the last event (to the stop
        # instant); mirror that with a tick, which must change nothing
        # but the timestamp.
        if sim.now > svc.now:
            svc.tick(sim.now)
        assert svc.snapshot() == sim.snapshot()
        # Continue to the end: parity again after the remaining events.
        sim.run()
        if sim.now > svc.now:
            svc.tick(sim.now)
        assert svc.snapshot() == sim.snapshot()
        assert not svc.queued_ids and not svc.running_ids

    def test_feed_tracks_full_replay(self, anl_trace):
        from repro.workloads.transform import compress_interarrival, head

        trace = compress_interarrival(head(anl_trace, 120), 50.0)
        policy = BackfillPolicy()
        svc = PredictionService(policy, _estimator(), trace.total_nodes)
        sim = Simulator(BackfillPolicy(), _estimator(), trace.total_nodes)
        sim.add_observer(SimulatorFeed(svc))
        last_submit = max(j.submit_time for j in trace.jobs)
        sim.run(trace, until_time=last_submit)
        assert svc.snapshot() == sim.snapshot()
        assert svc.queued_ids  # the compressed prefix leaves a live queue
        assert svc.epoch == svc.stats()["counters"]["service.events"]


class TestEventValidation:
    def test_duplicate_submit_rejected(self):
        svc = _service(FCFSPolicy())
        svc.submit(make_job(job_id=1), 0.0)
        with pytest.raises(ValueError, match="already submitted"):
            svc.submit(make_job(job_id=1), 1.0)

    def test_start_requires_queued(self):
        svc = _service(FCFSPolicy())
        with pytest.raises(UnknownJobError):
            svc.start(7, 0.0)

    def test_finish_requires_running(self):
        svc = _service(FCFSPolicy())
        svc.submit(make_job(job_id=1), 0.0)
        with pytest.raises(UnknownJobError):
            svc.finish(1, 1.0)

    def test_clock_must_not_run_backwards(self):
        svc = _service(FCFSPolicy())
        svc.submit(make_job(job_id=1), 10.0)
        with pytest.raises(ValueError, match="precedes"):
            svc.submit(make_job(job_id=2), 5.0)

    def test_every_event_bumps_epoch(self):
        svc = _service(FCFSPolicy())
        assert svc.epoch == 0
        svc.submit(make_job(job_id=1, nodes=2), 0.0)
        svc.start(1, 1.0)
        svc.finish(1, 2.0)
        assert svc.epoch == 3


class TestPredictions:
    def _loaded(self, policy) -> PredictionService:
        svc = _service(policy)
        svc.submit(make_job(job_id=1, nodes=TOTAL, run_time=100.0,
                            max_run_time=200.0), 0.0)
        svc.start(1, 0.0)
        for jid, nodes in ((2, 4), (3, 8), (4, 2)):
            svc.submit(
                make_job(job_id=jid, nodes=nodes, run_time=50.0,
                         max_run_time=100.0),
                float(jid),
            )
        return svc

    @pytest.mark.parametrize("policy_cls", _POLICIES)
    def test_cached_equals_uncached_predict_wait(self, policy_cls):
        svc = self._loaded(policy_cls())
        for jid in svc.queued_ids:
            got = svc.predict(jid)
            fresh = predict_wait(
                svc.snapshot(), svc.policy, svc.estimator, jid
            )
            assert got == fresh  # bit-identical, not approx
            assert svc.predict(jid) == got  # and stable across repeats

    @pytest.mark.parametrize("policy_cls", _POLICIES)
    def test_batch_bit_identical_to_singles(self, policy_cls):
        svc = self._loaded(policy_cls())
        singles = {jid: svc.predict(jid) for jid in svc.queued_ids}
        assert svc.predict_batch() == singles
        assert svc.predict_batch(list(svc.queued_ids)) == singles

    def test_running_and_finished_answer_zero(self):
        svc = self._loaded(BackfillPolicy())
        assert svc.predict(1) == 0.0  # running
        svc.finish(1, 10.0)
        assert svc.predict(1) == 0.0  # finished

    def test_unknown_job_raises(self):
        svc = self._loaded(BackfillPolicy())
        with pytest.raises(UnknownJobError) as exc:
            svc.predict(99)
        assert exc.value.job_id == 99
        with pytest.raises(UnknownJobError):
            svc.predict_batch([2, 99])

    def test_repeat_queries_hit_cache(self):
        svc = self._loaded(BackfillPolicy())
        n = len(svc.queued_ids)
        for _ in range(5):
            svc.predict_batch()
        stats = svc.stats()["counters"]
        assert stats["service.queries"] == 5 * n
        assert stats["service.cache_misses"] == 1  # one warm per epoch
        assert stats["service.cache_hits"] == 5 * n - 1
        assert stats["service.fallback_simulations"] == 0

    def test_event_invalidates_cache(self):
        svc = self._loaded(BackfillPolicy())
        svc.predict_batch()
        svc.submit(make_job(job_id=5, nodes=1, run_time=10.0,
                            max_run_time=20.0), 20.0)
        svc.predict_batch()
        assert svc.stats()["counters"]["service.cache_misses"] == 2

    def test_volatile_estimator_disables_cache(self):
        policy = BackfillPolicy()
        svc = PredictionService(
            policy,
            PointEstimator(MaxRuntimePredictor(), default=300.0, volatile=True),
            TOTAL,
        )
        svc.submit(make_job(job_id=1, nodes=TOTAL, run_time=100.0,
                            max_run_time=200.0), 0.0)
        svc.start(1, 0.0)
        svc.submit(make_job(job_id=2, nodes=4, run_time=50.0,
                            max_run_time=100.0), 1.0)
        first = svc.predict(2)
        assert svc.predict(2) == first  # identical, just recomputed
        stats = svc.stats()["counters"]
        assert stats["service.cache_misses"] == 2
        assert stats["service.cache_hits"] == 0

    def test_lwf_counts_fallback_simulations(self):
        svc = self._loaded(LWFPolicy())
        svc.predict_batch()
        stats = svc.stats()["counters"]
        assert stats["service.fallback_simulations"] == len(svc.queued_ids)

    def test_shortcut_policies_never_fall_back(self):
        for policy_cls in (FCFSPolicy, BackfillPolicy):
            svc = self._loaded(policy_cls())
            svc.predict_batch()
            assert (
                svc.stats()["counters"]["service.fallback_simulations"] == 0
            )

    def test_latency_histogram_populated(self):
        svc = self._loaded(BackfillPolicy())
        svc.predict_batch()
        hist = svc.stats()["histograms"]["service.query_latency_seconds"]
        assert hist["count"] == 1
        svc.predict(2)
        assert (
            svc.stats()["histograms"]["service.query_latency_seconds"]["count"]
            == 2
        )


class TestWireFormat:
    def test_job_round_trip(self):
        job = make_job(job_id=7, submit_time=3.0, run_time=60.0, nodes=5,
                       max_run_time=120.0, queue="batch")
        back = job_from_wire(job_to_wire(job))
        assert back.job_id == 7 and back.nodes == 5
        assert back.max_run_time == 120.0 and back.queue == "batch"

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing fields"):
            job_from_wire({"job_id": 1})


class TestServer:
    @pytest.fixture
    def server(self):
        svc = _service(BackfillPolicy())
        server = PredictionServer(("127.0.0.1", 0), svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def _client(self, server) -> ServiceClient:
        return ServiceClient("127.0.0.1", server.port)

    def test_round_trip_matches_in_process(self, server):
        with self._client(server) as client:
            assert client.ping()
            client.submit(make_job(job_id=1, nodes=TOTAL, run_time=100.0,
                                   max_run_time=200.0), 0.0)
            client.start(1, 0.0)
            client.submit(make_job(job_id=2, nodes=4, run_time=50.0,
                                   max_run_time=100.0), 1.0)
            remote = client.predict(2)
            local = predict_wait(
                server.service.snapshot(),
                server.service.policy,
                server.service.estimator,
                2,
            )
            assert remote == local
            assert client.predict_batch() == {2: remote}
            state = client.state()
            assert state["queued"] == [2] and state["running"] == [1]
            assert client.stats()["counters"]["service.queries"] >= 2

    def test_batch_events(self, server):
        job = make_job(job_id=3, nodes=2, run_time=10.0, max_run_time=20.0)
        with self._client(server) as client:
            applied = client.send_events([
                {"event": "submit", "job": job_to_wire(job), "now": 0.0},
                {"event": "start", "job_id": 3, "now": 1.0},
                {"event": "finish", "job_id": 3, "now": 2.0},
            ])
            assert applied == 3
            assert client.predict(3) == 0.0  # finished

    def test_unknown_job_crosses_the_wire(self, server):
        with self._client(server) as client:
            with pytest.raises(UnknownJobError) as exc:
                client.predict(404)
            assert exc.value.job_id == 404

    def test_bad_requests_answer_errors(self, server):
        with self._client(server) as client:
            with pytest.raises(RuntimeError, match="unknown op"):
                client.call({"op": "frobnicate"})
            with pytest.raises(RuntimeError):
                client.call({"op": "submit", "job": {"job_id": 1}, "now": 0.0})
            assert client.ping()  # connection survives error responses
