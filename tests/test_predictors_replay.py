"""Tests for the online replay scorer."""

from __future__ import annotations

import pytest

from repro.predictors.replay import replay_prediction_error
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template
from repro.workloads.job import Trace
from tests.conftest import make_job


class TestReplay:
    def test_oracle_has_zero_error(self, anl_trace):
        report = replay_prediction_error(anl_trace, ActualRuntimePredictor())
        assert report.mean_abs_error == pytest.approx(0.0)
        assert report.n_predicted == report.n_jobs

    def test_max_error_positive(self, anl_trace):
        report = replay_prediction_error(
            anl_trace, MaxRuntimePredictor.from_trace(anl_trace)
        )
        assert report.mean_abs_error > 0.0

    def test_causality_first_job_is_fallback(self):
        """A job's prediction may not use its own or later completions."""
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=100.0),
            make_job(job_id=2, submit_time=10.0, run_time=100.0),
            # Submitted after job 1 completes (t=100): history available.
            make_job(job_id=3, submit_time=150.0, run_time=100.0),
        ]
        trace = Trace(jobs, total_nodes=8)
        smith = SmithPredictor([Template(characteristics=("u",))])
        report = replay_prediction_error(trace, smith)
        # Jobs 1 and 2 predate any completion and fall back; job 3 sees
        # both completions (t=100 and t=110 under the zero-wait model)
        # and is served by history with zero error.
        assert report.n_predicted == 1
        assert report.n_fallback == 2

    def test_history_accumulates_across_replay(self):
        jobs = [
            make_job(job_id=i, submit_time=i * 200.0, run_time=100.0)
            for i in range(1, 6)
        ]
        trace = Trace(jobs, total_nodes=8)
        smith = SmithPredictor([Template(characteristics=("u",))])
        report = replay_prediction_error(trace, smith)
        # Jobs 3.. see >= 2 completed similar jobs (complete at 100+i*200).
        assert report.n_predicted == 3
        # Only job 1 errs (default fallback 600 vs 100 -> 500); job 2 hits
        # the completed-mean fallback (exactly 100) and the rest history.
        assert report.mean_abs_error == pytest.approx(500.0 / 5.0)

    def test_error_fraction_metric(self):
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=100.0, max_run_time=300.0),
            make_job(job_id=2, submit_time=1.0, run_time=100.0, max_run_time=300.0),
        ]
        trace = Trace(jobs, total_nodes=8)
        report = replay_prediction_error(trace, MaxRuntimePredictor())
        assert report.mean_abs_error == pytest.approx(200.0)
        assert report.error_fraction_of_mean_run_time == pytest.approx(2.0)
        assert report.mean_abs_error_minutes == pytest.approx(200.0 / 60.0)

    def test_smith_improves_with_structure(self, anl_trace):
        """More specific template sets beat the global mean alone."""
        global_only = replay_prediction_error(
            anl_trace, SmithPredictor([Template()])
        )
        structured = replay_prediction_error(
            anl_trace, SmithPredictor.for_trace(anl_trace)
        )
        assert structured.mean_abs_error < global_only.mean_abs_error
