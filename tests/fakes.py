"""Test doubles for scheduler components."""

from __future__ import annotations

from repro.scheduler.simulator import QueuedJob, RunningJob
from repro.workloads.job import Job


class FakeView:
    """A hand-built SchedulerView for unit-testing policies.

    ``estimates`` maps job_id -> estimated total run time; jobs without
    an entry default to their actual run time.
    """

    def __init__(
        self,
        *,
        now: float = 0.0,
        total_nodes: int = 10,
        free_nodes: int | None = None,
        queued: list[Job] | None = None,
        running: list[tuple[Job, float]] | None = None,
        estimates: dict[int, float] | None = None,
    ) -> None:
        self.now = now
        self.total_nodes = total_nodes
        self.queued = [QueuedJob(j) for j in (queued or [])]
        self.running = [RunningJob(j, s) for j, s in (running or [])]
        used = sum(r.job.nodes for r in self.running)
        self.free_nodes = (
            free_nodes if free_nodes is not None else total_nodes - used
        )
        self._estimates = estimates or {}

    def estimate(self, qj: QueuedJob) -> float:
        return self._estimates.get(qj.job_id, qj.job.run_time)

    def remaining(self, rj: RunningJob) -> float:
        est = self._estimates.get(rj.job_id, rj.job.run_time)
        return max(est - rj.elapsed(self.now), 1e-6)
