"""Tests for queue wait-time prediction (repro.waitpred)."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.scheduler.metrics import JobRecord, ScheduleResult
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.simulator import Simulator
from repro.waitpred.evaluation import evaluate_wait_predictions
from repro.waitpred.predictor import WaitTimePredictor
from repro.workloads.job import Trace
from tests.conftest import make_job


def run_with_observer(trace, policy, predictor, scheduler_predictor=None):
    estimator = PointEstimator(scheduler_predictor or ActualRuntimePredictor())
    sim = Simulator(policy, estimator, trace.total_nodes)
    obs = WaitTimePredictor(policy, predictor, scheduler_estimator=estimator)
    sim.add_observer(obs)
    result = sim.run(trace)
    return result, obs


class TestWaitTimePredictor:
    def test_prediction_for_every_job(self, small_trace):
        result, obs = run_with_observer(
            small_trace, FCFSPolicy(), ActualRuntimePredictor()
        )
        assert set(obs.predicted_waits) == {1, 2, 3, 4, 5}

    def test_fcfs_with_actual_runtimes_exact(self, small_trace):
        """Table 4's premise: FCFS + oracle => zero wait-time error."""
        result, obs = run_with_observer(
            small_trace, FCFSPolicy(), ActualRuntimePredictor()
        )
        for rec in result.records:
            assert obs.predicted_waits[rec.job_id] == pytest.approx(
                rec.wait_time, abs=1e-3
            )

    def test_fcfs_oracle_exact_on_synthetic(self, anl_trace):
        result, obs = run_with_observer(
            anl_trace, FCFSPolicy(), ActualRuntimePredictor()
        )
        report = evaluate_wait_predictions(result, obs.predicted_waits)
        assert report.mean_abs_error == pytest.approx(0.0, abs=1e-6)

    def test_lwf_oracle_error_from_later_arrivals(self):
        """A later, smaller job jumps ahead: wait predicted at submission
        cannot see it (the paper's built-in LWF error)."""
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=1000.0, nodes=10),
            make_job(job_id=2, submit_time=1.0, run_time=500.0, nodes=10),
            make_job(job_id=3, submit_time=2.0, run_time=10.0, nodes=10),
        ]
        trace = Trace(jobs, total_nodes=10)
        result, obs = run_with_observer(trace, LWFPolicy(), ActualRuntimePredictor())
        # Job 2 predicted to start at t=1000; actually job 3 (less work)
        # runs first, so job 2 starts at 1010.
        assert obs.predicted_waits[2] == pytest.approx(999.0)
        assert result[2].wait_time == pytest.approx(1009.0)

    def test_predictions_nonnegative(self, anl_trace):
        result, obs = run_with_observer(
            anl_trace, BackfillPolicy(), MaxRuntimePredictor.from_trace(anl_trace)
        )
        assert all(w >= 0.0 for w in obs.predicted_waits.values())

    def test_observer_predictor_learns_from_completions(self):
        """History-based predictor inside the observer must see finishes."""
        from repro.predictors.smith import SmithPredictor
        from repro.predictors.templates import Template

        jobs = [
            make_job(job_id=i, submit_time=i * 2000.0, run_time=1000.0, nodes=10)
            for i in range(1, 5)
        ]
        trace = Trace(jobs, total_nodes=10)
        smith = SmithPredictor([Template(characteristics=("u",))])
        result, obs = run_with_observer(trace, FCFSPolicy(), smith)
        assert smith.predict(make_job()) is not None  # history accrued


class TestEvaluation:
    def _result(self):
        return ScheduleResult(
            [
                JobRecord(job_id=1, submit_time=0.0, start_time=60.0,
                          finish_time=100.0, nodes=1),
                JobRecord(job_id=2, submit_time=0.0, start_time=120.0,
                          finish_time=200.0, nodes=1),
            ],
            total_nodes=4,
        )

    def test_error_and_percent(self):
        report = evaluate_wait_predictions(self._result(), {1: 0.0, 2: 120.0})
        # errors: |0-60|=60, |120-120|=0; mean 30 s; mean wait 90 s.
        assert report.mean_abs_error == pytest.approx(30.0)
        assert report.mean_wait == pytest.approx(90.0)
        assert report.percent_of_mean_wait == pytest.approx(100.0 * 30.0 / 90.0)
        assert report.mean_abs_error_minutes == pytest.approx(0.5)

    def test_median_and_p90(self):
        report = evaluate_wait_predictions(self._result(), {1: 0.0, 2: 120.0})
        # abs errors: [60, 0] -> median 30 s; p90 = 54 s (linear interp).
        assert report.median_abs_error == pytest.approx(30.0)
        assert report.p90_abs_error == pytest.approx(54.0)
        assert report.median_abs_error_minutes == pytest.approx(0.5)
        assert report.p90_abs_error_minutes == pytest.approx(0.9)

    def test_missing_prediction_raises(self):
        with pytest.raises(KeyError, match="job 2"):
            evaluate_wait_predictions(self._result(), {1: 0.0})

    def test_zero_mean_wait_guard(self):
        res = ScheduleResult(
            [JobRecord(job_id=1, submit_time=0.0, start_time=0.0,
                       finish_time=10.0, nodes=1)],
            total_nodes=4,
        )
        report = evaluate_wait_predictions(res, {1: 0.0})
        assert report.percent_of_mean_wait == 0.0
        assert report.median_abs_error == 0.0
        assert report.p90_abs_error == 0.0

    def test_empty_result(self):
        res = ScheduleResult([], total_nodes=4)
        report = evaluate_wait_predictions(res, {})
        assert report.n_jobs == 0
        assert report.mean_abs_error == 0.0
        assert report.median_abs_error == 0.0
        assert report.p90_abs_error == 0.0
        assert report.percent_of_mean_wait == 0.0
