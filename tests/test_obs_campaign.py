"""Campaign telemetry: monitor, journal, resource capture, kill-safety.

The SIGKILL test runs a real parallel campaign in a subprocess and
kills it mid-run — the acceptance gate for the journal's role as a
checkpoint/resume substrate.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.campaign import (
    MIN_STRAGGLER_SAMPLES,
    CampaignCheckError,
    CampaignMonitor,
    CampaignTelemetry,
    CellResources,
    ProgressRenderer,
    capture_resources,
    check_campaign_journal,
    read_campaign_journal,
    resource_probe,
    summarize_campaign,
)
from repro.obs.schema import TraceSchemaError, validate_events


# ----------------------------------------------------------------------
# synthetic event feeds
# ----------------------------------------------------------------------
def _started(t=0.0, total=4, workers=2, cid="c1"):
    return {
        "type": "campaign_started", "wall_time": t, "campaign_id": cid,
        "cells_total": total, "max_workers": workers,
    }


def _dispatched(i, t, attempt=1, cid="c1", **coords):
    return {
        "type": "cell_dispatched", "wall_time": t, "campaign_id": cid,
        "cell_index": i, "attempt": attempt, **coords,
    }


def _finished(i, t, duration, cid="c1", **extra):
    return {
        "type": "cell_finished", "wall_time": t, "campaign_id": cid,
        "cell_index": i, "duration_s": duration, **extra,
    }


def _failed(i, t, cid="c1", kind="error", error="boom", attempts=1):
    return {
        "type": "cell_failed", "wall_time": t, "campaign_id": cid,
        "cell_index": i, "kind": kind, "error": error, "attempts": attempts,
    }


def _done(t, done, failed=0, cid="c1"):
    return {
        "type": "campaign_finished", "wall_time": t, "campaign_id": cid,
        "cells_done": done, "cells_failed": failed, "duration_s": t,
    }


def _simple_feed():
    return [
        _started(0.0, total=3),
        _dispatched(0, 0.1, workload="ANL", algorithm="lwf", predictor="max"),
        _dispatched(1, 0.1),
        _finished(0, 1.1, 1.0, cpu_s=0.8, max_rss_kb=50_000, pid=11),
        _dispatched(2, 1.1),
        _finished(1, 2.1, 2.0, cpu_s=1.5, max_rss_kb=60_000, pid=12),
        _failed(2, 3.0, attempts=2),
        _done(3.0, done=2, failed=1),
    ]


# ----------------------------------------------------------------------
# resource capture
# ----------------------------------------------------------------------
class TestResources:
    def test_capture_measures_wall_cpu_rss(self):
        probe = resource_probe()
        deadline = time.perf_counter() + 0.05
        while time.perf_counter() < deadline:  # burn a little CPU
            sum(range(1000))
        res = capture_resources(probe)
        assert res.wall_s >= 0.05
        assert res.cpu_s >= 0.0
        assert res.max_rss_kb > 0  # POSIX CI boxes always report RSS
        assert res.pid == os.getpid()

    def test_as_fields_round_trips_into_events(self):
        res = CellResources(wall_s=1.0, cpu_s=0.5, max_rss_kb=1024, pid=42)
        fields = res.as_fields()
        assert fields == {"cpu_s": 0.5, "max_rss_kb": 1024, "pid": 42}


# ----------------------------------------------------------------------
# streaming monitor
# ----------------------------------------------------------------------
class TestMonitor:
    def test_counts_and_completion(self):
        m = CampaignMonitor.from_events(_simple_feed())
        assert m.cells_total == 3
        assert m.cells_done == 2
        assert m.cells_failed == 1
        assert m.cells_remaining == 0
        assert m.finished_wall is not None
        assert m.completed == {0: 1.0, 1: 2.0}
        assert m.failed == {2: "boom"}
        assert m.coords[0] == "ANL/lwf/max"

    def test_throughput_eta_utilization(self):
        m = CampaignMonitor.from_events(_simple_feed()[:-2])  # mid-campaign
        # 2 cells done over 2.1s of campaign time
        assert m.throughput_cells_per_s() == pytest.approx(2 / 2.1)
        # 1 remaining at that rate
        assert m.eta_s() == pytest.approx(2.1 / 2)
        # 3.0s of cell wall time over 2.1s * 2 workers
        assert m.utilization() == pytest.approx(3.0 / (2.1 * 2))
        assert m.worker_busy == {11: 1.0, 12: 2.0}

    def test_quantiles_and_median(self):
        m = CampaignMonitor()
        m.observe(_started(total=10))
        for i, d in enumerate([0.1] * 9 + [10.0]):
            m.observe(_dispatched(i, float(i)))
            m.observe(_finished(i, float(i) + d, d))
        assert m.median_duration() == pytest.approx(0.1)
        assert m.duration_quantile(0.5) <= 0.25
        assert m.duration_quantile(0.99) > 5.0

    def test_stragglers_need_min_samples(self):
        m = CampaignMonitor()
        m.observe(_started(total=10))
        for i in range(MIN_STRAGGLER_SAMPLES - 1):
            m.observe(_dispatched(i, float(i)))
            m.observe(_finished(i, float(i), 0.1 if i else 99.0))
        assert m.stragglers() == []

    def test_stragglers_finished_and_running(self):
        m = CampaignMonitor()
        m.observe(_started(total=10))
        for i in range(5):
            m.observe(_dispatched(i, float(i)))
            m.observe(_finished(i, float(i) + 0.1, 1.0))
        # a finished cell far beyond 3x median...
        m.observe(_dispatched(5, 5.0))
        m.observe(_finished(5, 15.0, 10.0))
        # ...and a running cell already over the threshold
        m.observe(_dispatched(6, 6.0, workload="CTC", algorithm="lwf",
                              predictor="max"))
        m.observe({"type": "cell_heartbeat", "wall_time": 30.0,
                   "campaign_id": "c1", "cells_done": 6, "cells_running": 1})
        stragglers = m.stragglers()
        assert [s["cell_index"] for s in stragglers] == [5, 6]
        assert stragglers[0]["running"] is False
        assert stragglers[1]["running"] is True
        assert stragglers[1]["cell"] == "CTC/lwf/max"
        assert stragglers[1]["duration_s"] == pytest.approx(24.0)

    def test_retry_requeues_cell(self):
        m = CampaignMonitor()
        m.observe(_started(total=1))
        m.observe(_dispatched(0, 0.1))
        m.observe({"type": "cell_retried", "wall_time": 0.5,
                   "campaign_id": "c1", "cell_index": 0, "attempt": 1})
        assert m.running == {}
        m.observe(_dispatched(0, 0.6, attempt=2))
        m.observe(_finished(0, 1.0, 0.4))
        snap = m.snapshot()
        assert snap["cells_retried"] == 1
        assert snap["cells_done"] == 1

    def test_non_campaign_events_ignored(self):
        m = CampaignMonitor()
        m.observe({"type": "job_started", "wall_time": 1.0, "job_id": 1,
                   "sim_time": 0.0, "wait_s": 0.0})
        assert m.cells_total == 0 and m.last_wall is None

    def test_snapshot_is_json_serializable(self):
        snap = CampaignMonitor.from_events(_simple_feed()).snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["complete"] is True
        assert parsed["metrics"]["counters"]["campaign.cells_finished"] == 2

    def test_straggler_factor_validated(self):
        with pytest.raises(ValueError, match="straggler_factor"):
            CampaignMonitor(straggler_factor=1.0)


# ----------------------------------------------------------------------
# progress rendering
# ----------------------------------------------------------------------
class TestProgress:
    def test_line_reflects_state(self):
        m = CampaignMonitor.from_events(_simple_feed())
        line = ProgressRenderer(io.StringIO()).line_for(m)
        assert "2/3 cells" in line
        assert "1 FAILED" in line

    def test_rate_limit_and_force(self):
        stream = io.StringIO()
        r = ProgressRenderer(stream, min_interval_s=3600.0)
        m = CampaignMonitor.from_events(_simple_feed())
        r.update(m)  # first render always goes through after construction?
        first = stream.getvalue()
        r.update(m)  # inside the interval: dropped
        assert stream.getvalue() == first
        r.update(m, force=True)
        assert len(stream.getvalue()) > len(first)

    def test_finish_terminates_line(self):
        stream = io.StringIO()
        r = ProgressRenderer(stream, min_interval_s=0.0)
        r.finish(CampaignMonitor.from_events(_simple_feed()))
        assert stream.getvalue().endswith("\n")


# ----------------------------------------------------------------------
# telemetry emitter + journal
# ----------------------------------------------------------------------
class TestTelemetry:
    def _run_campaign(self, path):
        with CampaignTelemetry(str(path), heartbeat_s=1e-6) as t:
            t.campaign_started(cells_total=2, max_workers=2)
            t.cell_dispatched(0, attempt=1, workload="ANL",
                              algorithm="lwf", predictor="max")
            t.cell_dispatched(1, attempt=1)
            t.cell_finished(
                0, duration_s=0.5, attempt=1,
                resources=CellResources(0.5, 0.4, 2048, 7),
                workload="ANL", algorithm="lwf", predictor="max",
            )
            t.heartbeat(running=1)
            t.cell_retried(1, attempt=1, error="flaky")
            t.cell_dispatched(1, attempt=2)
            t.cell_failed(1, kind="error", error="boom", attempts=2)
            t.campaign_finished()
        return t

    def test_journal_is_schema_valid_and_checkable(self, tmp_path):
        path = tmp_path / "c.jsonl"
        self._run_campaign(path)
        events = read_campaign_journal(str(path), strict=True)
        assert validate_events(events) == len(events)
        stats = check_campaign_journal(events)
        assert stats == {
            "events": len(events), "cells_total": 2,
            "cells_done": 1, "cells_failed": 1,
        }
        assert [e["type"] for e in events][0] == "campaign_started"
        assert events[3]["cpu_s"] == 0.4
        assert events[3]["max_rss_kb"] == 2048

    def test_monitor_tracks_emissions_live(self, tmp_path):
        t = self._run_campaign(tmp_path / "c.jsonl")
        assert t.monitor.cells_done == 1
        assert t.monitor.cells_failed == 1
        assert t.monitor.finished_wall is not None

    def test_no_sink_still_monitors(self):
        with CampaignTelemetry() as t:
            t.campaign_started(cells_total=1, max_workers=1)
            t.cell_dispatched(0, attempt=1)
            t.cell_finished(0, duration_s=0.1, attempt=1)
            t.campaign_finished()
        assert t.monitor.cells_done == 1

    def test_heartbeat_is_rate_limited(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignTelemetry(str(path), heartbeat_s=3600.0) as t:
            t.campaign_started(cells_total=1, max_workers=1)
            for _ in range(50):
                t.heartbeat(running=1)
        beats = [
            e for e in read_campaign_journal(str(path))
            if e["type"] == "cell_heartbeat"
        ]
        assert len(beats) == 1  # only the first slips through

    def test_campaign_ids_are_unique(self):
        assert CampaignTelemetry().campaign_id != CampaignTelemetry().campaign_id

    def test_bad_heartbeat_rejected(self):
        with pytest.raises(ValueError, match="heartbeat_s"):
            CampaignTelemetry(heartbeat_s=0.0)


# ----------------------------------------------------------------------
# offline analysis
# ----------------------------------------------------------------------
class TestJournalAnalysis:
    def test_summarize_builds_cell_manifest(self):
        events = [
            _started(0.0, total=4),
            _dispatched(0, 0.1, workload="ANL", algorithm="lwf",
                        predictor="max"),
            _dispatched(1, 0.1),
            _finished(0, 1.0, 0.9),
            _dispatched(2, 1.0),
            _failed(1, 1.5),
            # cell 2 dispatched but never finished; cell 3 never dispatched
        ]
        summary = summarize_campaign(events)
        assert not summary["complete"]
        assert [c["cell_index"] for c in summary["cells"]["completed"]] == [0]
        assert summary["cells"]["completed"][0]["cell"] == "ANL/lwf/max"
        assert [c["cell_index"] for c in summary["cells"]["failed"]] == [1]
        assert [
            c["cell_index"] for c in summary["cells"]["dispatched_unfinished"]
        ] == [2]

    def test_check_accepts_coherent_journal(self):
        stats = check_campaign_journal(_simple_feed())
        assert stats["cells_done"] == 2 and stats["cells_failed"] == 1

    def test_check_rejects_empty(self):
        with pytest.raises(CampaignCheckError, match="empty"):
            check_campaign_journal([])

    def test_check_rejects_wrong_opening(self):
        with pytest.raises(CampaignCheckError, match="campaign_started"):
            check_campaign_journal([_dispatched(0, 0.1)])

    def test_check_rejects_out_of_range_index(self):
        with pytest.raises(CampaignCheckError, match="outside plan"):
            check_campaign_journal([_started(total=2), _dispatched(5, 0.1)])

    def test_check_rejects_finish_before_dispatch(self):
        with pytest.raises(CampaignCheckError, match="never"):
            check_campaign_journal([_started(total=2), _finished(0, 1.0, 1.0)])

    def test_check_rejects_foreign_campaign_id(self):
        with pytest.raises(CampaignCheckError, match="campaign_id"):
            check_campaign_journal(
                [_started(total=2), _dispatched(0, 0.1, cid="other")]
            )

    def test_check_rejects_incomplete_journal(self):
        with pytest.raises(CampaignCheckError, match="incomplete"):
            check_campaign_journal(
                [_started(total=2), _dispatched(0, 0.1), _finished(0, 1.0, 0.9)]
            )

    def test_check_rejects_tally_mismatch(self):
        with pytest.raises(CampaignCheckError, match="tallies"):
            check_campaign_journal(
                [_started(total=2), _dispatched(0, 0.1),
                 _finished(0, 1.0, 0.9), _done(2.0, done=2)]
            )

    def test_check_rejects_non_campaign_event(self):
        with pytest.raises(CampaignCheckError, match="not a campaign event"):
            check_campaign_journal(
                [_started(total=1),
                 {"type": "span", "wall_time": 0.1, "name": "x",
                  "duration_s": 0.1}]
            )

    def test_torn_tail_dropped_leniently_raised_strictly(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        lines = [json.dumps(e) for e in _simple_feed()]
        path.write_text("\n".join(lines) + "\n" + lines[0][: len(lines[0]) // 2])
        events = read_campaign_journal(str(path))
        assert len(events) == len(lines)
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            read_campaign_journal(str(path), strict=True)


# ----------------------------------------------------------------------
# kill-safety: the acceptance gate
# ----------------------------------------------------------------------
_KILLED_CAMPAIGN_SCRIPT = """
import sys, time
from repro.core.parallel import ExperimentPlan, execute_cell, run_table_parallel
from repro.obs.campaign import CampaignTelemetry

def cell(spec):
    if spec.workload != "ANL":
        time.sleep(120.0)  # parked until the parent SIGKILLs us
    return execute_cell(spec)

if __name__ == "__main__":
    plan = ExperimentPlan.for_table(
        "scheduling", "actual", workloads=["ANL", "CTC"],
        algorithms=["fcfs"], n_jobs=30,
    )
    telem = CampaignTelemetry(sys.argv[1], heartbeat_s=0.05)
    run_table_parallel(plan, max_workers=2, telemetry=telem, cell_fn=cell)
    telem.close()
"""


class TestKillSafety:
    def test_sigkilled_campaign_journal_replays_exact_cell_sets(self, tmp_path):
        script = tmp_path / "campaign_child.py"
        script.write_text(_KILLED_CAMPAIGN_SCRIPT)
        journal = tmp_path / "killed.jsonl"
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_dir, env.get("PYTHONPATH", "")])
        )
        proc = subprocess.Popen(
            [sys.executable, str(script), str(journal)], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the quick cell's completion hit the journal —
            # the sink flushes per event, so the line is durable.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if journal.exists() and "cell_finished" in journal.read_text():
                    break
                time.sleep(0.02)
            else:
                pytest.fail("campaign never journaled a finished cell")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
            # Reap any stalled pool worker the child left behind.
            subprocess.run(["pkill", "-9", "-f", str(script)], check=False)

        # Whole-line records replay to the exact dispatched/completed sets.
        events = read_campaign_journal(str(journal))
        types = [e["type"] for e in events]
        assert types[0] == "campaign_started"
        assert "campaign_finished" not in types
        summary = summarize_campaign(events)
        assert not summary["complete"]
        completed = {c["cell_index"] for c in summary["cells"]["completed"]}
        unfinished = {
            c["cell_index"] for c in summary["cells"]["dispatched_unfinished"]
        }
        assert completed == {0}  # the ANL cell
        assert unfinished == {1}  # the parked CTC cell
        # The strict gate refuses it, cleanly, as incomplete.
        with pytest.raises(CampaignCheckError, match="incomplete"):
            check_campaign_journal(
                read_campaign_journal(str(journal), strict=True)
            )
