"""Tests for repro.workloads.swf: SWF parsing and round-trip."""

from __future__ import annotations

import io

import pytest

from repro.workloads.swf import job_to_swf_line, parse_swf_lines, read_swf, write_swf
from repro.workloads.job import Trace
from tests.conftest import make_job

_SAMPLE = """\
; Computer: Test SP2
; MaxNodes: 128
1 0 10 300 8 -1 -1 8 600 -1 1 5 1 2 3 1 -1 -1
2 60 -1 120 4 -1 -1 4 -1 -1 1 6 1 -1 -1 -1 -1 -1
3 120 0 0 4 -1 -1 4 900 -1 0 5 1 2 3 1 -1 -1
"""


class TestParse:
    def test_basic_fields(self):
        trace = parse_swf_lines(io.StringIO(_SAMPLE))
        assert trace.total_nodes == 128
        assert len(trace) == 2  # job 3 has run_time 0 and is skipped
        j1 = trace[0]
        assert j1.job_id == 1
        assert j1.submit_time == 0.0
        assert j1.run_time == 300.0
        assert j1.nodes == 8
        assert j1.max_run_time == 600.0
        assert j1.user == "user5"
        assert j1.executable == "app2"
        assert j1.queue == "queue3"
        assert j1.job_class == "class1"

    def test_missing_values_become_none(self):
        trace = parse_swf_lines(io.StringIO(_SAMPLE))
        j2 = trace[1]
        assert j2.max_run_time is None
        assert j2.executable is None
        assert j2.queue is None

    def test_requested_procs_preferred_over_allocated(self):
        line = "1 0 0 100 16 -1 -1 32 -1 -1 1 1 1 1 1 1 -1 -1"
        trace = parse_swf_lines([line], default_nodes=64)
        assert trace[0].nodes == 32

    def test_allocated_used_when_requested_missing(self):
        line = "1 0 0 100 16 -1 -1 -1 -1 -1 1 1 1 1 1 1 -1 -1"
        trace = parse_swf_lines([line], default_nodes=64)
        assert trace[0].nodes == 16

    def test_wrong_field_count_raises(self):
        with pytest.raises(ValueError, match="18 fields"):
            parse_swf_lines(["1 2 3"])

    def test_max_procs_fallback_header(self):
        text = "; MaxProcs: 256\n1 0 0 100 4 -1 -1 4 -1 -1 1 1 1 1 1 1 -1 -1\n"
        trace = parse_swf_lines(io.StringIO(text))
        assert trace.total_nodes == 256

    def test_default_nodes_from_jobs_when_no_header(self):
        line = "1 0 0 100 48 -1 -1 48 -1 -1 1 1 1 1 1 1 -1 -1"
        trace = parse_swf_lines([line])
        assert trace.total_nodes == 48

    def test_blank_lines_skipped(self):
        trace = parse_swf_lines(["", "; MaxNodes: 8", "", ""])
        assert len(trace) == 0


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        jobs = [
            make_job(
                job_id=1,
                submit_time=0.0,
                run_time=300.0,
                nodes=8,
                user="user5",
                executable="app2",
                queue="queue3",
                max_run_time=600.0,
            ),
            make_job(job_id=2, submit_time=60.0, run_time=100.0, nodes=2),
        ]
        trace = Trace(jobs, total_nodes=64, name="rt")
        path = tmp_path / "trace.swf"
        write_swf(trace, path)
        back = read_swf(path)
        assert back.total_nodes == 64
        assert len(back) == 2
        assert back[0].run_time == 300.0
        assert back[0].user == "user5"
        assert back[0].executable == "app2"
        assert back[0].queue == "queue3"
        assert back[0].max_run_time == 600.0
        assert back[1].nodes == 2

    def test_line_has_18_fields(self):
        line = job_to_swf_line(make_job())
        assert len(line.split()) == 18

    def test_write_to_stringio(self):
        trace = Trace([make_job(job_id=1)], total_nodes=8, name="s")
        buf = io.StringIO()
        write_swf(trace, buf)
        text = buf.getvalue()
        assert "; MaxNodes: 8" in text
        assert len(text.strip().splitlines()) == 4  # 3 header + 1 record

    def test_arbitrary_identifier_hashed_stably(self):
        job = make_job(job_id=1, user="wsmith")
        assert job_to_swf_line(job) == job_to_swf_line(job)
