"""Tests for repro.scheduler.cluster and repro.scheduler.events."""

from __future__ import annotations

import pytest

from repro.scheduler.cluster import NodePool
from repro.scheduler.events import FINISH, SUBMIT, EventQueue


class TestNodePool:
    def test_initial_state(self):
        pool = NodePool(16)
        assert pool.total == 16
        assert pool.free == 16
        assert pool.busy == 0

    def test_allocate_release_cycle(self):
        pool = NodePool(10)
        pool.allocate(6)
        assert pool.free == 4
        assert pool.busy == 6
        pool.release(6)
        assert pool.free == 10

    def test_fits(self):
        pool = NodePool(8)
        pool.allocate(5)
        assert pool.fits(3)
        assert not pool.fits(4)
        assert not pool.fits(0)

    def test_overallocate_raises(self):
        pool = NodePool(4)
        with pytest.raises(RuntimeError, match="exceeds"):
            pool.allocate(5)

    def test_overrelease_raises(self):
        pool = NodePool(4)
        pool.allocate(2)
        with pytest.raises(RuntimeError, match="exceeds capacity"):
            pool.release(3)

    def test_allocate_zero_raises(self):
        with pytest.raises(ValueError):
            NodePool(4).allocate(0)

    def test_release_zero_raises(self):
        with pytest.raises(ValueError):
            NodePool(4).release(0)

    def test_rejects_empty_machine(self):
        with pytest.raises(ValueError):
            NodePool(0)


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(30.0, SUBMIT, "c")
        q.push(10.0, SUBMIT, "a")
        q.push(20.0, SUBMIT, "b")
        assert [q.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_finish_before_submit_at_same_time(self):
        q = EventQueue()
        q.push(10.0, SUBMIT, "sub")
        q.push(10.0, FINISH, "fin")
        assert q.pop()[2] == "fin"
        assert q.pop()[2] == "sub"

    def test_insertion_order_tiebreak(self):
        q = EventQueue()
        q.push(5.0, SUBMIT, "first")
        q.push(5.0, SUBMIT, "second")
        assert q.pop()[2] == "first"
        assert q.pop()[2] == "second"

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(42.0, FINISH, None)
        assert q.peek_time() == 42.0
        q.pop()
        assert q.peek_time() is None

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, SUBMIT, None)
        assert len(q) == 1
        assert q

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(0.0, 7, None)

    def test_drain(self):
        q = EventQueue()
        q.push(2.0, SUBMIT, "b")
        q.push(1.0, SUBMIT, "a")
        assert [p for _, _, p in q.drain()] == ["a", "b"]
        assert not q
