"""Tests for bootstrap resampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.bootstrap import bootstrap_mean, bootstrap_mean_difference


class TestBootstrapMean:
    def test_estimate_is_sample_mean(self):
        iv = bootstrap_mean([1.0, 2.0, 3.0, 4.0])
        assert iv.estimate == pytest.approx(2.5)

    def test_interval_brackets_estimate(self):
        rng = np.random.default_rng(0)
        iv = bootstrap_mean(rng.exponential(10.0, size=200))
        assert iv.lo <= iv.estimate <= iv.hi

    def test_interval_covers_true_mean_usually(self):
        rng = np.random.default_rng(1)
        hits = 0
        for s in range(30):
            sample = rng.normal(5.0, 2.0, size=80)
            iv = bootstrap_mean(sample, confidence=0.95, seed=s)
            if iv.lo <= 5.0 <= iv.hi:
                hits += 1
        assert hits >= 25  # ~95% nominal coverage

    def test_interval_shrinks_with_n(self):
        rng = np.random.default_rng(2)
        small = bootstrap_mean(rng.normal(0, 1, 20), seed=0)
        big = bootstrap_mean(rng.normal(0, 1, 2000), seed=0)
        assert (big.hi - big.lo) < (small.hi - small.lo)

    def test_deterministic_by_seed(self):
        data = [1.0, 5.0, 2.0, 9.0]
        assert bootstrap_mean(data, seed=3) == bootstrap_mean(data, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], resamples=5)


class TestBootstrapMeanDifference:
    def test_clear_difference_excludes_zero(self):
        rng = np.random.default_rng(0)
        base = rng.exponential(10.0, size=300)
        a = base + 5.0
        iv = bootstrap_mean_difference(a, base, seed=0)
        assert iv.estimate == pytest.approx(5.0)
        assert iv.excludes_zero()
        assert iv.lo > 0

    def test_no_difference_includes_zero(self):
        rng = np.random.default_rng(1)
        base = rng.exponential(10.0, size=300)
        noise = base + rng.normal(0, 0.5, size=300)
        iv = bootstrap_mean_difference(noise, base, seed=0)
        assert not iv.excludes_zero() or abs(iv.estimate) < 0.2

    def test_pairing_beats_unpaired_width(self):
        """Paired resampling removes the shared between-job variance."""
        rng = np.random.default_rng(2)
        base = rng.exponential(100.0, size=400)  # huge between-job spread
        a = base * 1.02  # tiny consistent 2% effect
        paired = bootstrap_mean_difference(a, base, seed=0)
        assert paired.excludes_zero()  # pairing resolves the 2% effect

    def test_misaligned_samples_rejected(self):
        with pytest.raises(ValueError, match="align"):
            bootstrap_mean_difference([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_difference([], [])
