"""Unit and CLI tests for ``scripts/check_bench_regression.py``."""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO_ROOT, "scripts", "check_bench_regression.py")

_spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
cbr = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cbr)


def sample_emission() -> dict:
    return {
        "bench_jobs": 300,
        "table04": [
            {"Workload": "ANL", "Scheduling Algorithm": "FCFS",
             "Mean Error (minutes)": 10.0, "Percent of Mean Wait": 25.0},
            {"Workload": "CTC", "Scheduling Algorithm": "LWF",
             "Mean Error (minutes)": 4.0, "Percent of Mean Wait": 50.0},
        ],
        "table10": [
            {"Workload": "ANL", "Scheduling Algorithm": "Backfill",
             "Utilization (%)": 60.0, "Mean Wait (minutes)": 30.0},
        ],
        "metrics": {"counters": {"sim.events_processed": 1200}},
        "wall_s": 3.5,
    }


class TestFlatten:
    def test_rows_keyed_by_identity_fields(self):
        flat = dict(cbr.flatten(sample_emission()))
        assert flat["table04[ANL/FCFS].Mean Error (minutes)"] == 10.0
        assert flat["table10[ANL/Backfill].Utilization (%)"] == 60.0
        assert flat["metrics.counters.sim.events_processed"] == 1200.0
        assert flat["bench_jobs"] == 300.0

    def test_row_reorder_is_invisible(self):
        reordered = sample_emission()
        reordered["table04"] = list(reversed(reordered["table04"]))
        assert dict(cbr.flatten(sample_emission())) == dict(cbr.flatten(reordered))

    def test_anonymous_rows_fall_back_to_index(self):
        flat = dict(cbr.flatten({"xs": [{"v": 1.0}, {"v": 2.0}]}))
        assert flat == {"xs[0].v": 1.0, "xs[1].v": 2.0}

    def test_booleans_and_strings_skipped(self):
        assert dict(cbr.flatten({"ok": True, "name": "x", "n": 2})) == {"n": 2.0}


class TestDirectionOf:
    @pytest.mark.parametrize(
        "key, expected",
        [
            ("table04[ANL/FCFS].Mean Error (minutes)", "lower"),
            ("table10[ANL/LWF].Mean Wait (minutes)", "lower"),
            ("table10[ANL/LWF].Utilization (%)", "higher"),
            ("throughput[ANL/Backfill].events_per_s", "higher"),
            ("throughput[ANL/Backfill].wall_s", "ignore"),
            ("tracing_overhead[0].audited_s", "ignore"),
            ("throughput[ANL/Backfill].pass_cost_us", "ignore"),
            ("metrics.counters.sim.events_processed", "info"),
        ],
    )
    def test_classification(self, key, expected):
        assert cbr.direction_of(key) == expected


class TestCompare:
    def test_identical_files_pass(self):
        regressions, notes = cbr.compare(
            sample_emission(), sample_emission(), tolerance=0.05
        )
        assert regressions == []
        assert notes == []

    def test_lower_better_growth_flagged(self):
        current = sample_emission()
        current["table04"][0]["Mean Error (minutes)"] = 11.0  # +10%
        regressions, _ = cbr.compare(sample_emission(), current, tolerance=0.05)
        assert len(regressions) == 1
        assert "Mean Error" in regressions[0]

    def test_improvement_never_flagged(self):
        current = sample_emission()
        current["table04"][0]["Mean Error (minutes)"] = 5.0  # better
        current["table10"][0]["Utilization (%)"] = 70.0  # better
        regressions, _ = cbr.compare(sample_emission(), current, tolerance=0.05)
        assert regressions == []

    def test_higher_better_shrink_flagged(self):
        current = sample_emission()
        current["table10"][0]["Utilization (%)"] = 50.0  # -17%
        regressions, _ = cbr.compare(sample_emission(), current, tolerance=0.05)
        assert len(regressions) == 1
        assert "Utilization" in regressions[0]

    def test_drift_within_tolerance_passes(self):
        current = sample_emission()
        current["table04"][0]["Mean Error (minutes)"] = 10.4  # +4% < 5%
        regressions, _ = cbr.compare(sample_emission(), current, tolerance=0.05)
        assert regressions == []

    def test_wall_clock_noise_ignored(self):
        current = sample_emission()
        current["wall_s"] = 400.0
        regressions, _ = cbr.compare(sample_emission(), current, tolerance=0.05)
        assert regressions == []

    def test_info_keys_reported_as_notes_only(self):
        current = sample_emission()
        current["metrics"]["counters"]["sim.events_processed"] = 9999
        regressions, notes = cbr.compare(
            sample_emission(), current, tolerance=0.05
        )
        assert regressions == []
        assert any("sim.events_processed" in n for n in notes)

    def test_bench_jobs_mismatch_is_hard_error(self):
        current = sample_emission()
        current["bench_jobs"] = 1000
        regressions, _ = cbr.compare(sample_emission(), current, tolerance=0.05)
        assert len(regressions) == 1
        assert "bench_jobs mismatch" in regressions[0]

    def test_missing_baseline_keys_noted(self):
        current = sample_emission()
        del current["table10"]
        regressions, notes = cbr.compare(
            sample_emission(), current, tolerance=0.05
        )
        assert regressions == []
        assert any("missing from current" in n for n in notes)


class TestMain:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", sample_emission())
        cur = self._write(tmp_path, "cur.json", sample_emission())
        assert cbr.main(["--baseline", base, "--current", cur]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        worse = sample_emission()
        worse["table04"][0]["Mean Error (minutes)"] = 20.0
        base = self._write(tmp_path, "base.json", sample_emission())
        cur = self._write(tmp_path, "cur.json", worse)
        assert cbr.main(["--baseline", base, "--current", cur]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_two_on_missing_file(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", sample_emission())
        assert cbr.main(
            ["--baseline", base, "--current", str(tmp_path / "nope.json")]
        ) == 2

    def test_committed_baseline_matches_its_own_copy(self, tmp_path):
        """The in-repo baseline must be self-consistent under the checker."""
        baseline = os.path.join(
            REPO_ROOT, "benchmarks", "baselines", "tables_300.json"
        )
        assert cbr.main(["--baseline", baseline, "--current", baseline]) == 0

    def test_cli_entry_point(self, tmp_path):
        base = self._write(tmp_path, "base.json", sample_emission())
        env = dict(os.environ)
        proc = subprocess.run(
            [sys.executable, SCRIPT, "--baseline", base, "--current", base,
             "--verbose"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "no regressions" in proc.stdout
