"""explain_job / summarize_wait_components on hand-built traces.

The end-to-end invariant (decomposition sums to the realized wait on
every job of a real detail-mode replay) lives in
``tests/test_obs_provenance.py``; these tests pin the arithmetic and
the error surface on events whose answer is known by construction.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    WAIT_COMPONENTS,
    explain_job,
    format_explanation,
    summarize_wait_components,
)


def _event(etype, t, job_id=1, policy="P", **fields):
    return {"type": etype, "wall_time": 0.0, "sim_time": t,
            "job_id": job_id, "policy": policy, **fields}


def _trace():
    """Job 1 waits 100s: 10s unattributed, 30s behind a running job,
    60s behind another queued job's reservation."""
    return [
        _event("job_submitted", 0.0, nodes=8),
        _event("wait_predicted", 0.0, predictor="sb", predicted_wait_s=80.0),
        _event("start_blocked", 10.0, blocker_kind="running_job",
               blocker_id=9, free_nodes=2),
        _event("reservation_binding", 40.0, start_s=95.0,
               blocker_kind="queued_reservation", blocker_id=3),
        # A backfiller that used the hole in front of job 1:
        _event("backfill_hole_used", 50.0, job_id=7, ahead_job_id=1,
               hole_start_s=50.0, hole_end_s=95.0, nodes=2),
        _event("job_started", 100.0, nodes=8, wait_s=100.0),
        _event("prediction_resolved", 100.0, predictor="sb",
               kind="wait_time", predicted_s=80.0, actual_s=100.0,
               error_s=-20.0),
        _event("job_finished", 150.0),
    ]


class TestExplainJob:
    def test_lifecycle_and_decomposition(self):
        exp = explain_job(_trace(), 1)
        assert exp["policy"] == "P"
        assert exp["nodes"] == 8
        assert exp["wait_s"] == 100.0
        assert exp["run_s"] == 50.0
        d = exp["decomposition"]
        assert d["scheduler_latency_s"] == pytest.approx(10.0)
        assert d["blocked_on_running_s"] == pytest.approx(30.0)
        assert d["blocked_on_queue_s"] == pytest.approx(60.0)
        assert d["blocked_on_reservations_s"] == 0.0
        assert sum(d.values()) == pytest.approx(exp["wait_s"], abs=1e-9)

    def test_predictions_paired_with_resolution(self):
        exp = explain_job(_trace(), 1)
        (pred,) = exp["predictions"]
        assert pred["predictor"] == "sb"
        assert pred["predicted_wait_s"] == 80.0
        assert pred["actual_wait_s"] == 100.0
        assert pred["error_s"] == -20.0

    def test_timeline_includes_backfiller_events(self):
        exp = explain_job(_trace(), 1)
        assert any(
            e["type"] == "backfill_hole_used" and e["job_id"] == 7
            for e in exp["timeline"]
        )
        times = [e["sim_time"] for e in exp["timeline"]]
        assert times == sorted(times)

    def test_never_started_job(self):
        events = [_event("job_submitted", 0.0, nodes=4)]
        exp = explain_job(events, 1)
        assert exp["wait_s"] is None
        assert exp["decomposition"] is None
        assert "never started" in format_explanation(exp)

    def test_missing_job_raises(self):
        with pytest.raises(ValueError, match="no events for job 99"):
            explain_job(_trace(), 99)

    def test_ambiguous_policy_raises(self):
        events = _trace() + [
            _event("job_submitted", 0.0, policy="Q", nodes=8)
        ]
        with pytest.raises(ValueError, match="multiple policies"):
            explain_job(events, 1)
        assert explain_job(events, 1, policy="P")["wait_s"] == 100.0

    def test_wrong_policy_raises(self):
        with pytest.raises(ValueError, match="no events under policy"):
            explain_job(_trace(), 1, policy="Q")

    def test_without_provenance_wait_is_all_latency(self):
        events = [
            _event("job_submitted", 0.0, nodes=8),
            _event("job_started", 100.0, nodes=8, wait_s=100.0),
        ]
        d = explain_job(events, 1)["decomposition"]
        assert d["scheduler_latency_s"] == 100.0
        assert sum(d.values()) == 100.0


class TestSummarize:
    def test_matches_per_job_decomposition(self):
        rows = summarize_wait_components(_trace())
        (row,) = rows
        assert row["policy"] == "P"
        assert row["jobs"] == 1
        assert row["total_wait_s"] == pytest.approx(100.0)
        per_job = explain_job(_trace(), 1)["decomposition"]
        for component in WAIT_COMPONENTS:
            assert row[component] == pytest.approx(per_job[component])

    def test_empty_without_provenance(self):
        events = [
            _event("job_submitted", 0.0, nodes=8),
            _event("job_started", 100.0, nodes=8, wait_s=100.0),
        ]
        assert summarize_wait_components(events) == []
        assert summarize_wait_components([]) == []


class TestFormat:
    def test_renders_decomposition_and_timeline(self):
        text = format_explanation(explain_job(_trace(), 1))
        assert "job 1" in text
        assert "wait decomposition" in text
        assert "blocked_on_queue_s" in text
        assert "(60.0%)" in text
        assert "(backfiller)" in text
        assert "predicted wait [sb]" in text

    def test_timeline_can_be_omitted(self):
        text = format_explanation(explain_job(_trace(), 1), timeline=False)
        assert "timeline" not in text
