"""Tests for the genetic-algorithm template search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.ga import (
    GAConfig,
    TemplateGenome,
    TemplateSearch,
    search_templates,
)
from repro.predictors.templates import ESTIMATOR_KINDS, Template


def genome(chars=("u", "e"), has_max=True):
    return TemplateGenome(chars, has_max)


class TestConfig:
    def test_odd_population_rejected(self):
        with pytest.raises(ValueError):
            GAConfig(population=5)

    def test_tiny_population_rejected(self):
        with pytest.raises(ValueError):
            GAConfig(population=2)

    def test_bad_mutation_rate(self):
        with pytest.raises(ValueError):
            GAConfig(mutation_rate=1.5)

    def test_max_templates_cap(self):
        with pytest.raises(ValueError):
            GAConfig(max_templates=11)


class TestGenome:
    def test_bit_width(self):
        g = genome(chars=("u", "e", "a"))
        # 2 est + 1 rel + 3 chars + 1+4 nodes + 1+4 history = 16.
        assert g.bits_per_template == 16

    def test_encode_decode_roundtrip(self):
        g = genome()
        t = Template(
            characteristics=("u",),
            node_range_size=8,
            max_history=64,
            relative=True,
            estimator="log",
        )
        assert g.decode(g.encode(t)) == t

    def test_roundtrip_no_optional_parts(self):
        g = genome()
        t = Template(characteristics=("u", "e"))
        assert g.decode(g.encode(t)) == t

    def test_relative_forced_off_without_max(self):
        g = genome(has_max=False)
        bits = np.zeros(g.bits_per_template, dtype=np.int8)
        bits[2] = 1  # relative flag set
        assert g.decode(bits).relative is False

    def test_node_exponent_clamped(self):
        g = genome()
        t = Template(node_range_size=512)
        bits = g.encode(t)
        decoded = g.decode(bits)
        assert decoded.node_range_size == 512
        # All-ones exponent (15) clamps to 2^9 = 512.
        bits2 = bits.copy()
        offset = 3 + 2  # est(2) + rel(1) + chars(2) -> node flag at index 5
        bits2[offset] = 1
        bits2[offset + 1 : offset + 5] = 1
        assert g.decode(bits2).node_range_size == 512

    def test_history_range(self):
        g = genome()
        for hist in (2, 256, 65536):
            t = Template(max_history=hist)
            assert g.decode(g.encode(t)).max_history == hist

    def test_estimator_bits(self):
        g = genome()
        for kind in ESTIMATOR_KINDS:
            t = Template(estimator=kind)
            assert g.decode(g.encode(t)).estimator == kind

    def test_random_individual_size(self):
        g = genome()
        rng = np.random.default_rng(0)
        for _ in range(20):
            ind = g.random_individual(rng, 10)
            assert 1 <= len(ind) <= 10
            assert all(t.shape == (g.bits_per_template,) for t in ind)

    def test_wrong_width_rejected(self):
        g = genome()
        with pytest.raises(ValueError):
            g.decode(np.zeros(3, dtype=np.int8))

    @given(data=st.data())
    @settings(max_examples=60)
    def test_property_any_bitstring_decodes_to_valid_template(self, data):
        g = genome(chars=("u", "e", "a"))
        bits = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 1),
                    min_size=g.bits_per_template,
                    max_size=g.bits_per_template,
                )
            ),
            dtype=np.int8,
        )
        t = g.decode(bits)  # must not raise: every genome is a valid template
        assert t.estimator in ESTIMATOR_KINDS
        if t.node_range_size is not None:
            assert 1 <= t.node_range_size <= 512
        if t.max_history is not None:
            assert 2 <= t.max_history <= 65536


class TestSearch:
    @pytest.fixture(scope="class")
    def search(self, anl_trace):
        cfg = GAConfig(population=8, generations=3, eval_jobs=150, seed=0)
        return TemplateSearch(anl_trace, config=cfg)

    def test_crossover_respects_cap(self, search):
        rng = np.random.default_rng(0)
        g = search.genome
        p1 = [rng.integers(0, 2, g.bits_per_template).astype(np.int8) for _ in range(10)]
        p2 = [rng.integers(0, 2, g.bits_per_template).astype(np.int8) for _ in range(10)]
        for _ in range(25):
            c1, c2 = search._crossover(p1, p2, rng)
            assert 1 <= len(c1) <= 10
            assert 1 <= len(c2) <= 10

    def test_crossover_children_are_copies(self, search):
        rng = np.random.default_rng(1)
        g = search.genome
        p1 = [np.zeros(g.bits_per_template, dtype=np.int8)]
        p2 = [np.ones(g.bits_per_template, dtype=np.int8)]
        c1, _ = search._crossover(p1, p2, rng)
        c1[0][:] = 9
        assert p1[0].sum() == 0 and p2[0].sum() == g.bits_per_template

    def test_mutation_rate_zero_is_identity(self, anl_trace):
        cfg = GAConfig(population=8, generations=1, mutation_rate=0.0, seed=0)
        s = TemplateSearch(anl_trace, config=cfg)
        rng = np.random.default_rng(0)
        ind = [np.zeros(s.genome.bits_per_template, dtype=np.int8)]
        s._mutate(ind, rng)
        assert ind[0].sum() == 0

    def test_fitness_scaling(self, search):
        errors = np.array([10.0, 20.0, 30.0])
        f = search._fitnesses(errors)
        # Best gets F_max = 4*F_min, worst gets F_min.
        assert f[0] == pytest.approx(4.0 * search.config.fitness_min)
        assert f[2] == pytest.approx(search.config.fitness_min)
        assert f[0] > f[1] > f[2]

    def test_fitness_equal_errors(self, search):
        f = search._fitnesses(np.array([5.0, 5.0]))
        assert f[0] == f[1]

    def test_error_cached(self, search):
        rng = np.random.default_rng(2)
        ind = search.genome.random_individual(rng, 3)
        e1 = search.error(ind)
        e2 = search.error(ind)
        assert e1 == e2

    def test_run_returns_templates_and_history(self, anl_trace):
        cfg = GAConfig(population=6, generations=3, eval_jobs=120, seed=1)
        templates, history = search_templates(anl_trace, config=cfg)
        assert 1 <= len(templates) <= 10
        assert all(isinstance(t, Template) for t in templates)
        assert len(history.best_errors) == 3
        # Elitism guarantees the best error never worsens.
        assert history.best_errors == sorted(history.best_errors, reverse=True) or all(
            b <= history.best_errors[0] for b in history.best_errors
        )

    def test_best_error_monotone_nonincreasing(self, anl_trace):
        cfg = GAConfig(population=8, generations=4, eval_jobs=120, seed=3)
        _, history = search_templates(anl_trace, config=cfg)
        for a, b in zip(history.best_errors, history.best_errors[1:]):
            assert b <= a + 1e-9

    def test_deterministic_given_seed(self, anl_trace):
        cfg = GAConfig(population=6, generations=2, eval_jobs=100, seed=5)
        t1, h1 = search_templates(anl_trace, config=cfg)
        t2, h2 = search_templates(anl_trace, config=cfg)
        assert t1 == t2
        assert h1.best_errors == h2.best_errors

    def test_characteristics_restricted_to_trace(self, sdsc_trace):
        cfg = GAConfig(population=6, generations=2, eval_jobs=100, seed=0)
        templates, _ = search_templates(sdsc_trace, config=cfg)
        used = {c for t in templates for c in t.characteristics}
        assert used <= {"q", "u"}

    def test_no_characteristics_raises(self, anl_trace):
        with pytest.raises(ValueError, match="no categorical"):
            TemplateSearch(anl_trace, characteristics=())
