"""Tests for repro.stats.regression."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.regression import (
    fit_inverse,
    fit_linear,
    fit_logarithmic,
    fit_weighted_linear,
)


class TestLinear:
    def test_exact_line(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])  # y = 1 + 2x
        assert fit.intercept == pytest.approx(1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_residual_variance_zero_on_exact_fit(self):
        fit = fit_linear([1, 2, 3], [2, 4, 6])
        assert fit.residual_variance == pytest.approx(0.0)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(3)
        x = np.linspace(1, 100, 200)
        y = 5.0 + 0.5 * x + rng.normal(0, 1, size=200)
        fit = fit_linear(x, y)
        assert fit.slope == pytest.approx(0.5, abs=0.05)
        assert fit.intercept == pytest.approx(5.0, abs=2.0)

    def test_degenerate_design_falls_back_to_mean(self):
        fit = fit_linear([4, 4, 4], [1.0, 2.0, 3.0])
        assert fit.slope == 0.0
        assert fit.predict(4) == pytest.approx(2.0)
        assert fit.predict(100) == pytest.approx(2.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1, 2, 3])

    def test_prediction_interval_contains_truth_mostly(self):
        rng = np.random.default_rng(11)
        x = rng.uniform(1, 50, 100)
        y = 2.0 + 3.0 * x + rng.normal(0, 2.0, size=100)
        fit = fit_linear(x, y)
        hits = 0
        for xq in np.linspace(2, 48, 40):
            est, hw = fit.prediction_interval(xq, 0.90)
            draw = 2.0 + 3.0 * xq  # noise-free truth is well inside
            if abs(draw - est) <= hw:
                hits += 1
        assert hits >= 36

    def test_prediction_interval_needs_three_points(self):
        fit = fit_linear([1, 2], [1, 2])
        with pytest.raises(ValueError):
            fit.prediction_interval(1.5)

    def test_interval_widens_away_from_mean(self):
        rng = np.random.default_rng(2)
        x = np.linspace(10, 20, 30)
        y = x + rng.normal(0, 1, 30)
        fit = fit_linear(x, y)
        _, hw_center = fit.prediction_interval(15.0)
        _, hw_far = fit.prediction_interval(100.0)
        assert hw_far > hw_center


class TestInverseAndLog:
    def test_inverse_exact(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 + 10.0 / x
        fit = fit_inverse(x, y)
        assert fit.intercept == pytest.approx(3.0)
        assert fit.slope == pytest.approx(10.0)
        assert fit.predict(5.0) == pytest.approx(5.0)

    def test_log_exact(self):
        x = np.array([1.0, math.e, math.e**2])
        y = 1.0 + 4.0 * np.log(x)
        fit = fit_logarithmic(x, y)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.slope == pytest.approx(4.0)

    def test_inverse_rejects_nonpositive_x(self):
        with pytest.raises(ValueError):
            fit_inverse([0.0, 1.0], [1.0, 2.0])

    def test_log_rejects_nonpositive_x(self):
        with pytest.raises(ValueError):
            fit_logarithmic([-1.0, 1.0], [1.0, 2.0])


class TestWeightedLinear:
    def test_equal_weights_match_ols(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [2.0, 3.0, 5.0, 6.0]
        b0w, b1w = fit_weighted_linear(x, y, [1.0] * 4)
        fit = fit_linear(x, y)
        assert b0w == pytest.approx(fit.intercept)
        assert b1w == pytest.approx(fit.slope)

    def test_heavy_weight_dominates(self):
        # Points on y=x except one outlier with negligible weight.
        x = [1.0, 2.0, 3.0, 10.0]
        y = [1.0, 2.0, 3.0, 100.0]
        b0, b1 = fit_weighted_linear(x, y, [1e6, 1e6, 1e6, 1e-9])
        assert b1 == pytest.approx(1.0, abs=1e-3)
        assert b0 == pytest.approx(0.0, abs=1e-2)

    def test_degenerate_collapses_to_weighted_mean(self):
        b0, b1 = fit_weighted_linear([5.0, 5.0], [2.0, 4.0], [1.0, 3.0])
        assert b1 == 0.0
        assert b0 == pytest.approx((2.0 + 12.0) / 4.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            fit_weighted_linear([1, 2], [1, 2], [1.0, -1.0])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            fit_weighted_linear([1, 2], [1, 2], [0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_weighted_linear([], [], [])


@given(
    b0=st.floats(-100, 100),
    b1=st.floats(-10, 10),
    xs=st.lists(st.floats(1.0, 500.0), min_size=3, max_size=20, unique=True),
)
@settings(max_examples=80)
def test_property_linear_recovers_noiseless_line(b0, b1, xs):
    ys = [b0 + b1 * x for x in xs]
    fit = fit_linear(xs, ys)
    # Prediction must reproduce the line at any in-range point.
    xq = sum(xs) / len(xs)
    assert fit.predict(xq) == pytest.approx(b0 + b1 * xq, rel=1e-5, abs=1e-4)


@given(
    xs=st.lists(st.floats(1.0, 100.0), min_size=3, max_size=15),
    ys=st.lists(st.floats(0.0, 1e4), min_size=3, max_size=15),
)
@settings(max_examples=80)
def test_property_prediction_interval_nonnegative(xs, ys):
    n = min(len(xs), len(ys))
    fit = fit_linear(xs[:n], ys[:n])
    _, hw = fit.prediction_interval(xs[0])
    assert hw >= 0.0
    assert math.isfinite(hw)
