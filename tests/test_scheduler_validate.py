"""Tests for the schedule validator."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.metrics import JobRecord, ScheduleResult
from repro.scheduler.policies import BackfillPolicy, LWFPolicy
from repro.scheduler.simulator import Simulator
from repro.scheduler.validate import validate_schedule
from repro.workloads.job import Trace
from tests.conftest import make_job


def simulate(trace, policy=None):
    sim = Simulator(
        policy or BackfillPolicy(),
        PointEstimator(ActualRuntimePredictor()),
        trace.total_nodes,
    )
    return sim.run(trace)


class TestValidateSchedule:
    def test_real_simulations_validate(self, anl_trace):
        for policy in (BackfillPolicy(), LWFPolicy()):
            result = simulate(anl_trace, policy)
            report = validate_schedule(anl_trace, result)
            assert report.ok, report.violations

    def test_missing_job_detected(self, small_trace):
        result = simulate(small_trace)
        partial = ScheduleResult(
            [r for r in result.records if r.job_id != 3],
            total_nodes=small_trace.total_nodes,
        )
        report = validate_schedule(small_trace, partial)
        assert not report.ok
        assert any("never scheduled" in v for v in report.violations)

    def test_extra_job_detected(self, small_trace):
        result = simulate(small_trace)
        extra = ScheduleResult(
            list(result.records)
            + [JobRecord(job_id=99, submit_time=0, start_time=0,
                         finish_time=1, nodes=1)],
            total_nodes=small_trace.total_nodes,
        )
        report = validate_schedule(small_trace, extra)
        assert any("not in trace" in v for v in report.violations)

    def test_wrong_run_time_detected(self, small_trace):
        records = [
            JobRecord(
                job_id=j.job_id,
                submit_time=j.submit_time,
                start_time=j.submit_time,
                finish_time=j.submit_time + j.run_time + 500.0,  # wrong
                nodes=j.nodes,
            )
            for j in small_trace
        ]
        report = validate_schedule(
            small_trace, ScheduleResult(records, total_nodes=10)
        )
        assert any("ran" in v for v in report.violations)

    def test_capacity_violation_detected(self):
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=6),
            make_job(job_id=2, submit_time=0.0, run_time=100.0, nodes=6),
        ]
        trace = Trace(jobs, total_nodes=10)
        # A (bogus) schedule running both simultaneously: 12 > 10 nodes.
        records = [
            JobRecord(job_id=1, submit_time=0, start_time=0, finish_time=100,
                      nodes=6),
            JobRecord(job_id=2, submit_time=0, start_time=0, finish_time=100,
                      nodes=6),
        ]
        report = validate_schedule(trace, ScheduleResult(records, total_nodes=10))
        assert any("capacity exceeded" in v for v in report.violations)

    def test_wrong_nodes_detected(self, small_trace):
        result = simulate(small_trace)
        mangled = [
            JobRecord(
                job_id=r.job_id,
                submit_time=r.submit_time,
                start_time=r.start_time,
                finish_time=r.finish_time,
                nodes=r.nodes + 1 if r.job_id == 1 else r.nodes,
            )
            for r in result.records
        ]
        report = validate_schedule(
            small_trace, ScheduleResult(mangled, total_nodes=10)
        )
        assert any("nodes" in v for v in report.violations)

    def test_raise_if_invalid(self, small_trace):
        result = simulate(small_trace)
        validate_schedule(small_trace, result).raise_if_invalid()  # no-op
        bad = ScheduleResult([], total_nodes=10)
        with pytest.raises(AssertionError, match="invalid schedule"):
            validate_schedule(small_trace, bad).raise_if_invalid()
