"""Metrics registry: counters, gauges, fixed-bucket histograms."""

import json
import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_histogram,
    histogram_quantile,
    merge_snapshots,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        c.value += 1  # the hot-path idiom
        assert c.value == 7

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0


class TestHistogram:
    def test_bucket_edges_upper_inclusive(self):
        h = Histogram("h", (1.0, 2.0, 4.0))
        # exactly on a bound lands in that bound's bucket
        for v in (0.0, 1.0):
            h.observe(v)
        h.observe(2.0)
        h.observe(4.0)
        h.observe(4.0000001)  # overflow
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(11.0000001)

    def test_counts_has_overflow_bucket(self):
        h = Histogram("h", (10.0,))
        assert len(h.counts) == 2
        h.observe(100.0)
        assert h.counts == [0, 1]

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_mean(self):
        h = Histogram("h", (10.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", (1.0,)) is reg.histogram("h", (1.0,))

    def test_type_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        with pytest.raises(ValueError):
            reg.histogram("a", (1.0,))

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", (1.0, 3.0))

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]

    def test_snapshot_is_json_serializable_copy(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", (1.0, 2.0)).observe(0.5)
        snap = reg.snapshot()
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped == snap
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0, 0]
        # a *copy*: later increments don't retroactively change it
        reg.counter("c").inc()
        assert snap["counters"]["c"] == 3
        assert json.loads(reg.to_json())["counters"]["c"] == 4


class TestMerge:
    def test_counters_add_gauges_last_win_histograms_add(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1.0)
        a.histogram("h", (1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(9.0)
        b.histogram("h", (1.0,)).observe(5.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["c"] == 5
        assert merged["gauges"]["g"] == 9.0
        assert merged["histograms"]["h"]["counts"] == [1, 1]
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["sum"] == pytest.approx(5.5)

    def test_mismatched_bounds_raise(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots(a.snapshot(), b.snapshot())

    def test_empty_merge(self):
        assert merge_snapshots() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestQuantileAndFormat:
    def _hist(self, values, bounds=(1.0, 2.0, 4.0, 8.0)):
        h = Histogram("h", bounds)
        for v in values:
            h.observe(v)
        return {
            "bounds": list(h.bounds),
            "counts": list(h.counts),
            "sum": h.sum,
            "count": h.count,
        }

    def test_quantile_empty_is_none(self):
        assert histogram_quantile(self._hist([]), 0.5) is None

    def test_quantile_monotone_and_bounded(self):
        snap = self._hist([0.5, 1.5, 3.0, 7.0, 100.0])
        qs = [histogram_quantile(snap, q) for q in (0.1, 0.5, 0.9, 1.0)]
        assert all(b >= a for a, b in zip(qs, qs[1:]))
        # overflow quantiles report the last finite bound
        assert qs[-1] <= 8.0
        with pytest.raises(ValueError):
            histogram_quantile(snap, 1.5)

    def test_format_histogram(self):
        snap = self._hist([0.5, 0.5, 3.0])
        text = format_histogram(snap, title="waits")
        assert "waits" in text
        assert "count=3" in text
        assert "#" in text
        # empty buckets are omitted
        assert "<= 2" not in text
        assert math.isfinite(snap["sum"])

    def test_format_empty_histogram(self):
        text = format_histogram(self._hist([]))
        assert "no observations" in text


class TestStableFormatting:
    """Determinism pins for format_metrics / format_prometheus (the
    ``repro-sched trace --summary`` analogue lives in summarize_events,
    pinned below): identical snapshots must render byte-identically
    regardless of registry insertion order."""

    def _registry(self, names):
        from repro.obs import CELL_DURATION_BUCKETS

        reg = MetricsRegistry()
        for name in names:
            reg.counter(f"{name}.count").inc(3)
            reg.gauge(f"{name}.level").set(1.5)
        hist = reg.histogram("zz.duration", CELL_DURATION_BUCKETS)
        hist.observe(0.2)
        hist.observe(4.0)
        return reg

    def test_format_metrics_is_order_independent(self):
        from repro.obs import format_metrics

        a = self._registry(["beta", "alpha", "gamma"]).snapshot()
        b = self._registry(["gamma", "beta", "alpha"]).snapshot()
        assert format_metrics(a) == format_metrics(b)
        text = format_metrics(a)
        lines = [ln.strip().split()[0] for ln in text.splitlines()
                 if ln.startswith("  ") and "." in ln]
        assert lines[:3] == sorted(lines[:3])

    def test_format_metrics_empty(self):
        from repro.obs import format_metrics

        assert format_metrics({}) == "(no metrics)"

    def test_format_prometheus_exposition(self):
        from repro.obs import format_prometheus

        reg = self._registry(["only"])
        text = reg.format_prometheus()
        assert text == format_prometheus(reg.snapshot())
        assert text.endswith("\n")
        assert "# TYPE only_count_total counter" in text
        assert "only_count_total 3" in text
        assert "# TYPE only_level gauge" in text
        assert "# TYPE zz_duration histogram" in text
        # cumulative buckets: the 5.0 bucket holds both observations
        assert 'zz_duration_bucket{le="5"} 2' in text
        assert 'zz_duration_bucket{le="+Inf"} 2' in text
        assert "zz_duration_count 2" in text

    def test_format_prometheus_is_order_independent(self):
        from repro.obs import format_prometheus

        a = self._registry(["b", "a"]).snapshot()
        b = self._registry(["a", "b"]).snapshot()
        assert format_prometheus(a) == format_prometheus(b)

    def test_prometheus_name_sanitized(self):
        from repro.obs import format_prometheus

        reg = MetricsRegistry()
        reg.counter("campaign.cells-finished/total").inc()
        text = format_prometheus(reg.snapshot())
        assert "campaign_cells_finished_total_total 1" in text

    def test_prometheus_help_and_type_once_per_family(self):
        """Labeled series of one family share a single HELP/TYPE header."""
        from repro.obs import format_prometheus

        reg = MetricsRegistry()
        reg.counter('passes{policy="FCFS"}').inc(3)
        reg.counter('passes{policy="LWF"}').inc(5)
        text = format_prometheus(reg.snapshot())
        assert text.count("# TYPE passes_total counter") == 1
        assert text.count("# HELP passes_total") == 1
        assert 'passes_total{policy="FCFS"} 3' in text
        assert 'passes_total{policy="LWF"} 5' in text
        # headers precede every sample of the family
        lines = text.splitlines()
        assert lines.index("# TYPE passes_total counter") < lines.index(
            'passes_total{policy="FCFS"} 3'
        )

    def test_prometheus_every_family_has_help_and_type(self):
        from repro.obs import format_prometheus

        reg = self._registry(["m"])
        for line in format_prometheus(reg.snapshot()).splitlines():
            family = line.split("{")[0].split()[-2 if "#" in line else 0]
            assert family  # every line parses
        text = format_prometheus(reg.snapshot())
        for family in ("m_count_total", "m_level", "zz_duration"):
            assert f"# HELP {family} " in text
            assert text.count(f"# HELP {family} ") == 1
            assert text.count(f"# TYPE {family} ") == 1

    def test_prometheus_zero_observation_families_emitted(self):
        """A never-incremented counter and an empty histogram still show
        up in full, headers included, so scrapers learn the series."""
        from repro.obs import format_prometheus

        reg = MetricsRegistry()
        reg.counter("untouched.count")
        reg.histogram("empty.hist", (1.0, 2.0))
        text = format_prometheus(reg.snapshot())
        assert "# TYPE untouched_count_total counter" in text
        assert "untouched_count_total 0" in text
        assert "# TYPE empty_hist histogram" in text
        assert 'empty_hist_bucket{le="+Inf"} 0' in text
        assert "empty_hist_count 0" in text

    def test_prometheus_label_values_escaped(self):
        """Quotes, backslashes, and newlines in label values are escaped
        per the text-exposition rules."""
        from repro.obs import format_prometheus

        reg = MetricsRegistry()
        reg.gauge('depth{policy="a\nb"}').set(7)
        reg.counter('runs{name="quo\\"te"}').inc(2)
        reg.counter('paths{dir="c:\\\\tmp"}').inc(1)
        text = format_prometheus(reg.snapshot())
        assert 'depth{policy="a\\nb"} 7' in text
        assert 'runs_total{name="quo\\"te"} 2' in text
        assert 'paths_total{dir="c:\\\\tmp"} 1' in text
        # no raw newline survives: every line is a header or a sample
        for line in text.splitlines():
            assert line.startswith("#") or " " in line

    def test_prometheus_histogram_labels_compose_with_le(self):
        from repro.obs import format_prometheus

        reg = MetricsRegistry()
        hist = reg.histogram('lat{policy="B"}', (1.0, 5.0))
        hist.observe(0.5)
        hist.observe(3.0)
        text = format_prometheus(reg.snapshot())
        assert 'lat_bucket{policy="B",le="1"} 1' in text
        assert 'lat_bucket{policy="B",le="+Inf"} 2' in text
        assert 'lat_sum{policy="B"} 3.5' in text
        assert 'lat_count{policy="B"} 2' in text

    def test_prometheus_malformed_label_block_falls_back(self):
        """A brace that is not a parseable label block sanitizes into
        the family name instead of corrupting the exposition."""
        from repro.obs import format_prometheus

        reg = MetricsRegistry()
        reg.counter("weird{not-labels").inc(1)
        reg.counter("also{bad}").inc(2)
        text = format_prometheus(reg.snapshot())
        assert "weird_not_labels_total 1" in text
        assert "also_bad__total 2" in text

    def test_summarize_events_rows_are_sorted(self):
        import random

        from repro.obs import summarize_events

        events = []
        for policy in ("LWF", "Backfill", "FCFS"):
            for etype in ("job_started", "job_finished", "job_submitted"):
                events.extend(
                    {"type": etype, "policy": policy} for _ in range(2)
                )
        shuffled = events[:]
        random.Random(7).shuffle(shuffled)
        rows = summarize_events(events)
        assert rows == summarize_events(shuffled)
        keys = [(r["Policy"], r["Event"]) for r in rows]
        assert keys == sorted(keys)
