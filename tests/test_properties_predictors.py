"""Property-based tests on predictor and workload invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.predictors.base import PointEstimator, warm_start
from repro.predictors.downey import DowneyPredictor
from repro.predictors.gibbons import GibbonsPredictor
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template
from repro.workloads.job import Job, Trace
from repro.workloads.swf import job_to_swf_line, parse_swf_lines

# ---------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------
users = st.sampled_from(["alice", "bob", "carol"])
executables = st.sampled_from(["sim", "solver", "render", None])
queues = st.sampled_from(["q16s", "q64l", None])


@st.composite
def jobs(draw, job_id=None):
    return Job(
        job_id=draw(st.integers(1, 10**6)) if job_id is None else job_id,
        submit_time=draw(st.floats(0, 1e6)),
        run_time=draw(st.floats(0, 1e5)),
        nodes=draw(st.integers(1, 128)),
        user=draw(users),
        executable=draw(executables),
        queue=draw(queues),
        max_run_time=draw(st.one_of(st.none(), st.floats(1.0, 2e5))),
    )


@st.composite
def job_batches(draw, min_size=2, max_size=25):
    n = draw(st.integers(min_size, max_size))
    return [draw(jobs(job_id=i + 1)) for i in range(n)]


# ---------------------------------------------------------------------
# SWF round trip
# ---------------------------------------------------------------------
@given(batch=job_batches())
@settings(max_examples=60, deadline=None)
def test_property_swf_roundtrip_preserves_schedulable_fields(batch):
    batch = [j for j in batch if j.run_time >= 1.0]
    assume(batch)
    trace = Trace(batch, total_nodes=128)
    lines = [job_to_swf_line(j) for j in trace]
    back = parse_swf_lines(["; MaxNodes: 128"] + lines)
    assert len(back) == len(trace)
    # SWF stores integer seconds, which can reorder equal-after-rounding
    # submissions; match records by job id.
    by_id = {j.job_id: j for j in back}
    for orig in trace:
        rt = by_id[orig.job_id]
        assert rt.nodes == orig.nodes
        assert abs(rt.run_time - orig.run_time) <= 0.5
        assert abs(rt.submit_time - orig.submit_time) <= 0.5
        if orig.max_run_time is not None:
            assert rt.max_run_time == pytest.approx(orig.max_run_time, abs=0.5)


# ---------------------------------------------------------------------
# predictor invariants
# ---------------------------------------------------------------------
_PREDICTOR_FACTORIES = [
    lambda: SmithPredictor(
        [Template(), Template(characteristics=("u",)),
         Template(characteristics=("u", "e"), node_range_size=8)]
    ),
    lambda: GibbonsPredictor(),
    lambda: DowneyPredictor("median"),
    lambda: DowneyPredictor("average"),
]


@pytest.mark.parametrize("factory", _PREDICTOR_FACTORIES)
@given(history=job_batches(min_size=3), probe=jobs(job_id=999_999),
       elapsed=st.floats(0, 1e4))
@settings(max_examples=50, deadline=None)
def test_property_predictions_respect_elapsed_floor(factory, history, probe, elapsed):
    """Any predictor, any history: estimates are finite, positive, and
    never below the job's elapsed run time."""
    predictor = warm_start(factory(), history)
    pred = predictor.predict(probe, elapsed, 0.0)
    if pred is not None:
        assert np.isfinite(pred.estimate)
        assert pred.estimate >= elapsed - 1e-9
        assert pred.estimate >= 0.0
        assert pred.interval >= 0.0


@given(history=job_batches(min_size=3), probe=jobs(job_id=999_999))
@settings(max_examples=50, deadline=None)
def test_property_point_estimator_always_produces_a_number(history, probe):
    est = PointEstimator(
        SmithPredictor([Template(characteristics=("u", "e"))])
    )
    for job in history:
        est.on_finish(job, job.submit_time + job.run_time)
    value = est.predict(probe, 0.0, 0.0)
    assert np.isfinite(value)
    # Zero is legitimate (a history of zero-length jobs); negative never.
    assert value >= 0.0


@given(history=job_batches(min_size=4))
@settings(max_examples=40, deadline=None)
def test_property_smith_insertion_order_irrelevant_without_history_cap(history):
    """Unbounded categories are order-insensitive for mean templates."""
    probe = history[0].with_(job_id=999_999)
    a = warm_start(SmithPredictor([Template(characteristics=("u",))]), history)
    b = warm_start(
        SmithPredictor([Template(characteristics=("u",))]), list(reversed(history))
    )
    pa = a.predict(probe)
    pb = b.predict(probe)
    assert (pa is None) == (pb is None)
    if pa is not None:
        assert pa.estimate == pytest.approx(pb.estimate, rel=1e-9)


@given(history=job_batches(min_size=6), cap=st.integers(2, 5))
@settings(max_examples=40, deadline=None)
def test_property_history_cap_keeps_newest(history, cap):
    probe = history[-1].with_(job_id=999_999)
    capped = warm_start(
        SmithPredictor([Template(characteristics=(), max_history=cap)]), history
    )
    manual = [j.run_time for j in history][-cap:]
    pred = capped.predict(probe)
    if len(manual) >= 2 and pred is not None:
        assert pred.estimate == pytest.approx(
            max(float(np.mean(manual)), 0.0), rel=1e-9, abs=1e-6
        )
