"""Tests for repro.scheduler.metrics."""

from __future__ import annotations

import pytest

from repro.scheduler.metrics import JobRecord, ScheduleResult


def rec(job_id=1, submit=0.0, start=0.0, finish=100.0, nodes=2):
    return JobRecord(
        job_id=job_id,
        submit_time=submit,
        start_time=start,
        finish_time=finish,
        nodes=nodes,
    )


class TestJobRecord:
    def test_wait_and_run(self):
        r = rec(submit=10.0, start=25.0, finish=125.0)
        assert r.wait_time == 15.0
        assert r.run_time == 100.0

    def test_start_before_submit_raises(self):
        with pytest.raises(ValueError, match="before submission"):
            rec(submit=50.0, start=25.0)

    def test_finish_before_start_raises(self):
        with pytest.raises(ValueError, match="before start"):
            rec(start=50.0, finish=25.0)

    def test_zero_wait_allowed(self):
        assert rec(submit=5.0, start=5.0, finish=6.0).wait_time == 0.0


class TestScheduleResult:
    def test_mean_wait_minutes(self):
        res = ScheduleResult(
            [
                rec(job_id=1, submit=0.0, start=60.0, finish=100.0),
                rec(job_id=2, submit=0.0, start=180.0, finish=200.0),
            ],
            total_nodes=4,
        )
        assert res.mean_wait_minutes == pytest.approx((1.0 + 3.0) / 2.0)

    def test_utilization(self):
        # One 2-node job busy for the full 100 s makespan on 4 nodes: 50%.
        res = ScheduleResult([rec(nodes=2)], total_nodes=4)
        assert res.utilization == pytest.approx(0.5)
        assert res.utilization_percent == pytest.approx(50.0)

    def test_makespan_from_submit_to_finish(self):
        res = ScheduleResult(
            [rec(job_id=1, submit=10.0, start=20.0, finish=50.0)], total_nodes=4
        )
        assert res.makespan == 40.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScheduleResult([rec(job_id=1), rec(job_id=1)], total_nodes=4)

    def test_lookup(self):
        res = ScheduleResult([rec(job_id=5)], total_nodes=4)
        assert 5 in res
        assert res[5].job_id == 5
        assert 6 not in res

    def test_empty(self):
        res = ScheduleResult([], total_nodes=4)
        assert len(res) == 0
        assert res.mean_wait_minutes == 0.0
        assert res.utilization == 0.0

    def test_max_concurrent_nodes(self):
        res = ScheduleResult(
            [
                rec(job_id=1, start=0.0, finish=100.0, nodes=3),
                rec(job_id=2, start=50.0, finish=150.0, nodes=2),
                rec(job_id=3, submit=0.0, start=100.0, finish=200.0, nodes=4),
            ],
            total_nodes=8,
        )
        # Overlap of jobs 1+2 on [50,100) = 5; release of 1 at 100 happens
        # before allocation of 3, so [100,150) holds 2+4 = 6 nodes.
        assert res.max_concurrent_nodes() == 6

    def test_zero_runtime_jobs_ignored_in_peak(self):
        res = ScheduleResult(
            [rec(job_id=1, start=10.0, finish=10.0, nodes=8)], total_nodes=8
        )
        assert res.max_concurrent_nodes() == 0


class TestExtendedMetrics:
    def _result(self):
        return ScheduleResult(
            [
                rec(job_id=1, submit=0.0, start=0.0, finish=1000.0),  # wait 0
                rec(job_id=2, submit=0.0, start=600.0, finish=700.0),  # wait 600
                rec(job_id=3, submit=0.0, start=1200.0, finish=1210.0, nodes=8),
            ],
            total_nodes=8,
        )

    def test_wait_percentile(self):
        res = self._result()
        assert res.wait_percentile(0) == pytest.approx(0.0)
        assert res.wait_percentile(100) == pytest.approx(20.0)  # 1200 s
        assert res.wait_percentile(50) == pytest.approx(10.0)

    def test_wait_percentile_validation(self):
        with pytest.raises(ValueError):
            self._result().wait_percentile(101)

    def test_wait_percentile_empty(self):
        assert ScheduleResult([], total_nodes=4).wait_percentile(50) == 0.0

    def test_bounded_slowdown(self):
        res = self._result()
        # job1: (0+1000)/max(1000,600)=1.0; job2: (600+100)/600=7/6;
        # job3: (1200+10)/600 ≈ 2.0167 -> mean ≈ 1.394
        expected = (1.0 + 7.0 / 6.0 + 1210.0 / 600.0) / 3.0
        assert res.mean_bounded_slowdown(600.0) == pytest.approx(expected)

    def test_bounded_slowdown_floor_one(self):
        res = ScheduleResult(
            [rec(job_id=1, submit=0.0, start=0.0, finish=10.0)], total_nodes=8
        )
        assert res.mean_bounded_slowdown() == 1.0

    def test_bounded_slowdown_validation(self):
        with pytest.raises(ValueError):
            self._result().mean_bounded_slowdown(0.0)

    def test_per_class_mean_wait(self):
        res = self._result()
        by_width = res.per_class_mean_wait(lambda r: r.nodes >= 8)
        assert by_width[True] == pytest.approx(20.0)
        assert by_width[False] == pytest.approx(5.0)
