"""Tests for the Downey log-uniform predictor."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.predictors.downey import DowneyPredictor, fit_log_uniform
from tests.conftest import make_job


def feed(p, jobs):
    for j in jobs:
        p.on_finish(j, 0.0)


class TestFit:
    def test_log_uniform_sample_recovers_bounds(self):
        """Samples from a true log-uniform distribution fit cleanly."""
        rng = np.random.default_rng(0)
        t_min, t_max = 10.0, 10_000.0
        ts = np.exp(rng.uniform(math.log(t_min), math.log(t_max), size=2000))
        fit = fit_log_uniform(list(ts))
        assert fit is not None
        assert fit.t_max == pytest.approx(t_max, rel=0.25)
        assert fit.beta1 == pytest.approx(1.0 / math.log(t_max / t_min), rel=0.15)

    def test_too_few_points(self):
        assert fit_log_uniform([100.0]) is None

    def test_no_spread(self):
        assert fit_log_uniform([100.0, 100.0, 100.0]) is None

    def test_two_points_fit(self):
        fit = fit_log_uniform([10.0, 1000.0])
        assert fit is not None
        assert fit.beta1 > 0

    def test_conditional_median_formula(self):
        """median(a) = sqrt(a * tmax), the paper's formula."""
        fit = fit_log_uniform([10.0, 100.0, 1000.0, 10000.0])
        a = 50.0
        assert fit.conditional_median(a) == pytest.approx(
            math.sqrt(a * fit.t_max)
        )

    def test_conditional_average_formula(self):
        fit = fit_log_uniform([10.0, 100.0, 1000.0, 10000.0])
        a = 50.0
        expected = (fit.t_max - a) / (math.log(fit.t_max) - math.log(a))
        assert fit.conditional_average(a) == pytest.approx(expected)

    def test_age_floored_at_t_min(self):
        fit = fit_log_uniform([10.0, 100.0, 1000.0])
        # a=0 would degenerate; the floor makes it the unconditional value.
        assert fit.conditional_median(0.0) == pytest.approx(
            math.sqrt(fit.t_min * fit.t_max)
        )

    def test_average_of_nearly_done_job(self):
        fit = fit_log_uniform([10.0, 100.0, 1000.0])
        a = fit.t_max * 2  # older than the model's upper end
        assert fit.conditional_average(a) == pytest.approx(a)

    def test_median_grows_with_age(self):
        fit = fit_log_uniform([10.0, 100.0, 1000.0, 10000.0])
        assert fit.conditional_median(500.0) > fit.conditional_median(50.0)


class TestPredictor:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            DowneyPredictor("mode")

    def test_no_history_no_prediction(self):
        assert DowneyPredictor().predict(make_job()) is None

    def test_categorizes_by_queue(self):
        p = DowneyPredictor("median")
        feed(p, [make_job(queue="short", run_time=rt) for rt in (10.0, 100.0)])
        feed(p, [make_job(queue="long", run_time=rt) for rt in (1e4, 1e5)])
        short = p.predict(make_job(queue="short"))
        long_ = p.predict(make_job(queue="long"))
        assert short.estimate < long_.estimate

    def test_global_category_without_queues(self):
        p = DowneyPredictor("median")
        feed(p, [make_job(queue=None, run_time=rt) for rt in (10.0, 1000.0)])
        pred = p.predict(make_job(queue=None))
        assert pred is not None
        assert pred.source.endswith("()")

    def test_average_exceeds_median_for_heavy_tail(self):
        runs = [10.0, 20.0, 40.0, 80.0, 10000.0]
        pa = DowneyPredictor("average")
        pm = DowneyPredictor("median")
        feed(pa, [make_job(run_time=rt, queue="q") for rt in runs])
        feed(pm, [make_job(run_time=rt, queue="q") for rt in runs])
        avg = pa.predict(make_job(queue="q"))
        med = pm.predict(make_job(queue="q"))
        assert avg.estimate > med.estimate

    def test_estimate_at_least_elapsed(self):
        p = DowneyPredictor("median")
        feed(p, [make_job(queue="q", run_time=rt) for rt in (10.0, 50.0, 100.0)])
        pred = p.predict(make_job(queue="q"), elapsed=95.0)
        assert pred.estimate >= 95.0

    def test_fit_cache_invalidated_on_insert(self):
        p = DowneyPredictor("median")
        feed(p, [make_job(queue="q", run_time=rt) for rt in (10.0, 100.0)])
        before = p.predict(make_job(queue="q")).estimate
        feed(p, [make_job(queue="q", run_time=1e6)])
        after = p.predict(make_job(queue="q")).estimate
        assert after > before

    def test_max_history_window(self):
        p = DowneyPredictor("median", max_history=3)
        feed(p, [make_job(queue="q", run_time=rt) for rt in (1.0, 2.0, 1e4, 1e5, 1e6)])
        pred = p.predict(make_job(queue="q"))
        # Early tiny values evicted; estimate reflects the large regime.
        assert pred.estimate > 1e3

    def test_max_history_validation(self):
        with pytest.raises(ValueError):
            DowneyPredictor("median", max_history=1)

    def test_name_reflects_kind(self):
        assert DowneyPredictor("average").name == "downey-average"
