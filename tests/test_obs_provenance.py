"""Decision provenance: schema gates, attribution quality, and the
exact-sum wait-decomposition invariant.

The tentpole invariant under test: for **every** job of a detail-mode
SDSC-style replay, :func:`repro.obs.explain.explain_job`'s four wait
components sum — exactly, to the second — to the realized wait the
simulator put on ``job_started.wait_s`` and the
:class:`~repro.obs.audit.PredictionAudit` resolved wait predictions
against.  Schedule identity of the provenance-enabled walks is pinned
separately in ``tests/test_simulator_parity.py``.
"""

from __future__ import annotations

import pytest

from repro.core.registry import make_policy, make_predictor
from repro.obs import (
    BLOCKER_KINDS,
    PROVENANCE_EVENT_TYPES,
    WAIT_COMPONENTS,
    Instrumentation,
    ListSink,
    Tracer,
    TraceSchemaError,
    explain_job,
    summarize_wait_components,
    validate_event,
)
from repro.predictors.base import PointEstimator
from repro.scheduler.simulator import Simulator
from repro.waitpred.statebased import StateBasedWaitPredictor
from repro.workloads.archive import load_paper_workload

POLICIES = ("FCFS", "LWF", "Backfill", "EASY")
_REGISTRY_NAMES = {"FCFS": "fcfs", "LWF": "lwf",
                   "Backfill": "backfill", "EASY": "easy"}
N_JOBS = 120


@pytest.fixture(scope="module")
def detail_events() -> list[dict]:
    """One detail-mode SDSC96 replay per policy, into a shared sink —
    the ``repro-sched trace --detail --wait-pred state`` pipeline."""
    wl = load_paper_workload("SDSC96", n_jobs=N_JOBS)
    sink = ListSink()
    tracer = Tracer(sink)
    for policy_name in POLICIES:
        inst = Instrumentation(tracer=tracer, detail=True, audit=True)
        estimator = PointEstimator(
            make_predictor("max", wl), instrumentation=inst
        )
        sim = Simulator(
            make_policy(_REGISTRY_NAMES[policy_name]),
            estimator,
            wl.total_nodes,
            instrumentation=inst,
        )
        sim.add_observer(
            StateBasedWaitPredictor(
                PointEstimator(make_predictor("max", wl)),
                instrumentation=inst,
            )
        )
        sim.run(wl)
    return sink.events


def _by_policy(events: list[dict], policy: str) -> list[dict]:
    return [e for e in events if e.get("policy") == policy]


def test_every_policy_emits_schema_valid_provenance(detail_events):
    for policy in POLICIES:
        provenance = [
            e for e in _by_policy(detail_events, policy)
            if e["type"] in PROVENANCE_EVENT_TYPES
        ]
        assert provenance, f"{policy} attributed nothing on a contended trace"
        for event in provenance:
            validate_event(event)
            kind = event.get("blocker_kind")
            if kind is not None:
                assert kind in BLOCKER_KINDS


@pytest.mark.parametrize("policy", POLICIES)
def test_decomposition_sums_exactly_to_realized_wait(detail_events, policy):
    """The acceptance invariant, checked for every started job."""
    events = _by_policy(detail_events, policy)
    resolved_waits = {
        e["job_id"]: e["actual_s"]
        for e in detail_events
        if e["type"] == "prediction_resolved"
        and e.get("kind") == "wait_time"
        and (e.get("policy") or policy) == policy
    }
    started = [e for e in events if e["type"] == "job_started"]
    assert len(started) == N_JOBS
    for event in started:
        exp = explain_job(events, event["job_id"], policy=policy)
        decomposition = exp["decomposition"]
        assert decomposition is not None
        assert set(decomposition) == set(WAIT_COMPONENTS)
        assert all(v >= 0.0 for v in decomposition.values())
        total = sum(decomposition.values())
        # Exact to the second, and to float dust in absolute terms.
        assert abs(total - event["wait_s"]) < 1e-6
        assert round(total) == round(event["wait_s"])
        # ...and the wait the audit resolved predictions against is the
        # very same number.
        audited = resolved_waits.get(event["job_id"])
        if audited is not None:
            assert abs(total - audited) < 1e-6


def test_attribution_is_specific_not_unknown(detail_events):
    """On a plain contended workload (no reservations) the attributors
    should produce concrete blockers; ``unknown`` is the escape hatch,
    not the common case."""
    kinds = [
        e["blocker_kind"]
        for e in detail_events
        if e["type"] in ("start_blocked", "reservation_binding")
    ]
    assert kinds
    assert "unknown" not in kinds


def test_change_only_emission(detail_events):
    """Consecutive attributing events of one type for one job never
    repeat the same (blocker_kind, blocker_id) — emission is
    move-triggered.  (A ``start_blocked`` followed by a
    ``reservation_binding`` with the same blocker is *not* a repeat:
    the job transitioned from blocked to holding the head reservation.)
    """
    last: dict[tuple, tuple] = {}
    repeats = 0
    for e in detail_events:
        if e["type"] not in ("start_blocked", "reservation_binding"):
            if e["type"] == "job_started":
                policy, jid = e.get("policy"), e["job_id"]
                last.pop((policy, jid, "start_blocked"), None)
                last.pop((policy, jid, "reservation_binding"), None)
            continue
        key = (e.get("policy"), e["job_id"], e["type"])
        binding = (e["blocker_kind"], e.get("blocker_id"))
        if last.get(key) == binding:
            repeats += 1
        last[key] = binding
    assert repeats == 0


def test_backfill_hole_events_are_coherent(detail_events):
    """A hole has a start at now, an end no earlier, and names the job
    whose protective reservation bounds it."""
    holes = [e for e in detail_events if e["type"] == "backfill_hole_used"]
    assert holes  # Backfill and EASY both backfill on this trace
    for e in holes:
        assert e["policy"] in ("Backfill", "EASY")
        assert e["hole_start_s"] == e["sim_time"]
        if "hole_end_s" in e:
            assert e["hole_end_s"] >= e["hole_start_s"]
        assert isinstance(e["ahead_job_id"], int)
        assert e["ahead_job_id"] != e["job_id"]


def test_summary_rows_are_consistent(detail_events):
    rows = summarize_wait_components(detail_events)
    assert [row["policy"] for row in rows] == sorted(POLICIES)
    for row in rows:
        assert row["jobs"] == N_JOBS
        total = sum(row[c] for c in WAIT_COMPONENTS)
        assert total == pytest.approx(row["total_wait_s"], abs=1e-6)


def test_summary_empty_without_provenance(detail_events):
    lifecycle = [
        e for e in detail_events
        if e["type"] in ("job_submitted", "job_started", "job_finished")
    ]
    assert summarize_wait_components(lifecycle) == []


def test_schema_rejects_unknown_blocker_kind():
    with pytest.raises(TraceSchemaError):
        validate_event({
            "type": "start_blocked", "wall_time": 0.0, "sim_time": 1.0,
            "job_id": 1, "blocker_kind": "bogus",
        })
    with pytest.raises(TraceSchemaError):
        validate_event({
            "type": "reservation_binding", "wall_time": 0.0, "sim_time": 1.0,
            "job_id": 1, "start_s": 2.0, "blocker_kind": "weather",
        })


def test_schema_requires_provenance_fields():
    with pytest.raises(TraceSchemaError):
        validate_event({
            "type": "start_blocked", "wall_time": 0.0, "sim_time": 1.0,
            "job_id": 1,  # blocker_kind missing
        })
    with pytest.raises(TraceSchemaError):
        validate_event({
            "type": "backfill_hole_used", "wall_time": 0.0, "sim_time": 1.0,
            "job_id": 1,  # hole_start_s missing
        })
