"""Tests for the Smith template-set predictor."""

from __future__ import annotations

import pytest

from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template
from tests.conftest import make_job


def feed(predictor, jobs):
    for j in jobs:
        predictor.on_finish(j, j.submit_time + j.run_time)


class TestLifecycle:
    def test_no_history_no_prediction(self):
        p = SmithPredictor([Template(characteristics=("u",))])
        assert p.predict(make_job()) is None

    def test_prediction_after_two_similar_jobs(self):
        p = SmithPredictor([Template(characteristics=("u",))])
        feed(p, [make_job(run_time=100.0), make_job(run_time=120.0)])
        pred = p.predict(make_job())
        assert pred is not None
        assert pred.estimate == pytest.approx(110.0)

    def test_dissimilar_jobs_do_not_help(self):
        p = SmithPredictor([Template(characteristics=("u",))])
        feed(p, [make_job(user="bob", run_time=100.0)] * 1)
        feed(p, [make_job(user="bob", run_time=100.0, job_id=None)])
        assert p.predict(make_job(user="alice")) is None

    def test_requires_templates(self):
        with pytest.raises(ValueError):
            SmithPredictor([])

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            SmithPredictor([Template()], confidence=1.5)

    def test_categories_created_on_finish(self):
        p = SmithPredictor([Template(characteristics=("u",)), Template()])
        assert p.category_count == 0
        feed(p, [make_job()])
        assert p.category_count == 2  # one per template


class TestSmallestIntervalSelection:
    def test_tight_specific_category_beats_loose_generic(self):
        """The paper's core mechanism (§2.1 step 2d)."""
        specific = Template(characteristics=("u", "e"))
        generic = Template()
        p = SmithPredictor([specific, generic])
        # Alice's 'sim' runs are tightly clustered around 100.
        feed(
            p,
            [
                make_job(user="alice", executable="sim", run_time=rt)
                for rt in (98.0, 100.0, 102.0)
            ],
        )
        # Unrelated jobs are wildly spread, polluting only the generic category.
        feed(
            p,
            [
                make_job(user="bob", executable="other", run_time=rt)
                for rt in (10.0, 5000.0, 20000.0)
            ],
        )
        pred = p.predict(make_job(user="alice", executable="sim"))
        assert pred is not None
        assert pred.estimate == pytest.approx(100.0, rel=0.05)
        assert pred.source == "(u, e)"

    def test_falls_back_to_generic_for_unknown_user(self):
        p = SmithPredictor([Template(characteristics=("u",)), Template()])
        feed(p, [make_job(user="bob", run_time=100.0),
                 make_job(user="bob", run_time=200.0)])
        pred = p.predict(make_job(user="newcomer"))
        assert pred is not None
        assert pred.source == "()"
        assert pred.estimate == pytest.approx(150.0)

    def test_prediction_reports_interval(self):
        p = SmithPredictor([Template()])
        feed(p, [make_job(run_time=100.0), make_job(run_time=300.0)])
        pred = p.predict(make_job())
        assert pred.interval > 0


class TestElapsedAndHistory:
    def test_elapsed_conditioning_raises_estimate(self):
        p = SmithPredictor([Template()])
        feed(p, [make_job(run_time=rt) for rt in (50.0, 60.0, 5000.0, 6000.0)])
        fresh = p.predict(make_job(), elapsed=0.0)
        aged = p.predict(make_job(), elapsed=1000.0)
        assert aged.estimate > fresh.estimate
        assert aged.estimate >= 1000.0

    def test_max_history_bounds_category(self):
        p = SmithPredictor([Template(max_history=3)])
        feed(p, [make_job(run_time=1000.0)] * 0)
        for rt in (1000.0, 1000.0, 10.0, 10.0, 10.0):
            p.on_finish(make_job(run_time=rt), 0.0)
        pred = p.predict(make_job())
        assert pred.estimate == pytest.approx(10.0)

    def test_relative_template_uses_job_max(self):
        p = SmithPredictor([Template(relative=True)])
        feed(
            p,
            [
                make_job(run_time=50.0, max_run_time=100.0),
                make_job(run_time=100.0, max_run_time=200.0),
            ],
        )
        pred = p.predict(make_job(max_run_time=600.0))
        assert pred.estimate == pytest.approx(300.0)

    def test_for_trace_restricts_templates(self, sdsc_trace):
        p = SmithPredictor.for_trace(sdsc_trace)
        used = {c for t in p.templates for c in t.characteristics}
        assert used <= {"q", "u"}

    def test_multiple_categories_listed(self):
        p = SmithPredictor([Template(characteristics=("u",)), Template()])
        feed(p, [make_job()])
        assert len(p.categories_for(make_job())) == 2


class TestUsageStats:
    def test_wins_attributed_to_winning_template(self):
        specific = Template(characteristics=("u", "e"))
        generic = Template()
        p = SmithPredictor([specific, generic])
        feed(
            p,
            [
                make_job(user="alice", executable="sim", run_time=rt)
                for rt in (98.0, 100.0, 102.0)
            ],
        )
        p.predict(make_job(user="alice", executable="sim"))
        stats = p.usage_stats()
        assert stats["(u, e)"] == 1
        assert stats["()"] == 0

    def test_misses_counted(self):
        p = SmithPredictor([Template(characteristics=("u",))])
        p.predict(make_job(user="nobody"))
        assert p.usage_stats()["(no prediction)"] == 1

    def test_counts_accumulate(self):
        p = SmithPredictor([Template()])
        feed(p, [make_job(run_time=10.0), make_job(run_time=20.0)])
        for _ in range(5):
            p.predict(make_job())
        assert p.usage_stats()["()"] == 5


class TestAccuracyOnStructuredWorkload:
    def test_beats_max_runtime_on_synthetic_trace(self, anl_trace):
        """End-to-end: Smith replay error < max-run-time replay error."""
        from repro.predictors.replay import replay_prediction_error
        from repro.predictors.simple import MaxRuntimePredictor

        smith = SmithPredictor.for_trace(anl_trace)
        r_smith = replay_prediction_error(anl_trace, smith)
        r_max = replay_prediction_error(
            anl_trace, MaxRuntimePredictor.from_trace(anl_trace)
        )
        assert r_smith.mean_abs_error < r_max.mean_abs_error
