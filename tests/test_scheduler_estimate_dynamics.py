"""Scheduler behaviour under changing and wrong estimates."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator, RuntimePredictor, Prediction
from repro.scheduler.policies import BackfillPolicy, EASYBackfillPolicy, LWFPolicy
from repro.scheduler.simulator import Simulator
from repro.workloads.job import Trace
from tests.conftest import make_job


class Underestimator(RuntimePredictor):
    """Believes every job runs one tenth of its true time."""

    name = "under"

    def predict(self, job, elapsed=0.0, now=0.0):
        return Prediction(estimate=job.run_time / 10.0, interval=0.0)


class Overestimator(RuntimePredictor):
    """Believes every job runs ten times its true time."""

    name = "over"

    def predict(self, job, elapsed=0.0, now=0.0):
        return Prediction(estimate=job.run_time * 10.0, interval=0.0)


class SelectiveEstimator(RuntimePredictor):
    """Scales specific jobs' estimates; everything else is exact."""

    name = "selective"

    def __init__(self, factors: dict[int, float]):
        self.factors = factors

    def predict(self, job, elapsed=0.0, now=0.0):
        return Prediction(
            estimate=job.run_time * self.factors.get(job.job_id, 1.0),
            interval=0.0,
        )


class FlippingPredictor(RuntimePredictor):
    """Estimates change between scheduling passes (history-driven churn)."""

    name = "flip"

    def __init__(self):
        self.calls = 0

    def predict(self, job, elapsed=0.0, now=0.0):
        self.calls += 1
        factor = 0.5 if self.calls % 2 else 2.0
        return Prediction(estimate=job.run_time * factor, interval=0.0)


def run(policy, predictor, jobs, total_nodes=10):
    sim = Simulator(policy, PointEstimator(predictor), total_nodes)
    return sim.run(Trace(jobs, total_nodes=total_nodes))


def congested_jobs(n=12):
    return [
        make_job(
            job_id=i + 1,
            submit_time=float(i * 30),
            run_time=600.0 + 50.0 * (i % 4),
            nodes=3 + (i % 3) * 3,
        )
        for i in range(n)
    ]


class TestWrongEstimates:
    @pytest.mark.parametrize("predictor_cls", [Underestimator, Overestimator])
    @pytest.mark.parametrize(
        "policy_cls", [LWFPolicy, BackfillPolicy, EASYBackfillPolicy]
    )
    def test_completion_and_capacity(self, predictor_cls, policy_cls):
        """Wildly wrong estimates never break the simulation invariants."""
        res = run(policy_cls(), predictor_cls(), congested_jobs())
        assert len(res) == 12
        assert res.max_concurrent_nodes() <= 10
        for rec in res.records:
            assert rec.start_time >= rec.submit_time

    def test_underestimates_cause_backfill_overruns(self):
        """A backfilled job believed short overruns its hole: the blocked
        head is delayed relative to the exact-knowledge schedule."""
        from repro.predictors.simple import ActualRuntimePredictor

        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=6),
            make_job(job_id=2, submit_time=1.0, run_time=100.0, nodes=8),
            # Actually runs 400 s, believed 40 s: gets backfilled into the
            # [2, 100) hole, then overruns the head's planned t=100 start.
            make_job(job_id=3, submit_time=2.0, run_time=400.0, nodes=4),
        ]
        exact = run(BackfillPolicy(), ActualRuntimePredictor(), jobs)
        under = run(BackfillPolicy(), SelectiveEstimator({3: 0.1}), jobs)
        assert under[3].start_time == pytest.approx(2.0)  # backfilled on belief
        assert exact[2].start_time == pytest.approx(100.0)
        assert under[2].start_time > exact[2].start_time  # head pays for it

    def test_overestimates_block_backfill(self):
        from repro.predictors.simple import ActualRuntimePredictor

        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=6),
            make_job(job_id=2, submit_time=1.0, run_time=100.0, nodes=8),
            # Fits the hole exactly (ends t=92 < 100), but believed 10x
            # longer: would hold 4 nodes past the head's reservation.
            make_job(job_id=3, submit_time=2.0, run_time=90.0, nodes=4),
        ]
        exact = run(BackfillPolicy(), ActualRuntimePredictor(), jobs)
        over = run(BackfillPolicy(), SelectiveEstimator({3: 10.0}), jobs)
        assert exact[3].start_time == pytest.approx(2.0)
        assert over[3].start_time > 2.0

    def test_flipping_estimates_still_complete(self):
        res = run(LWFPolicy(), FlippingPredictor(), congested_jobs())
        assert len(res) == 12
        assert res.max_concurrent_nodes() <= 10

    def test_lwf_order_tracks_live_estimates(self):
        """LWF re-sorts on every pass with current estimates."""

        class PromoteJob3(RuntimePredictor):
            name = "promote"

            def predict(self, job, elapsed=0.0, now=0.0):
                # Job 3 looks tiny; all others look huge.
                est = 1.0 if job.job_id == 3 else 1e6
                return Prediction(estimate=est, interval=0.0)

        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=500.0, nodes=10),
            make_job(job_id=2, submit_time=1.0, run_time=100.0, nodes=10),
            make_job(job_id=3, submit_time=2.0, run_time=100.0, nodes=10),
        ]
        res = run(LWFPolicy(), PromoteJob3(), jobs)
        assert res[3].start_time < res[2].start_time
