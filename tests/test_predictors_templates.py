"""Tests for repro.predictors.templates."""

from __future__ import annotations

import pytest

from repro.predictors.templates import Template, default_templates
from tests.conftest import make_job


class TestTemplateValidation:
    def test_unknown_characteristic(self):
        with pytest.raises(ValueError, match="unknown"):
            Template(characteristics=("z",))

    def test_duplicate_characteristic(self):
        with pytest.raises(ValueError, match="duplicate"):
            Template(characteristics=("u", "u"))

    def test_bad_node_range(self):
        with pytest.raises(ValueError):
            Template(node_range_size=0)

    def test_bad_history(self):
        with pytest.raises(ValueError):
            Template(max_history=0)

    def test_bad_estimator(self):
        with pytest.raises(ValueError, match="estimator"):
            Template(estimator="spline")

    def test_empty_template_valid(self):
        t = Template()
        assert t.characteristics == ()
        assert not t.uses_nodes


class TestNodeBinning:
    def test_paper_example(self):
        """(u, n=4): nodes 1-4 in one category, 5-8 in the next (§2.1)."""
        t = Template(characteristics=("u",), node_range_size=4)
        assert t.node_bin(1) == t.node_bin(4) == 0
        assert t.node_bin(5) == t.node_bin(8) == 1
        assert t.node_bin(9) == 2

    def test_range_size_one(self):
        t = Template(node_range_size=1)
        assert [t.node_bin(n) for n in (1, 2, 3)] == [0, 1, 2]

    def test_node_bin_without_nodes_raises(self):
        with pytest.raises(ValueError):
            Template().node_bin(4)


class TestCategoryKey:
    def test_key_includes_characteristics_in_order(self):
        t = Template(characteristics=("u", "e"))
        job = make_job(user="wsmith", executable="a.out")
        assert t.category_key(job) == ("wsmith", "a.out")

    def test_key_appends_node_bin(self):
        t = Template(characteristics=("u",), node_range_size=4)
        job = make_job(user="wsmith", nodes=6)
        assert t.category_key(job) == ("wsmith", 1)

    def test_missing_characteristic_gives_none(self):
        t = Template(characteristics=("q",))
        assert t.category_key(make_job(queue=None)) is None

    def test_relative_requires_max_run_time(self):
        t = Template(characteristics=("u",), relative=True)
        assert t.category_key(make_job(max_run_time=None)) is None
        assert t.category_key(make_job(max_run_time=100.0)) == ("alice",)

    def test_empty_template_matches_everything(self):
        assert Template().category_key(make_job(user=None)) == ()

    def test_jobs_in_same_category_share_key(self):
        t = Template(characteristics=("u",), node_range_size=8)
        a = make_job(user="x", nodes=3)
        b = make_job(user="x", nodes=8)
        c = make_job(user="x", nodes=9)
        assert t.category_key(a) == t.category_key(b)
        assert t.category_key(a) != t.category_key(c)


class TestDescribe:
    def test_paper_style(self):
        t = Template(characteristics=("u", "e"), node_range_size=4)
        assert t.describe() == "(u, e, n=4)"

    def test_modifiers_listed(self):
        t = Template(
            characteristics=("u",), relative=True, estimator="log", max_history=32
        )
        assert t.describe() == "(u) [rel, log, hist=32]"


class TestDefaultTemplates:
    def test_always_includes_global(self):
        templates = default_templates(frozenset())
        assert Template() in templates

    def test_restricted_to_available(self):
        templates = default_templates(frozenset({"u"}))
        for t in templates:
            assert set(t.characteristics) <= {"u"}

    def test_relative_only_with_max(self):
        with_max = default_templates(frozenset({"u", "e"}), has_max_run_time=True)
        without = default_templates(frozenset({"u", "e"}), has_max_run_time=False)
        assert any(t.relative for t in with_max)
        assert not any(t.relative for t in without)

    def test_no_duplicates(self):
        templates = default_templates(frozenset({"u", "e", "q"}), has_max_run_time=True)
        assert len(templates) == len(set(templates))

    def test_node_ranged_variant_present(self):
        templates = default_templates(frozenset({"u"}))
        assert any(t.node_range_size is not None for t in templates)

    def test_none_means_all(self):
        templates = default_templates(None)
        chars = {c for t in templates for c in t.characteristics}
        assert "u" in chars and "e" in chars and "q" in chars
