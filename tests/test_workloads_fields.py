"""Tests for repro.workloads.fields: the Table 2 catalogue."""

from __future__ import annotations

import pytest

from repro.workloads.fields import (
    CHARACTERISTICS,
    TEMPLATE_CHARACTERISTICS,
    WORKLOAD_FIELDS,
)
from tests.conftest import make_job


class TestCharacteristics:
    def test_all_table2_abbreviations_present(self):
        assert set(CHARACTERISTICS) == {"t", "q", "c", "u", "s", "e", "a", "na", "n"}

    def test_template_characteristics_exclude_nodes(self):
        assert "n" not in TEMPLATE_CHARACTERISTICS
        assert set(TEMPLATE_CHARACTERISTICS) < set(CHARACTERISTICS)

    def test_getters_read_job_attributes(self):
        job = make_job(
            user="wsmith", executable="a.out", queue="q16m", job_type="batch"
        )
        assert CHARACTERISTICS["u"].getter(job) == "wsmith"
        assert CHARACTERISTICS["e"].getter(job) == "a.out"
        assert CHARACTERISTICS["q"].getter(job) == "q16m"
        assert CHARACTERISTICS["t"].getter(job) == "batch"
        assert CHARACTERISTICS["n"].getter(job) == 4

    def test_missing_value_is_none(self):
        job = make_job(queue=None)
        assert CHARACTERISTICS["q"].getter(job) is None


class TestWorkloadFields:
    def test_four_paper_workloads(self):
        assert set(WORKLOAD_FIELDS) == {"ANL", "CTC", "SDSC95", "SDSC96"}

    def test_anl_matches_table2(self):
        anl = WORKLOAD_FIELDS["ANL"]
        assert "e" in anl and "a" in anl and "u" in anl and "t" in anl
        assert "q" not in anl and "s" not in anl
        assert anl.has_max_run_time

    def test_ctc_matches_table2(self):
        ctc = WORKLOAD_FIELDS["CTC"]
        assert "s" in ctc and "c" in ctc and "na" in ctc
        assert "e" not in ctc and "q" not in ctc
        assert ctc.has_max_run_time

    @pytest.mark.parametrize("name", ["SDSC95", "SDSC96"])
    def test_sdsc_matches_table2(self, name):
        sdsc = WORKLOAD_FIELDS[name]
        assert "q" in sdsc and "u" in sdsc
        assert "e" not in sdsc and "t" not in sdsc
        assert not sdsc.has_max_run_time

    def test_categorical_ordered_subset(self):
        cats = WORKLOAD_FIELDS["CTC"].categorical()
        assert all(c in TEMPLATE_CHARACTERISTICS for c in cats)
        # Order must follow Table 2 order.
        idx = [TEMPLATE_CHARACTERISTICS.index(c) for c in cats]
        assert idx == sorted(idx)
