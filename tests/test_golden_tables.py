"""Golden regression pins for the paper's headline tables at test scale.

The replay engine, the policies, the estimators, and the synthetic trace
generators are all seed-deterministic, so the integer-percent cells of
Table 4 (wait-time prediction error with the run-time oracle) and
Table 10 (scheduling performance with the oracle) are exact constants at
a fixed ``(n_jobs, seed)``.  Any drift here means *something* changed
schedule-visible behaviour — a refactor that was supposed to be
behaviour-preserving wasn't, or an intentional change needs these pins
(and possibly ``benchmarks/baselines/``) regenerated.

Scale is deliberately small (300 jobs/workload, default seed): big
enough that every policy queues and backfills, small enough to stay a
tier-1 test.  The values mirror the reduced-scale shape of the paper's
findings — LWF's built-in wait-time error dwarfs backfill's (Table 4),
and LWF trades utilization for mean wait against FCFS (Table 10) —
which the benches assert at full scale.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import run_scheduling_experiment, run_wait_time_experiment
from repro.core.rounding import round_half_up
from repro.workloads.archive import load_paper_workload

N_JOBS = 300

#: (workload, algorithm) -> wait-prediction error as integer percent of
#: mean wait, with the 'actual' (oracle) run-time predictor — Table 4.
TABLE4_PERCENT_OF_MEAN_WAIT = {
    ("ANL", "LWF"): 67,
    ("ANL", "Backfill"): 7,
    ("CTC", "LWF"): 60,
    ("CTC", "Backfill"): 2,
    ("SDSC95", "LWF"): 34,
    ("SDSC95", "Backfill"): 5,
    ("SDSC96", "LWF"): 70,
    ("SDSC96", "Backfill"): 1,
}

#: (workload, algorithm) -> (integer utilization %, integer mean wait
#: minutes) with the 'actual' run-time predictor — Table 10.
TABLE10_UTIL_AND_WAIT = {
    ("ANL", "FCFS"): (57, 143),
    ("ANL", "LWF"): (60, 30),
    ("ANL", "Backfill"): (59, 46),
    ("CTC", "FCFS"): (31, 350),
    ("CTC", "LWF"): (36, 23),
    ("CTC", "Backfill"): (33, 34),
    ("SDSC95", "FCFS"): (35, 26),
    ("SDSC95", "LWF"): (35, 3),
    ("SDSC95", "Backfill"): (35, 9),
    ("SDSC96", "FCFS"): (42, 229),
    ("SDSC96", "LWF"): (38, 10),
    ("SDSC96", "Backfill"): (42, 34),
}

_ALGO_ARG = {"LWF": "lwf", "Backfill": "backfill", "FCFS": "fcfs"}


@pytest.fixture(scope="module")
def traces():
    names = sorted({w for w, _ in TABLE4_PERCENT_OF_MEAN_WAIT})
    return {w: load_paper_workload(w, n_jobs=N_JOBS) for w in names}


@pytest.mark.parametrize(
    "workload,algorithm", sorted(TABLE4_PERCENT_OF_MEAN_WAIT)
)
def test_golden_table4_wait_error_percent(traces, workload, algorithm):
    cell, _, _ = run_wait_time_experiment(
        traces[workload], _ALGO_ARG[algorithm], "actual"
    )
    assert cell.algorithm == algorithm
    assert (
        round_half_up(cell.percent_of_mean_wait)
        == TABLE4_PERCENT_OF_MEAN_WAIT[(workload, algorithm)]
    )


@pytest.mark.parametrize("workload,algorithm", sorted(TABLE10_UTIL_AND_WAIT))
def test_golden_table10_scheduling(traces, workload, algorithm):
    cell, _ = run_scheduling_experiment(
        traces[workload], _ALGO_ARG[algorithm], "actual"
    )
    util, wait = TABLE10_UTIL_AND_WAIT[(workload, algorithm)]
    assert round_half_up(cell.utilization_percent) == util
    assert round_half_up(cell.mean_wait_minutes) == wait
