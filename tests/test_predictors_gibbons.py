"""Tests for the Gibbons fixed-hierarchy predictor."""

from __future__ import annotations

import pytest

from repro.predictors.gibbons import GibbonsPredictor, exponential_node_bin
from tests.conftest import make_job


def feed(p, jobs):
    for j in jobs:
        p.on_finish(j, 0.0)


class TestExponentialBins:
    def test_paper_ranges(self):
        """1 | 2-3 | 4-7 | 8-15 | ... (§2.2)."""
        assert exponential_node_bin(1) == 0
        assert exponential_node_bin(2) == exponential_node_bin(3) == 1
        assert exponential_node_bin(4) == exponential_node_bin(7) == 2
        assert exponential_node_bin(8) == exponential_node_bin(15) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            exponential_node_bin(0)


class TestTemplateOrdering:
    def test_most_specific_first(self):
        """(u,e,n,rtime) mean wins when its subcategory has data."""
        p = GibbonsPredictor()
        feed(
            p,
            [
                make_job(user="a", executable="x", nodes=4, run_time=rt)
                for rt in (100.0, 120.0)
            ],
        )
        pred = p.predict(make_job(user="a", executable="x", nodes=5))
        assert pred is not None
        assert pred.estimate == pytest.approx(110.0)
        assert pred.source == "gibbons:ue:mean"

    def test_falls_to_ue_regression_on_node_mismatch(self):
        p = GibbonsPredictor()
        # Two subcategories of (a, x) with different node bins.
        feed(
            p,
            [
                make_job(user="a", executable="x", nodes=1, run_time=100.0),
                make_job(user="a", executable="x", nodes=1, run_time=110.0),
                make_job(user="a", executable="x", nodes=8, run_time=800.0),
                make_job(user="a", executable="x", nodes=8, run_time=820.0),
            ],
        )
        # Nodes=4 hits an empty subcategory -> weighted LR across bins.
        pred = p.predict(make_job(user="a", executable="x", nodes=4))
        assert pred is not None
        assert pred.source == "gibbons:ue:regression"
        assert 100.0 < pred.estimate < 820.0

    def test_falls_to_e_level_for_new_user(self):
        p = GibbonsPredictor()
        feed(
            p,
            [
                make_job(user="a", executable="x", nodes=4, run_time=rt)
                for rt in (200.0, 220.0)
            ],
        )
        pred = p.predict(make_job(user="newbie", executable="x", nodes=4))
        assert pred is not None
        assert pred.source == "gibbons:e:mean"
        assert pred.estimate == pytest.approx(210.0)

    def test_falls_to_global_for_unknown_everything(self):
        p = GibbonsPredictor()
        feed(
            p,
            [
                make_job(user="a", executable="x", nodes=4, run_time=rt)
                for rt in (300.0, 330.0)
            ],
        )
        pred = p.predict(make_job(user="b", executable="y", nodes=4))
        assert pred is not None
        assert pred.source == "gibbons:():mean"  # global (n, rtime) mean

    def test_no_history_no_prediction(self):
        assert GibbonsPredictor().predict(make_job()) is None


class TestRtimeConditioning:
    def test_elapsed_filters_short_runs(self):
        p = GibbonsPredictor()
        feed(
            p,
            [
                make_job(user="a", executable="x", nodes=4, run_time=rt)
                for rt in (10.0, 1000.0, 1200.0)
            ],
        )
        pred = p.predict(make_job(user="a", executable="x", nodes=4), elapsed=500.0)
        assert pred.estimate == pytest.approx(1100.0)

    def test_estimate_never_below_elapsed(self):
        p = GibbonsPredictor()
        feed(
            p,
            [
                make_job(user="a", executable="x", nodes=4, run_time=rt)
                for rt in (100.0, 120.0)
            ],
        )
        pred = p.predict(make_job(user="a", executable="x", nodes=4), elapsed=115.0)
        assert pred is None or pred.estimate >= 115.0


class TestExecutableResolution:
    def test_auto_uses_script_when_no_executable(self):
        p = GibbonsPredictor()
        feed(
            p,
            [
                make_job(
                    user="a", executable=None, script="job.ll", nodes=4, run_time=rt
                )
                for rt in (100.0, 120.0)
            ],
        )
        pred = p.predict(
            make_job(user="a", executable=None, script="job.ll", nodes=4)
        )
        assert pred is not None
        assert pred.estimate == pytest.approx(110.0)

    def test_auto_uses_queue_as_last_resort(self):
        p = GibbonsPredictor()
        feed(
            p,
            [
                make_job(user="a", executable=None, queue="q16m", nodes=4, run_time=rt)
                for rt in (50.0, 70.0)
            ],
        )
        pred = p.predict(make_job(user="a", executable=None, queue="q16m", nodes=4))
        assert pred is not None
        assert pred.estimate == pytest.approx(60.0)

    def test_explicit_attr(self):
        p = GibbonsPredictor(executable_attr="script")
        feed(
            p,
            [
                make_job(user="a", script="s.ll", nodes=4, run_time=rt)
                for rt in (80.0, 100.0)
            ],
        )
        pred = p.predict(make_job(user="a", script="s.ll", nodes=4))
        assert pred.estimate == pytest.approx(90.0)


class TestWeightedRegression:
    def test_low_variance_bins_dominate(self):
        p = GibbonsPredictor()
        # Three tight bins on the exact line rt = 100 * nodes, plus one
        # wildly noisy off-line bin at nodes=32 whose tiny weight must not
        # bend the fit.
        jobs = []
        for nodes in (1, 4, 16):
            jobs += [
                make_job(user="a", executable="x", nodes=nodes, run_time=rt)
                for rt in (100.0 * nodes - 1.0, 100.0 * nodes + 1.0)
            ]
        jobs += [
            make_job(user="a", executable="x", nodes=32, run_time=rt)
            for rt in (1.0, 50_000.0)
        ]
        feed(p, jobs)
        # nodes=2 falls in an empty bin (2-3), forcing the regression.
        pred = p.predict(make_job(user="a", executable="x", nodes=2))
        assert pred is not None
        assert pred.source == "gibbons:ue:regression"
        assert pred.estimate == pytest.approx(200.0, rel=0.25)

    def test_nonpositive_regression_estimate_rejected(self):
        p = GibbonsPredictor()
        # Steeply decreasing: extrapolation to high nodes goes negative.
        feed(
            p,
            [
                make_job(user="a", executable="x", nodes=1, run_time=1000.0),
                make_job(user="a", executable="x", nodes=1, run_time=1000.0),
                make_job(user="a", executable="x", nodes=2, run_time=10.0),
                make_job(user="a", executable="x", nodes=2, run_time=10.0),
            ],
        )
        pred = p.predict(make_job(user="a", executable="x", nodes=512))
        # Falls through (u,e) regression to (e)... all levels share the same
        # degenerate data, so the result is either None or positive.
        assert pred is None or pred.estimate > 0

    def test_min_subcategories_validation(self):
        with pytest.raises(ValueError):
            GibbonsPredictor(min_subcategories=1)

    def test_min_points_validation(self):
        with pytest.raises(ValueError):
            GibbonsPredictor(min_points=0)
