"""Tests for simple predictors and the PointEstimator adapter."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator, Prediction
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.workloads.job import Trace
from tests.conftest import make_job


class TestPrediction:
    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            Prediction(estimate=10.0, interval=-1.0)


class TestActual:
    def test_oracle(self):
        p = ActualRuntimePredictor()
        job = make_job(run_time=123.0)
        pred = p.predict(job)
        assert pred.estimate == 123.0
        assert pred.interval == 0.0


class TestMaxRuntime:
    def test_user_supplied_max(self):
        p = MaxRuntimePredictor()
        pred = p.predict(make_job(max_run_time=3600.0))
        assert pred.estimate == 3600.0
        assert pred.source == "max:user"

    def test_from_trace_derives_queue_maxima(self):
        """The paper's SDSC derivation: longest job per queue (§3)."""
        jobs = [
            make_job(job_id=1, queue="q16s", run_time=100.0),
            make_job(job_id=2, queue="q16s", run_time=500.0),
            make_job(job_id=3, queue="q64l", run_time=9000.0),
        ]
        trace = Trace(jobs, total_nodes=64)
        p = MaxRuntimePredictor.from_trace(trace)
        pred = p.predict(make_job(queue="q16s", max_run_time=None))
        assert pred.estimate == 500.0
        assert pred.source == "max:queue"
        pred2 = p.predict(make_job(queue="q64l", max_run_time=None))
        assert pred2.estimate == 9000.0

    def test_user_max_wins_over_queue(self):
        p = MaxRuntimePredictor({"q": 1000.0})
        pred = p.predict(make_job(queue="q", max_run_time=50.0))
        assert pred.estimate == 50.0

    def test_unknown_queue_falls_to_global(self):
        p = MaxRuntimePredictor({"q": 1000.0})
        pred = p.predict(make_job(queue="other", max_run_time=None))
        assert pred.estimate == 1000.0
        assert pred.source == "max:global"

    def test_nothing_known_returns_none(self):
        p = MaxRuntimePredictor()
        assert p.predict(make_job(queue=None, max_run_time=None)) is None

    def test_online_learning_when_not_static(self):
        p = MaxRuntimePredictor()
        p.on_finish(make_job(queue="q", run_time=700.0), 0.0)
        pred = p.predict(make_job(queue="q", max_run_time=None))
        assert pred.estimate == 700.0

    def test_static_mode_does_not_learn(self):
        p = MaxRuntimePredictor({"q": 100.0})
        p.on_finish(make_job(queue="q", run_time=900.0), 0.0)
        assert p.predict(make_job(queue="q", max_run_time=None)).estimate == 100.0


class TestPointEstimator:
    def test_uses_predictor_estimate(self):
        est = PointEstimator(ActualRuntimePredictor())
        assert est.predict(make_job(run_time=42.0), 0.0, 0.0) == 42.0

    def test_falls_back_to_max(self):
        class Never:
            name = "never"

            def predict(self, job, elapsed=0.0, now=0.0):
                return None

            def on_submit(self, job, now):
                pass

            def on_start(self, job, now):
                pass

            def on_finish(self, job, now):
                pass

        est = PointEstimator(Never())
        assert est.predict(make_job(max_run_time=999.0), 0.0, 0.0) == 999.0

    def test_falls_back_to_completed_mean(self):
        from repro.predictors.smith import SmithPredictor
        from repro.predictors.templates import Template

        est = PointEstimator(SmithPredictor([Template(characteristics=("e",))]))
        est.on_finish(make_job(run_time=100.0, executable="a"), 0.0)
        est.on_finish(make_job(run_time=300.0, executable="b"), 0.0)
        # Unknown executable, no user max: completed mean = 200.
        value = est.predict(
            make_job(executable="zzz", max_run_time=None), 0.0, 0.0
        )
        assert value == pytest.approx(200.0)

    def test_falls_back_to_default(self):
        from repro.predictors.smith import SmithPredictor
        from repro.predictors.templates import Template

        est = PointEstimator(
            SmithPredictor([Template()]), default=777.0
        )
        assert est.predict(make_job(max_run_time=None), 0.0, 0.0) == 777.0

    def test_clamps_to_elapsed(self):
        est = PointEstimator(ActualRuntimePredictor())
        assert est.predict(make_job(run_time=10.0), 500.0, 0.0) == 500.0

    def test_cap_at_max(self):
        est = PointEstimator(ActualRuntimePredictor(), cap_at_max=True)
        job = make_job(run_time=1000.0, max_run_time=600.0)
        assert est.predict(job, 0.0, 0.0) == 600.0

    def test_no_cap_by_default(self):
        est = PointEstimator(ActualRuntimePredictor())
        job = make_job(run_time=1000.0, max_run_time=600.0)
        assert est.predict(job, 0.0, 0.0) == 1000.0

    def test_invalid_default(self):
        with pytest.raises(ValueError):
            PointEstimator(ActualRuntimePredictor(), default=0.0)

    def test_forwards_lifecycle(self):
        calls = []

        class Spy(ActualRuntimePredictor):
            def on_finish(self, job, now):
                calls.append(job.job_id)

        est = PointEstimator(Spy())
        est.on_finish(make_job(job_id=7), 0.0)
        assert calls == [7]

    def test_disable_max_fallback(self):
        from repro.predictors.smith import SmithPredictor
        from repro.predictors.templates import Template

        est = PointEstimator(
            SmithPredictor([Template()]), fall_back_to_max=False, default=5.0
        )
        assert est.predict(make_job(max_run_time=100.0), 0.0, 0.0) == 5.0


class TestBaseLifecycleHooks:
    """Pin the RuntimePredictor hook surface (uncovered-by-design no-ops).

    The base hooks are deliberate no-ops — adaptive predictors override
    them — and PointEstimator decides its pessimistic epoch bumps by
    comparing each hook against the *base* function object.  These tests
    keep both facts true: the no-ops do nothing (and are executed, not
    coverage-pragma'd away), and every override in the repo keeps the
    base signature so the identity comparison stays meaningful.
    """

    def test_base_hooks_are_no_ops(self):
        import copy

        from repro.predictors.base import RuntimePredictor

        class Bare(RuntimePredictor):
            def predict(self, job, elapsed=0.0, now=0.0):
                return None

        p = Bare()
        before = copy.deepcopy(p.__dict__)
        job = make_job()
        # Exercise the base-class hook bodies directly.
        assert RuntimePredictor.on_submit(p, job, 1.0) is None
        assert RuntimePredictor.on_start(p, job, 2.0) is None
        assert RuntimePredictor.on_finish(p, job, 3.0) is None
        assert p.__dict__ == before

    def test_unoverridden_hooks_do_not_bump_epoch(self):
        """PointEstimator's hook-identity check sees base no-ops as inert."""

        class Bare(ActualRuntimePredictor):
            pass

        est = PointEstimator(Bare())
        start_epoch = est.history_epoch
        est.on_submit(make_job(), 0.0)
        est.on_start(make_job(), 0.0)
        assert est.history_epoch == start_epoch

    def test_every_override_matches_base_signature(self):
        import inspect

        from repro.predictors.adaptive import (
            DecayedMeanPredictor,
            OnlineMeanPredictor,
            OnlineRegressionPredictor,
        )
        from repro.predictors.base import RuntimePredictor
        from repro.predictors.downey import DowneyPredictor
        from repro.predictors.gibbons import GibbonsPredictor
        from repro.predictors.smith import SmithPredictor

        classes = [
            ActualRuntimePredictor,
            MaxRuntimePredictor,
            SmithPredictor,
            GibbonsPredictor,
            DowneyPredictor,
            OnlineMeanPredictor,
            OnlineRegressionPredictor,
            DecayedMeanPredictor,
        ]
        for hook in ("on_submit", "on_start", "on_finish"):
            base_sig = inspect.signature(getattr(RuntimePredictor, hook))
            for cls in classes:
                assert inspect.signature(getattr(cls, hook)) == base_sig, (
                    f"{cls.__name__}.{hook} drifted from the base signature"
                )
