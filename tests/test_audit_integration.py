"""End-to-end audit-trail guarantees.

Three properties the report pipeline stands on:

1. the audited MAE equals the repo's offline evaluators
   (``replay_prediction_error`` for run times on a zero-wait replay,
   ``evaluate_wait_predictions`` for waits) within float tolerance;
2. attaching the audit never changes the schedule or the estimator's
   fallback tallies;
3. the disabled path binds zero audit machinery (no shadowed methods,
   no per-instance handlers) — the hot path is untouched, not merely
   guarded.
"""

from __future__ import annotations

import math

from repro.obs import Instrumentation, ListSink, Tracer, validate_events
from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.predictors.smith import SmithPredictor
from repro.predictors.replay import replay_prediction_error
from repro.predictors.templates import Template
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy
from repro.scheduler.simulator import Simulator
from repro.waitpred.evaluation import evaluate_wait_predictions
from repro.waitpred.predictor import WaitTimePredictor
from repro.workloads.job import Trace
from tests.conftest import make_job


def smith():
    return SmithPredictor([Template(characteristics=("u",))])


def zero_wait_trace() -> Trace:
    """Every job starts at submission: enough nodes for all of them.

    Submit and finish instants never coincide (integer submits,
    fractional run times), so the simulator's event order matches the
    replay evaluator's ``finish <= submit`` history updates exactly.
    """
    jobs = [
        make_job(
            job_id=i,
            submit_time=float(i * 100),
            run_time=50.0 + 13.7 * (i % 7),
            nodes=2,
            user=("alice", "bob", "carol")[i % 3],
        )
        for i in range(1, 41)
    ]
    return Trace(jobs, total_nodes=sum(j.nodes for j in jobs), name="zero-wait")


class TestMAEMatchesOfflineEvaluators:
    def test_runtime_audit_matches_replay_evaluator(self):
        trace = zero_wait_trace()
        inst = Instrumentation(audit=True)
        estimator = PointEstimator(smith(), instrumentation=inst)
        sim = Simulator(FCFSPolicy(), estimator, trace.total_nodes, instrumentation=inst)
        result = sim.run(trace)
        assert all(r.wait_time == 0.0 for r in result.records)

        reference = replay_prediction_error(trace, smith())
        group = inst.audit.monitor.group("run_time", "smith")
        assert group.n == reference.n_jobs == len(trace)
        assert math.isclose(group.mae, reference.mean_abs_error, rel_tol=1e-9)
        # The fallback split shows up as per-source drill-down keys.
        keys = group.snapshot()["keys"]
        assert sum(k["n"] for k in keys.values()) == group.n
        n_fallback = sum(
            k["n"] for key, k in keys.items() if key.startswith("fallback")
        )
        assert n_fallback == reference.n_fallback

    def test_wait_audit_matches_evaluate_wait_predictions(self, small_trace):
        inst = Instrumentation(audit=True)
        estimator = PointEstimator(ActualRuntimePredictor())
        sim = Simulator(
            FCFSPolicy(), estimator, small_trace.total_nodes, instrumentation=inst
        )
        obs = WaitTimePredictor(
            FCFSPolicy(),
            ActualRuntimePredictor(),
            scheduler_estimator=estimator,
            instrumentation=inst,
        )
        sim.add_observer(obs)
        result = sim.run(small_trace)

        reference = evaluate_wait_predictions(result, obs.predicted_waits)
        group = inst.audit.monitor.group("wait_time", "forward-sim")
        assert group.n == reference.n_jobs == len(result.records)
        assert math.isclose(
            group.mae, reference.mean_abs_error, rel_tol=1e-9, abs_tol=1e-9
        )


class TestAuditNeutrality:
    def test_schedule_and_tallies_unchanged_by_audit(self, anl_trace):
        est_plain = PointEstimator(smith())
        plain = Simulator(BackfillPolicy(), est_plain, anl_trace.total_nodes)
        res_plain = plain.run(anl_trace)

        inst = Instrumentation(audit=True)
        est_audited = PointEstimator(smith(), instrumentation=inst)
        audited = Simulator(
            BackfillPolicy(), est_audited, anl_trace.total_nodes,
            instrumentation=inst,
        )
        res_audited = audited.run(anl_trace)

        assert res_audited.records == res_plain.records
        # The audited estimate re-derivation must not bump the hot-path
        # fallback tallies (obs_stats feeds the metrics snapshot).
        assert est_audited.obs_stats() == est_plain.obs_stats()

    def test_audit_neutral_on_top_of_tracing(self, anl_trace):
        """Tracing changes estimator call counts (events carry estimate
        fields); adding the audit on top must not move them further."""

        def run(audit: bool):
            inst = Instrumentation(tracer=Tracer(ListSink()), audit=audit)
            est = PointEstimator(smith(), instrumentation=inst)
            sim = Simulator(
                BackfillPolicy(), est, anl_trace.total_nodes,
                instrumentation=inst,
            )
            return sim.run(anl_trace), est

        res_traced, est_traced = run(audit=False)
        res_audited, est_audited = run(audit=True)
        assert res_audited.records == res_traced.records
        assert est_audited.obs_stats() == est_traced.obs_stats()

    def test_audited_trace_validates_and_resolves(self, anl_trace):
        sink = ListSink()
        inst = Instrumentation(tracer=Tracer(sink), audit=True)
        estimator = PointEstimator(smith(), instrumentation=inst)
        sim = Simulator(
            BackfillPolicy(), estimator, anl_trace.total_nodes,
            instrumentation=inst,
        )
        sim.run(anl_trace)
        validate_events(sink.events)
        types = {e["type"] for e in sink.events}
        assert "runtime_predicted" in types
        assert "prediction_resolved" in types
        # A complete replay finishes every job: nothing stays pending.
        assert inst.audit.unresolved_runtime == 0
        assert inst.audit.unresolved_wait == 0
        assert inst.audit.monitor.group("run_time", "smith").n == len(anl_trace)


class TestZeroCostWhenDisabled:
    def test_plain_simulator_binds_no_audit_handlers(self):
        sim = Simulator(
            FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), 10
        )
        assert sim._audit is None
        assert "_handle_finish" not in vars(sim)
        assert "_start" not in vars(sim)
        assert not hasattr(sim, "_inner_handle_finish")
        assert not hasattr(sim, "_inner_start")

    def test_plain_estimator_binds_no_audit_hook(self):
        est = PointEstimator(ActualRuntimePredictor())
        assert est._audit is None
        assert "on_submit" not in vars(est)

    def test_tracing_only_keeps_audit_unbound(self):
        inst = Instrumentation(tracer=Tracer(ListSink()))
        sim = Simulator(
            FCFSPolicy(),
            PointEstimator(ActualRuntimePredictor(), instrumentation=inst),
            10,
            instrumentation=inst,
        )
        assert sim._audit is None
        assert not hasattr(sim, "_inner_handle_finish")

    def test_audit_composes_with_tracing(self):
        inst = Instrumentation(tracer=Tracer(ListSink()), audit=True)
        sim = Simulator(
            FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), 10,
            instrumentation=inst,
        )
        # The audited wrapper delegates to the traced handler it shadowed.
        assert sim._handle_finish.__func__ is Simulator._handle_finish_audited
        assert sim._inner_handle_finish.__func__ is Simulator._handle_finish_traced
