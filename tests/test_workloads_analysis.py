"""Tests for repro.workloads.analysis."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.workloads.analysis import (
    interarrival_stats,
    loguniform_fit_quality,
    node_histogram,
    overestimation_stats,
    repetition_stats,
    within_group_dispersion,
)
from repro.workloads.job import Trace
from tests.conftest import make_job


def trace_of(jobs):
    return Trace(jobs, total_nodes=64)


class TestRepetition:
    def test_all_unique(self):
        t = trace_of(
            [make_job(job_id=i, user=f"u{i}", executable=f"e{i}") for i in range(5)]
        )
        stats = repetition_stats(t)
        assert stats.repeat_fraction == 0.0
        assert stats.n_identities == 5
        assert stats.mean_runs_per_identity == 1.0

    def test_all_same(self):
        t = trace_of(
            [make_job(job_id=i, submit_time=float(i)) for i in range(10)]
        )
        stats = repetition_stats(t)
        assert stats.repeat_fraction == pytest.approx(0.9)
        assert stats.n_identities == 1

    def test_recent_window(self):
        jobs = [make_job(job_id=1, submit_time=0.0, user="a", executable="x")]
        jobs += [
            make_job(job_id=i, submit_time=float(i), user=f"u{i}", executable="y")
            for i in range(2, 10)
        ]
        jobs.append(make_job(job_id=99, submit_time=99.0, user="a", executable="x"))
        stats = repetition_stats(trace_of(jobs), window=3)
        # The final job repeats an identity seen long ago but not recently.
        assert stats.repeat_fraction > stats.recent_repeat_fraction

    def test_window_validation(self):
        with pytest.raises(ValueError):
            repetition_stats(trace_of([make_job()]), window=0)

    def test_identity_falls_back_to_queue(self):
        jobs = [
            make_job(job_id=i, submit_time=float(i), user="u",
                     executable=None, queue="q16m")
            for i in range(1, 4)
        ]
        stats = repetition_stats(trace_of(jobs))
        assert stats.n_identities == 1

    def test_synthetic_traces_have_repetition(self, anl_trace):
        stats = repetition_stats(anl_trace)
        assert stats.repeat_fraction > 0.5  # structure the predictors need

    def test_empty(self):
        stats = repetition_stats(trace_of([]))
        assert stats.n_jobs == 0
        assert stats.mean_runs_per_identity == 0.0


class TestInterarrival:
    def test_regular_arrivals_low_cv(self):
        t = trace_of([make_job(job_id=i, submit_time=10.0 * i) for i in range(20)])
        stats = interarrival_stats(t)
        assert stats.mean == pytest.approx(10.0)
        assert stats.cv == pytest.approx(0.0)
        assert stats.max_gap == pytest.approx(10.0)

    def test_bursty_arrivals_high_cv(self):
        times = [0, 1, 2, 3, 1000, 1001, 1002, 2000]
        t = trace_of(
            [make_job(job_id=i, submit_time=float(s)) for i, s in enumerate(times)]
        )
        assert interarrival_stats(t).cv > 1.0

    def test_single_job(self):
        assert interarrival_stats(trace_of([make_job()])).mean == 0.0

    def test_synthetic_burstier_than_uniform(self, anl_trace):
        # Diurnal + weekend modulation should push CV above ~1.
        assert interarrival_stats(anl_trace).cv > 0.8


class TestNodeHistogram:
    def test_counts(self):
        t = trace_of(
            [make_job(job_id=1, nodes=4), make_job(job_id=2, nodes=4),
             make_job(job_id=3, nodes=16)]
        )
        assert node_histogram(t) == {4: 2, 16: 1}

    def test_sorted_keys(self):
        t = trace_of([make_job(job_id=1, nodes=32), make_job(job_id=2, nodes=1)])
        assert list(node_histogram(t)) == [1, 32]


class TestLogUniformFit:
    def test_true_loguniform_high_r2(self):
        rng = np.random.default_rng(0)
        ts = np.exp(rng.uniform(math.log(10), math.log(10_000), size=500))
        t = trace_of(
            [make_job(job_id=i, run_time=float(rt), queue="q")
             for i, rt in enumerate(ts)]
        )
        [fit] = loguniform_fit_quality(t)
        assert fit.category == "q"
        assert fit.r_squared > 0.97
        assert fit.t_max == pytest.approx(10_000, rel=0.4)

    def test_groups_by_queue(self):
        jobs = [
            make_job(job_id=i, run_time=float(10 + i), queue="a") for i in range(12)
        ] + [
            make_job(job_id=100 + i, run_time=float(100 + i), queue="b")
            for i in range(12)
        ]
        fits = loguniform_fit_quality(trace_of(jobs))
        assert [f.category for f in fits] == ["a", "b"]

    def test_min_points_filter(self):
        jobs = [make_job(job_id=i, run_time=10.0 * (i + 1), queue="a")
                for i in range(5)]
        assert loguniform_fit_quality(trace_of(jobs), min_points=10) == []

    def test_degenerate_gets_zero_r2(self):
        jobs = [make_job(job_id=i, run_time=100.0, queue="a") for i in range(15)]
        [fit] = loguniform_fit_quality(trace_of(jobs))
        assert fit.r_squared == 0.0
        assert fit.t_max is None


class TestOverestimation:
    def test_factors(self):
        jobs = [
            make_job(job_id=1, run_time=100.0, max_run_time=200.0),  # 2x
            make_job(job_id=2, run_time=100.0, max_run_time=800.0),  # 8x
            make_job(job_id=3, run_time=100.0, max_run_time=None),  # skipped
        ]
        stats = overestimation_stats(trace_of(jobs))
        assert stats.n_with_max == 2
        assert stats.median_factor == pytest.approx(5.0)
        assert stats.mean_factor == pytest.approx(5.0)
        assert stats.exceed_fraction == 0.0

    def test_exceed_fraction(self):
        jobs = [
            make_job(job_id=1, run_time=500.0, max_run_time=100.0),
            make_job(job_id=2, run_time=50.0, max_run_time=100.0),
        ]
        stats = overestimation_stats(trace_of(jobs))
        assert stats.exceed_fraction == pytest.approx(0.5)

    def test_no_maxima(self):
        stats = overestimation_stats(trace_of([make_job(job_id=1)]))
        assert stats.n_with_max == 0
        assert stats.median_factor == 0.0

    def test_synthetic_anl_is_loose(self, anl_trace):
        stats = overestimation_stats(anl_trace)
        assert stats.n_with_max == len(anl_trace)
        assert stats.median_factor > 1.5  # users overestimate substantially
        assert stats.exceed_fraction == 0.0  # the generator never undercuts


class TestDispersion:
    def test_tight_groups_small_ratio(self):
        jobs = []
        jid = 1
        for g, base in enumerate([10.0, 1000.0, 100000.0]):
            for k in range(5):
                jobs.append(
                    make_job(job_id=jid, user=f"u{g}", executable="e",
                             run_time=base * (1.0 + 0.01 * k))
                )
                jid += 1
        assert within_group_dispersion(trace_of(jobs)) < 0.1

    def test_unstructured_near_one(self):
        rng = np.random.default_rng(1)
        jobs = [
            make_job(job_id=i, user=f"u{i % 3}", executable="e",
                     run_time=float(np.exp(rng.uniform(0, 10))))
            for i in range(60)
        ]
        assert within_group_dispersion(trace_of(jobs)) > 0.6

    def test_synthetic_traces_structured(self, anl_trace):
        assert within_group_dispersion(anl_trace) < 0.8

    def test_empty(self):
        assert within_group_dispersion(trace_of([])) == 0.0
