"""Per-job prediction audit trail (repro.obs.audit)."""

from __future__ import annotations

import pytest

from repro.obs import (
    AccuracyMonitor,
    Instrumentation,
    ListSink,
    PredictionAudit,
    Tracer,
    validate_events,
)


def make_audit():
    sink = ListSink()
    audit = PredictionAudit(tracer=Tracer(sink))
    return audit, sink


class TestRecordResolve:
    def test_runtime_round_trip(self):
        audit, sink = make_audit()
        audit.record_runtime(1, 0.0, 100.0, predictor="smith", source="u/e")
        assert audit.unresolved_runtime == 1
        audit.resolve_runtime(1, 50.0, 120.0, policy="FCFS")
        assert audit.unresolved_runtime == 0

        predicted, resolved = sink.events
        assert predicted["type"] == "runtime_predicted"
        assert predicted["predicted_run_s"] == 100.0
        assert predicted["predictor"] == "smith"
        assert predicted["source"] == "u/e"
        assert resolved["type"] == "prediction_resolved"
        assert resolved["kind"] == "run_time"
        assert resolved["predicted_s"] == 100.0
        assert resolved["actual_s"] == 120.0
        assert resolved["error_s"] == pytest.approx(-20.0)
        assert resolved["policy"] == "FCFS"
        validate_events(sink.events)

        group = audit.monitor.group("run_time", "smith")
        assert group.n == 1
        assert group.mae == pytest.approx(20.0)
        assert group.snapshot()["keys"]["u/e"]["n"] == 1

    def test_wait_round_trip(self):
        audit, sink = make_audit()
        audit.record_wait(3, 10.0, 60.0, predictor="state-based", source="rampup")
        assert audit.unresolved_wait == 1
        audit.resolve_wait(3, 100.0, 90.0)
        assert audit.unresolved_wait == 0
        predicted, resolved = sink.events
        assert predicted["type"] == "wait_predicted"
        assert predicted["predicted_wait_s"] == 60.0
        assert resolved["kind"] == "wait_time"
        assert resolved["error_s"] == pytest.approx(-30.0)
        validate_events(sink.events)
        assert audit.monitor.group("wait_time", "state-based").n == 1

    def test_first_record_per_job_predictor_wins(self):
        audit, sink = make_audit()
        audit.record_runtime(1, 0.0, 100.0, predictor="smith")
        audit.record_runtime(1, 5.0, 999.0, predictor="smith")  # ignored
        audit.record_runtime(1, 5.0, 200.0, predictor="max")  # separate group
        audit.resolve_runtime(1, 50.0, 100.0)
        assert audit.monitor.group("run_time", "smith").mae == pytest.approx(0.0)
        assert audit.monitor.group("run_time", "max").mae == pytest.approx(100.0)
        # One recording event per (job, predictor): the duplicate is silent.
        assert [e["type"] for e in sink.events].count("runtime_predicted") == 2

    def test_resolving_unknown_job_is_noop(self):
        audit, sink = make_audit()
        audit.resolve_runtime(42, 0.0, 10.0)
        audit.resolve_wait(42, 0.0, 10.0)
        assert sink.events == []
        assert audit.monitor.total_observations == 0

    def test_resolution_is_once_only(self):
        audit, _ = make_audit()
        audit.record_wait(1, 0.0, 30.0, predictor="forward-sim")
        audit.resolve_wait(1, 40.0, 40.0)
        audit.resolve_wait(1, 41.0, 41.0)  # pending already popped
        assert audit.monitor.group("wait_time", "forward-sim").n == 1

    def test_empty_source_field_omitted(self):
        audit, sink = make_audit()
        audit.record_runtime(1, 0.0, 10.0, predictor="max")
        audit.resolve_runtime(1, 1.0, 10.0)
        assert all("source" not in e for e in sink.events)
        validate_events(sink.events)

    def test_monitor_feeds_without_tracer(self):
        audit = PredictionAudit()  # NULL_TRACER: no events, stats still flow
        audit.record_runtime(1, 0.0, 10.0, predictor="max")
        audit.resolve_runtime(1, 1.0, 14.0)
        assert audit.monitor.group("run_time", "max").mae == pytest.approx(4.0)

    def test_shared_monitor_injection(self):
        mon = AccuracyMonitor(window=5)
        audit = PredictionAudit(monitor=mon)
        audit.record_wait(1, 0.0, 5.0, predictor="p")
        audit.resolve_wait(1, 2.0, 6.0)
        assert mon.total_observations == 1


class TestInstrumentationSlot:
    def test_audit_true_builds_audit_with_tracer(self):
        sink = ListSink()
        inst = Instrumentation(tracer=Tracer(sink), audit=True)
        assert isinstance(inst.audit, PredictionAudit)
        assert inst.audit.tracer is inst.tracer

    def test_audit_defaults_off(self):
        assert Instrumentation().audit is None
        assert Instrumentation(audit=False).audit is None

    def test_audit_instance_passes_through(self):
        audit = PredictionAudit()
        inst = Instrumentation(audit=audit)
        assert inst.audit is audit
