"""Tests for repro.workloads.job: Job validation and Trace behaviour."""

from __future__ import annotations

import pytest

from repro.workloads.job import Job, Trace
from tests.conftest import make_job


class TestJob:
    def test_work(self):
        job = make_job(run_time=100.0, nodes=8)
        assert job.work == 800.0

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="nodes"):
            make_job(nodes=0)

    def test_rejects_negative_run_time(self):
        with pytest.raises(ValueError, match="run_time"):
            make_job(run_time=-1.0)

    def test_rejects_negative_submit(self):
        with pytest.raises(ValueError, match="submit_time"):
            make_job(submit_time=-5.0)

    def test_rejects_nonpositive_max_run_time(self):
        with pytest.raises(ValueError, match="max_run_time"):
            make_job(max_run_time=0.0)

    def test_zero_run_time_allowed(self):
        assert make_job(run_time=0.0).run_time == 0.0

    def test_with_replaces_fields(self):
        job = make_job(run_time=100.0)
        clone = job.with_(run_time=200.0)
        assert clone.run_time == 200.0
        assert clone.job_id == job.job_id
        assert job.run_time == 100.0  # original untouched

    def test_frozen(self):
        job = make_job()
        with pytest.raises(AttributeError):
            job.run_time = 5.0  # type: ignore[misc]

    def test_optional_fields_default_none(self):
        job = Job(job_id=1, submit_time=0, run_time=1, nodes=1)
        assert job.user is None
        assert job.queue is None
        assert job.max_run_time is None


class TestTrace:
    def test_sorts_by_submit_time(self):
        jobs = [
            make_job(job_id=1, submit_time=50.0),
            make_job(job_id=2, submit_time=10.0),
        ]
        trace = Trace(jobs, total_nodes=10)
        assert [j.job_id for j in trace] == [2, 1]

    def test_tie_broken_by_job_id(self):
        jobs = [
            make_job(job_id=9, submit_time=5.0),
            make_job(job_id=3, submit_time=5.0),
        ]
        trace = Trace(jobs, total_nodes=10)
        assert [j.job_id for j in trace] == [3, 9]

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            Trace([make_job(job_id=1), make_job(job_id=1)], total_nodes=10)

    def test_rejects_oversized_job(self):
        with pytest.raises(ValueError, match="nodes"):
            Trace([make_job(nodes=20)], total_nodes=10)

    def test_rejects_bad_total_nodes(self):
        with pytest.raises(ValueError):
            Trace([], total_nodes=0)

    def test_len_getitem(self, small_trace):
        assert len(small_trace) == 5
        assert small_trace[0].job_id == 1

    def test_span(self):
        jobs = [
            make_job(job_id=1, submit_time=0.0, run_time=100.0),
            make_job(job_id=2, submit_time=50.0, run_time=500.0),
        ]
        trace = Trace(jobs, total_nodes=10)
        assert trace.span == 550.0

    def test_span_empty(self):
        assert Trace([], total_nodes=4).span == 0.0

    def test_map_preserves_metadata(self, small_trace):
        doubled = small_trace.map(lambda j: j.with_(run_time=j.run_time * 2))
        assert doubled.total_nodes == small_trace.total_nodes
        assert doubled[0].run_time == 2 * small_trace[0].run_time
        assert len(doubled) == len(small_trace)

    def test_filter(self, small_trace):
        small = small_trace.filter(lambda j: j.nodes <= 2)
        assert all(j.nodes <= 2 for j in small)
        assert len(small) == 2

    def test_jobs_tuple_is_immutable_view(self, small_trace):
        assert isinstance(small_trace.jobs, tuple)


class TestScaledNames:
    """base_name/scale attributes and the strict name-suffix fallback.

    Regression: ``name.split("x")[0]`` misparsed any workload whose base
    name contains an "x" ("proxy" -> "pro").
    """

    def test_split_scaled_name(self):
        from repro.workloads.job import split_scaled_name

        assert split_scaled_name("SDSC95x2") == ("SDSC95", 2.0)
        assert split_scaled_name("CTCx1.5") == ("CTC", 1.5)
        assert split_scaled_name("proxy") == ("proxy", 1.0)
        assert split_scaled_name("matrix") == ("matrix", 1.0)
        assert split_scaled_name("xenon") == ("xenon", 1.0)
        assert split_scaled_name("x2") == ("x2", 1.0)  # no base before the x

    def test_trace_derives_base_name_from_name(self):
        trace = Trace([make_job()], total_nodes=8, name="SDSC95x2")
        assert trace.base_name == "SDSC95"
        assert trace.scale == 2.0

    def test_x_containing_name_not_mangled(self):
        trace = Trace([make_job()], total_nodes=8, name="proxy-cluster")
        assert trace.base_name == "proxy-cluster"
        assert trace.scale == 1.0

    def test_explicit_stamp_wins_over_parsing(self):
        trace = Trace(
            [make_job()], total_nodes=8, name="weird x2 label",
            base_name="weird", scale=3.0,
        )
        assert trace.base_name == "weird"
        assert trace.scale == 3.0

    def test_map_and_filter_propagate_identity(self):
        trace = Trace(
            [make_job()], total_nodes=8, name="SDSC95x2",
            base_name="SDSC95", scale=2.0,
        )
        assert trace.map(lambda j: j).base_name == "SDSC95"
        assert trace.filter(lambda j: True).scale == 2.0

    def test_compress_stamps_identity_not_parse(self):
        from repro.workloads.transform import compress_interarrival

        jobs = [make_job(job_id=i, submit_time=100.0 * i) for i in range(3)]
        trace = Trace(jobs, total_nodes=8, name="flux")
        compressed = compress_interarrival(trace, 2)
        assert compressed.name == "fluxx2"
        assert compressed.base_name == "flux"  # rpartition would say "flux" too,
        assert compressed.scale == 2.0         # but only because it's stamped

    def test_tuned_predictor_resolves_compressed_trace(self):
        """make_predictor must key tuned templates on base_name."""
        from repro.core.registry import make_predictor
        from repro.workloads.archive import load_paper_workload
        from repro.workloads.transform import compress_interarrival

        trace = compress_interarrival(load_paper_workload("SDSC95", n_jobs=40), 2)
        assert trace.base_name == "SDSC95"
        predictor = make_predictor("smith-tuned", trace)
        assert predictor is not None
