"""Tests for the markdown experiments report generator."""

from __future__ import annotations

import pytest

from repro.core.paper_reference import (
    SCHEDULING_TABLES,
    TABLE4_ACTUAL,
    TABLE10_ACTUAL,
    WAIT_TIME_TABLES,
)
from repro.core.report import generate_experiments_report, markdown_table


class TestMarkdownTable:
    def test_shape(self):
        text = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_empty_rows(self):
        text = markdown_table(["x"], [])
        assert text.splitlines() == ["| x |", "|---|"]


class TestPaperReference:
    def test_wait_tables_complete(self):
        for name, (no, ref) in WAIT_TIME_TABLES.items():
            expected = 8 if name == "actual" else 12  # Table 4 omits FCFS
            assert len(ref) == expected, name
            assert 4 <= no <= 9

    def test_scheduling_tables_complete(self):
        for name, (no, ref) in SCHEDULING_TABLES.items():
            assert len(ref) == 8, name
            assert 10 <= no <= 15

    def test_spot_values_from_paper(self):
        assert TABLE4_ACTUAL[("ANL", "LWF")].mean_error_minutes == 37.14
        assert TABLE4_ACTUAL[("SDSC96", "Backfill")].percent_of_mean_wait == 3
        assert TABLE10_ACTUAL[("CTC", "LWF")].mean_wait_minutes == 11.15
        assert TABLE10_ACTUAL[("ANL", "Backfill")].utilization_percent == 71.04


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_experiments_report(40)

    def test_all_sections_present(self, report):
        for table_no in [1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]:
            assert f"## Table {table_no} " in report, table_no
        assert "## §3 text" in report
        assert "## Shape checklist" in report

    def test_paper_numbers_embedded(self, report):
        assert "97.75" in report  # ANL mean run time, Table 1
        assert "37.14" in report  # Table 4 ANL/LWF

    def test_all_workloads_in_every_table(self, report):
        for w in ("ANL", "CTC", "SDSC95", "SDSC96"):
            assert report.count(f"| {w} |") >= 13

    def test_scale_note(self, report):
        assert "40 jobs per workload" in report

    def test_progress_callback(self):
        messages = []
        generate_experiments_report(30, progress=messages.append)
        assert any("table 1" in m for m in messages)
        assert any("scheduling table" in m for m in messages)
