"""Tests for repro.config and repro.cli."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, run_config
from repro.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert cfg.kind == "scheduling"
        assert cfg.n_jobs == 1000

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ExperimentConfig(kind="throughput")

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="workload"):
            ExperimentConfig(workloads=("LANL",))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            ExperimentConfig(algorithms=("sjf",))

    def test_unknown_predictor(self):
        with pytest.raises(ValueError, match="predictor"):
            ExperimentConfig(predictors=("oracle",))

    def test_bad_n_jobs(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_jobs=0)

    def test_bad_compress(self):
        with pytest.raises(ValueError):
            ExperimentConfig(compress=-1.0)

    def test_bad_parallel(self):
        with pytest.raises(ValueError, match="parallel"):
            ExperimentConfig(parallel=0)

    def test_dict_roundtrip(self):
        cfg = ExperimentConfig(workloads=("ANL",), predictors=("actual",))
        assert ExperimentConfig.from_dict(cfg.as_dict()) == cfg

    def test_from_dict_coerces_lists(self):
        cfg = ExperimentConfig.from_dict(
            {"workloads": ["ANL"], "predictors": ["actual"], "algorithms": ["lwf"]}
        )
        assert cfg.workloads == ("ANL",)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            ExperimentConfig.from_dict({"wrkloads": ["ANL"]})


class TestRunConfig:
    def test_scheduling_grid(self):
        cfg = ExperimentConfig(
            workloads=("ANL",),
            algorithms=("lwf",),
            predictors=("actual",),
            n_jobs=120,
        )
        rows = run_config(cfg)
        assert len(rows) == 1
        assert rows[0]["Workload"] == "ANL"
        assert "Utilization (percent)" in rows[0]

    def test_runtime_error_grid(self):
        cfg = ExperimentConfig(
            kind="runtime-error",
            workloads=("SDSC95",),
            predictors=("actual", "max"),
            n_jobs=120,
        )
        rows = run_config(cfg)
        assert len(rows) == 2
        assert {r["Predictor"] for r in rows} == {"actual", "max"}

    def test_wait_time_grid(self):
        cfg = ExperimentConfig(
            kind="wait-time",
            workloads=("ANL",),
            algorithms=("fcfs",),
            predictors=("actual",),
            n_jobs=120,
        )
        rows = run_config(cfg)
        assert rows[0]["Mean Error (minutes)"] == pytest.approx(0.0, abs=1e-6)

    def test_parallel_rows_equal_serial(self):
        serial = ExperimentConfig(
            workloads=("ANL",), algorithms=("lwf", "backfill"),
            predictors=("actual", "max"), n_jobs=120,
        )
        parallel = ExperimentConfig(
            workloads=("ANL",), algorithms=("lwf", "backfill"),
            predictors=("actual", "max"), n_jobs=120, parallel=2,
        )
        assert run_config(parallel) == run_config(serial)

    def test_parallel_wait_time_rows_equal_serial(self):
        serial = ExperimentConfig(
            kind="wait-time", workloads=("ANL",), algorithms=("fcfs",),
            predictors=("actual",), n_jobs=120,
        )
        parallel = ExperimentConfig(
            kind="wait-time", workloads=("ANL",), algorithms=("fcfs",),
            predictors=("actual",), n_jobs=120, parallel=2,
        )
        assert run_config(parallel) == run_config(serial)

    def test_compress_applied(self):
        base = ExperimentConfig(
            workloads=("SDSC95",), algorithms=("lwf",),
            predictors=("actual",), n_jobs=300,
        )
        hard = ExperimentConfig(
            workloads=("SDSC95",), algorithms=("lwf",),
            predictors=("actual",), n_jobs=300, compress=4.0,
        )
        u_base = run_config(base)[0]["Utilization (percent)"]
        u_hard = run_config(hard)[0]["Utilization (percent)"]
        assert u_hard > u_base


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(
            ["scheduling", "--workloads", "ANL", "--n-jobs", "50"]
        )
        assert args.command == "scheduling"
        assert args.workloads == ["ANL"]
        assert args.parallel == 1

    def test_parallel_flag_parsed(self):
        args = build_parser().parse_args(["scheduling", "--parallel", "4"])
        assert args.parallel == 4

    def test_main_scheduling_parallel(self, capsys):
        rc = main(
            [
                "scheduling",
                "--workloads", "ANL",
                "--algorithms", "lwf",
                "--predictors", "actual",
                "--n-jobs", "120",
                "--parallel", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ANL" in out
        assert "Utilization" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_main_scheduling(self, capsys):
        rc = main(
            [
                "scheduling",
                "--workloads", "ANL",
                "--algorithms", "lwf",
                "--predictors", "actual",
                "--n-jobs", "120",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ANL" in out
        assert "Utilization" in out

    def test_main_summarize(self, capsys):
        rc = main(["summarize", "--n-jobs", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SDSC96" in out

    def test_main_ga_search(self, capsys):
        rc = main(
            [
                "ga-search",
                "--workload", "ANL",
                "--n-jobs", "120",
                "--population", "4",
                "--generations", "2",
                "--eval-jobs", "60",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Best template set (ANL)" in out
        assert "full-replay error" in out

    def test_main_ga_search_with_algorithm_workload(self, capsys):
        rc = main(
            [
                "ga-search",
                "--workload", "SDSC95",
                "--algorithm", "lwf",
                "--n-jobs", "100",
                "--population", "4",
                "--generations", "1",
                "--eval-jobs", "50",
            ]
        )
        assert rc == 0
        assert "SDSC95/lwf" in capsys.readouterr().out

    def test_main_report(self, tmp_path, capsys, monkeypatch):
        out_file = tmp_path / "EXP.md"

        # Patch the heavy generator: the CLI's wiring is what's under test.
        import repro.core.report as report_mod

        monkeypatch.setattr(
            report_mod,
            "generate_experiments_report",
            lambda n_jobs, progress=None: "# stub\n",
        )
        rc = main(["report", "--n-jobs", "10", "-o", str(out_file)])
        assert rc == 0
        assert out_file.read_text() == "# stub\n"
