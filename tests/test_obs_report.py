"""Run-report builder, validator, and renderer (repro.obs.report)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs import (
    REPORT_SCHEMA_VERSION,
    ReportSchemaError,
    build_report,
    format_report,
    report_to_json,
    validate_report,
)


def sample_events() -> list[dict]:
    """A tiny but fully-populated trace: two jobs under FCFS."""
    return [
        {"type": "job_submitted", "wall_time": 0.0, "sim_time": 0.0,
         "job_id": 1, "policy": "FCFS"},
        {"type": "runtime_predicted", "wall_time": 0.0, "sim_time": 0.0,
         "job_id": 1, "predicted_run_s": 100.0, "predictor": "smith",
         "source": "u/e"},
        {"type": "wait_predicted", "wall_time": 0.0, "sim_time": 0.0,
         "job_id": 1, "predicted_wait_s": 0.0, "predictor": "state-based"},
        {"type": "job_submitted", "wall_time": 0.0, "sim_time": 1.0,
         "job_id": 2, "policy": "FCFS"},
        {"type": "runtime_predicted", "wall_time": 0.0, "sim_time": 1.0,
         "job_id": 2, "predicted_run_s": 50.0, "predictor": "smith",
         "source": "u"},
        {"type": "job_started", "wall_time": 0.0, "sim_time": 0.0,
         "job_id": 1, "policy": "FCFS", "wait_s": 0.0},
        {"type": "prediction_resolved", "wall_time": 0.0, "sim_time": 0.0,
         "job_id": 1, "kind": "wait_time", "predictor": "state-based",
         "predicted_s": 0.0, "actual_s": 0.0, "error_s": 0.0},
        {"type": "job_started", "wall_time": 0.0, "sim_time": 120.0,
         "job_id": 2, "policy": "FCFS", "wait_s": 119.0},
        {"type": "job_finished", "wall_time": 0.0, "sim_time": 120.0,
         "job_id": 1, "policy": "FCFS", "run_s": 120.0},
        {"type": "prediction_resolved", "wall_time": 0.0, "sim_time": 120.0,
         "job_id": 1, "kind": "run_time", "predictor": "smith",
         "predicted_s": 100.0, "actual_s": 120.0, "error_s": -20.0,
         "source": "u/e"},
        {"type": "span", "wall_time": 0.0, "name": "schedule_pass",
         "duration_s": 0.001},
    ]


def sample_metrics() -> dict:
    return {
        "counters": {"sim.events_processed": 4, "sim.schedule_passes": 3},
        "histograms": {
            "sim.pass_duration_seconds": {
                "count": 3,
                "sum": 0.003,
                "bounds": [0.01, 0.1],
                "counts": [3, 0, 0],
            }
        },
    }


class TestBuildReport:
    def test_sections_present_and_valid(self):
        report = build_report(sample_events(), sample_metrics())
        validate_report(report)  # must not raise
        assert report["schema_version"] == REPORT_SCHEMA_VERSION

    def test_schedule_section(self):
        report = build_report(sample_events())
        (row,) = report["schedule"]
        assert row["policy"] == "FCFS"
        assert row["jobs_submitted"] == 2
        assert row["jobs_started"] == 2
        assert row["jobs_finished"] == 1
        assert row["mean_wait_s"] == pytest.approx(59.5)
        assert row["max_wait_s"] == pytest.approx(119.0)

    def test_accuracy_section(self):
        report = build_report(sample_events())
        accuracy = report["accuracy"]
        by_group = {
            (g["kind"], g["predictor"]): g for g in accuracy["groups"]
        }
        smith = by_group[("run_time", "smith")]
        assert smith["n"] == 1
        assert smith["mae"] == pytest.approx(20.0)
        assert smith["under_fraction"] == 1.0
        assert smith["keys"]["u/e"]["n"] == 1
        assert by_group[("wait_time", "state-based")]["mae"] == 0.0
        # Job 2's run-time prediction never resolved (no finish event).
        assert accuracy["recorded"] == {"run_time": 2, "wait_time": 1}
        assert accuracy["resolved"] == {"run_time": 1, "wait_time": 1}
        assert accuracy["unresolved"] == {"run_time": 1, "wait_time": 0}

    def test_overhead_section_with_metrics(self):
        report = build_report(sample_events(), sample_metrics())
        overhead = report["overhead"]
        assert overhead["events_total"] == len(sample_events())
        assert overhead["events_by_type"]["prediction_resolved"] == 2
        assert overhead["spans"]["schedule_pass"]["count"] == 1
        assert overhead["pass_duration"]["count"] == 3
        assert overhead["counters"]["sim.schedule_passes"] == 3

    def test_empty_trace(self):
        report = build_report([])
        validate_report(report)
        assert report["schedule"] == []
        assert report["accuracy"]["groups"] == []
        assert report["overhead"]["events_total"] == 0

    def test_report_is_json_serializable(self):
        report = build_report(sample_events(), sample_metrics())
        parsed = json.loads(report_to_json(report))
        assert parsed["schema_version"] == REPORT_SCHEMA_VERSION


class TestValidateReport:
    def _valid(self) -> dict:
        return build_report(sample_events(), sample_metrics())

    def test_non_dict_rejected(self):
        with pytest.raises(ReportSchemaError, match="object"):
            validate_report([1, 2])

    def test_wrong_schema_version(self):
        report = self._valid()
        report["schema_version"] = 99
        with pytest.raises(ReportSchemaError, match="schema_version"):
            validate_report(report)

    def test_missing_section(self):
        for section in ("schedule", "accuracy", "overhead"):
            report = self._valid()
            del report[section]
            with pytest.raises(ReportSchemaError, match=section):
                validate_report(report)

    def test_schedule_row_missing_field(self):
        report = self._valid()
        del report["schedule"][0]["mean_wait_s"]
        with pytest.raises(ReportSchemaError, match="mean_wait_s"):
            validate_report(report)

    def test_accuracy_group_missing_field(self):
        report = self._valid()
        del report["accuracy"]["groups"][0]["mae"]
        with pytest.raises(ReportSchemaError, match="mae"):
            validate_report(report)

    def test_accuracy_group_bad_count(self):
        report = self._valid()
        report["accuracy"]["groups"][0]["n"] = -1
        with pytest.raises(ReportSchemaError, match="count"):
            validate_report(report)

    def test_overhead_missing_total(self):
        report = self._valid()
        del report["overhead"]["events_total"]
        with pytest.raises(ReportSchemaError, match="events_total"):
            validate_report(report)


class TestFormatReport:
    def test_renders_all_tables(self):
        report = build_report(sample_events(), sample_metrics())
        text = format_report(report)
        assert "Schedule outcomes" in text
        assert "Prediction accuracy" in text
        assert "Per-template/source drill-down" in text
        assert "Trace volume" in text
        assert "scheduling passes: 3" in text
        assert "smith" in text and "state-based" in text
        assert "unresolved predictions: run_time=1" in text

    def test_formatting_does_not_mutate_report(self):
        report = build_report(sample_events(), sample_metrics())
        before = copy.deepcopy(report)
        format_report(report)
        assert report == before

    def test_empty_report_renders(self):
        text = format_report(build_report([]))
        assert "Trace volume (0 events)" in text


class TestCampaignSection:
    def _campaign_events(self) -> list[dict]:
        return [
            {"type": "campaign_started", "wall_time": 0.0, "campaign_id": "c",
             "cells_total": 2, "max_workers": 2},
            {"type": "cell_dispatched", "wall_time": 0.1, "campaign_id": "c",
             "cell_index": 0, "attempt": 1, "workload": "ANL",
             "algorithm": "lwf", "predictor": "max"},
            {"type": "cell_dispatched", "wall_time": 0.1, "campaign_id": "c",
             "cell_index": 1, "attempt": 1},
            {"type": "cell_finished", "wall_time": 1.1, "campaign_id": "c",
             "cell_index": 0, "duration_s": 1.0, "cpu_s": 0.9,
             "max_rss_kb": 4096, "pid": 9},
            {"type": "cell_finished", "wall_time": 2.1, "campaign_id": "c",
             "cell_index": 1, "duration_s": 2.0},
            {"type": "campaign_finished", "wall_time": 2.1, "campaign_id": "c",
             "cells_done": 2, "cells_failed": 0, "duration_s": 2.1},
        ]

    def test_absent_without_campaign_events(self):
        assert "campaign" not in build_report(sample_events())
        report = build_report([])
        assert "campaign" not in report
        validate_report(report)
        format_report(report)

    def test_built_validated_and_rendered(self):
        report = build_report(sample_events() + self._campaign_events())
        validate_report(report)
        campaign = report["campaign"]
        assert campaign["cells_total"] == 2
        assert campaign["cells_done"] == 2
        assert campaign["complete"] is True
        text = format_report(report)
        assert "Campaign: 2/2 cells done" in text
        json.loads(report_to_json(report))

    def test_zero_cell_campaign(self):
        events = [
            {"type": "campaign_started", "wall_time": 0.0, "campaign_id": "c",
             "cells_total": 0, "max_workers": 2},
            {"type": "campaign_finished", "wall_time": 0.1, "campaign_id": "c",
             "cells_done": 0, "cells_failed": 0, "duration_s": 0.1},
        ]
        report = build_report(events)
        validate_report(report)
        campaign = report["campaign"]
        assert campaign["cells_total"] == 0
        assert campaign["throughput_cells_per_s"] == 0.0
        assert campaign["eta_s"] is None
        assert campaign["duration_p50_s"] is None
        # rendering an empty campaign must not divide by zero
        assert "Campaign: 0/0 cells done" in format_report(report)

    def test_incomplete_campaign_flagged(self):
        report = build_report(self._campaign_events()[:-2])
        validate_report(report)
        assert report["campaign"]["complete"] is False
        assert "INCOMPLETE" in format_report(report)

    def test_campaign_section_missing_field_rejected(self):
        report = build_report(self._campaign_events())
        del report["campaign"]["cells_total"]
        with pytest.raises(ReportSchemaError, match="cells_total"):
            validate_report(report)
        report["campaign"] = "not a dict"
        with pytest.raises(ReportSchemaError, match="object"):
            validate_report(report)


class TestExplainabilitySection:
    def _provenance_events(self) -> list[dict]:
        return [
            {"type": "start_blocked", "wall_time": 0.0, "sim_time": 1.0,
             "job_id": 2, "policy": "FCFS", "blocker_kind": "running_job",
             "blocker_id": 1},
        ]

    def test_absent_without_provenance_events(self):
        report = build_report(sample_events())
        assert "explainability" not in report
        validate_report(report)
        assert "Explainability" not in format_report(report)

    def test_built_validated_and_rendered(self):
        report = build_report(sample_events() + self._provenance_events())
        validate_report(report)
        (row,) = report["explainability"]
        assert row["policy"] == "FCFS"
        assert row["jobs"] == 2
        # job 2 waits 119s, attributed to job 1's release from the
        # submit-instant mark on; job 1 starts immediately.
        assert row["total_wait_s"] == pytest.approx(119.0)
        assert row["blocked_on_running_s"] == pytest.approx(119.0)
        assert row["scheduler_latency_s"] == pytest.approx(0.0)
        text = format_report(report)
        assert "Explainability: where the waiting went" in text
        json.loads(report_to_json(report))

    def test_row_missing_field_rejected(self):
        report = build_report(sample_events() + self._provenance_events())
        del report["explainability"][0]["blocked_on_queue_s"]
        with pytest.raises(ReportSchemaError, match="blocked_on_queue_s"):
            validate_report(report)
        report["explainability"] = "not a list"
        with pytest.raises(ReportSchemaError, match="list"):
            validate_report(report)
