"""Tests for Simulator.snapshot() and SchedulerView details."""

from __future__ import annotations

import pytest

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import FCFSPolicy
from repro.scheduler.simulator import SchedulerView, Simulator
from repro.workloads.job import Trace
from tests.conftest import make_job


def mid_flight_sim():
    jobs = [
        make_job(job_id=1, submit_time=0.0, run_time=100.0, nodes=8),
        make_job(job_id=2, submit_time=5.0, run_time=50.0, nodes=8),
        make_job(job_id=3, submit_time=6.0, run_time=20.0, nodes=8),
    ]
    sim = Simulator(FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), 10)
    sim.load_trace(Trace(jobs, total_nodes=10))
    sim.run(until_time=10.0)
    return sim


class TestSnapshot:
    def test_captures_running_and_queued(self):
        sim = mid_flight_sim()
        snap = sim.snapshot()
        assert snap.now == 10.0
        assert [r.job_id for r in snap.running] == [1]
        assert [q.job_id for q in snap.queued] == [2, 3]
        assert snap.total_nodes == 10

    def test_snapshot_is_a_copy(self):
        sim = mid_flight_sim()
        snap = sim.snapshot()
        sim.run()  # finish everything
        # The snapshot still shows the mid-flight state.
        assert len(snap.running) == 1
        assert len(snap.queued) == 2

    def test_running_elapsed(self):
        sim = mid_flight_sim()
        [rj] = sim.snapshot().running
        assert rj.elapsed(10.0) == pytest.approx(10.0)


class TestSchedulerView:
    def test_estimates_memoized_within_pass(self):
        calls = []

        class Counting:
            def predict(self, job, elapsed, now):
                calls.append(job.job_id)
                return job.run_time

        sim = Simulator(FCFSPolicy(), Counting(), 10)
        sim.queued.append(
            __import__("repro.scheduler.simulator", fromlist=["QueuedJob"]).QueuedJob(
                make_job(job_id=7)
            )
        )
        view = SchedulerView(sim)
        qj = sim.queued[0]
        view.estimate(qj)
        view.estimate(qj)
        assert calls == [7]
        view.invalidate()
        view.estimate(qj)
        assert calls == [7, 7]

    def test_estimate_floor(self):
        class Zero:
            def predict(self, job, elapsed, now):
                return -5.0

        sim = Simulator(FCFSPolicy(), Zero(), 10)
        from repro.scheduler.simulator import QueuedJob

        sim.queued.append(QueuedJob(make_job(job_id=1)))
        view = SchedulerView(sim)
        assert view.estimate(sim.queued[0]) > 0.0

    def test_remaining_clamps_overrun(self):
        """A job past its estimate still has positive remaining time."""

        class Short:
            def predict(self, job, elapsed, now):
                return 10.0  # but the job has been running 500 s

        sim = Simulator(FCFSPolicy(), Short(), 10)
        from repro.scheduler.simulator import RunningJob

        sim.now = 500.0
        rj = RunningJob(make_job(job_id=1), start_time=0.0)
        sim.running.append(rj)
        view = SchedulerView(sim)
        assert view.remaining(rj) > 0.0
        assert view.remaining(rj) < 1.0
