"""Property-based tests for the metacomputing broker."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metacomputing import (
    LeastQueuedWorkRouting,
    Machine,
    MetaSimulator,
    PredictedWaitRouting,
    RandomRouting,
    RoundRobinRouting,
)
from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import FCFSPolicy
from repro.scheduler.validate import validate_schedule
from repro.workloads.job import Job, Trace

_SIZES = (8, 16, 32)


@st.composite
def streams(draw):
    n = draw(st.integers(1, 15))
    jobs = [
        Job(
            job_id=i + 1,
            submit_time=draw(st.floats(0, 400)),
            run_time=draw(st.floats(0, 200)),
            nodes=draw(st.integers(1, min(_SIZES))),
            user=draw(st.sampled_from(["a", "b"])),
        )
        for i in range(n)
    ]
    return Trace(jobs, total_nodes=max(_SIZES), name="stream")


def _machines():
    return [
        Machine(f"m{s}", FCFSPolicy(), PointEstimator(ActualRuntimePredictor()), s)
        for s in _SIZES
    ]


_STRATEGIES = [
    lambda: RandomRouting(seed=0),
    RoundRobinRouting,
    LeastQueuedWorkRouting,
    PredictedWaitRouting,
]


@pytest.mark.parametrize("strategy_factory", _STRATEGIES)
@given(stream=streams())
@settings(max_examples=25, deadline=None)
def test_property_broker_invariants(strategy_factory, stream):
    """Any strategy: every job placed exactly once, every machine's
    schedule is feasible for the jobs it received."""
    meta = MetaSimulator(_machines(), strategy_factory())
    result = meta.run(stream)
    assert set(result.placements) == {j.job_id for j in stream}
    # Shares sum to one.
    shares = [result.machine_share(m.name) for m in meta.machines]
    assert sum(shares) == pytest.approx(1.0)
    # Per-machine schedules are valid for the routed subsets.
    for m in meta.machines:
        routed = [
            j for j in stream if result.placements[j.job_id] == m.name
        ]
        sub = Trace(routed, total_nodes=m.total_nodes, name=m.name)
        report = validate_schedule(sub, result.per_machine[m.name])
        assert report.ok, report.violations
    assert result.n_jobs == len(stream)
    assert result.mean_wait_minutes >= 0.0
