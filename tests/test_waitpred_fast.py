"""Equivalence tests: analytic wait-prediction shortcuts vs. simulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import PointEstimator
from repro.predictors.simple import ActualRuntimePredictor
from repro.scheduler.policies import BackfillPolicy, FCFSPolicy, LWFPolicy
from repro.scheduler.simulator import (
    QueuedJob,
    RunningJob,
    Simulator,
    SystemSnapshot,
    forward_simulate,
)
from repro.waitpred.fast import (
    UnknownJobError,
    backfill_predicted_start,
    backfill_predicted_starts,
    fcfs_predicted_start,
    fcfs_predicted_starts,
    predict_start_fast,
)
from repro.waitpred.predictor import WaitTimePredictor
from repro.workloads.job import Job
from tests.conftest import make_job

TOTAL = 12


@st.composite
def snapshots(draw):
    """A random consistent snapshot plus per-job durations."""
    now = draw(st.floats(0.0, 100.0))
    durations: dict[int, float] = {}
    running: list[RunningJob] = []
    free = TOTAL
    jid = 1
    for _ in range(draw(st.integers(0, 3))):
        nodes = draw(st.integers(1, 6))
        if nodes > free:
            continue
        free -= nodes
        start = draw(st.floats(0.0, 50.0).map(lambda v: min(v, now)))
        job = Job(job_id=jid, submit_time=0.0, run_time=1.0, nodes=nodes)
        running.append(RunningJob(job, start))
        durations[jid] = draw(st.floats(1.0, 300.0))
        jid += 1
    queued: list[QueuedJob] = []
    for _ in range(draw(st.integers(1, 6))):
        nodes = draw(st.integers(1, TOTAL))
        job = Job(job_id=jid, submit_time=min(now, float(jid)), run_time=1.0,
                  nodes=nodes)
        queued.append(QueuedJob(job))
        durations[jid] = draw(st.floats(0.0, 300.0))
        jid += 1
    snap = SystemSnapshot(
        now=now, running=tuple(running), queued=tuple(queued), total_nodes=TOTAL
    )
    target = draw(st.sampled_from([qj.job_id for qj in queued]))
    return snap, durations, target


@given(case=snapshots())
@settings(max_examples=120, deadline=None)
def test_property_fcfs_shortcut_matches_simulation(case):
    snap, durations, target = case
    fast = fcfs_predicted_start(snap, durations, target)
    ref = forward_simulate(snap, FCFSPolicy(), durations, target)
    assert fast == pytest.approx(ref, rel=1e-9, abs=1e-4)


@given(case=snapshots())
@settings(max_examples=120, deadline=None)
def test_property_backfill_shortcut_matches_simulation(case):
    snap, durations, target = case
    fast = backfill_predicted_start(snap, durations, target)
    ref = forward_simulate(snap, BackfillPolicy(), durations, target)
    assert fast == pytest.approx(ref, rel=1e-9, abs=1e-4)


@given(case=snapshots())
@settings(max_examples=60, deadline=None)
def test_property_dispatcher_matches_reference_for_lwf(case):
    """LWF has no shortcut; the dispatcher must hit the reference path."""
    snap, durations, target = case
    fast = predict_start_fast(snap, LWFPolicy(), durations, target)
    ref = forward_simulate(snap, LWFPolicy(), durations, target)
    assert fast == pytest.approx(ref, rel=1e-9, abs=1e-4)


@given(case=snapshots())
@settings(max_examples=60, deadline=None)
def test_property_dispatcher_backfill_with_distinct_estimates(case):
    """With estimates != durations the dispatcher must not shortcut."""
    snap, durations, target = case
    estimates = {jid: d * 3.0 + 10.0 for jid, d in durations.items()}
    fast = predict_start_fast(
        snap, BackfillPolicy(), durations, target, estimates=estimates
    )
    ref = forward_simulate(
        snap, BackfillPolicy(), durations, target, estimates=estimates
    )
    assert fast == pytest.approx(ref, rel=1e-9, abs=1e-4)


@given(case=snapshots())
@settings(max_examples=80, deadline=None)
def test_property_batch_walks_bit_identical_to_singles(case):
    """The one-walk batch variants equal the per-target calls exactly."""
    snap, durations, _ = case
    fcfs_batch = fcfs_predicted_starts(snap, durations)
    bf_batch = backfill_predicted_starts(snap, durations)
    assert set(fcfs_batch) == {qj.job_id for qj in snap.queued}
    assert set(bf_batch) == {qj.job_id for qj in snap.queued}
    for qj in snap.queued:
        # Bit-identical, not approx: same profile ops in the same order.
        assert fcfs_batch[qj.job_id] == fcfs_predicted_start(
            snap, durations, qj.job_id
        )
        assert bf_batch[qj.job_id] == backfill_predicted_start(
            snap, durations, qj.job_id
        )


class TestUnknownJobError:
    def _snap(self):
        queued = (QueuedJob(make_job(job_id=1, nodes=2, run_time=5.0)),)
        return SystemSnapshot(now=0.0, running=(), queued=queued, total_nodes=4)

    def test_target_not_in_queue(self):
        snap = self._snap()
        for fn in (fcfs_predicted_start, backfill_predicted_start):
            with pytest.raises(UnknownJobError) as exc:
                fn(snap, {1: 5.0}, 99)
            assert exc.value.job_id == 99
            assert "99" in str(exc.value)

    def test_missing_duration_names_the_job(self):
        snap = self._snap()
        with pytest.raises(UnknownJobError) as exc:
            fcfs_predicted_start(snap, {}, 1)
        assert exc.value.job_id == 1
        assert "durations" in str(exc.value)

    def test_is_a_keyerror(self):
        # Pre-existing `except KeyError` callers must keep working.
        with pytest.raises(KeyError):
            fcfs_predicted_start(self._snap(), {1: 5.0}, 99)

    def test_predict_wait_rejects_unqueued_target(self):
        from repro.waitpred.predictor import predict_wait

        snap = self._snap()
        estimator = PointEstimator(ActualRuntimePredictor())
        with pytest.raises(UnknownJobError):
            predict_wait(snap, FCFSPolicy(), estimator, 99)


class TestShortcutEdgeCases:
    def test_missing_target_raises(self):
        snap = SystemSnapshot(now=0.0, running=(), queued=(), total_nodes=4)
        with pytest.raises(KeyError):
            fcfs_predicted_start(snap, {}, 1)

    def test_fcfs_monotone_starts(self):
        # Narrow job behind a wide blocked one must NOT start early.
        wide = make_job(job_id=1, submit_time=0.0, nodes=10, run_time=1.0)
        narrow = make_job(job_id=2, submit_time=1.0, nodes=1, run_time=1.0)
        running = make_job(job_id=3, submit_time=0.0, nodes=6, run_time=1.0)
        snap = SystemSnapshot(
            now=1.0,
            running=(RunningJob(running, 0.0),),
            queued=(QueuedJob(wide), QueuedJob(narrow)),
            total_nodes=12,
        )
        durations = {1: 100.0, 2: 5.0, 3: 50.0}
        # Wide starts when the running job's 50 s elapse (t=49 remaining -> 50).
        assert fcfs_predicted_start(snap, durations, 1) == pytest.approx(50.0)
        assert fcfs_predicted_start(snap, durations, 2) == pytest.approx(50.0)

    def test_backfill_lets_narrow_jump(self):
        wide = make_job(job_id=1, submit_time=0.0, nodes=10, run_time=1.0)
        narrow = make_job(job_id=2, submit_time=1.0, nodes=1, run_time=1.0)
        running = make_job(job_id=3, submit_time=0.0, nodes=6, run_time=1.0)
        snap = SystemSnapshot(
            now=1.0,
            running=(RunningJob(running, 0.0),),
            queued=(QueuedJob(wide), QueuedJob(narrow)),
            total_nodes=12,
        )
        durations = {1: 100.0, 2: 5.0, 3: 50.0}
        assert backfill_predicted_start(snap, durations, 2) == pytest.approx(1.0)

    def test_observer_fast_and_slow_agree_end_to_end(self, anl_trace):
        """Full replay: fast observer equals the reference observer."""
        from repro.workloads.transform import head

        trace = head(anl_trace, 150)
        waits = {}
        for fast in (True, False):
            policy = FCFSPolicy()
            estimator = PointEstimator(ActualRuntimePredictor())
            sim = Simulator(policy, estimator, trace.total_nodes)
            obs = WaitTimePredictor(
                policy,
                ActualRuntimePredictor(),
                scheduler_estimator=estimator,
                fast=fast,
            )
            sim.add_observer(obs)
            sim.run(trace)
            waits[fast] = obs.predicted_waits
        assert waits[True].keys() == waits[False].keys()
        for jid in waits[True]:
            assert waits[True][jid] == pytest.approx(
                waits[False][jid], rel=1e-9, abs=1e-3
            )
