"""Tests for repro.predictors.category."""

from __future__ import annotations

import pytest

from repro.predictors.category import Category
from repro.predictors.templates import Template
from tests.conftest import make_job


def filled(template=None, run_times=(100.0, 110.0, 120.0), **job_kw):
    cat = Category(template or Template(characteristics=("u",)))
    for rt in run_times:
        cat.add(make_job(run_time=rt, **job_kw))
    return cat


class TestInsertion:
    def test_counts(self):
        cat = filled()
        assert len(cat) == 3

    def test_max_history_evicts_oldest(self):
        t = Template(characteristics=("u",), max_history=2)
        cat = Category(t)
        for rt in (10.0, 20.0, 30.0):
            cat.add(make_job(run_time=rt))
        assert len(cat) == 2
        assert [p.run_time for p in cat.points] == [20.0, 30.0]

    def test_mean_tracks_window(self):
        t = Template(characteristics=("u",), max_history=2)
        cat = Category(t)
        for rt in (10.0, 20.0, 30.0):
            cat.add(make_job(run_time=rt))
        est, _ = cat.predict(make_job())
        assert est == pytest.approx(25.0)

    def test_relative_stores_ratio(self):
        t = Template(characteristics=("u",), relative=True)
        cat = Category(t)
        cat.add(make_job(run_time=50.0, max_run_time=100.0))
        assert cat.points[0].value == pytest.approx(0.5)

    def test_relative_insert_without_max_raises(self):
        t = Template(characteristics=("u",), relative=True)
        with pytest.raises(ValueError, match="max run time"):
            Category(t).add(make_job(max_run_time=None))


class TestMeanPrediction:
    def test_mean_estimate(self):
        cat = filled()
        est, hw = cat.predict(make_job())
        assert est == pytest.approx(110.0)
        assert hw > 0.0

    def test_single_point_invalid(self):
        cat = filled(run_times=(100.0,))
        assert cat.predict(make_job()) is None

    def test_empty_invalid(self):
        cat = Category(Template(characteristics=("u",)))
        assert cat.predict(make_job()) is None

    def test_tighter_data_tighter_interval(self):
        loose = filled(run_times=(10.0, 500.0, 1000.0))
        tight = filled(run_times=(400.0, 410.0, 420.0))
        _, hw_loose = loose.predict(make_job())
        _, hw_tight = tight.predict(make_job())
        assert hw_tight < hw_loose

    def test_relative_prediction_scales_by_job_max(self):
        t = Template(characteristics=("u",), relative=True)
        cat = Category(t)
        cat.add(make_job(run_time=50.0, max_run_time=100.0))
        cat.add(make_job(run_time=30.0, max_run_time=60.0))
        est, _ = cat.predict(make_job(max_run_time=1000.0))
        assert est == pytest.approx(500.0)  # mean ratio 0.5 * 1000

    def test_relative_prediction_without_max_invalid(self):
        t = Template(characteristics=("u",), relative=True)
        cat = Category(t)
        cat.add(make_job(run_time=50.0, max_run_time=100.0))
        cat.add(make_job(run_time=60.0, max_run_time=100.0))
        assert cat.predict(make_job(max_run_time=None)) is None


class TestElapsedConditioning:
    def test_filters_shorter_runs(self):
        cat = filled(run_times=(10.0, 1000.0, 2000.0))
        est, _ = cat.predict(make_job(), elapsed=500.0)
        assert est == pytest.approx(1500.0)  # the 10 s point is excluded

    def test_too_few_surviving_points_invalid(self):
        cat = filled(run_times=(10.0, 20.0, 2000.0))
        assert cat.predict(make_job(), elapsed=500.0) is None

    def test_estimate_at_least_elapsed(self):
        cat = filled(run_times=(100.0, 116.0, 120.0))
        est, _ = cat.predict(make_job(), elapsed=115.0)
        assert est >= 115.0

    def test_regression_estimate_floored_at_elapsed(self):
        # A negative-slope regression can predict below the elapsed time;
        # the floor must clamp it.
        t = Template(characteristics=("u",), estimator="linear")
        cat = Category(t)
        for nodes, rt in [(1, 800.0), (2, 700.0), (4, 500.0), (8, 460.0)]:
            cat.add(make_job(nodes=nodes, run_time=rt))
        est, _ = cat.predict(make_job(nodes=16), elapsed=450.0)
        assert est >= 450.0


class TestRegressionPrediction:
    def test_linear_tracks_nodes(self):
        t = Template(characteristics=("u",), estimator="linear")
        cat = Category(t)
        for nodes, rt in [(1, 100.0), (2, 200.0), (4, 400.0), (8, 800.0)]:
            cat.add(make_job(nodes=nodes, run_time=rt))
        est, hw = cat.predict(make_job(nodes=6))
        assert est == pytest.approx(600.0)
        assert hw >= 0.0

    def test_regression_needs_three_points(self):
        t = Template(characteristics=("u",), estimator="linear")
        cat = Category(t)
        cat.add(make_job(nodes=1, run_time=10.0))
        cat.add(make_job(nodes=2, run_time=20.0))
        assert cat.predict(make_job(nodes=4)) is None

    def test_inverse_estimator(self):
        t = Template(characteristics=("u",), estimator="inverse")
        cat = Category(t)
        # run_time = 50 + 100/n
        for n in (1, 2, 4, 5):
            cat.add(make_job(nodes=n, run_time=50.0 + 100.0 / n))
        est, _ = cat.predict(make_job(nodes=10))
        assert est == pytest.approx(60.0)

    def test_log_estimator(self):
        import math

        t = Template(characteristics=("u",), estimator="log")
        cat = Category(t)
        for n in (1, 2, 4, 8):
            cat.add(make_job(nodes=n, run_time=10.0 + 5.0 * math.log(n)))
        est, _ = cat.predict(make_job(nodes=16))
        assert est == pytest.approx(10.0 + 5.0 * math.log(16))

    def test_relative_regression_scales_by_job_max(self):
        # Ratios fall on ratio = 0.1 * nodes; prediction at nodes=5 is a
        # ratio of 0.5, scaled by the queried job's own maximum.
        t = Template(characteristics=("u",), relative=True, estimator="linear")
        cat = Category(t)
        for nodes in (1, 2, 4, 8):
            cat.add(
                make_job(nodes=nodes, run_time=0.1 * nodes * 1000.0,
                         max_run_time=1000.0)
            )
        est, _ = cat.predict(make_job(nodes=5, max_run_time=2000.0))
        assert est == pytest.approx(0.5 * 2000.0)

    def test_constant_nodes_degenerates_to_mean(self):
        t = Template(characteristics=("u",), estimator="linear")
        cat = Category(t)
        for rt in (100.0, 120.0, 140.0):
            cat.add(make_job(nodes=4, run_time=rt))
        est, _ = cat.predict(make_job(nodes=32))
        assert est == pytest.approx(120.0)
