#!/usr/bin/env python3
"""Queue wait-time prediction — the paper's §3 application.

Two demonstrations:

1. **Trace replay with live predictions.**  A wait-time observer rides a
   backfill simulation of the CTC workload; at every submission it
   forward-simulates the scheduler over predicted run times.  We print
   the last few jobs' predicted vs. realized waits and the aggregate
   error, for the Smith predictor and the max-run-time baseline.

2. **A one-off "when would my job start?" query** — the motivating use
   case (pick the machine with the shortest expected wait): a snapshot
   of the live scheduler state is probed with a hypothetical job.

3. **Wait-time intervals** — the same probe answered with uncertainty:
   run-time prediction intervals are propagated through Monte-Carlo
   forward simulations ("80% chance your job starts within N minutes").

Run:  python examples/wait_time_prediction.py [n_jobs]
"""

from __future__ import annotations

import sys

from repro import (
    Job,
    PointEstimator,
    Simulator,
    WaitTimePredictor,
    evaluate_wait_predictions,
    format_table,
    load_paper_workload,
    make_policy,
    make_predictor,
    predict_wait,
)


def replay_with_predictions(trace, predictor_name: str):
    policy = make_policy("backfill")
    scheduler_estimator = PointEstimator(make_predictor("max", trace))
    sim = Simulator(policy, scheduler_estimator, trace.total_nodes)
    observer = WaitTimePredictor(
        policy,
        make_predictor(predictor_name, trace),
        scheduler_estimator=scheduler_estimator,
    )
    sim.add_observer(observer)
    result = sim.run(trace)
    report = evaluate_wait_predictions(result, observer.predicted_waits)
    return result, observer, report


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    # ANL is the paper's high-load machine — the interesting one to probe.
    trace = load_paper_workload("ANL", n_jobs=n_jobs)

    print("=== 1. live wait-time predictions during a backfill replay ===\n")
    rows = []
    for name in ("smith", "max"):
        result, observer, report = replay_with_predictions(trace, name)
        rows.append(
            {
                "Predictor": name,
                "Mean |error| (min)": round(report.mean_abs_error_minutes, 2),
                "% of mean wait": round(report.percent_of_mean_wait),
                "Mean wait (min)": round(report.mean_wait_minutes, 2),
            }
        )
        if name == "smith":
            tail = [r for r in result.records if r.wait_time > 0][-5:]
            detail = [
                {
                    "Job": r.job_id,
                    "Predicted wait (min)": round(
                        observer.predicted_waits[r.job_id] / 60.0, 1
                    ),
                    "Actual wait (min)": round(r.wait_time / 60.0, 1),
                }
                for r in tail
            ]
            print(format_table(detail, title="Last five queued jobs (smith)"))
            print()
    print(format_table(rows, title="Wait-time prediction accuracy"))

    print("\n=== 2. 'when would my job start?' snapshot query ===\n")
    # Rebuild live scheduler state mid-trace, then probe it.
    policy = make_policy("backfill")
    estimator = PointEstimator(make_predictor("smith", trace))
    sim = Simulator(policy, estimator, trace.total_nodes)
    sim.load_trace(trace)
    sim.run(until_time=trace[len(trace) // 2].submit_time)
    snapshot = sim.snapshot()
    print(
        f"machine state: {len(snapshot.running)} running jobs, "
        f"{len(snapshot.queued)} queued, "
        f"{sim.pool.free}/{sim.pool.total} nodes free\n"
    )
    for nodes in (4, 16, trace.total_nodes // 2):
        probe = Job(
            job_id=10**9,
            submit_time=snapshot.now,
            run_time=3600.0,  # believed irrelevant: predictor decides
            nodes=nodes,
            user="you",
            max_run_time=4 * 3600.0,
        )
        from repro.scheduler.simulator import QueuedJob, SystemSnapshot

        probed = SystemSnapshot(
            now=snapshot.now,
            running=snapshot.running,
            queued=snapshot.queued + (QueuedJob(probe),),
            total_nodes=snapshot.total_nodes,
        )
        wait = predict_wait(probed, policy, estimator, probe.job_id)
        print(
            f"a new {nodes:3d}-node, 1-hour job submitted now would start in "
            f"~{wait / 60.0:6.1f} minutes"
        )

    print("\n=== 3. the same probe, with uncertainty ===\n")
    from repro.waitpred.uncertainty import predict_wait_interval

    probe = Job(
        job_id=10**9,
        submit_time=snapshot.now,
        run_time=3600.0,
        nodes=trace.total_nodes // 2,
        user="you",
        max_run_time=4 * 3600.0,
    )
    from repro.scheduler.simulator import QueuedJob, SystemSnapshot

    probed = SystemSnapshot(
        now=snapshot.now,
        running=snapshot.running,
        queued=snapshot.queued + (QueuedJob(probe),),
        total_nodes=snapshot.total_nodes,
    )
    iv = predict_wait_interval(
        probed, policy, estimator, probe.job_id, samples=40, confidence=0.80
    )
    print(
        f"a {probe.nodes}-node, 1-hour job: median wait "
        f"{iv.median / 60:.1f} min, 80% interval "
        f"[{iv.lo / 60:.1f}, {iv.hi / 60:.1f}] min "
        f"({iv.samples} sampled futures)"
    )


if __name__ == "__main__":
    main()
