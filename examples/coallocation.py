#!/usr/bin/env python3
"""Co-allocation across two machines — the paper's motivating use case.

The introduction motivates wait-time prediction with metacomputing:
"Estimates of queue wait times are useful ... to co-allocate resources
from multiple systems."  §5 adds reservations as the mechanism.  This
example plays that scenario out:

1. Two machines (an ANL-like SP2 and an SDSC-like Paragon) each run
   their own backfill scheduler mid-workload.
2. A metacomputing application needs nodes on *both* simultaneously.
3. We pick the reservation start time two ways —

   - **naive**: "right now plus a fixed five minutes";
   - **predicted**: probe each machine with
     :func:`repro.waitpred.predict_wait` for a hypothetical job of the
     required shape, and reserve at the later of the two predictions
     (plus a small margin);

   then place the reservation on both machines, finish the simulations,
   and compare the reservation delays (how late the promised window
   actually started).

Run:  python examples/coallocation.py [n_jobs]
"""

from __future__ import annotations

import sys

from repro import (
    Job,
    PointEstimator,
    Simulator,
    format_table,
    load_paper_workload,
    make_policy,
    make_predictor,
    predict_wait,
)
from repro.scheduler.reservations import Reservation
from repro.scheduler.simulator import QueuedJob, SystemSnapshot

NEED_NODES = 32
NEED_SECONDS = 2 * 3600.0
MARGIN = 10 * 60.0  # scheduling slack added to the predicted wait


def build_machine(workload: str, n_jobs: int):
    """A machine mid-operation: scheduler, remaining jobs, live state."""
    trace = load_paper_workload(workload, n_jobs=n_jobs)
    policy = make_policy("backfill")
    estimator = PointEstimator(make_predictor("smith", trace))
    sim = Simulator(policy, estimator, trace.total_nodes)
    half = trace[len(trace) // 2].submit_time
    sim.load_trace(trace)
    sim.run(until_time=half)  # stop mid-flight: queue and nodes are live
    return trace, sim, policy, estimator


def predicted_local_wait(sim, policy, estimator) -> float:
    """Predicted wait of a hypothetical NEED_NODES/NEED_SECONDS job."""
    snapshot = sim.snapshot()
    probe = Job(
        job_id=10**9,
        submit_time=snapshot.now,
        run_time=NEED_SECONDS,
        nodes=NEED_NODES,
        user="metacomputing",
    )
    probed = SystemSnapshot(
        now=snapshot.now,
        running=snapshot.running,
        queued=snapshot.queued + (QueuedJob(probe),),
        total_nodes=snapshot.total_nodes,
    )
    return predict_wait(probed, policy, estimator, probe.job_id)


def run_strategy(label: str, reserve_offsets: dict[str, float], n_jobs: int):
    rows = []
    for machine in ("ANL", "SDSC95"):
        trace, sim, policy, estimator = build_machine(machine, n_jobs)
        start = sim.now + reserve_offsets[machine]
        sim.add_reservations(
            [Reservation(res_id=1, start_time=start, duration=NEED_SECONDS,
                         nodes=NEED_NODES)]
        )
        sim.run()  # drain the remaining events
        [rec] = sim.reservation_records
        rows.append(
            {
                "Strategy": label,
                "Machine": machine,
                "Reserved at (min from now)": round(
                    reserve_offsets[machine] / 60.0, 1
                ),
                "Delay (min)": round(rec.delay / 60.0, 1),
            }
        )
    return rows


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 800

    # Probe both machines for the predicted wait of the co-allocated job.
    predicted = {}
    for machine in ("ANL", "SDSC95"):
        _, sim, policy, estimator = build_machine(machine, n_jobs)
        predicted[machine] = predicted_local_wait(sim, policy, estimator)
        print(
            f"{machine}: predicted wait for a {NEED_NODES}-node, "
            f"{NEED_SECONDS / 3600:.0f}h job = {predicted[machine] / 60:.1f} min"
        )
    # Co-allocation needs one common start: the later prediction governs.
    common = max(predicted.values()) + MARGIN
    print(
        f"\ncommon reservation chosen {common / 60:.1f} min out "
        f"(max predicted wait + {MARGIN / 60:.0f} min margin)\n"
    )

    rows = []
    rows += run_strategy(
        "naive (+5 min)", {"ANL": 5 * 60.0, "SDSC95": 5 * 60.0}, n_jobs
    )
    rows += run_strategy(
        "predicted", {"ANL": common, "SDSC95": common}, n_jobs
    )
    print(format_table(rows, title="Reservation delay by strategy"))
    print(
        "\nA delayed reservation on either machine stalls the whole "
        "co-allocated application;\nwait-time predictions let the broker "
        "promise a start both machines can honour."
    )


if __name__ == "__main__":
    main()
