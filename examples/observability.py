#!/usr/bin/env python3
"""Prediction-quality observability — audit trail, accuracy stats, report.

One instrumented backfill replay of the ANL workload with the Smith
run-time predictor and the state-based wait predictor riding along:

1. **Audit trail.**  An :class:`Instrumentation` bundle with
   ``audit=True`` makes the estimator adapter record every
   submission-time run-time prediction, the wait predictor record every
   wait prediction, and the simulator resolve both against the realized
   schedule — as ``runtime_predicted`` / ``wait_predicted`` /
   ``prediction_resolved`` events on the JSONL trace.

2. **Online accuracy statistics.**  The audit streams into an
   :class:`AccuracyMonitor`: per-predictor MAE, bias, p50/p90/p99
   absolute error, the under/over-prediction split, the tail ratio
   (p99/p50 — how much worse the worst predictions are than the typical
   one) and the drift signal (rolling vs. run-to-date MAE), with a
   per-template drill-down.

3. **The run report.**  ``build_report`` folds the recorded trace and
   the metrics snapshot into the same self-contained document that
   ``repro-sched report trace.jsonl`` prints.

Run:  python examples/observability.py [n_jobs]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro import (
    PointEstimator,
    Simulator,
    StateBasedWaitPredictor,
    load_paper_workload,
    make_policy,
    make_predictor,
)
from repro.obs import (
    Instrumentation,
    JsonlSink,
    Tracer,
    build_report,
    format_report,
    read_jsonl,
    validate_events,
)


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    trace = load_paper_workload("ANL", n_jobs=n_jobs)
    fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="repro-obs-")
    os.close(fd)

    print(f"=== instrumented backfill replay ({n_jobs} ANL jobs) ===\n")
    with JsonlSink(path) as sink:
        inst = Instrumentation(tracer=Tracer(sink), audit=True)
        policy = make_policy("backfill")
        estimator = PointEstimator(
            make_predictor("smith", trace), instrumentation=inst
        )
        sim = Simulator(policy, estimator, trace.total_nodes, instrumentation=inst)
        # The observer owns its estimator copy: sharing the scheduler's
        # would feed every completion into the history twice.
        sim.add_observer(
            StateBasedWaitPredictor(
                PointEstimator(make_predictor("smith", trace)),
                instrumentation=inst,
            )
        )
        result = sim.run(trace)
        metrics = sim.metrics_snapshot()
    print(
        f"replayed {len(result.records)} jobs; "
        f"{sink.events_written} trace events -> {path}"
    )

    # The in-process monitor has the statistics without re-reading the
    # trace — this is what a long-running service would poll.
    monitor = inst.audit.monitor
    smith = monitor.group("run_time", "smith")
    print(
        f"\nlive monitor: run-time MAE {smith.mae / 60:.1f} min over "
        f"{smith.n} predictions, p99 {smith.quantile(0.99) / 60:.1f} min, "
        f"tail ratio {smith.tail_ratio:.1f}, "
        f"{100 * smith.under_fraction:.0f}% underpredicted"
    )

    # The offline path: validate the recorded trace, rebuild the same
    # statistics from it, and render the full report.
    events = read_jsonl(path)
    n = validate_events(events)
    print(f"trace check: {n} events, all schema-valid\n")
    print(format_report(build_report(events, metrics)))


if __name__ == "__main__":
    main()
