#!/usr/bin/env python3
"""Policy × predictor grid — FCFS vs LWF vs backfill under five predictors.

Reproduces the §4 comparison on one workload: utilization barely moves
with the predictor, mean wait does — most strongly for backfill, whose
reservations live and die by estimate quality.

Run:  python examples/scheduling_comparison.py [workload] [n_jobs]
"""

from __future__ import annotations

import sys

from repro import format_table, load_paper_workload, run_scheduling_experiment
from repro.core.registry import PREDICTOR_NAMES


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "ANL"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1000
    trace = load_paper_workload(workload, n_jobs=n_jobs)

    rows = []
    for policy in ("fcfs", "lwf", "backfill"):
        for predictor in PREDICTOR_NAMES:
            if policy == "fcfs" and predictor != "actual":
                continue  # FCFS ignores estimates; one row suffices
            cell, _ = run_scheduling_experiment(trace, policy, predictor)
            rows.append(
                {
                    "Policy": cell.algorithm,
                    "Predictor": predictor,
                    "Utilization (%)": round(cell.utilization_percent, 2),
                    "Mean wait (min)": round(cell.mean_wait_minutes, 2),
                }
            )
    print(
        format_table(
            rows,
            title=f"{workload} ({n_jobs} jobs): scheduling policy × run-time predictor",
        )
    )
    print(
        "\nReading guide: FCFS ignores predictions entirely; LWF only needs "
        "big-vs-small;\nbackfill is the estimate-sensitive algorithm (§4)."
    )


if __name__ == "__main__":
    main()
