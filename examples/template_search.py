#!/usr/bin/env python3
"""Genetic template search — the paper's §2.1 novelty.

Runs the GA over a workload slice and compares three Smith predictors:
the single global-mean template, the curated defaults, and the
GA-discovered set, against the max-run-time baseline.

Run:  python examples/template_search.py [workload] [n_jobs] [generations]
"""

from __future__ import annotations

import sys

from repro import GAConfig, SmithPredictor, format_table, load_paper_workload
from repro.predictors.ga import search_templates
from repro.predictors.replay import replay_prediction_error
from repro.predictors.simple import MaxRuntimePredictor
from repro.predictors.templates import Template, default_templates


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "ANL"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 800
    generations = int(sys.argv[3]) if len(sys.argv) > 3 else 8
    trace = load_paper_workload(workload, n_jobs=n_jobs)

    cfg = GAConfig(population=16, generations=generations, eval_jobs=400, seed=0)
    print(
        f"searching template sets over {workload} "
        f"(population {cfg.population}, {cfg.generations} generations)...\n"
    )
    best_templates, history = search_templates(trace, config=cfg)

    print(
        format_table(
            [
                {"Generation": i, "Best error (min)": round(e / 60.0, 2),
                 "Mean error (min)": round(m / 60.0, 2)}
                for i, (e, m) in enumerate(
                    zip(history.best_errors, history.mean_errors)
                )
            ],
            title="GA convergence",
        )
    )
    print()
    print(
        format_table(
            [{"Template": t.describe()} for t in best_templates],
            title="Discovered template set",
        )
    )

    has_max = any(j.max_run_time is not None for j in trace)
    contenders = {
        "global mean only": SmithPredictor([Template()]),
        "curated defaults": SmithPredictor(
            default_templates(trace.available_fields, has_max_run_time=has_max)
        ),
        "GA-discovered": SmithPredictor(best_templates),
        "max run times": MaxRuntimePredictor.from_trace(trace),
    }
    rows = []
    for name, predictor in contenders.items():
        report = replay_prediction_error(trace, predictor)
        rows.append(
            {
                "Predictor": name,
                "Mean |error| (min)": round(report.mean_abs_error_minutes, 2),
                "% of mean run time": round(
                    100.0 * report.error_fraction_of_mean_run_time
                ),
            }
        )
    print()
    print(format_table(rows, title=f"Full-trace replay accuracy ({workload})"))


if __name__ == "__main__":
    main()
