#!/usr/bin/env python3
"""Quickstart: schedule a workload and predict run times historically.

Generates a slice of the synthetic ANL workload, runs the backfill
scheduler twice — once trusting user-supplied maximum run times (the
EASY-style baseline) and once with the paper's template-based historical
predictor — and prints the resulting utilization and mean wait times.

Run:  python examples/quickstart.py [n_jobs]
"""

from __future__ import annotations

import sys

from repro import (
    format_table,
    load_paper_workload,
    run_scheduling_experiment,
    summarize,
)


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    trace = load_paper_workload("ANL", n_jobs=n_jobs)
    s = summarize(trace)
    print(
        f"workload: {s.name} — {s.n_jobs} jobs on {s.total_nodes} nodes, "
        f"mean run time {s.mean_run_time_minutes:.1f} min, "
        f"offered load {s.offered_load:.2f}\n"
    )

    rows = []
    for predictor in ("max", "smith", "actual"):
        cell, _ = run_scheduling_experiment(trace, "backfill", predictor)
        rows.append(
            {
                "Run-time predictor": predictor,
                "Utilization (%)": round(cell.utilization_percent, 2),
                "Mean wait (min)": round(cell.mean_wait_minutes, 2),
            }
        )
    print(format_table(rows, title="Backfill scheduling, three predictors"))
    print(
        "\nHistorical predictions ('smith') recover most of the gap between "
        "user maxima ('max')\nand perfect knowledge ('actual') — the paper's "
        "§4 result."
    )


if __name__ == "__main__":
    main()
