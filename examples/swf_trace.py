#!/usr/bin/env python3
"""Running the pipeline on a Standard Workload Format file.

The Parallel Workloads Archive distributes the paper's actual traces in
SWF.  This example shows the ingestion path end to end: it writes a
synthetic trace out as SWF (stand in your real ``.swf`` file here), reads
it back, and runs the wait-time prediction experiment on it.

Run:  python examples/swf_trace.py [path.swf]
      (with no argument, a demo SWF file is generated in a temp dir)
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import format_table, load_paper_workload, run_wait_time_experiment
from repro.workloads.swf import read_swf, write_swf


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"reading {path} ...")
    else:
        path = Path(tempfile.mkdtemp()) / "demo.swf"
        demo = load_paper_workload("SDSC95", n_jobs=500)
        write_swf(demo, path)
        print(f"no SWF supplied; wrote a demo trace to {path}")

    trace = read_swf(path)
    print(
        f"parsed {len(trace)} jobs on a {trace.total_nodes}-node machine "
        f"from {path.name}\n"
    )

    rows = []
    for predictor in ("max", "smith"):
        cell, report, _ = run_wait_time_experiment(trace, "backfill", predictor)
        rows.append(
            {
                "Predictor": predictor,
                "Mean |error| (min)": round(cell.mean_error_minutes, 2),
                "% of mean wait": round(cell.percent_of_mean_wait),
            }
        )
    print(
        format_table(
            rows, title="Wait-time prediction on the SWF trace (backfill)"
        )
    )


if __name__ == "__main__":
    main()
