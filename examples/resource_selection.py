#!/usr/bin/env python3
"""Resource selection across a federation — the paper's §1 motivation.

Three machines of different sizes run backfill schedulers; one shared
stream of jobs arrives at a broker.  Four routing strategies compete:

- random,
- round-robin,
- least queued work per node (cheap heuristic),
- **predicted wait** — probe each machine with the paper's forward-
  simulation wait predictor and go where the wait is shortest.

Run:  python examples/resource_selection.py [n_jobs]
"""

from __future__ import annotations

import sys

from repro import format_table, load_paper_workload
from repro.metacomputing import (
    LeastQueuedWorkRouting,
    Machine,
    MetaSimulator,
    PredictedWaitRouting,
    RandomRouting,
    RoundRobinRouting,
)
from repro.predictors.base import PointEstimator
from repro.predictors.smith import SmithPredictor
from repro.scheduler.policies import BackfillPolicy


def build_federation():
    """Three backfill machines, each with its own Smith predictor."""
    machines = []
    for name, nodes in (("argonne", 80), ("cornell", 160), ("sandiego", 48)):
        machines.append(
            Machine(
                name,
                BackfillPolicy(),
                PointEstimator(SmithPredictor.for_trace(_ARRIVALS)),
                nodes,
            )
        )
    return machines


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    global _ARRIVALS
    # One arrival stream; jobs sized for the smallest machine so every
    # strategy faces identical eligibility.
    _ARRIVALS = load_paper_workload("ANL", n_jobs=n_jobs)
    _ARRIVALS = _ARRIVALS.map(lambda j: j.with_(nodes=min(j.nodes, 48)))

    strategies = [
        RandomRouting(seed=0),
        RoundRobinRouting(),
        LeastQueuedWorkRouting(),
        PredictedWaitRouting(),
    ]
    rows = []
    for strategy in strategies:
        meta = MetaSimulator(build_federation(), strategy)
        result = meta.run(_ARRIVALS)
        rows.append(
            {
                "Strategy": result.strategy,
                "Mean wait (min)": round(result.mean_wait_minutes, 2),
                "argonne %": round(100 * result.machine_share("argonne")),
                "cornell %": round(100 * result.machine_share("cornell")),
                "sandiego %": round(100 * result.machine_share("sandiego")),
            }
        )
    print(
        format_table(
            rows,
            title=(
                f"Routing {n_jobs} jobs across a 3-machine federation "
                "(backfill everywhere)"
            ),
        )
    )
    print(
        "\nPredicted-wait routing is the paper's motivating application: "
        "the broker runs the\n§3 forward simulation on every machine and "
        "submits where the job starts soonest."
    )


_ARRIVALS = None

if __name__ == "__main__":
    main()
