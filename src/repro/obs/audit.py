"""Per-job prediction audit trail.

:class:`PredictionAudit` pairs every prediction made during a replay
with the outcome that later resolves it, producing:

- ``runtime_predicted`` / ``wait_predicted`` trace events at recording
  time (when the tracer's sink is enabled), carrying the predicted
  value, the predictor id, and the template/category/fallback ``source``
  that produced it;
- a ``prediction_resolved`` event per (job, predictor) once the actual
  is known — run time at the job's finish, wait time at its start —
  carrying predicted, actual, and signed error;
- a streaming feed into an :class:`~repro.obs.accuracy.AccuracyMonitor`,
  so per-predictor error/quantile/tail/drift statistics are available
  in-process without re-reading the trace.

Recording happens where the prediction is *made*: the
:class:`~repro.predictors.base.PointEstimator` adapter records its
submission-time run-time estimate, the wait predictors
(:class:`~repro.waitpred.predictor.WaitTimePredictor`,
:class:`~repro.waitpred.statebased.StateBasedWaitPredictor`) record
their submission-time wait estimates.  Resolution happens where the
outcome is *observed*: the :class:`~repro.scheduler.Simulator` resolves
waits at start and run times at finish.  Several predictors may record
for the same job (e.g. the scheduler's estimator and an observer's);
each resolves into its own monitor group.  Re-recording the same
(job, predictor) pair is ignored — the submission-time prediction is
the one audited, matching the paper's evaluation protocol.

The audit rides in :class:`~repro.obs.instrument.Instrumentation`
(``audit`` attribute, default ``None``); every emitter checks that
attribute once at construction and binds the audited code paths only
when it is present, so disabled-instrumentation replays execute zero
audit instructions.
"""

from __future__ import annotations

from repro.obs.accuracy import AccuracyMonitor
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["PredictionAudit"]


class PredictionAudit:
    """Pairs predictions with outcomes; emits events and feeds a monitor."""

    __slots__ = ("tracer", "monitor", "_pending_run", "_pending_wait")

    def __init__(
        self,
        tracer: Tracer | None = None,
        monitor: AccuracyMonitor | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.monitor = monitor if monitor is not None else AccuracyMonitor()
        #: job_id -> {predictor: (predicted, source)}
        self._pending_run: dict[int, dict[str, tuple[float, str]]] = {}
        self._pending_wait: dict[int, dict[str, tuple[float, str]]] = {}

    # ------------------------------------------------------------------
    # recording (at prediction time)
    # ------------------------------------------------------------------
    def record_runtime(
        self,
        job_id: int,
        now: float,
        predicted: float,
        *,
        predictor: str,
        source: str = "",
        policy: str | None = None,
    ) -> None:
        """Record a submission-time run-time prediction for ``job_id``."""
        per_job = self._pending_run.setdefault(job_id, {})
        if predictor in per_job:
            return  # first prediction per (job, predictor) wins
        per_job[predictor] = (predicted, source)
        if self.tracer.enabled:
            extra = {"source": source} if source else {}
            self.tracer.emit(
                "runtime_predicted",
                sim_time=now,
                job_id=job_id,
                policy=policy,
                predicted_run_s=predicted,
                predictor=predictor,
                **extra,
            )

    def record_wait(
        self,
        job_id: int,
        now: float,
        predicted: float,
        *,
        predictor: str,
        source: str = "",
        policy: str | None = None,
    ) -> None:
        """Record a submission-time wait-time prediction for ``job_id``."""
        per_job = self._pending_wait.setdefault(job_id, {})
        if predictor in per_job:
            return
        per_job[predictor] = (predicted, source)
        if self.tracer.enabled:
            extra = {"source": source} if source else {}
            self.tracer.emit(
                "wait_predicted",
                sim_time=now,
                job_id=job_id,
                policy=policy,
                predicted_wait_s=predicted,
                predictor=predictor,
                **extra,
            )

    # ------------------------------------------------------------------
    # resolution (at outcome time)
    # ------------------------------------------------------------------
    def resolve_runtime(
        self, job_id: int, now: float, actual: float, *, policy: str | None = None
    ) -> None:
        """Resolve every pending run-time prediction of ``job_id``."""
        per_job = self._pending_run.pop(job_id, None)
        if per_job is None:
            return
        self._resolve("run_time", per_job, job_id, now, actual, policy)

    def resolve_wait(
        self, job_id: int, now: float, actual: float, *, policy: str | None = None
    ) -> None:
        """Resolve every pending wait-time prediction of ``job_id``."""
        per_job = self._pending_wait.pop(job_id, None)
        if per_job is None:
            return
        self._resolve("wait_time", per_job, job_id, now, actual, policy)

    def _resolve(
        self,
        kind: str,
        per_job: dict[str, tuple[float, str]],
        job_id: int,
        now: float,
        actual: float,
        policy: str | None,
    ) -> None:
        emit = self.tracer.enabled
        for predictor, (predicted, source) in per_job.items():
            self.monitor.observe(
                kind, predictor, predicted, actual, key=source or None
            )
            if emit:
                extra = {"source": source} if source else {}
                self.tracer.emit(
                    "prediction_resolved",
                    sim_time=now,
                    job_id=job_id,
                    policy=policy,
                    kind=kind,
                    predictor=predictor,
                    predicted_s=predicted,
                    actual_s=actual,
                    error_s=predicted - actual,
                    **extra,
                )

    # ------------------------------------------------------------------
    @property
    def unresolved_runtime(self) -> int:
        """Run-time predictions still waiting for their job to finish."""
        return sum(len(d) for d in self._pending_run.values())

    @property
    def unresolved_wait(self) -> int:
        """Wait-time predictions still waiting for their job to start."""
        return sum(len(d) for d in self._pending_wait.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictionAudit(resolved={self.monitor.total_observations}, "
            f"pending_run={self.unresolved_runtime}, "
            f"pending_wait={self.unresolved_wait})"
        )
