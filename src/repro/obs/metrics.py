"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` names and owns a flat set of metrics.  The
design optimizes for the replay engine's hot path:

- :class:`Counter` and :class:`Gauge` hold their state in a single slot
  attribute, so hot loops may increment with plain attribute arithmetic
  (``counter.value += 1``) — the cheapest instrumented increment Python
  offers — while everything else uses the readable :meth:`Counter.inc`.
- :class:`Histogram` uses *fixed* upper bounds chosen at construction,
  so one ``bisect`` per observation replaces any dynamic re-bucketing.
- :meth:`MetricsRegistry.snapshot` returns plain JSON-serializable
  dicts, and :func:`merge_snapshots` folds many snapshots (e.g. one per
  simulator) into one, which is how experiment tables and benchmarks
  aggregate across replays.

Bucket presets for the replay engine's own histograms live here too so
every engine instance bins identically and snapshots always merge.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "histogram_quantile",
    "format_histogram",
    "format_metrics",
    "format_prometheus",
    "WAIT_TIME_BUCKETS",
    "PASS_DURATION_BUCKETS",
    "BACKFILL_DEPTH_BUCKETS",
    "CELL_DURATION_BUCKETS",
    "QUERY_LATENCY_BUCKETS",
]

#: Job wait times in seconds: sub-minute through two days.
WAIT_TIME_BUCKETS: tuple[float, ...] = (
    30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
    7200.0, 14400.0, 28800.0, 86400.0, 172800.0,
)

#: Scheduling-pass wall durations in seconds: ~1us through 1s.
PASS_DURATION_BUCKETS: tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4,
    5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1.0,
)

#: Queue positions a backfilled job jumped over (0 = in-order start).
BACKFILL_DEPTH_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Prediction-service query latencies in seconds: ~1us through 100ms.
#: Cached-epoch hits sit in the lowest buckets; the sub-millisecond p99
#: target for single queries lands well inside the range, and anything
#: past 100ms (a pathological forward-simulation fallback) overflows.
QUERY_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4,
    5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
)

#: Campaign cell wall/CPU durations in seconds: ~50ms through one hour.
#: Shared by every CampaignMonitor so campaign snapshots always merge
#: and the TARE-style p50/p90/p99 quantiles bin identically everywhere.
CELL_DURATION_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0,
    60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (queue depth, category count, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram over strictly increasing upper bounds.

    Bucket ``i`` counts observations ``v`` with
    ``bounds[i-1] < v <= bounds[i]`` (upper-inclusive); a final overflow
    bucket counts everything above the last bound.  ``counts`` therefore
    has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        clean = tuple(float(b) for b in bounds)
        if not clean:
            raise ValueError("histogram needs at least one bucket bound")
        if any(a >= b for a, b in zip(clean, clean[1:])):
            raise ValueError(f"bounds must be strictly increasing: {clean}")
        self.name = name
        self.bounds = clean
        self.counts = [0] * (len(clean) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero every bucket — for folds that rebuild from source data."""
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """A named, flat collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, so independent components
    (simulator, estimator adapter, observers) can share a registry
    without coordination.  Re-registering a name as a different metric
    type — or a histogram with different bounds — raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_make(self, name: str, kind, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_make(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_make(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        hist = self._get_or_make(name, Histogram, lambda: Histogram(name, bounds))
        if hist.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{hist.bounds}, not {tuple(bounds)}"
            )
        return hist

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Plain-dict (JSON-serializable) copy of every metric's state."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def format_prometheus(self) -> str:
        """Prometheus text exposition of the registry's current state."""
        return format_prometheus(self.snapshot())


def merge_snapshots(*snapshots: Mapping) -> dict:
    """Fold snapshots into one: counters and histograms add, gauges keep
    the last seen value.  Histograms under the same name must share
    bounds (they do when both sides used the presets above)."""
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = value
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if merged["bounds"] != list(hist["bounds"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], hist["counts"])
            ]
            merged["sum"] += hist["sum"]
            merged["count"] += hist["count"]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def histogram_quantile(hist: Mapping, q: float) -> float | None:
    """Approximate the ``q``-quantile of a histogram snapshot entry.

    Linear interpolation inside the winning bucket (the overflow bucket
    reports the last finite bound).  ``None`` when the histogram is
    empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = hist["count"]
    if count == 0:
        return None
    bounds = hist["bounds"]
    counts = hist["counts"]
    target = q * count
    cumulative = 0
    for i, c in enumerate(counts):
        if cumulative + c >= target and c > 0:
            hi = bounds[i] if i < len(bounds) else bounds[-1]
            lo = bounds[i - 1] if 0 < i <= len(bounds) else 0.0
            fraction = (target - cumulative) / c
            return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
        cumulative += c
    return bounds[-1]


def format_histogram(hist: Mapping, *, title: str | None = None, width: int = 40) -> str:
    """Render a histogram snapshot entry as an aligned text bar chart.

    Empty buckets are omitted; a summary line reports count, mean and
    approximate p50/p90/p99.  Works on the dict form produced by
    :meth:`MetricsRegistry.snapshot` (pass ``snapshot()["histograms"][name]``).
    """
    bounds = hist["bounds"]
    counts = hist["counts"]
    lines: list[str] = []
    if title:
        lines.append(title)
    if hist["count"] == 0:
        lines.append("  (no observations)")
        return "\n".join(lines)
    peak = max(counts)
    for i, c in enumerate(counts):
        if c == 0:
            continue
        label = f"<= {bounds[i]:g}" if i < len(bounds) else f" > {bounds[-1]:g}"
        bar = "#" * max(1, round(width * c / peak))
        lines.append(f"  {label:>12}  {c:>8}  {bar}")
    mean = hist["sum"] / hist["count"]
    quantiles = ", ".join(
        f"p{int(q * 100)}={histogram_quantile(hist, q):.3g}"
        for q in (0.5, 0.9, 0.99)
    )
    lines.append(f"  count={hist['count']} mean={mean:.3g} {quantiles}")
    return "\n".join(lines)


def format_metrics(snapshot: Mapping) -> str:
    """Render a registry snapshot as aligned, *stable-sorted* text.

    Counters and gauges come out one per line, histograms through
    :func:`format_histogram`, every section sorted by metric name — two
    renders of the same snapshot are byte-identical regardless of the
    insertion order the registry (or a :func:`merge_snapshots` fold)
    happened to use, so CI can diff them.
    """
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        width = max(len(name) for name in counters)
        lines.append("counters:")
        lines.extend(
            f"  {name:<{width}}  {counters[name]}" for name in sorted(counters)
        )
    gauges = snapshot.get("gauges", {})
    if gauges:
        width = max(len(name) for name in gauges)
        lines.append("gauges:")
        lines.extend(
            f"  {name:<{width}}  {gauges[name]:g}" for name in sorted(gauges)
        )
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        lines.append(format_histogram(histograms[name], title=f"{name}:"))
    if not lines:
        return "(no metrics)"
    return "\n".join(lines)


def _prometheus_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``): every other character becomes ``_``."""
    cleaned = "".join(
        c if c.isascii() and (c.isalnum() or c in "_:") else "_" for c in name
    )
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    """Escape a raw label value per the text-exposition rules:
    backslash, double quote, and line feed."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _split_labels(name: str) -> tuple[str, str]:
    """Split ``family{key="value",...}`` into the bare family name and a
    re-escaped label block (``""`` when the name carries no labels).

    Registry names may embed a Prometheus-style label block; values may
    use ``\\"`` / ``\\\\`` escapes or contain raw ``"`` -free specials
    (newlines included) directly.  A name whose brace block does not
    parse is treated as label-free: the whole name is sanitized into the
    family, which is also the pre-label behavior.
    """
    brace = name.find("{")
    if brace < 0 or not name.endswith("}"):
        return name, ""
    family, block = name[:brace], name[brace + 1 : -1]
    pairs: list[tuple[str, str]] = []
    i, n = 0, len(block)
    while i < n:
        eq = block.find('="', i)
        if eq < 0:
            return name, ""  # malformed: no key="..." ahead
        key = block[i:eq].strip()
        if not key:
            return name, ""
        # Scan the quoted value, honoring backslash escapes.
        value_chars: list[str] = []
        j = eq + 2
        while j < n:
            c = block[j]
            if c == "\\" and j + 1 < n:
                nxt = block[j + 1]
                value_chars.append(
                    {"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt)
                )
                j += 2
                continue
            if c == '"':
                break
            value_chars.append(c)
            j += 1
        else:
            return name, ""  # unterminated value
        pairs.append((key, "".join(value_chars)))
        i = j + 1
        if i < n and block[i] == ",":
            i += 1
    if not pairs:
        return name, ""
    rendered = ",".join(
        f'{_prometheus_name(k)}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return family, "{" + rendered + "}"


def format_prometheus(snapshot: Mapping) -> str:
    """Prometheus text-exposition (v0.0.4) rendering of a snapshot.

    Any :meth:`MetricsRegistry.snapshot` (or :func:`merge_snapshots`
    fold) becomes scrapeable: counters gain a ``_total`` suffix, gauges
    keep their name, histograms expand to cumulative ``_bucket{le=...}``
    series plus ``_sum``/``_count``.  Families are emitted sorted by
    metric name, so output is deterministic for a given snapshot.

    Registry names may carry a label block (``passes{policy="FCFS"}``):
    the block is parsed off, label values are re-escaped per the
    exposition rules (``\\`` ``"`` and newline), and the ``# HELP`` /
    ``# TYPE`` header is emitted exactly once per *family* — labeled
    series of one family share a single header, and a family with zero
    observations (a never-incremented counter, an empty histogram) is
    still emitted in full so scrapers see the series exists.
    """
    lines: list[str] = []
    seen_families: set[str] = set()

    def header(family: str, source_name: str, ptype: str) -> None:
        if family in seen_families:
            return
        seen_families.add(family)
        help_text = source_name.split("{", 1)[0]
        lines.append(f"# HELP {family} repro metric {help_text}")
        lines.append(f"# TYPE {family} {ptype}")

    for name in sorted(snapshot.get("counters", {})):
        base, labels = _split_labels(name)
        family = _prometheus_name(base) + "_total"
        header(family, name, "counter")
        lines.append(f"{family}{labels} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        base, labels = _split_labels(name)
        family = _prometheus_name(base)
        header(family, name, "gauge")
        lines.append(f"{family}{labels} {snapshot['gauges'][name]:g}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        base, labels = _split_labels(name)
        family = _prometheus_name(base)
        header(family, name, "histogram")
        inner = labels[1:-1] + "," if labels else ""
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{family}_bucket{{{inner}le="{bound:g}"}} {cumulative}'
            )
        lines.append(f'{family}_bucket{{{inner}le="+Inf"}} {hist["count"]}')
        lines.append(f"{family}_sum{labels} {hist['sum']:g}")
        lines.append(f"{family}_count{labels} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
