"""Span-based tracer and structured event sinks.

A :class:`Tracer` turns engine decisions into structured events and
hands them to a *sink*.  Three sinks cover every use:

- :class:`NullSink` — discards everything and advertises
  ``enabled = False``, which lets instrumented code skip event
  construction entirely (the default; the overhead budget in
  ``docs/architecture.md`` is measured in this mode);
- :class:`ListSink` — collects events in memory (tests, summaries);
- :class:`JsonlSink` — appends one compact JSON object per line to a
  file, the interchange format of ``repro-sched trace`` and the CI
  trace-smoke job.

Spans (:meth:`Tracer.span`) time a block with the monotonic clock and
emit a ``span`` event on exit — exception-safe, nesting-aware (events
carry their parent span's name), and optionally feeding a
:class:`~repro.obs.metrics.Histogram` so durations aggregate even when
the sink is disabled.
"""

from __future__ import annotations

import io
import json
import time
from typing import IO, Any, Protocol, runtime_checkable

from repro.obs.metrics import Histogram

try:  # pragma: no cover - exercised when the wheel ships orjson
    import orjson as _orjson
except ImportError:  # pragma: no cover
    _orjson = None

# Serializing the event line dominates JsonlSink.emit, so the encoder is
# chosen once at import: orjson when available (~8x faster on the flat
# event dicts the tracer produces), else one reused stdlib encoder —
# ``json.dumps`` with non-default options rebuilds a JSONEncoder per
# call, which roughly doubles the cost.  Both produce the same sorted,
# separator-free lines; the only divergences are cosmetic exponent
# formatting (``1e-06`` vs ``1e-6``) and non-finite floats, which
# orjson writes as ``null`` where stdlib emits the non-standard
# ``Infinity``/``NaN`` tokens (trace events are finite by schema).
if _orjson is not None:
    _ORJSON_OPTS = _orjson.OPT_SORT_KEYS | _orjson.OPT_SERIALIZE_NUMPY

    def _encode_line(event: dict) -> str:
        return _orjson.dumps(event, option=_ORJSON_OPTS).decode("utf-8")

else:
    _encode_line = json.JSONEncoder(
        separators=(",", ":"), sort_keys=True
    ).encode

__all__ = [
    "EventSink",
    "NullSink",
    "ListSink",
    "JsonlSink",
    "Span",
    "Tracer",
    "NULL_TRACER",
]


@runtime_checkable
class EventSink(Protocol):
    """Structural type every sink implements."""

    enabled: bool

    def emit(self, event: dict) -> None: ...

    def close(self) -> None: ...


class NullSink:
    """Discards every event; ``enabled = False`` lets emitters short-circuit."""

    enabled = False

    def emit(self, event: dict) -> None:
        pass

    def close(self) -> None:
        pass


class ListSink:
    """Collects events in memory (``sink.events``)."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Writes one compact JSON object per line to a path or file object.

    Owns (and closes) the file handle when given a path; only flushes
    when given an open file object.  Usable as a context manager, which
    guarantees the flush-on-close.

    Events are buffered (``buffer_lines`` at a time) and each flush
    hands the file exactly one chunk of *complete* lines — so a process
    killed mid-replay leaves a trace of whole, schema-valid lines (the
    tail of the buffer may be lost, but no line is ever truncated by the
    sink).  For that guarantee to survive SIGKILL the chunk must reach
    the OS in one piece: a path-owned handle is opened **unbuffered
    binary** (``buffering=0``) so each flush is a single ``os.write`` —
    Python's buffered text layer would spill its ~8 KiB blocks without
    regard for line boundaries, and a kill landing between a partial
    spill and ``flush()`` truncates a line mid-byte.  Caller-supplied
    text handles (e.g. ``StringIO``) keep their own buffering semantics;
    the kill guarantee then depends on the handle.

    One tear is beyond userland control: the kernel's write path checks
    for fatal signals at page boundaries, so a SIGKILL can truncate the
    in-flight write itself.  Because each flush is a single in-order
    write, that can only ever leave one unterminated *final* line —
    readers recovering a killed trace should drop a tail fragment that
    lacks its newline and keep the (always-valid) lines before it.
    """

    enabled = True

    def __init__(self, target: str | IO[str], *, buffer_lines: int = 64) -> None:
        if buffer_lines < 1:
            raise ValueError(f"buffer_lines must be >= 1, got {buffer_lines}")
        if hasattr(target, "write"):
            self._fh: IO = target  # type: ignore[assignment]
            self._owns = False
            self._binary = isinstance(target, (io.RawIOBase, io.BufferedIOBase))
        else:
            self._fh = open(target, "wb", buffering=0)
            self._owns = True
            self._binary = True
        self._buffer: list[str] = []
        self._buffer_lines = buffer_lines
        self.events_written = 0

    def emit(self, event: dict) -> None:
        self._buffer.append(_encode_line(event))
        self.events_written += 1
        if len(self._buffer) >= self._buffer_lines:
            self.flush()

    def flush(self) -> None:
        """Write buffered events as one whole-lines chunk and flush."""
        if self._buffer:
            chunk = "\n".join(self._buffer) + "\n"
            self._buffer.clear()
            if self._binary:
                self._fh.write(chunk.encode("utf-8"))
            else:
                self._fh.write(chunk)
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullSpan:
    """Shared no-op context manager returned when nothing would record."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **fields: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One timed block.  Produced by :meth:`Tracer.span`; on exit it
    observes the optional histogram and, if the sink is enabled, emits a
    ``span`` event recording duration, parent span, and outcome."""

    __slots__ = ("_tracer", "_histogram", "_emit", "name", "fields", "_t0", "duration_s")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        histogram: Histogram | None,
        fields: dict,
    ) -> None:
        self._tracer = tracer
        self._histogram = histogram
        self._emit = tracer.enabled
        self.name = name
        self.fields = fields
        self.duration_s: float | None = None

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields to the span's event (e.g. results)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        if self._emit:
            stack = self._tracer._stack
            if stack:
                self.fields.setdefault("parent", stack[-1])
            stack.append(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dt = time.perf_counter() - self._t0
        self.duration_s = dt
        if self._histogram is not None:
            self._histogram.observe(dt)
        if self._emit:
            self._tracer._stack.pop()
            fields = self.fields
            if exc_type is not None:
                fields["ok"] = False
                fields["error"] = exc_type.__name__
            self._tracer.emit("span", name=self.name, duration_s=dt, **fields)
        return False  # never swallow exceptions


class Tracer:
    """Builds structured events (with wall-clock stamps) and spans.

    Every event is a flat dict with at least ``type`` and ``wall_time``;
    engine events add ``sim_time``, ``job_id``, ``policy``, ``cause``
    and type-specific fields (see :mod:`repro.obs.schema` for the
    taxonomy).  With a :class:`NullSink`, :meth:`emit` returns before
    building anything and :meth:`span` hands back a shared no-op
    context manager unless a histogram still needs the timing.
    """

    def __init__(self, sink: EventSink | None = None) -> None:
        self.sink: EventSink = sink if sink is not None else NullSink()
        self._stack: list[str] = []

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    def emit(
        self,
        etype: str,
        *,
        sim_time: float | None = None,
        job_id: int | None = None,
        policy: str | None = None,
        cause: str | None = None,
        **fields: Any,
    ) -> None:
        if not self.sink.enabled:
            return
        event: dict[str, Any] = {"type": etype, "wall_time": time.time()}
        if sim_time is not None:
            event["sim_time"] = sim_time
        if job_id is not None:
            event["job_id"] = job_id
        if policy is not None:
            event["policy"] = policy
        if cause is not None:
            event["cause"] = cause
        if fields:
            event.update(fields)
        if self._stack:
            event.setdefault("parent", self._stack[-1])
        self.sink.emit(event)

    def span(
        self,
        name: str,
        *,
        histogram: Histogram | None = None,
        **fields: Any,
    ) -> Span | _NullSpan:
        """Context manager timing a block with the monotonic clock."""
        if not self.sink.enabled and histogram is None:
            return _NULL_SPAN
        return Span(self, name, histogram, fields)

    def close(self) -> None:
        self.sink.close()


#: Shared disabled tracer — the default for every engine instance.
NULL_TRACER = Tracer(NullSink())
