"""Online prediction-accuracy monitoring.

The paper's whole contribution is measured in prediction error (run-time
error in §3, wait-time error in Tables 4-9), and follow-up work (TARE,
"the price of misprediction") shows that *mean* error summaries hide the
tail mispredictions that dominate scheduling damage.  The
:class:`AccuracyMonitor` therefore keeps, per ``(kind, predictor)``
group, the full picture of one run's prediction quality:

- mean absolute error and signed bias;
- the under/over-prediction split (an underprediction makes backfill
  overcommit; an overprediction wastes holes);
- exact absolute-error quantiles (p50/p90/p99) and the **tail ratio**
  ``p99 / p50`` — how many times worse the worst percentile is than the
  typical prediction (1.0 = uniform error, large = heavy tail);
- a **drift signal**: the rolling-window MAE over the most recent
  predictions against the run-to-date MAE (``drift_ratio`` > 1 means the
  predictor is currently doing worse than its own history — e.g. the
  workload shifted out from under its templates);
- a per-key drill-down (template/category/fallback source) with count
  and MAE, so a bad aggregate can be traced to the category that
  produced it.

Observations arrive one at a time (streaming) from the audit trail
(:mod:`repro.obs.audit`), or in bulk from a recorded JSONL trace via
:meth:`AccuracyMonitor.from_events`.  Absolute errors are retained
per group (memory is O(predictions), paid only when auditing is on)
so the quantiles are exact, not histogram approximations.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

__all__ = [
    "PREDICTION_KINDS",
    "AccuracyMonitor",
    "GroupStats",
]

#: The two prediction kinds the audit trail distinguishes.
PREDICTION_KINDS = ("run_time", "wait_time")

#: Default rolling-window length for the drift signal.
DEFAULT_DRIFT_WINDOW = 200


def _quantile(sorted_values: list[float], q: float) -> float:
    """Exact quantile with linear interpolation (numpy's default rule)."""
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class GroupStats:
    """Streaming error statistics for one ``(kind, predictor)`` group."""

    __slots__ = (
        "kind",
        "predictor",
        "n",
        "sum_abs",
        "sum_signed",
        "under",
        "over",
        "exact",
        "window",
        "_abs_errors",
        "_recent",
        "_recent_sum",
        "_keys",
    )

    def __init__(self, kind: str, predictor: str, *, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.kind = kind
        self.predictor = predictor
        self.n = 0
        self.sum_abs = 0.0
        self.sum_signed = 0.0
        self.under = 0  # predicted < actual
        self.over = 0  # predicted > actual
        self.exact = 0
        self.window = window
        self._abs_errors: list[float] = []
        self._recent: deque[float] = deque()
        self._recent_sum = 0.0
        #: key -> [n, sum_abs, under, over]
        self._keys: dict[str, list] = {}

    def observe(self, predicted: float, actual: float, key: str | None = None) -> None:
        err = predicted - actual
        abs_err = abs(err)
        self.n += 1
        self.sum_abs += abs_err
        self.sum_signed += err
        if err < 0:
            self.under += 1
        elif err > 0:
            self.over += 1
        else:
            self.exact += 1
        self._abs_errors.append(abs_err)
        self._recent.append(abs_err)
        self._recent_sum += abs_err
        if len(self._recent) > self.window:
            self._recent_sum -= self._recent.popleft()
        if key is not None:
            entry = self._keys.get(key)
            if entry is None:
                entry = self._keys[key] = [0, 0.0, 0, 0]
            entry[0] += 1
            entry[1] += abs_err
            entry[2] += 1 if err < 0 else 0
            entry[3] += 1 if err > 0 else 0

    # -- derived metrics -------------------------------------------------
    @property
    def mae(self) -> float:
        return self.sum_abs / self.n if self.n else 0.0

    @property
    def bias(self) -> float:
        """Mean signed error (positive = overprediction on average)."""
        return self.sum_signed / self.n if self.n else 0.0

    @property
    def under_fraction(self) -> float:
        return self.under / self.n if self.n else 0.0

    @property
    def over_fraction(self) -> float:
        return self.over / self.n if self.n else 0.0

    def quantile(self, q: float) -> float | None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._abs_errors:
            return None
        return _quantile(sorted(self._abs_errors), q)

    @property
    def tail_ratio(self) -> float | None:
        """p99 / p50 of the absolute error, ``None`` when p50 is zero."""
        if not self._abs_errors:
            return None
        ordered = sorted(self._abs_errors)
        p50 = _quantile(ordered, 0.50)
        if p50 <= 0.0:
            return None
        return _quantile(ordered, 0.99) / p50

    @property
    def rolling_mae(self) -> float:
        """MAE over the last ``window`` observations."""
        return self._recent_sum / len(self._recent) if self._recent else 0.0

    @property
    def drift_ratio(self) -> float | None:
        """Rolling MAE over run-to-date MAE; ``None`` until both exist.

        Values well above 1 flag a predictor whose recent errors exceed
        its whole-run average — history has gone stale.
        """
        if self.n == 0 or self.mae <= 0.0:
            return None
        return self.rolling_mae / self.mae

    def snapshot(self) -> dict:
        """Plain-dict (JSON-serializable) view of every metric."""
        ordered = sorted(self._abs_errors)
        return {
            "kind": self.kind,
            "predictor": self.predictor,
            "n": self.n,
            "mae": self.mae,
            "bias": self.bias,
            "p50": _quantile(ordered, 0.50) if ordered else None,
            "p90": _quantile(ordered, 0.90) if ordered else None,
            "p99": _quantile(ordered, 0.99) if ordered else None,
            "max": ordered[-1] if ordered else None,
            "under_fraction": self.under_fraction,
            "over_fraction": self.over_fraction,
            "tail_ratio": self.tail_ratio,
            "window": self.window,
            "rolling_mae": self.rolling_mae,
            "drift_ratio": self.drift_ratio,
            "keys": {
                key: {
                    "n": n,
                    "mae": sum_abs / n if n else 0.0,
                    "under": under,
                    "over": over,
                }
                for key, (n, sum_abs, under, over) in sorted(self._keys.items())
            },
        }


class AccuracyMonitor:
    """Rolling prediction-accuracy statistics, grouped per predictor.

    ``observe`` is the streaming entry point (the audit trail calls it
    as each prediction resolves); :meth:`from_events` rebuilds a monitor
    offline from the ``prediction_resolved`` events of a recorded JSONL
    trace, which is how ``repro-sched report`` works.  Both paths
    produce identical statistics because the events carry exactly the
    observed values.
    """

    def __init__(self, *, window: int = DEFAULT_DRIFT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._groups: dict[tuple[str, str], GroupStats] = {}

    def observe(
        self,
        kind: str,
        predictor: str,
        predicted: float,
        actual: float,
        *,
        key: str | None = None,
    ) -> None:
        if kind not in PREDICTION_KINDS:
            raise ValueError(
                f"unknown prediction kind {kind!r}; expected one of {PREDICTION_KINDS}"
            )
        group = self._groups.get((kind, predictor))
        if group is None:
            group = self._groups[(kind, predictor)] = GroupStats(
                kind, predictor, window=self.window
            )
        group.observe(predicted, actual, key)

    @classmethod
    def from_events(
        cls, events: Iterable[Mapping], *, window: int = DEFAULT_DRIFT_WINDOW
    ) -> "AccuracyMonitor":
        """Rebuild a monitor from ``prediction_resolved`` trace events."""
        monitor = cls(window=window)
        for event in events:
            if event.get("type") != "prediction_resolved":
                continue
            monitor.observe(
                event["kind"],
                event.get("predictor", "?"),
                event["predicted_s"],
                event["actual_s"],
                key=event.get("source"),
            )
        return monitor

    def group(self, kind: str, predictor: str) -> GroupStats | None:
        return self._groups.get((kind, predictor))

    def groups(self) -> list[GroupStats]:
        """All groups, ordered by (kind, predictor)."""
        return [self._groups[k] for k in sorted(self._groups)]

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def total_observations(self) -> int:
        return sum(g.n for g in self._groups.values())

    def snapshot(self) -> dict:
        """JSON-serializable dump of every group's statistics."""
        return {
            "window": self.window,
            "total_observations": self.total_observations,
            "groups": [g.snapshot() for g in self.groups()],
        }

    def summary_rows(self) -> list[dict]:
        """Table-ready rows (one per group), most-observed first."""
        rows = []
        for g in sorted(self._groups.values(), key=lambda g: (-g.n, g.kind, g.predictor)):
            snap = g.snapshot()
            rows.append(
                {
                    "Kind": g.kind,
                    "Predictor": g.predictor,
                    "N": g.n,
                    "MAE (min)": round(g.mae / 60.0, 2),
                    "p50 (min)": round((snap["p50"] or 0.0) / 60.0, 2),
                    "p90 (min)": round((snap["p90"] or 0.0) / 60.0, 2),
                    "p99 (min)": round((snap["p99"] or 0.0) / 60.0, 2),
                    "Under %": round(100.0 * g.under_fraction),
                    "Over %": round(100.0 * g.over_fraction),
                    "Tail": round(snap["tail_ratio"], 1)
                    if snap["tail_ratio"] is not None
                    else "-",
                    "Drift": round(snap["drift_ratio"], 2)
                    if snap["drift_ratio"] is not None
                    else "-",
                }
            )
        return rows
