"""The trace event taxonomy and its validator.

Every event the engines emit is a flat JSON object.  The schema is
deliberately hand-rolled (no external dependency): a closed set of
event types, per-type required fields, and field-type checks.  The CI
trace-smoke job replays a workload and validates every emitted line
against this module; ``repro-sched trace --check`` does the same
locally.

Event taxonomy
--------------
==================== ======================================================
``job_submitted``     job entered the queue
``job_started``       job began executing (``wait_s``, ``depth``)
``job_backfilled``    the start jumped ``depth`` earlier arrivals (extra
                      event alongside ``job_started`` when ``depth > 0``)
``job_finished``      job released its nodes (``run_s``)
``reservation_placed``  a future start was promised — a backfill profile
                      reservation (``job_id``) or an advance reservation
                      (``res_id``)
``reservation_shifted`` a promised start moved (replanning, or an advance
                      reservation activating late)
``replan_triggered``  the cross-pass estimate cache flushed (the
                      estimator's history epoch advanced)
``cache_hit``         queued-job estimate served from the cache (detail
                      mode only)
``cache_miss``        queued-job estimate required a predictor call
                      (detail mode only)
``wait_predicted``    an observer predicted a job's wait at submission
                      (audited predictions add ``predictor``/``source``)
``runtime_predicted`` the estimator adapter predicted a job's run time
                      at submission (``predicted_run_s``, ``predictor``,
                      optional ``source`` — the template/category or
                      fallback that produced the number)
``prediction_resolved`` a recorded prediction met its outcome: ``kind``
                      (``run_time`` at finish, ``wait_time`` at start),
                      ``predicted_s``, ``actual_s``, signed ``error_s``,
                      ``predictor``
``span``              a timed block (``name``, ``duration_s``, optional
                      ``parent``)
==================== ======================================================

Decision provenance
-------------------
Provenance events explain *why* a queued job is not running: which
running job, reservation, or queue-ordering rule was the binding
constraint at each scheduling pass.  They are emitted change-only (a
new event appears only when the binding constraint moves) and only when
the instrumentation's ``provenance`` knob is on (implied by detail
mode), so plain tracing and the disabled path pay nothing.  Blocker
attribution is shared across all events via ``blocker_kind`` (one of
:data:`BLOCKER_KINDS`) plus the blocker's id in ``blocker_id`` (a job
id for ``running_job``/``queued_reservation``/``queue_order``, a
reservation id for ``active_reservation``/``advance_reservation``).

===================== =====================================================
``start_blocked``      a queued job cannot start now; the binding
                       constraint is ``blocker_kind``/``blocker_id``
                       (FCFS/LWF/EASY queue walks)
``reservation_binding`` a reserved job's promised start is anchored on the
                       release of ``blocker_kind``/``blocker_id``
                       (``start_s`` — backfill/EASY profile walks)
``backfill_hole_used`` an out-of-order start slotted into the hole ahead
                       of a blocked earlier arrival (``ahead_job_id``),
                       open from ``hole_start_s`` until the blocked job's
                       reserved start ``hole_end_s``
===================== =====================================================

Campaign events
---------------
The parallel table layer (:mod:`repro.core.parallel`) journals one
campaign per :func:`~repro.core.parallel.run_table_parallel` run through
the same kill-safe :class:`~repro.obs.trace.JsonlSink` machinery.  Every
campaign event carries a ``campaign_id``; cell events name their cell by
``cell_index`` (the plan position) plus the spec coordinates
(``workload``/``algorithm``/``predictor``).

===================== =====================================================
``campaign_started``   a plan began executing (``cells_total``,
                       ``max_workers``)
``cell_dispatched``    a cell was handed to a free worker (``cell_index``,
                       ``attempt``)
``cell_heartbeat``     periodic driver-side status (``cells_done``,
                       ``cells_running``)
``cell_finished``      a cell completed (``cell_index``, ``duration_s``,
                       optional worker resources: ``cpu_s``,
                       ``max_rss_kb``, ``pid``)
``cell_failed``        a cell exhausted its retry budget (``cell_index``,
                       ``kind`` in ``error``/``timeout``, ``error``,
                       ``attempts``)
``cell_retried``       a failed/timed-out attempt was requeued
                       (``cell_index``, ``attempt`` — the attempt that
                       failed)
``campaign_finished``  the plan drained (``cells_done``, ``cells_failed``,
                       ``duration_s``)
===================== =====================================================

A campaign killed mid-run leaves a journal of whole, schema-valid lines
ending before ``campaign_finished`` — replaying it recovers the exact
set of dispatched/completed cells (the checkpoint/resume substrate; see
:mod:`repro.obs.campaign`).
"""

from __future__ import annotations

import json
from typing import IO, Iterable

__all__ = [
    "EVENT_TYPES",
    "CAMPAIGN_EVENT_TYPES",
    "CELL_FAILURE_KINDS",
    "PREDICTION_RESOLVED_KINDS",
    "PROVENANCE_EVENT_TYPES",
    "BLOCKER_KINDS",
    "TraceSchemaError",
    "validate_event",
    "validate_events",
    "validate_jsonl",
    "read_jsonl",
    "summarize_events",
]

#: type -> fields that must be present (beyond ``type`` and ``wall_time``).
_REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "job_submitted": ("job_id", "sim_time"),
    "job_started": ("job_id", "sim_time", "wait_s"),
    "job_backfilled": ("job_id", "sim_time", "depth"),
    "job_finished": ("job_id", "sim_time"),
    "reservation_placed": ("sim_time", "start_s"),
    "reservation_shifted": ("sim_time", "start_s"),
    "replan_triggered": ("sim_time", "cause"),
    "cache_hit": ("job_id", "sim_time"),
    "cache_miss": ("job_id", "sim_time"),
    "wait_predicted": ("job_id", "sim_time", "predicted_wait_s"),
    "runtime_predicted": ("job_id", "sim_time", "predicted_run_s", "predictor"),
    "prediction_resolved": (
        "job_id", "sim_time", "kind", "predictor", "predicted_s", "actual_s",
    ),
    "span": ("name", "duration_s"),
    "start_blocked": ("job_id", "sim_time", "blocker_kind"),
    "reservation_binding": ("job_id", "sim_time", "start_s", "blocker_kind"),
    "backfill_hole_used": ("job_id", "sim_time", "hole_start_s"),
    "campaign_started": ("campaign_id", "cells_total", "max_workers"),
    "cell_dispatched": ("campaign_id", "cell_index", "attempt"),
    "cell_heartbeat": ("campaign_id", "cells_done", "cells_running"),
    "cell_finished": ("campaign_id", "cell_index", "duration_s"),
    "cell_failed": ("campaign_id", "cell_index", "kind", "error", "attempts"),
    "cell_retried": ("campaign_id", "cell_index", "attempt"),
    "campaign_finished": (
        "campaign_id", "cells_done", "cells_failed", "duration_s",
    ),
}

EVENT_TYPES = frozenset(_REQUIRED_FIELDS)

#: The campaign-level subset journaled by the parallel table layer.
CAMPAIGN_EVENT_TYPES = frozenset(
    t for t in EVENT_TYPES if t.startswith(("campaign_", "cell_"))
)

#: Values ``prediction_resolved.kind`` may take.
PREDICTION_RESOLVED_KINDS = frozenset({"run_time", "wait_time"})

#: Values ``cell_failed.kind`` may take (see repro.core.parallel.CellFailure).
CELL_FAILURE_KINDS = frozenset({"error", "timeout"})

#: The decision-provenance subset (emitted only under the ``provenance``
#: instrumentation knob; see the "Decision provenance" taxonomy above).
PROVENANCE_EVENT_TYPES = frozenset(
    {"start_blocked", "reservation_binding", "backfill_hole_used"}
)

#: Values ``blocker_kind`` may take on provenance events.
BLOCKER_KINDS = frozenset({
    "running_job",          # a running job's node release is the constraint
    "active_reservation",   # an advance reservation currently holding nodes
    "advance_reservation",  # a pending advance reservation's future carve
    "queued_reservation",   # a backfill reservation promised to another queued job
    "queue_order",          # the job fits, but policy order puts another first
    "unknown",              # the anchor matched no tracked release
})

#: Fields that, when present, must be numbers.
_NUMERIC_FIELDS = (
    "wall_time", "sim_time", "wait_s", "run_s", "duration_s",
    "start_s", "previous_start_s", "scheduled_start_s", "predicted_wait_s",
    "predicted_run_s", "predicted_s", "actual_s", "error_s",
    "cpu_s", "max_rss_kb", "hole_start_s", "hole_end_s",
)
#: Fields that, when present, must be ints.
_INT_FIELDS = ("job_id", "depth", "nodes", "res_id",
               "cell_index", "cells_total", "cells_done", "cells_running",
               "cells_failed", "max_workers", "attempt", "attempts", "pid",
               "blocker_id", "ahead_job_id", "free_nodes")
#: Fields that, when present, must be strings.
_STR_FIELDS = ("policy", "cause", "name", "parent", "error", "predictor",
               "source", "kind", "campaign_id", "workload", "algorithm",
               "blocker_kind")


class TraceSchemaError(ValueError):
    """An event violating the trace schema."""


def validate_event(event: object) -> None:
    """Raise :class:`TraceSchemaError` unless ``event`` fits the schema."""
    if not isinstance(event, dict):
        raise TraceSchemaError(f"event must be an object, got {type(event).__name__}")
    etype = event.get("type")
    if etype not in EVENT_TYPES:
        raise TraceSchemaError(f"unknown event type {etype!r}")
    if "wall_time" not in event:
        raise TraceSchemaError(f"{etype}: missing wall_time")
    for field in _REQUIRED_FIELDS[etype]:
        if field not in event:
            raise TraceSchemaError(f"{etype}: missing required field {field!r}")
    if etype.startswith("reservation_") and (
        "job_id" not in event and "res_id" not in event
    ):
        raise TraceSchemaError(f"{etype}: needs job_id or res_id")
    if etype == "prediction_resolved" and (
        event.get("kind") not in PREDICTION_RESOLVED_KINDS
    ):
        raise TraceSchemaError(
            f"{etype}: kind must be one of {sorted(PREDICTION_RESOLVED_KINDS)}, "
            f"got {event.get('kind')!r}"
        )
    if etype in ("start_blocked", "reservation_binding") and (
        event.get("blocker_kind") not in BLOCKER_KINDS
    ):
        raise TraceSchemaError(
            f"{etype}: blocker_kind must be one of {sorted(BLOCKER_KINDS)}, "
            f"got {event.get('blocker_kind')!r}"
        )
    if etype == "cell_failed" and event.get("kind") not in CELL_FAILURE_KINDS:
        raise TraceSchemaError(
            f"{etype}: kind must be one of {sorted(CELL_FAILURE_KINDS)}, "
            f"got {event.get('kind')!r}"
        )
    for field in _NUMERIC_FIELDS:
        value = event.get(field)
        if value is not None and not isinstance(value, (int, float)):
            raise TraceSchemaError(f"{etype}: field {field!r} must be a number")
    for field in _INT_FIELDS:
        value = event.get(field)
        if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
            raise TraceSchemaError(f"{etype}: field {field!r} must be an int")
    for field in _STR_FIELDS:
        value = event.get(field)
        if value is not None and not isinstance(value, str):
            raise TraceSchemaError(f"{etype}: field {field!r} must be a string")


def validate_events(events: Iterable[dict]) -> int:
    """Validate each event; return how many were checked."""
    n = 0
    for event in events:
        validate_event(event)
        n += 1
    return n


def read_jsonl(source: str | IO[str], *, drop_torn_tail: bool = False) -> list[dict]:
    """Parse a JSONL trace file (path or open file) into event dicts.

    ``drop_torn_tail=True`` recovers a file whose writer was killed
    mid-write: a *final* line that lacks its terminating newline and
    fails to parse is silently dropped (the one tear the kill-safe
    :class:`~repro.obs.trace.JsonlSink` cannot prevent — see its
    docstring).  Any other malformed line still raises
    :class:`TraceSchemaError`.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    lines = text.splitlines()
    newline_terminated = text.endswith("\n")
    events = []
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except ValueError as exc:
            if drop_torn_tail and i == len(lines) and not newline_terminated:
                break
            raise TraceSchemaError(f"line {i}: not valid JSON ({exc})") from None
    return events


def validate_jsonl(source: str | IO[str]) -> int:
    """Round-trip a JSONL trace and validate every event; return the count."""
    return validate_events(read_jsonl(source))


def summarize_events(events: Iterable[dict]) -> list[dict]:
    """Per-(policy, type) event counts — the ``trace --summary`` breakdown.

    Events with no ``policy`` field (pure spans, observer events emitted
    outside a policy context) group under ``"-"``.  Rows come back
    sorted by policy then type, ready for table formatting.
    """
    counts: dict[tuple[str, str], int] = {}
    for event in events:
        key = (event.get("policy") or "-", event.get("type", "?"))
        counts[key] = counts.get(key, 0) + 1
    return [
        {"Policy": policy, "Event": etype, "Count": count}
        for (policy, etype), count in sorted(counts.items())
    ]
