"""The bundle the engines are instrumented with.

:class:`Instrumentation` pairs a :class:`~repro.obs.metrics.MetricsRegistry`
with a :class:`~repro.obs.trace.Tracer` and fixes the cost knobs:

- ``detail`` — count estimate-cache *hits* and (when the sink is
  enabled) emit per-estimate ``cache_hit``/``cache_miss`` events.  Off
  by default even when tracing: hit counting sits on the single hottest
  call in the engine, and full traces of it are enormous.
- ``time_passes`` — time every scheduling pass into the
  ``sim.pass_duration_seconds`` histogram (and emit ``span`` events
  when the sink is enabled).  Defaults to on exactly when the tracer is
  enabled or ``detail`` was requested, so plain replays pay nothing.
- ``audit`` — a :class:`~repro.obs.audit.PredictionAudit` pairing every
  prediction with its outcome (``runtime_predicted`` /
  ``wait_predicted`` / ``prediction_resolved`` events plus a streaming
  :class:`~repro.obs.accuracy.AccuracyMonitor`).  ``None`` by default;
  pass ``audit=True`` to build one sharing the bundle's tracer.  The
  engines bind the audited code paths only when this is set, so the
  default replay executes zero audit instructions.
- ``provenance`` — emit decision-provenance events
  (``start_blocked``/``reservation_binding``/``backfill_hole_used``)
  from the policies' traced walks, attributing each queued job's delay
  to the running job or reservation that binds it.  Follows ``detail``
  when unset; requires an enabled tracer to have any effect (the
  engine's ``provenance_tracer`` gate stays ``None`` otherwise).
- ``timeseries`` — a :class:`~repro.obs.timeseries.StateSeries` sampler
  attached to the engine as an observer, recording queue depth, running
  jobs, utilization, fragmentation, and backlog over *simulated* time.
  ``None`` by default; pass ``timeseries=True`` to build one with
  default capacity, or an existing :class:`StateSeries` to share.

The default ``Instrumentation()`` — fresh registry, shared null tracer,
all knobs off — is what every :class:`~repro.scheduler.Simulator` gets
when the caller passes nothing; its overhead budget (<2% on the hot-path
bench) is what lets the counters stay on unconditionally.
"""

from __future__ import annotations

from repro.obs.audit import PredictionAudit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["Instrumentation"]


class Instrumentation:
    """Metrics registry + tracer + audit + cost knobs, handed to an engine."""

    __slots__ = ("registry", "tracer", "detail", "time_passes", "audit",
                 "provenance", "timeseries")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        *,
        detail: bool = False,
        time_passes: bool | None = None,
        audit: PredictionAudit | bool | None = None,
        provenance: bool | None = None,
        timeseries: "StateSeries | bool | None" = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.detail = bool(detail)
        self.time_passes = (
            (self.tracer.enabled or self.detail)
            if time_passes is None
            else bool(time_passes)
        )
        if audit is True:
            audit = PredictionAudit(tracer=self.tracer)
        elif audit is False:
            audit = None
        self.audit = audit
        self.provenance = self.detail if provenance is None else bool(provenance)
        if timeseries is True:
            from repro.obs.timeseries import StateSeries

            timeseries = StateSeries()
        elif timeseries is False:
            timeseries = None
        self.timeseries = timeseries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instrumentation(tracing={self.tracer.enabled}, "
            f"detail={self.detail}, time_passes={self.time_passes}, "
            f"audit={self.audit is not None}, provenance={self.provenance}, "
            f"timeseries={self.timeseries is not None})"
        )
