"""Observability: metrics, event tracing, profiling, prediction audit.

The subsystem is self-contained (stdlib only) and wired through the
replay engines, the predictor adapter, and the wait predictors.  See
the "Observability" section of ``docs/architecture.md`` for the event
taxonomy, metric names and overhead budget, and ``repro-sched trace`` /
``repro-sched report`` for the user-facing entry points.
"""

from repro.obs.accuracy import (
    DEFAULT_DRIFT_WINDOW,
    PREDICTION_KINDS,
    AccuracyMonitor,
    GroupStats,
)
from repro.obs.audit import PredictionAudit
from repro.obs.campaign import (
    CampaignCheckError,
    CampaignMonitor,
    CampaignTelemetry,
    CellResources,
    ProgressRenderer,
    capture_resources,
    check_campaign_journal,
    read_campaign_journal,
    resource_probe,
    summarize_campaign,
)
from repro.obs.explain import (
    WAIT_COMPONENTS,
    explain_job,
    format_explanation,
    summarize_wait_components,
)
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import (
    BACKFILL_DEPTH_BUCKETS,
    CELL_DURATION_BUCKETS,
    PASS_DURATION_BUCKETS,
    QUERY_LATENCY_BUCKETS,
    WAIT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_histogram,
    format_metrics,
    format_prometheus,
    histogram_quantile,
    merge_snapshots,
)
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    ReportSchemaError,
    build_report,
    format_report,
    report_to_json,
    validate_report,
)
from repro.obs.schema import (
    BLOCKER_KINDS,
    CAMPAIGN_EVENT_TYPES,
    CELL_FAILURE_KINDS,
    EVENT_TYPES,
    PREDICTION_RESOLVED_KINDS,
    PROVENANCE_EVENT_TYPES,
    TraceSchemaError,
    read_jsonl,
    summarize_events,
    validate_event,
    validate_events,
    validate_jsonl,
)
from repro.obs.timeseries import (
    TIMESERIES_METRICS,
    StateSeries,
    format_timeseries,
    sparkline,
)
from repro.obs.trace import (
    NULL_TRACER,
    EventSink,
    JsonlSink,
    ListSink,
    NullSink,
    Span,
    Tracer,
)

__all__ = [
    "Instrumentation",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_snapshots",
    "histogram_quantile",
    "format_histogram",
    "format_metrics",
    "format_prometheus",
    "WAIT_TIME_BUCKETS",
    "PASS_DURATION_BUCKETS",
    "BACKFILL_DEPTH_BUCKETS",
    "CELL_DURATION_BUCKETS",
    "QUERY_LATENCY_BUCKETS",
    "Tracer",
    "Span",
    "EventSink",
    "NullSink",
    "ListSink",
    "JsonlSink",
    "NULL_TRACER",
    "EVENT_TYPES",
    "CAMPAIGN_EVENT_TYPES",
    "CELL_FAILURE_KINDS",
    "PREDICTION_RESOLVED_KINDS",
    "PROVENANCE_EVENT_TYPES",
    "BLOCKER_KINDS",
    "TraceSchemaError",
    "validate_event",
    "validate_events",
    "validate_jsonl",
    "read_jsonl",
    "summarize_events",
    "PredictionAudit",
    "AccuracyMonitor",
    "GroupStats",
    "PREDICTION_KINDS",
    "DEFAULT_DRIFT_WINDOW",
    "REPORT_SCHEMA_VERSION",
    "ReportSchemaError",
    "build_report",
    "validate_report",
    "format_report",
    "report_to_json",
    "CampaignTelemetry",
    "CampaignMonitor",
    "ProgressRenderer",
    "CampaignCheckError",
    "CellResources",
    "capture_resources",
    "resource_probe",
    "read_campaign_journal",
    "check_campaign_journal",
    "summarize_campaign",
    "StateSeries",
    "TIMESERIES_METRICS",
    "sparkline",
    "format_timeseries",
    "WAIT_COMPONENTS",
    "explain_job",
    "summarize_wait_components",
    "format_explanation",
]
