"""Self-contained run reports from a recorded trace.

``repro-sched report`` (and :func:`build_report` behind it) turns the
JSONL event trace of an instrumented replay — plus, optionally, the
metrics-registry snapshot that replay produced — into one document
answering the three questions a run leaves behind:

1. **What did the schedule do?**  Per-policy job life-cycle counts and
   realized wait statistics, derived from the ``job_*`` events.
2. **How good were the predictions, and where were they bad?**  The
   :class:`~repro.obs.accuracy.AccuracyMonitor` statistics rebuilt from
   the ``prediction_resolved`` events: per-predictor MAE, bias,
   p50/p90/p99 absolute error, under/over split, tail ratio and drift
   signal, plus per-template drill-down and unresolved-prediction
   counts.
3. **What did observing cost?**  Event volume by type and, when a
   metrics snapshot is supplied, the scheduling-pass duration histogram
   summary.

Traces that carry campaign events (a ``--journal`` file from the
parallel table layer, or a trace the two were merged into) gain a
fourth, optional ``campaign`` section: the replayed
:func:`repro.obs.campaign.summarize_campaign` view — cells
done/failed/unfinished, throughput, utilization, duration quantiles,
and stragglers.

Traces recorded with decision provenance (``--detail``) gain an
optional ``explainability`` section: the per-policy aggregate wait
decomposition from :func:`repro.obs.explain.summarize_wait_components`
— where the waiting time went (blocked on running jobs, on
reservations, on queue discipline, or unattributed scheduler latency).
Omitted entirely when the trace carries no provenance events.

The report is a plain JSON-serializable dict (``--json``), validated by
:func:`validate_report` (the CI report-smoke job's gate), and rendered
as aligned ASCII tables by :func:`format_report`.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.obs.accuracy import DEFAULT_DRIFT_WINDOW, AccuracyMonitor
from repro.obs.metrics import histogram_quantile

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "ReportSchemaError",
    "build_report",
    "validate_report",
    "format_report",
    "report_to_json",
]

REPORT_SCHEMA_VERSION = 1


class ReportSchemaError(ValueError):
    """A run report violating the minimal report schema."""


def _quantile_of(values: list[float], q: float) -> float:
    """Exact quantile (linear interpolation) of a non-empty list."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 1:
        return ordered[0]
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _schedule_section(events: list[Mapping]) -> list[dict]:
    per_policy: dict[str, dict] = {}
    waits: dict[str, list[float]] = {}
    for event in events:
        etype = event.get("type")
        if not isinstance(etype, str) or not etype.startswith(
            ("job_", "reservation_")
        ):
            continue
        policy = event.get("policy") or "-"
        row = per_policy.get(policy)
        if row is None:
            row = per_policy[policy] = {
                "policy": policy,
                "jobs_submitted": 0,
                "jobs_started": 0,
                "jobs_finished": 0,
                "jobs_backfilled": 0,
                "reservations_placed": 0,
            }
        if etype == "job_submitted":
            row["jobs_submitted"] += 1
        elif etype == "job_started":
            row["jobs_started"] += 1
            wait = event.get("wait_s")
            if isinstance(wait, (int, float)):
                waits.setdefault(policy, []).append(float(wait))
        elif etype == "job_finished":
            row["jobs_finished"] += 1
        elif etype == "job_backfilled":
            row["jobs_backfilled"] += 1
        elif etype == "reservation_placed":
            row["reservations_placed"] += 1
    out = []
    for policy in sorted(per_policy):
        row = per_policy[policy]
        w = waits.get(policy, [])
        row["mean_wait_s"] = sum(w) / len(w) if w else 0.0
        row["p90_wait_s"] = _quantile_of(w, 0.90) if w else 0.0
        row["max_wait_s"] = max(w) if w else 0.0
        out.append(row)
    return out


def _accuracy_section(events: list[Mapping], window: int) -> dict:
    monitor = AccuracyMonitor.from_events(events, window=window)
    recorded = {"run_time": 0, "wait_time": 0}
    resolved = {"run_time": 0, "wait_time": 0}
    for event in events:
        etype = event.get("type")
        if etype == "runtime_predicted":
            recorded["run_time"] += 1
        elif etype == "wait_predicted":
            recorded["wait_time"] += 1
        elif etype == "prediction_resolved":
            kind = event.get("kind")
            if kind in resolved:
                resolved[kind] += 1
    section = monitor.snapshot()
    section["recorded"] = recorded
    section["resolved"] = resolved
    section["unresolved"] = {
        kind: max(recorded[kind] - resolved[kind], 0) for kind in recorded
    }
    return section


def _overhead_section(
    events: list[Mapping], metrics: Mapping | None
) -> dict:
    by_type: dict[str, int] = {}
    span_totals: dict[str, list] = {}
    for event in events:
        etype = event.get("type", "?")
        by_type[etype] = by_type.get(etype, 0) + 1
        if etype == "span":
            name = event.get("name", "?")
            entry = span_totals.get(name)
            if entry is None:
                entry = span_totals[name] = [0, 0.0]
            entry[0] += 1
            entry[1] += float(event.get("duration_s", 0.0))
    section: dict = {
        "events_total": len(events),
        "events_by_type": dict(sorted(by_type.items())),
        "spans": {
            name: {"count": count, "total_s": total}
            for name, (count, total) in sorted(span_totals.items())
        },
    }
    if metrics:
        hist = metrics.get("histograms", {}).get("sim.pass_duration_seconds")
        if hist and hist.get("count"):
            section["pass_duration"] = {
                "count": hist["count"],
                "mean_s": hist["sum"] / hist["count"],
                "p50_s": histogram_quantile(hist, 0.50),
                "p90_s": histogram_quantile(hist, 0.90),
                "p99_s": histogram_quantile(hist, 0.99),
            }
        counters = metrics.get("counters", {})
        picked = {
            name: counters[name]
            for name in (
                "sim.events_processed",
                "sim.schedule_passes",
                "sim.estimate_cache_hits",
                "sim.estimate_cache_misses",
                "sim.estimate_cache_flushes",
            )
            if name in counters
        }
        if picked:
            section["counters"] = picked
    return section


def _explainability_section(events: list[Mapping]) -> list[dict]:
    """Per-policy wait decomposition — ``[]`` when the trace has no
    provenance events (recorded without ``--detail``)."""
    # Lazy import for the same reason as the campaign section's.
    from repro.obs.explain import summarize_wait_components

    return summarize_wait_components(events)


def _campaign_section(events: list[Mapping]) -> dict | None:
    """The optional campaign section — ``None`` when the trace carries
    no campaign events (the common single-process case)."""
    # Lazy import mirrors format_report's: repro.obs.report loads with
    # only its own leaf dependencies.
    from repro.obs.campaign import summarize_campaign
    from repro.obs.schema import CAMPAIGN_EVENT_TYPES

    campaign_events = [
        e for e in events if e.get("type") in CAMPAIGN_EVENT_TYPES
    ]
    if not campaign_events:
        return None
    return summarize_campaign(campaign_events)


def build_report(
    events: Iterable[Mapping],
    metrics: Mapping | None = None,
    *,
    window: int = DEFAULT_DRIFT_WINDOW,
) -> dict:
    """Build a run report dict from trace events (+ optional metrics).

    ``events`` are parsed trace events (see
    :func:`repro.obs.schema.read_jsonl`); ``metrics`` is a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (or a
    :func:`~repro.obs.metrics.merge_snapshots` fold of several).
    """
    events = list(events)
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "schedule": _schedule_section(events),
        "accuracy": _accuracy_section(events, window),
        "overhead": _overhead_section(events, metrics),
    }
    campaign = _campaign_section(events)
    if campaign is not None:
        report["campaign"] = campaign
    explainability = _explainability_section(events)
    if explainability:
        report["explainability"] = explainability
    return report


# ----------------------------------------------------------------------
# validation — the CI report-smoke job's minimal schema
# ----------------------------------------------------------------------
_GROUP_REQUIRED = ("kind", "predictor", "n", "mae", "under_fraction",
                   "over_fraction")
_SCHEDULE_REQUIRED = ("policy", "jobs_started", "jobs_finished", "mean_wait_s")


def validate_report(report: object) -> None:
    """Raise :class:`ReportSchemaError` unless ``report`` fits the schema."""
    if not isinstance(report, dict):
        raise ReportSchemaError(
            f"report must be an object, got {type(report).__name__}"
        )
    if report.get("schema_version") != REPORT_SCHEMA_VERSION:
        raise ReportSchemaError(
            f"schema_version must be {REPORT_SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}"
        )
    for section in ("schedule", "accuracy", "overhead"):
        if section not in report:
            raise ReportSchemaError(f"missing section {section!r}")
    if not isinstance(report["schedule"], list):
        raise ReportSchemaError("schedule must be a list")
    for row in report["schedule"]:
        for field in _SCHEDULE_REQUIRED:
            if field not in row:
                raise ReportSchemaError(f"schedule row missing {field!r}")
    accuracy = report["accuracy"]
    if not isinstance(accuracy, dict) or "groups" not in accuracy:
        raise ReportSchemaError("accuracy must be an object with 'groups'")
    for group in accuracy["groups"]:
        for field in _GROUP_REQUIRED:
            if field not in group:
                raise ReportSchemaError(f"accuracy group missing {field!r}")
        if not isinstance(group["n"], int) or group["n"] < 0:
            raise ReportSchemaError("accuracy group 'n' must be a count")
    overhead = report["overhead"]
    if not isinstance(overhead, dict) or "events_total" not in overhead:
        raise ReportSchemaError("overhead must be an object with 'events_total'")
    campaign = report.get("campaign")
    if campaign is not None:
        if not isinstance(campaign, dict):
            raise ReportSchemaError("campaign must be an object")
        for field in ("cells_total", "cells_done", "cells_failed", "complete"):
            if field not in campaign:
                raise ReportSchemaError(f"campaign section missing {field!r}")
    explainability = report.get("explainability")
    if explainability is not None:
        if not isinstance(explainability, list):
            raise ReportSchemaError("explainability must be a list")
        from repro.obs.explain import WAIT_COMPONENTS

        for row in explainability:
            for field in ("policy", "jobs", "total_wait_s", *WAIT_COMPONENTS):
                if field not in row:
                    raise ReportSchemaError(
                        f"explainability row missing {field!r}"
                    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_minutes(seconds: float | None) -> object:
    return "-" if seconds is None else round(seconds / 60.0, 2)


def format_report(report: Mapping) -> str:
    """Render a report dict as aligned ASCII tables."""
    # Lazy import: repro.obs stays import-light / dependency-free at
    # module load; by render time the full package is available.
    from repro.core.tables import format_table

    parts: list[str] = []
    sched_rows = [
        {
            "Policy": row["policy"],
            "Started": row["jobs_started"],
            "Finished": row["jobs_finished"],
            "Backfilled": row.get("jobs_backfilled", 0),
            "Mean wait (min)": _fmt_minutes(row["mean_wait_s"]),
            "p90 wait (min)": _fmt_minutes(row.get("p90_wait_s")),
            "Max wait (min)": _fmt_minutes(row.get("max_wait_s")),
        }
        for row in report["schedule"]
    ]
    parts.append(format_table(sched_rows, title="Schedule outcomes"))

    accuracy = report["accuracy"]
    acc_rows = []
    for g in accuracy["groups"]:
        acc_rows.append(
            {
                "Kind": g["kind"],
                "Predictor": g["predictor"],
                "N": g["n"],
                "MAE (min)": _fmt_minutes(g["mae"]),
                "p50 (min)": _fmt_minutes(g.get("p50")),
                "p90 (min)": _fmt_minutes(g.get("p90")),
                "p99 (min)": _fmt_minutes(g.get("p99")),
                "Under %": round(100.0 * g["under_fraction"]),
                "Over %": round(100.0 * g["over_fraction"]),
                "Tail": "-" if g.get("tail_ratio") is None
                else round(g["tail_ratio"], 1),
                "Drift": "-" if g.get("drift_ratio") is None
                else round(g["drift_ratio"], 2),
            }
        )
    parts.append(
        format_table(
            acc_rows,
            title=(
                "Prediction accuracy (tail = p99/p50 abs error, drift = "
                f"rolling/overall MAE, window {accuracy.get('window', '?')})"
            ),
        )
    )
    unresolved = accuracy.get("unresolved", {})
    if any(unresolved.values()):
        parts.append(
            "unresolved predictions: "
            + ", ".join(f"{k}={v}" for k, v in sorted(unresolved.items()) if v)
        )

    key_rows = []
    for g in accuracy["groups"]:
        for key, stats in list(g.get("keys", {}).items()):
            key_rows.append(
                {
                    "Kind": g["kind"],
                    "Predictor": g["predictor"],
                    "Source": key,
                    "N": stats["n"],
                    "MAE (min)": _fmt_minutes(stats["mae"]),
                    "Under": stats.get("under", 0),
                    "Over": stats.get("over", 0),
                }
            )
    if key_rows:
        key_rows.sort(key=lambda r: (r["Kind"], r["Predictor"], -r["N"]))
        parts.append(
            format_table(key_rows[:20], title="Per-template/source drill-down")
        )

    overhead = report["overhead"]
    ev_rows = [
        {"Event": etype, "Count": count}
        for etype, count in overhead["events_by_type"].items()
    ]
    parts.append(
        format_table(
            ev_rows, title=f"Trace volume ({overhead['events_total']} events)"
        )
    )
    pd = overhead.get("pass_duration")
    if pd:
        parts.append(
            f"scheduling passes: {pd['count']}  mean={pd['mean_s'] * 1e6:.1f}us  "
            f"p50={pd['p50_s'] * 1e6:.1f}us  p90={pd['p90_s'] * 1e6:.1f}us  "
            f"p99={pd['p99_s'] * 1e6:.1f}us"
        )

    explainability = report.get("explainability")
    if explainability:
        exp_rows = []
        for row in explainability:
            total = row["total_wait_s"]

            def pct(value: float, _total: float = total) -> object:
                return round(100.0 * value / _total, 1) if _total else 0.0

            exp_rows.append(
                {
                    "Policy": row["policy"],
                    "Jobs": row["jobs"],
                    "Total wait (min)": _fmt_minutes(total),
                    "Running %": pct(row["blocked_on_running_s"]),
                    "Reservations %": pct(row["blocked_on_reservations_s"]),
                    "Queue %": pct(row["blocked_on_queue_s"]),
                    "Latency %": pct(row["scheduler_latency_s"]),
                }
            )
        parts.append(
            format_table(
                exp_rows,
                title=(
                    "Explainability: where the waiting went "
                    "(components sum to the realized wait)"
                ),
            )
        )

    campaign = report.get("campaign")
    if campaign:
        lines = [
            "Campaign"
            + ("" if campaign["complete"] else " [INCOMPLETE]")
            + f": {campaign['cells_done']}/{campaign['cells_total']} cells "
            f"done, {campaign['cells_failed']} failed, "
            f"{campaign['cells_running']} unfinished  "
            f"(workers {campaign['max_workers']}, "
            f"{campaign['throughput_cells_per_s']:.2f} cells/s, "
            f"utilization {100 * campaign['utilization']:.0f}%)"
        ]
        if campaign.get("duration_p50_s") is not None:
            lines.append(
                f"  cell duration p50={campaign['duration_p50_s']:.3g}s "
                f"p90={campaign['duration_p90_s']:.3g}s "
                f"p99={campaign['duration_p99_s']:.3g}s"
            )
        for s in campaign.get("stragglers", []):
            state = "running" if s["running"] else "finished"
            lines.append(
                f"  straggler: cell {s['cell_index']} ({s['cell']}) "
                f"{s['duration_s']:.3g}s, {state}"
            )
        parts.append("\n".join(lines))
    return "\n\n".join(parts)


def report_to_json(report: Mapping, *, indent: int | None = 2) -> str:
    return json.dumps(report, indent=indent, sort_keys=True)
