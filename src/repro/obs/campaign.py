"""Campaign-level telemetry for the parallel table layer.

A *campaign* is one :func:`~repro.core.parallel.run_table_parallel`
execution of an :class:`~repro.core.parallel.ExperimentPlan`.  This
module turns that previously-silent fan-out into an observable,
replayable run:

- :class:`CampaignTelemetry` — the driver-side emitter.  It journals
  the campaign event schema (see :mod:`repro.obs.schema`) through any
  :class:`~repro.obs.trace.EventSink`; with a
  :class:`~repro.obs.trace.JsonlSink` flushing per event, a campaign
  killed mid-run leaves a journal of whole, schema-valid lines — the
  checkpoint/resume substrate the sharded experiment fabric needs.
- :class:`CampaignMonitor` — a streaming consumer of that event feed
  (live, or offline via :meth:`CampaignMonitor.from_events`).  It
  tracks cells/sec throughput, ETA, per-worker utilization, tail-aware
  cell-duration quantiles (p50/p90/p99 over the shared
  :data:`~repro.obs.metrics.CELL_DURATION_BUCKETS` histogram), and
  straggler detection (cells exceeding ``straggler_factor`` × the
  running median).
- :class:`ProgressRenderer` — a rate-limited single-line stderr status
  display fed by the monitor (the table CLIs' ``--progress`` flag).
- :func:`capture_resources` — worker-process resource capture (wall
  time, CPU time via ``os.times``, peak RSS via
  ``resource.getrusage``) shipped back on each
  :class:`~repro.core.parallel.CellResult`.
- :func:`read_campaign_journal` / :func:`check_campaign_journal` /
  :func:`summarize_campaign` — offline journal analysis behind the
  ``repro-sched campaign`` subcommand.

The whole stack follows the audit layer's zero-cost-when-disabled
discipline: :func:`run_table_parallel` takes ``telemetry=None`` by
default and guards every emission behind one ``is not None`` check, the
serial table drivers never construct a telemetry object at all, and
cell *results* are computed identically with telemetry on or off (the
resource probe wraps the cell function, it never reaches into it).
"""

from __future__ import annotations

import os
import sys
import time
from bisect import insort
from dataclasses import dataclass
from typing import IO, Iterable, Mapping

from repro.obs.metrics import (
    CELL_DURATION_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
)
from repro.obs.schema import (
    CAMPAIGN_EVENT_TYPES,
    TraceSchemaError,
    read_jsonl,
    validate_event,
)
from repro.obs.trace import EventSink, JsonlSink, NullSink

__all__ = [
    "DEFAULT_STRAGGLER_FACTOR",
    "DEFAULT_HEARTBEAT_S",
    "CellResources",
    "capture_resources",
    "resource_probe",
    "CampaignTelemetry",
    "CampaignMonitor",
    "ProgressRenderer",
    "CampaignCheckError",
    "read_campaign_journal",
    "check_campaign_journal",
    "summarize_campaign",
]

#: A cell is a straggler once it exceeds this multiple of the running
#: median cell duration (TARE's tail-aware framing: the campaign's wall
#: clock is set by its p99, not its mean).
DEFAULT_STRAGGLER_FACTOR = 3.0

#: Minimum finished-cell sample before straggler calls are made — a
#: median of two durations flags noise, not tails.
MIN_STRAGGLER_SAMPLES = 5

#: Driver-side heartbeat / progress refresh period (seconds).
DEFAULT_HEARTBEAT_S = 0.5


# ----------------------------------------------------------------------
# worker-side resource capture
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellResources:
    """What one cell cost the worker process that ran it.

    ``max_rss_kb`` is the worker's *peak* RSS (``ru_maxrss``) at cell
    completion — a high-water mark over the process lifetime, so for a
    reused pool worker it bounds, rather than isolates, the cell's own
    footprint.  On Linux ``ru_maxrss`` is kilobytes already; on macOS
    the kernel reports bytes and the probe converts.
    """

    wall_s: float
    cpu_s: float
    max_rss_kb: int
    pid: int

    def as_fields(self) -> dict:
        """The event-field form shipped on ``cell_finished``."""
        return {
            "cpu_s": self.cpu_s,
            "max_rss_kb": self.max_rss_kb,
            "pid": self.pid,
        }


def resource_probe() -> tuple[float, float]:
    """Start a resource measurement: (monotonic wall, CPU seconds)."""
    t = os.times()
    return time.perf_counter(), t.user + t.system


def capture_resources(probe: tuple[float, float]) -> CellResources:
    """Close a :func:`resource_probe` into a :class:`CellResources`."""
    t = os.times()
    wall_s = time.perf_counter() - probe[0]
    cpu_s = (t.user + t.system) - probe[1]
    max_rss_kb = 0
    try:
        import resource as _resource

        max_rss_kb = int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
        if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
            max_rss_kb //= 1024
    except (ImportError, OSError):  # pragma: no cover - non-POSIX fallback
        pass
    return CellResources(
        wall_s=wall_s, cpu_s=cpu_s, max_rss_kb=max_rss_kb, pid=os.getpid()
    )


# ----------------------------------------------------------------------
# streaming monitor
# ----------------------------------------------------------------------
class CampaignMonitor:
    """Streaming statistics over a campaign event feed.

    Feed events in emission order — live from
    :class:`CampaignTelemetry`, or offline from a journal via
    :meth:`from_events`.  All derived quantities (throughput, ETA,
    utilization, quantiles, stragglers) are computed from event
    ``wall_time`` stamps, so an offline replay reports exactly what the
    live monitor saw.
    """

    def __init__(
        self,
        *,
        straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
    ) -> None:
        if straggler_factor <= 1.0:
            raise ValueError(
                f"straggler_factor must be > 1, got {straggler_factor}"
            )
        self.straggler_factor = straggler_factor
        self.registry = MetricsRegistry()
        self._duration_hist = self.registry.histogram(
            "campaign.cell_duration_seconds", CELL_DURATION_BUCKETS
        )
        self._cpu_hist = self.registry.histogram(
            "campaign.cell_cpu_seconds", CELL_DURATION_BUCKETS
        )
        self._dispatched = self.registry.counter("campaign.cells_dispatched")
        self._finished = self.registry.counter("campaign.cells_finished")
        self._failed = self.registry.counter("campaign.cells_failed")
        self._retried = self.registry.counter("campaign.cells_retried")
        self._rss_gauge = self.registry.gauge("campaign.max_rss_kb_peak")

        self.campaign_id: str | None = None
        self.cells_total = 0
        self.max_workers = 0
        self.started_wall: float | None = None
        self.finished_wall: float | None = None
        self.last_wall: float | None = None
        #: cell_index -> dispatch wall_time of the attempt in flight.
        self.running: dict[int, float] = {}
        #: cell_index -> wall duration of the successful attempt.
        self.completed: dict[int, float] = {}
        #: cell_index -> terminal failure description.
        self.failed: dict[int, str] = {}
        #: cell_index -> spec coordinates (from cell_dispatched events).
        self.coords: dict[int, str] = {}
        #: worker pid -> busy seconds (cell wall time attributed to it).
        self.worker_busy: dict[int, float] = {}
        self._sorted_durations: list[float] = []

    # -- feeding -------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Iterable[Mapping],
        *,
        straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
    ) -> "CampaignMonitor":
        """Rebuild a monitor offline from journaled events."""
        monitor = cls(straggler_factor=straggler_factor)
        for event in events:
            monitor.observe(event)
        return monitor

    def observe(self, event: Mapping) -> None:
        """Consume one campaign event; non-campaign events are ignored."""
        etype = event.get("type")
        if etype not in CAMPAIGN_EVENT_TYPES:
            return
        wall = float(event.get("wall_time", 0.0))
        self.last_wall = wall
        if etype == "campaign_started":
            self.campaign_id = event.get("campaign_id")
            self.cells_total = int(event.get("cells_total", 0))
            self.max_workers = int(event.get("max_workers", 0))
            self.started_wall = wall
        elif etype == "cell_dispatched":
            index = int(event["cell_index"])
            self.running[index] = wall
            self._dispatched.value += 1
            coords = _coords_of(event)
            if coords:
                self.coords[index] = coords
        elif etype == "cell_finished":
            index = int(event["cell_index"])
            duration = float(event.get("duration_s", 0.0))
            self.running.pop(index, None)
            self.completed[index] = duration
            self.failed.pop(index, None)
            self._finished.value += 1
            self._duration_hist.observe(duration)
            insort(self._sorted_durations, duration)
            cpu = event.get("cpu_s")
            if cpu is not None:
                self._cpu_hist.observe(float(cpu))
            rss = event.get("max_rss_kb")
            if rss is not None and rss > self._rss_gauge.value:
                self._rss_gauge.value = float(rss)
            pid = int(event.get("pid", 0))
            self.worker_busy[pid] = self.worker_busy.get(pid, 0.0) + duration
        elif etype == "cell_failed":
            index = int(event["cell_index"])
            self.running.pop(index, None)
            self.failed[index] = str(event.get("error", ""))
            self._failed.value += 1
        elif etype == "cell_retried":
            self.running.pop(int(event["cell_index"]), None)
            self._retried.value += 1
        elif etype == "campaign_finished":
            self.finished_wall = wall

    # -- derived quantities --------------------------------------------
    @property
    def cells_done(self) -> int:
        return len(self.completed)

    @property
    def cells_failed(self) -> int:
        return len(self.failed)

    @property
    def cells_remaining(self) -> int:
        return max(self.cells_total - self.cells_done - self.cells_failed, 0)

    def elapsed_s(self) -> float:
        """Wall seconds from campaign start to the latest event seen."""
        if self.started_wall is None or self.last_wall is None:
            return 0.0
        end = self.finished_wall if self.finished_wall is not None else self.last_wall
        return max(end - self.started_wall, 0.0)

    def throughput_cells_per_s(self) -> float:
        """Completed cells per elapsed wall second (0 until measurable)."""
        elapsed = self.elapsed_s()
        if elapsed <= 0.0 or not self.completed:
            return 0.0
        return self.cells_done / elapsed

    def eta_s(self) -> float | None:
        """Projected seconds to drain the plan at current throughput."""
        rate = self.throughput_cells_per_s()
        if rate <= 0.0:
            return None
        return self.cells_remaining / rate

    def utilization(self) -> float:
        """Fraction of the pool's capacity spent inside cells.

        ``sum(cell wall time) / (elapsed * max_workers)`` — below 1.0
        means workers sat idle (ramp-up, stragglers gating the tail, or
        dispatch overhead); it is the fleet-level analogue of the
        simulator's node utilization.
        """
        elapsed = self.elapsed_s()
        if elapsed <= 0.0 or self.max_workers <= 0:
            return 0.0
        busy = sum(self.worker_busy.values())
        return min(busy / (elapsed * self.max_workers), 1.0)

    def duration_quantile(self, q: float) -> float | None:
        """Cell-duration quantile from the shared histogram buckets."""
        return histogram_quantile(
            {
                "bounds": list(self._duration_hist.bounds),
                "counts": list(self._duration_hist.counts),
                "sum": self._duration_hist.sum,
                "count": self._duration_hist.count,
            },
            q,
        )

    def median_duration(self) -> float | None:
        """Exact running median of finished-cell durations."""
        n = len(self._sorted_durations)
        if n == 0:
            return None
        mid = n // 2
        if n % 2:
            return self._sorted_durations[mid]
        return 0.5 * (self._sorted_durations[mid - 1] + self._sorted_durations[mid])

    def stragglers(self, now: float | None = None) -> list[dict]:
        """Cells exceeding ``straggler_factor`` × the running median.

        Covers both finished cells whose duration blew the threshold and
        still-running cells whose elapsed time already has (``now``
        defaults to the latest event wall time, so offline replays are
        deterministic).  Empty until ``MIN_STRAGGLER_SAMPLES`` cells
        have finished — below that the median is noise.
        """
        median = self.median_duration()
        if median is None or len(self.completed) < MIN_STRAGGLER_SAMPLES:
            return []
        threshold = self.straggler_factor * median
        if now is None:
            now = self.last_wall if self.last_wall is not None else 0.0
        out = []
        for index, duration in sorted(self.completed.items()):
            if duration > threshold:
                out.append(
                    {
                        "cell_index": index,
                        "cell": self.coords.get(index, str(index)),
                        "duration_s": duration,
                        "running": False,
                    }
                )
        for index, dispatched in sorted(self.running.items()):
            elapsed = now - dispatched
            if elapsed > threshold:
                out.append(
                    {
                        "cell_index": index,
                        "cell": self.coords.get(index, str(index)),
                        "duration_s": elapsed,
                        "running": True,
                    }
                )
        return out

    def snapshot(self) -> dict:
        """One JSON-serializable view of everything the monitor derives."""
        return {
            "campaign_id": self.campaign_id,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cells_failed": self.cells_failed,
            "cells_running": len(self.running),
            "cells_retried": self._retried.value,
            "max_workers": self.max_workers,
            "complete": self.finished_wall is not None,
            "elapsed_s": self.elapsed_s(),
            "throughput_cells_per_s": self.throughput_cells_per_s(),
            "eta_s": self.eta_s(),
            "utilization": self.utilization(),
            "duration_p50_s": self.duration_quantile(0.50),
            "duration_p90_s": self.duration_quantile(0.90),
            "duration_p99_s": self.duration_quantile(0.99),
            "median_duration_s": self.median_duration(),
            "stragglers": self.stragglers(),
            "workers": {
                str(pid): round(busy, 6)
                for pid, busy in sorted(self.worker_busy.items())
            },
            "max_rss_kb_peak": self._rss_gauge.value,
            "metrics": self.registry.snapshot(),
        }


def _coords_of(event: Mapping) -> str:
    parts = [
        str(event[f])
        for f in ("workload", "algorithm", "predictor")
        if event.get(f)
    ]
    return "/".join(parts)


# ----------------------------------------------------------------------
# live progress rendering
# ----------------------------------------------------------------------
class ProgressRenderer:
    """Single-line, rate-limited campaign status display.

    Writes carriage-return-refreshed lines to ``stream`` (default
    stderr).  ``min_interval_s`` bounds the redraw rate so rendering
    never becomes a measurable cost; :meth:`finish` draws one final
    state and terminates the line.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        min_interval_s: float = 0.1,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._last_render = 0.0
        self._last_width = 0

    def line_for(self, monitor: CampaignMonitor) -> str:
        """The status line for the monitor's current state."""
        parts = [
            f"campaign {monitor.cells_done}/{monitor.cells_total} cells",
            f"{len(monitor.running)} running",
        ]
        if monitor.cells_failed:
            parts.append(f"{monitor.cells_failed} FAILED")
        rate = monitor.throughput_cells_per_s()
        if rate > 0:
            parts.append(f"{rate:.2f} cells/s")
        eta = monitor.eta_s()
        if eta is not None and monitor.cells_remaining:
            parts.append(f"eta {eta:.0f}s")
        p50 = monitor.duration_quantile(0.50)
        p99 = monitor.duration_quantile(0.99)
        if p50 is not None and p99 is not None:
            parts.append(f"p50 {p50:.2g}s p99 {p99:.2g}s")
        stragglers = monitor.stragglers()
        if stragglers:
            parts.append(f"{len(stragglers)} straggler(s)")
        return "  ".join(parts)

    def update(self, monitor: CampaignMonitor, *, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        line = self.line_for(monitor)
        pad = " " * max(self._last_width - len(line), 0)
        self._last_width = len(line)
        self.stream.write(f"\r{line}{pad}")
        self.stream.flush()

    def finish(self, monitor: CampaignMonitor) -> None:
        self.update(monitor, force=True)
        self.stream.write("\n")
        self.stream.flush()


# ----------------------------------------------------------------------
# driver-side emitter
# ----------------------------------------------------------------------
class CampaignTelemetry:
    """Journals campaign events and feeds a live monitor + progress line.

    ``sink`` accepts a path (opened as a per-event-flushed
    :class:`~repro.obs.trace.JsonlSink`, so every journaled event is
    durable the moment it is emitted — kill-safe whole lines), an
    existing sink, or ``None`` (monitor/progress only, nothing
    journaled).  Usable as a context manager; closing renders the final
    progress state and closes an owned sink.
    """

    def __init__(
        self,
        sink: EventSink | str | None = None,
        *,
        monitor: CampaignMonitor | None = None,
        progress: ProgressRenderer | None = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        campaign_id: str | None = None,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        if isinstance(sink, (str, os.PathLike)):
            sink = JsonlSink(sink, buffer_lines=1)
        self.sink: EventSink = sink if sink is not None else NullSink()
        self.monitor = monitor if monitor is not None else CampaignMonitor()
        self.progress = progress
        self.heartbeat_s = heartbeat_s
        if campaign_id is None:
            campaign_id = f"campaign-{os.getpid()}-{time.time_ns():x}"
        self.campaign_id = campaign_id
        self._last_heartbeat = 0.0
        self._started_monotonic: float | None = None

    # -- plumbing ------------------------------------------------------
    def _emit(self, etype: str, **fields) -> None:
        event = {
            "type": etype,
            "wall_time": time.time(),
            "campaign_id": self.campaign_id,
            **fields,
        }
        self.monitor.observe(event)
        if self.sink.enabled:
            self.sink.emit(event)
        if self.progress is not None:
            self.progress.update(
                self.monitor, force=(etype == "campaign_finished")
            )

    # -- the event vocabulary (one method per type) --------------------
    def campaign_started(self, *, cells_total: int, max_workers: int) -> None:
        self._started_monotonic = time.monotonic()
        self._emit(
            "campaign_started",
            cells_total=cells_total,
            max_workers=max_workers,
        )

    def cell_dispatched(self, index: int, *, attempt: int, **coords) -> None:
        self._emit("cell_dispatched", cell_index=index, attempt=attempt, **coords)

    def cell_finished(
        self,
        index: int,
        *,
        duration_s: float,
        attempt: int,
        resources: CellResources | None = None,
        **coords,
    ) -> None:
        fields = resources.as_fields() if resources is not None else {}
        self._emit(
            "cell_finished",
            cell_index=index,
            duration_s=duration_s,
            attempt=attempt,
            **fields,
            **coords,
        )

    def cell_retried(self, index: int, *, attempt: int, error: str = "") -> None:
        self._emit("cell_retried", cell_index=index, attempt=attempt, error=error)

    def cell_failed(
        self, index: int, *, kind: str, error: str, attempts: int, **coords
    ) -> None:
        self._emit(
            "cell_failed",
            cell_index=index,
            kind=kind,
            error=error,
            attempts=attempts,
            **coords,
        )

    def campaign_finished(self) -> None:
        duration = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        self._emit(
            "campaign_finished",
            cells_done=self.monitor.cells_done,
            cells_failed=self.monitor.cells_failed,
            duration_s=duration,
        )

    def heartbeat(self, *, running: int) -> None:
        """Rate-limited periodic status (journal + progress refresh)."""
        now = time.monotonic()
        if now - self._last_heartbeat < self.heartbeat_s:
            return
        self._last_heartbeat = now
        self._emit(
            "cell_heartbeat",
            cells_done=self.monitor.cells_done,
            cells_running=running,
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self.progress is not None:
            self.progress.finish(self.monitor)
        self.sink.close()

    def __enter__(self) -> "CampaignTelemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# offline journal analysis (the ``repro-sched campaign`` subcommand)
# ----------------------------------------------------------------------
class CampaignCheckError(ValueError):
    """A campaign journal failing validation or consistency checks."""


def read_campaign_journal(
    source: str | IO[str], *, strict: bool = False
) -> list[dict]:
    """Load a campaign journal's events.

    Lenient by default (``strict=False``): a torn final line — the one
    artifact a SIGKILL can leave (see
    :class:`~repro.obs.trace.JsonlSink`) — is dropped, so a killed
    campaign replays to exactly its whole-line records.  ``strict=True``
    raises :class:`~repro.obs.schema.TraceSchemaError` on any malformed
    line instead (the ``--check`` gate).
    """
    return read_jsonl(source, drop_torn_tail=not strict)


def check_campaign_journal(events: Iterable[Mapping]) -> dict:
    """Validate a journal's events and cross-check their consistency.

    Raises :class:`CampaignCheckError` on the first violation; returns
    summary counts (``events``, ``cells_total``, ``cells_done``,
    ``cells_failed``) when the journal is coherent.  Checks, in order:
    every event fits the trace schema and is campaign-level; the journal
    opens with ``campaign_started``; cell indexes stay inside the plan;
    finished/failed cells were dispatched first; and the closing
    ``campaign_finished`` exists and agrees with the per-cell tallies
    (a missing one means the campaign died mid-run — exactly what the
    resume substrate must detect).
    """
    events = list(events)
    if not events:
        raise CampaignCheckError("journal is empty")
    for i, event in enumerate(events, start=1):
        try:
            validate_event(event)
        except TraceSchemaError as exc:
            raise CampaignCheckError(f"event {i}: {exc}") from None
        if event.get("type") not in CAMPAIGN_EVENT_TYPES:
            raise CampaignCheckError(
                f"event {i}: {event.get('type')!r} is not a campaign event"
            )
    first = events[0]
    if first["type"] != "campaign_started":
        raise CampaignCheckError(
            f"journal must open with campaign_started, got {first['type']!r}"
        )
    cells_total = int(first["cells_total"])
    campaign_id = first["campaign_id"]
    dispatched: set[int] = set()
    finished: set[int] = set()
    failed: set[int] = set()
    closing: Mapping | None = None
    for i, event in enumerate(events, start=1):
        if event["campaign_id"] != campaign_id:
            raise CampaignCheckError(
                f"event {i}: campaign_id {event['campaign_id']!r} does not "
                f"match the journal's {campaign_id!r}"
            )
        etype = event["type"]
        index = event.get("cell_index")
        if index is not None and not 0 <= index < cells_total:
            raise CampaignCheckError(
                f"event {i}: cell_index {index} outside plan of {cells_total}"
            )
        if etype == "cell_dispatched":
            dispatched.add(index)
        elif etype in ("cell_finished", "cell_failed", "cell_retried"):
            if index not in dispatched:
                raise CampaignCheckError(
                    f"event {i}: {etype} for cell {index} that was never "
                    "dispatched"
                )
            if etype == "cell_finished":
                finished.add(index)
            elif etype == "cell_failed":
                failed.add(index)
        elif etype == "campaign_finished":
            closing = event
    if closing is None:
        raise CampaignCheckError(
            f"journal is incomplete: no campaign_finished "
            f"({len(finished)}/{cells_total} cells completed — "
            "the campaign was killed or is still running)"
        )
    if closing["cells_done"] != len(finished) or (
        closing["cells_failed"] != len(failed)
    ):
        raise CampaignCheckError(
            f"campaign_finished tallies ({closing['cells_done']} done, "
            f"{closing['cells_failed']} failed) do not match the journal "
            f"({len(finished)} done, {len(failed)} failed)"
        )
    return {
        "events": len(events),
        "cells_total": cells_total,
        "cells_done": len(finished),
        "cells_failed": len(failed),
    }


def summarize_campaign(
    events: Iterable[Mapping],
    *,
    straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
) -> dict:
    """Offline campaign summary: the monitor's snapshot plus the cell
    manifest (completed / still-dispatched / failed indexes with their
    spec coordinates) a resuming driver needs."""
    monitor = CampaignMonitor.from_events(
        events, straggler_factor=straggler_factor
    )
    summary = monitor.snapshot()
    summary["cells"] = {
        "completed": [
            {
                "cell_index": index,
                "cell": monitor.coords.get(index, str(index)),
                "duration_s": duration,
            }
            for index, duration in sorted(monitor.completed.items())
        ],
        "dispatched_unfinished": [
            {"cell_index": index, "cell": monitor.coords.get(index, str(index))}
            for index in sorted(monitor.running)
        ],
        "failed": [
            {
                "cell_index": index,
                "cell": monitor.coords.get(index, str(index)),
                "error": error,
            }
            for index, error in sorted(monitor.failed.items())
        ],
    }
    return summary
