"""Offline per-job wait explanation.

Reconstructs, from any recorded trace, *why* a job waited: the timeline
of scheduler decisions that concerned it (submission, blocked-by chain,
reservation moves, backfill decisions, start, finish, predictions) and
a decomposition of its realized wait into attributable components.

Decomposition
-------------
The wait interval ``[submit, start)`` is partitioned at the instants the
job's provenance events (``start_blocked`` / ``reservation_binding``)
were emitted.  Each segment is bucketed by the blocker category its
opening event reported — the binding constraint held until the next
change-only event replaced it:

- ``blocked_on_running_s`` — bound by a running job's node release
  (``blocker_kind == "running_job"``);
- ``blocked_on_reservations_s`` — bound by an advance reservation,
  active or pending (``active_reservation`` / ``advance_reservation``);
- ``blocked_on_queue_s`` — bound by queue discipline: another queued
  job's protective reservation or an explicit head-of-line rule
  (``queued_reservation`` / ``queue_order``);
- ``scheduler_latency_s`` — everything unattributed: the gap between
  submission and the first attributing pass, ``unknown`` blockers, and
  the float residual of the partition.

**Invariant**: the four components sum to the realized wait — the same
number ``job_started.wait_s`` carries and ``PredictionAudit`` resolves
``wait_time`` predictions against.  The residual fold into
``scheduler_latency_s`` makes the sum exact up to one float rounding;
:func:`explain_job` asserts agreement to well under a second.

Requires a trace recorded with provenance (``repro-sched trace
--detail``) for a meaningful split; without provenance events the whole
wait lands in ``scheduler_latency_s``.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "WAIT_COMPONENTS",
    "explain_job",
    "summarize_wait_components",
    "format_explanation",
]

#: The wait-decomposition component keys, in render order.
WAIT_COMPONENTS = (
    "blocked_on_running_s",
    "blocked_on_reservations_s",
    "blocked_on_queue_s",
    "scheduler_latency_s",
)

#: blocker_kind -> component.
_KIND_COMPONENT = {
    "running_job": "blocked_on_running_s",
    "active_reservation": "blocked_on_reservations_s",
    "advance_reservation": "blocked_on_reservations_s",
    "queued_reservation": "blocked_on_queue_s",
    "queue_order": "blocked_on_queue_s",
    "unknown": "scheduler_latency_s",
}

#: Event types that belong on a job's timeline (beyond life-cycle).
_TIMELINE_TYPES = frozenset({
    "job_submitted", "job_started", "job_backfilled", "job_finished",
    "start_blocked", "reservation_binding", "backfill_hole_used",
    "reservation_placed", "reservation_shifted",
    "wait_predicted", "runtime_predicted", "prediction_resolved",
})

#: The provenance types whose instants partition the wait interval.
_ATTRIBUTING_TYPES = ("start_blocked", "reservation_binding")


def _job_policy(events: list[dict], job_id: int, policy: str | None) -> str | None:
    """The policy whose replay of ``job_id`` to explain.

    Traces recorded by ``repro-sched trace`` interleave one replay per
    algorithm; a job id appears once per policy, so explaining it needs
    a single policy chosen.  Auto-selected when unambiguous.
    """
    policies = sorted({
        e.get("policy") or "-"
        for e in events
        if e.get("job_id") == job_id and e.get("type") == "job_submitted"
    })
    if policy is not None:
        if policies and policy not in policies:
            raise ValueError(
                f"job {job_id} has no events under policy {policy!r}; "
                f"it appears under {policies}"
            )
        return policy
    if len(policies) > 1:
        raise ValueError(
            f"job {job_id} appears under multiple policies {policies}; "
            "pass policy=... to select one"
        )
    return policies[0] if policies else None


def explain_job(
    events: Iterable[dict], job_id: int, *, policy: str | None = None
) -> dict:
    """Explain one job's wait from recorded trace events.

    Returns a dict with the job's life-cycle instants, its full decision
    timeline, the wait decomposition (see module docstring), and any
    recorded wait predictions paired with their resolution.  Raises
    :class:`ValueError` when the job is absent or the policy ambiguous.
    """
    events = list(events)
    policy = _job_policy(events, job_id, policy)
    timeline = [
        e for e in events
        if e.get("type") in _TIMELINE_TYPES
        and (e.get("policy") or "-") == (policy or "-")
        and (e.get("job_id") == job_id or e.get("ahead_job_id") == job_id)
    ]
    if not timeline:
        raise ValueError(
            f"no events for job {job_id}"
            + (f" under policy {policy!r}" if policy else "")
            + " — was the trace recorded with tracing on?"
        )
    timeline.sort(key=lambda e: e.get("sim_time", e.get("wall_time", 0.0)))

    submitted = started = finished = None
    nodes = None
    for e in timeline:
        if e.get("job_id") != job_id:
            continue
        if e["type"] == "job_submitted":
            submitted = e["sim_time"]
            nodes = e.get("nodes", nodes)
        elif e["type"] == "job_started":
            started = e["sim_time"]
            nodes = e.get("nodes", nodes)
        elif e["type"] == "job_finished":
            finished = e["sim_time"]

    predictions = []
    for e in timeline:
        if e.get("job_id") != job_id:
            continue
        if e["type"] == "wait_predicted":
            predictions.append({
                "predictor": e.get("predictor"),
                "predicted_wait_s": e["predicted_wait_s"],
                "actual_wait_s": None,
                "error_s": None,
            })
        elif e["type"] == "prediction_resolved" and e.get("kind") == "wait_time":
            for pred in predictions:
                if pred["predictor"] == e.get("predictor"):
                    pred["actual_wait_s"] = e["actual_s"]
                    pred["error_s"] = e.get("error_s")

    out = {
        "job_id": job_id,
        "policy": policy,
        "nodes": nodes,
        "submitted_s": submitted,
        "started_s": started,
        "finished_s": finished,
        "wait_s": (started - submitted)
        if (started is not None and submitted is not None) else None,
        "run_s": (finished - started)
        if (finished is not None and started is not None) else None,
        "decomposition": None,
        "predictions": predictions,
        "timeline": timeline,
    }
    if submitted is None or started is None:
        return out
    out["decomposition"] = _decompose(timeline, job_id, submitted, started)
    return out


def _decompose(
    timeline: list[dict], job_id: int, submitted: float, started: float
) -> dict:
    """Partition ``[submitted, started)`` by the job's provenance events."""
    components = {key: 0.0 for key in WAIT_COMPONENTS}
    wait = started - submitted
    # (instant, component) boundaries inside the wait interval; each
    # attribution holds from its instant to the next one (or the start).
    marks: list[tuple[float, str]] = []
    for e in timeline:
        if (
            e.get("job_id") == job_id
            and e["type"] in _ATTRIBUTING_TYPES
            and submitted <= e["sim_time"] < started
        ):
            component = _KIND_COMPONENT.get(
                e.get("blocker_kind"), "scheduler_latency_s"
            )
            marks.append((e["sim_time"], component))
    for i, (t, component) in enumerate(marks):
        end = marks[i + 1][0] if i + 1 < len(marks) else started
        components[component] += end - t
    # Fold the unattributed head segment and the float residual into
    # scheduler latency so the components sum to the realized wait.
    attributed = sum(components.values()) - components["scheduler_latency_s"]
    components["scheduler_latency_s"] = wait - attributed
    if components["scheduler_latency_s"] < 0.0:
        # Float dust from the partition arithmetic only; clamp.
        components["scheduler_latency_s"] = 0.0
    return components


def summarize_wait_components(events: Iterable[dict]) -> list[dict]:
    """Per-policy aggregate wait decomposition over every started job.

    One row per policy: job count, the four components summed over the
    policy's started jobs, and the total realized wait (their sum).
    Returns an empty list when the trace has no provenance events at all
    — the signal for report builders to omit the section.
    """
    # One pass bucketing per (policy, job): submit/start instants plus the
    # attributing provenance marks — equivalent to explain_job per job
    # but without re-filtering the whole trace each time.
    submits: dict[tuple[str, int], float] = {}
    starts: dict[tuple[str, int], float] = {}
    marks: dict[tuple[str, int], list[tuple[float, str]]] = {}
    saw_provenance = False
    for e in events:
        etype = e.get("type")
        if etype == "job_submitted":
            submits[(e.get("policy") or "-", e["job_id"])] = e["sim_time"]
        elif etype == "job_started":
            starts[(e.get("policy") or "-", e["job_id"])] = e["sim_time"]
        elif etype in _ATTRIBUTING_TYPES:
            saw_provenance = True
            key = (e.get("policy") or "-", e["job_id"])
            component = _KIND_COMPONENT.get(
                e.get("blocker_kind"), "scheduler_latency_s"
            )
            marks.setdefault(key, []).append((e["sim_time"], component))
    if not saw_provenance:
        return []
    by_policy: dict[str, dict] = {}
    for key, start in starts.items():
        policy, _ = key
        submit = submits.get(key)
        if submit is None:
            continue
        row = by_policy.setdefault(
            policy,
            {"jobs": 0, "total_wait_s": 0.0,
             **{c: 0.0 for c in WAIT_COMPONENTS}},
        )
        row["jobs"] += 1
        row["total_wait_s"] += start - submit
        components = {c: 0.0 for c in WAIT_COMPONENTS}
        job_marks = sorted(
            m for m in marks.get(key, ()) if submit <= m[0] < start
        )
        for i, (t, component) in enumerate(job_marks):
            end = job_marks[i + 1][0] if i + 1 < len(job_marks) else start
            components[component] += end - t
        attributed = (
            sum(components.values()) - components["scheduler_latency_s"]
        )
        components["scheduler_latency_s"] = max(
            (start - submit) - attributed, 0.0
        )
        for c in WAIT_COMPONENTS:
            row[c] += components[c]
    return [
        {"policy": policy, **by_policy[policy]}
        for policy in sorted(by_policy)
    ]


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:,.1f}s"


def format_explanation(exp: dict, *, timeline: bool = True) -> str:
    """Human-readable rendering of an :func:`explain_job` result."""
    lines = [
        f"job {exp['job_id']}  policy={exp['policy'] or '-'}"
        + (f"  nodes={exp['nodes']}" if exp["nodes"] is not None else ""),
        f"  submitted {_fmt_seconds(exp['submitted_s'])}"
        f"  started {_fmt_seconds(exp['started_s'])}"
        f"  finished {_fmt_seconds(exp['finished_s'])}"
        f"  wait {_fmt_seconds(exp['wait_s'])}"
        f"  run {_fmt_seconds(exp['run_s'])}",
    ]
    decomposition = exp["decomposition"]
    if decomposition is None:
        lines.append("  wait decomposition: job never started in this trace")
    else:
        wait = exp["wait_s"]
        lines.append("  wait decomposition (components sum to the wait):")
        for key in WAIT_COMPONENTS:
            value = decomposition[key]
            share = f" ({100.0 * value / wait:.1f}%)" if wait else ""
            lines.append(f"    {key:<26} {_fmt_seconds(value):>14}{share}")
    for pred in exp["predictions"]:
        line = (
            f"  predicted wait [{pred['predictor'] or '-'}]: "
            f"{_fmt_seconds(pred['predicted_wait_s'])}"
        )
        if pred["error_s"] is not None:
            line += f"  (error {pred['error_s']:+,.1f}s)"
        lines.append(line)
    if timeline:
        lines.append(f"  timeline ({len(exp['timeline'])} events):")
        for e in exp["timeline"]:
            t = e.get("sim_time", 0.0)
            extra = []
            for field in ("blocker_kind", "blocker_id", "start_s", "cause",
                          "ahead_job_id", "hole_end_s", "depth",
                          "predicted_wait_s", "predictor", "wait_s"):
                if field in e:
                    extra.append(f"{field}={e[field]}")
            role = "" if e.get("job_id") == exp["job_id"] else " (backfiller)"
            lines.append(
                f"    t={t:>12,.1f}  {e['type']:<20}{role} "
                + " ".join(extra)
            )
    return "\n".join(lines)
