"""Simulated-time state series.

A :class:`StateSeries` samples the simulator's state — queue depth,
running-job count, node utilization, free-node fragmentation, backlog
node-seconds — over *simulated* time.  Sampling is event-driven: the
series rides the simulator's observer hooks (``on_submit`` /
``on_start`` / ``on_finish``), so every state change is a candidate
sample and idle stretches cost nothing; there is no wall-clock polling
and replays stay deterministic.

Two producers, one consumer surface:

- **Live**: pass ``timeseries=True`` (or an instance) to
  :class:`~repro.obs.instrument.Instrumentation` and the simulator
  attaches the series as an observer.  Zero-cost when absent — the
  simulator's observer hooks only run when observers exist.
- **Offline**: :meth:`StateSeries.from_events` reconstructs the series
  from any recorded trace by replaying its ``job_submitted`` /
  ``job_started`` / ``job_finished`` events.  The machine size is not
  in the trace, so pass ``total_nodes`` or accept the peak concurrent
  allocation as an approximation (flagged on the instance).

Memory is bounded by a max-points reservoir: when the series overflows,
every second point is dropped (the newest is always kept) and a minimum
sample spacing kicks in — samples arriving closer than ``min_dt``
*overwrite* the latest point instead of appending, so the series always
ends at the current state while dense bursts collapse.  Rendering is
ASCII sparklines (:func:`sparkline` / :func:`format_timeseries`), and
:meth:`StateSeries.to_jsonl` exports the raw points.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

__all__ = [
    "StateSeries",
    "TIMESERIES_METRICS",
    "sparkline",
    "format_timeseries",
]

#: CLI metric name -> point field.
TIMESERIES_METRICS = {
    "util": "util",
    "queue": "queued",
    "running": "running",
    "backlog": "backlog_node_s",
    "frag": "stranded_free",
    "free": "free_nodes",
}

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


class StateSeries:
    """Event-driven sampler of scheduler state over simulated time.

    Each point is a flat dict::

        {"t": sim_time, "queued": n, "running": n, "used_nodes": n,
         "free_nodes": n, "util": used/total, "stranded_free": n,
         "backlog_node_s": sum(nodes * queued_age)}

    ``stranded_free`` is the fragmentation signal: the free nodes that
    help nobody, i.e. ``free_nodes`` whenever the queue is non-empty but
    even its narrowest request does not fit (else 0).
    """

    def __init__(self, max_points: int = 2048) -> None:
        if max_points < 8:
            raise ValueError(f"max_points must be >= 8, got {max_points}")
        self.max_points = int(max_points)
        self.points: list[dict] = []
        #: Minimum spacing between kept samples; 0 until the reservoir
        #: first overflows, then grows with each decimation.
        self.min_dt = 0.0
        #: True when the offline rebuild had to infer the machine size.
        self.approximate_total = False

    # -- live observer hooks -------------------------------------------
    def on_submit(self, view, qj) -> None:
        self._sample_view(view)

    def on_start(self, view, job) -> None:
        self._sample_view(view)

    def on_finish(self, view, job) -> None:
        self._sample_view(view)

    def _sample_view(self, view) -> None:
        t = view.now
        queued = view.queued
        free = view.free_nodes
        total = view.total_nodes
        backlog = 0.0
        min_req = None
        for qj in queued:
            n = qj.job.nodes
            backlog += n * (t - qj.job.submit_time)
            if min_req is None or n < min_req:
                min_req = n
        self.push(
            t,
            queued=len(queued),
            running=len(view.running),
            free_nodes=free,
            total_nodes=total,
            min_request=min_req,
            backlog_node_s=backlog,
        )

    # -- core ----------------------------------------------------------
    def push(
        self,
        t: float,
        *,
        queued: int,
        running: int,
        free_nodes: int,
        total_nodes: int,
        min_request: int | None,
        backlog_node_s: float,
    ) -> None:
        """Record one sample through the reservoir."""
        used = total_nodes - free_nodes
        stranded = (
            free_nodes
            if (min_request is not None and free_nodes < min_request)
            else 0
        )
        point = {
            "t": t,
            "queued": queued,
            "running": running,
            "used_nodes": used,
            "free_nodes": free_nodes,
            "util": used / total_nodes if total_nodes else 0.0,
            "stranded_free": stranded,
            "backlog_node_s": backlog_node_s,
        }
        pts = self.points
        if pts and t - pts[-1]["t"] < self.min_dt:
            # Dense burst: keep only its latest state.
            pts[-1] = point
            return
        pts.append(point)
        if len(pts) > self.max_points:
            keep = pts[::2]
            if keep[-1] is not pts[-1]:
                keep.append(pts[-1])
            pts[:] = keep
            span = pts[-1]["t"] - pts[0]["t"]
            self.min_dt = max(self.min_dt * 2.0, span / self.max_points)

    def values(self, metric: str) -> list[float]:
        """The series of one metric (a key of :data:`TIMESERIES_METRICS`
        or a raw point field)."""
        field = TIMESERIES_METRICS.get(metric, metric)
        try:
            return [p[field] for p in self.points]
        except KeyError:
            raise KeyError(
                f"unknown metric {metric!r}; expected one of "
                f"{sorted(TIMESERIES_METRICS)} or a point field"
            ) from None

    def to_jsonl(self, destination: str | IO[str]) -> int:
        """Write one JSON object per point; return how many were written."""
        if hasattr(destination, "write"):
            for point in self.points:
                destination.write(json.dumps(point) + "\n")
        else:
            with open(destination, "w", encoding="utf-8") as fh:
                for point in self.points:
                    fh.write(json.dumps(point) + "\n")
        return len(self.points)

    @classmethod
    def from_events(
        cls,
        events: Iterable[dict],
        *,
        policy: str | None = None,
        total_nodes: int | None = None,
        max_points: int = 2048,
    ) -> "StateSeries":
        """Rebuild the series offline from recorded trace events.

        Replays ``job_submitted``/``job_started``/``job_finished`` (for
        one policy — required when the trace interleaves several).  The
        trace does not record the machine size, so free/util counts use
        ``total_nodes`` when given and otherwise the peak concurrent
        allocation observed (an under-estimate on never-full machines;
        ``approximate_total`` is set so renderers can flag it).
        """
        jobs = _lifecycle_events(events, policy)
        # First pass when the machine size must be inferred: peak usage.
        raw: list[tuple] = []
        queued: dict[int, tuple[float, int]] = {}  # jid -> (submit_t, nodes)
        running: dict[int, int] = {}  # jid -> nodes
        used = 0
        peak_used = 0
        for event in jobs:
            etype = event["type"]
            jid = event["job_id"]
            t = event["sim_time"]
            if etype == "job_submitted":
                queued[jid] = (t, event.get("nodes", 1))
            elif etype == "job_started":
                submit_t, nodes = queued.pop(
                    jid, (t - event.get("wait_s", 0.0), event.get("nodes", 1))
                )
                nodes = event.get("nodes", nodes)
                running[jid] = nodes
                used += nodes
                if used > peak_used:
                    peak_used = used
            else:  # job_finished
                nodes = running.pop(jid, 0)
                used -= nodes
            backlog = 0.0
            min_req = None
            for submit_t, nodes in queued.values():
                backlog += nodes * (t - submit_t)
                if min_req is None or nodes < min_req:
                    min_req = nodes
            raw.append((t, len(queued), len(running), used, min_req, backlog))
        series = cls(max_points=max_points)
        total = total_nodes if total_nodes is not None else peak_used
        series.approximate_total = total_nodes is None
        for t, n_queued, n_running, used, min_req, backlog in raw:
            series.push(
                t,
                queued=n_queued,
                running=n_running,
                free_nodes=max(total - used, 0),
                total_nodes=total,
                min_request=min_req,
                backlog_node_s=backlog,
            )
        return series

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StateSeries(points={len(self.points)}, "
            f"max_points={self.max_points}, min_dt={self.min_dt})"
        )


def _lifecycle_events(events: Iterable[dict], policy: str | None) -> list[dict]:
    """Life-cycle events of one policy, in trace order."""
    lifecycle = ("job_submitted", "job_started", "job_finished")
    out = []
    policies = set()
    for event in events:
        if event.get("type") not in lifecycle:
            continue
        pol = event.get("policy")
        policies.add(pol)
        if policy is None or pol == policy:
            out.append(event)
    if policy is None and len(policies) > 1:
        raise ValueError(
            f"trace interleaves policies {sorted(str(p) for p in policies)}; "
            "pass policy=... to select one"
        )
    if policy is not None and policy not in policies and out == []:
        raise ValueError(
            f"no life-cycle events for policy {policy!r}; trace has "
            f"{sorted(str(p) for p in policies)}"
        )
    return out


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a fixed-width ASCII sparkline.

    Values are bucketed to ``width`` columns (mean per bucket) and
    scaled to the 8-level block-character ramp; an empty series renders
    as an empty string.
    """
    if not values:
        return ""
    if len(values) > width:
        # Mean-pool into `width` buckets.
        pooled = []
        n = len(values)
        for i in range(width):
            lo = i * n // width
            hi = max((i + 1) * n // width, lo + 1)
            chunk = values[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        values = pooled
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        level = 4 if hi > 0 else 0
        return _SPARK_CHARS[level] * len(values)
    out = []
    top = len(_SPARK_CHARS) - 1
    for v in values:
        level = int((v - lo) / span * top + 0.5)
        out.append(_SPARK_CHARS[level])
    return "".join(out)


def format_timeseries(
    series: StateSeries, metric: str = "util", *, width: int = 60
) -> str:
    """A small human-readable rendering of one metric of the series."""
    values = series.values(metric)
    if not values:
        return f"{metric}: (no samples)"
    t0 = series.points[0]["t"]
    t1 = series.points[-1]["t"]
    lines = [
        f"{metric} over simulated time "
        f"[{t0:.0f}s .. {t1:.0f}s], {len(values)} samples"
        + (" (total nodes inferred from peak)" if series.approximate_total else ""),
        sparkline(values, width),
        f"min={min(values):.3g}  mean={sum(values) / len(values):.3g}  "
        f"max={max(values):.3g}  last={values[-1]:.3g}",
    ]
    return "\n".join(lines)
