"""Experiment configuration objects.

Bundles the knobs the drivers in :mod:`repro.core.experiment` accept into
one validated, serializable record so batch runs (the CLI, sweep scripts)
can be specified declaratively.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.registry import POLICY_NAMES, PREDICTOR_NAMES
from repro.workloads.archive import PAPER_WORKLOADS

__all__ = ["ExperimentConfig"]

_KINDS = ("scheduling", "wait-time", "runtime-error")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment-grid specification.

    ``n_jobs=None`` runs the full paper-scale workloads.  ``compress``
    divides interarrival gaps (the §4 load-raising transformation).
    ``parallel`` fans the grid's cells across that many worker processes
    (see :mod:`repro.core.parallel`); 1 is the serial path.
    """

    kind: str = "scheduling"
    workloads: tuple[str, ...] = ("ANL", "CTC", "SDSC95", "SDSC96")
    algorithms: tuple[str, ...] = ("lwf", "backfill")
    predictors: tuple[str, ...] = ("actual", "max", "smith")
    n_jobs: int | None = 1000
    seed: int | None = None
    compress: float = 1.0
    parallel: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        for w in self.workloads:
            if w not in PAPER_WORKLOADS:
                raise ValueError(
                    f"unknown workload {w!r}; expected one of "
                    f"{sorted(PAPER_WORKLOADS)}"
                )
        for a in self.algorithms:
            if a not in POLICY_NAMES:
                raise ValueError(f"unknown algorithm {a!r}")
        for p in self.predictors:
            if p not in PREDICTOR_NAMES:
                raise ValueError(f"unknown predictor {p!r}")
        if self.n_jobs is not None and self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1 or None")
        if self.compress <= 0:
            raise ValueError("compress must be positive")
        if self.parallel < 1:
            raise ValueError("parallel must be >= 1")

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        coerced = dict(data)
        for key in ("workloads", "algorithms", "predictors"):
            if key in coerced and not isinstance(coerced[key], tuple):
                coerced[key] = tuple(coerced[key])
        return cls(**coerced)
