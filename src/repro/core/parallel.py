"""Parallel table execution: fan a table's cell grid across processes.

The paper's results are 12 tables of independent (workload, algorithm,
predictor) replay cells — an embarrassingly parallel grid that
:mod:`repro.core.experiment` nevertheless walks serially.  This module
executes an :class:`ExperimentPlan` of :class:`CellSpec` records on a
:class:`concurrent.futures.ProcessPoolExecutor`:

- **Determinism.**  Nothing unpicklable crosses the process boundary: a
  spec names its workload plus the ``(n_jobs, seed, compress)``
  generation recipe, and each worker regenerates the trace from that —
  the synthetic generator is seed-deterministic, so every worker sees
  the identical trace the serial driver would, and a per-process cache
  rebuilds each distinct trace once no matter how many cells share it.
- **Stable order.**  Results come back in plan order regardless of
  completion order, so a parallel table equals the serial one
  cell-for-cell.
- **Failure containment.**  A worker exception or per-cell timeout is
  retried up to ``retries`` times and then recorded as a structured
  :class:`CellFailure` on the cell's :class:`CellResult` instead of
  crashing the run.  (A timed-out cell's worker cannot be killed
  mid-task; it occupies its pool slot until the task returns, so pick
  timeouts generously.)
- **Metrics.**  Each cell carries its own registry snapshot;
  :meth:`TableRun.merged_metrics` folds them with
  :func:`repro.obs.metrics.merge_snapshots` into one run-level view.
- **Telemetry.**  Pass a :class:`~repro.obs.campaign.CampaignTelemetry`
  and the driver journals the campaign event schema (dispatch, finish,
  retry, failure, heartbeats) and ships each cell's worker-side
  resource bill (wall/CPU/peak-RSS) back on its :class:`CellResult`.
  The default ``telemetry=None`` keeps the original zero-cost path:
  the worker callable submitted to the pool is then *identical* to the
  untelemetered one, and cell results are bit-for-bit the same either
  way (the resource probe wraps the cell function; it never reaches
  into it).

``run_wait_time_table`` / ``run_scheduling_table`` expose this through
their ``max_workers=`` parameter (default 1 keeps the serial path), the
CLI through ``--parallel N`` on the grid subcommands.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.experiment import (
    SchedulingCell,
    WaitTimeCell,
    run_scheduling_experiment,
    run_wait_time_experiment,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.misprediction import MispredictionCell
from repro.obs.campaign import (
    CampaignTelemetry,
    CellResources,
    capture_resources,
    resource_probe,
)
from repro.obs.metrics import merge_snapshots
from repro.predictors.templates import Template
from repro.workloads.archive import PAPER_WORKLOADS, load_paper_workload
from repro.workloads.job import Trace
from repro.workloads.transform import compress_interarrival

__all__ = [
    "CellSpec",
    "CellFailure",
    "CellResult",
    "ExperimentPlan",
    "TableRun",
    "ParallelExecutionError",
    "execute_cell",
    "run_table_parallel",
]

#: The two table families of the paper (Tables 4-9 and 10-15) plus the
#: misprediction-cost grid (repro.experiments.misprediction).
CELL_KINDS = ("wait-time", "scheduling", "misprediction")


class ParallelExecutionError(RuntimeError):
    """Raised by the table drivers when parallel cells failed.

    The message names every failed cell by its full spec coordinates
    (:meth:`CellSpec.describe`) with its failure kind, attempt count,
    and how many of those attempts were retries — enough to re-run the
    exact cells without digging through a journal.
    """

    def __init__(self, failures: Sequence["CellFailure"]) -> None:
        self.failures = tuple(failures)
        lines = [f"{len(self.failures)} cell(s) failed:"]
        for f in self.failures:
            retries = f.attempts - 1
            noun = "retry" if retries == 1 else "retries"
            lines.append(
                f"  - {f.spec.describe()}: {f.kind} after {f.attempts} "
                f"attempt(s) ({retries} {noun}): {f.error}"
            )
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class CellSpec:
    """One replay cell, described by value so it pickles trivially.

    The trace itself never crosses the process boundary — the worker
    regenerates it from ``(workload, n_jobs, seed, compress)``, the same
    recipe :func:`repro.workloads.archive.load_paper_workload` stamps on
    every generated trace's ``provenance``.
    """

    kind: str
    workload: str
    algorithm: str
    predictor: str
    n_jobs: int | None = None
    seed: int | None = None
    compress: float = 1.0
    templates: tuple[Template, ...] | None = None
    scheduler_predictor: str = "max"
    #: Misprediction cells only: the injected error distribution (see
    #: repro.experiments.misprediction.ErrorModel).  ``predictor`` then
    #: names the *base* predictor the noise wraps.
    error_kind: str | None = None
    error_level: float = 0.0
    error_seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(f"kind must be one of {CELL_KINDS}, got {self.kind!r}")
        if self.workload not in PAPER_WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; expected one of "
                f"{sorted(PAPER_WORKLOADS)}"
            )
        if self.compress <= 0:
            raise ValueError(f"compress must be positive, got {self.compress}")
        if self.kind == "misprediction" and self.error_kind is None:
            raise ValueError("misprediction cells require an error_kind")

    def describe(self) -> str:
        """Human-oriented cell coordinates: ``workload/algorithm/predictor``,
        plus the injected error model for misprediction cells."""
        coords = f"{self.workload}/{self.algorithm}/{self.predictor}"
        if self.kind == "misprediction":
            coords += f" [{self.error_kind} error, level={self.error_level:g}]"
        return coords

    @classmethod
    def from_trace(
        cls,
        kind: str,
        trace: Trace,
        algorithm: str,
        predictor: str,
        *,
        templates: tuple[Template, ...] | None = None,
        scheduler_predictor: str = "max",
        error_kind: str | None = None,
        error_level: float = 0.0,
        error_seed: int = 0,
    ) -> "CellSpec":
        """Describe a cell over an already-loaded paper trace.

        Requires the trace's regeneration ``provenance`` (stamped by
        :func:`load_paper_workload`; content-changing transforms drop
        it) — without one, the worker could not rebuild the same trace.
        """
        if trace.provenance is None:
            raise ValueError(
                f"trace {trace.name!r} has no regeneration provenance; "
                "pass workload names (or traces from load_paper_workload) "
                "to the parallel path, or run with max_workers=1"
            )
        p = trace.provenance
        return cls(
            kind=kind,
            workload=p["workload"],
            algorithm=algorithm,
            predictor=predictor,
            n_jobs=p.get("n_jobs"),
            seed=p.get("seed"),
            compress=p.get("compress", 1.0),
            templates=templates,
            scheduler_predictor=scheduler_predictor,
            error_kind=error_kind,
            error_level=error_level,
            error_seed=error_seed,
        )


@dataclass(frozen=True)
class CellFailure:
    """A cell that exhausted its attempts, kept as data instead of a crash."""

    spec: CellSpec
    kind: str  #: "error" (worker raised) or "timeout" (per-cell deadline)
    error: str
    attempts: int


@dataclass
class CellResult:
    """Outcome slot for one planned cell, in plan order."""

    spec: CellSpec
    index: int
    cell: "WaitTimeCell | SchedulingCell | MispredictionCell | None" = None
    failure: CellFailure | None = None
    attempts: int = 0
    duration_s: float = 0.0
    #: Worker-side resource bill — populated only on telemetered runs.
    resources: CellResources | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None and self.cell is not None


@dataclass(frozen=True)
class ExperimentPlan:
    """An ordered grid of cells — the unit :func:`run_table_parallel` runs."""

    cells: tuple[CellSpec, ...]

    def __len__(self) -> int:
        return len(self.cells)

    @classmethod
    def for_table(
        cls,
        kind: str,
        predictor: str,
        *,
        workloads: Sequence[str] | Sequence[Trace] | None = None,
        algorithms: Sequence[str],
        n_jobs: int | None = None,
        seed: int | None = None,
        compress: float = 1.0,
        templates: tuple[Template, ...] | None = None,
    ) -> "ExperimentPlan":
        """The (workload × algorithm) grid of one paper table, in the
        serial drivers' iteration order (workload outer, algorithm inner)."""
        if workloads is None:
            workloads = tuple(PAPER_WORKLOADS)
        specs: list[CellSpec] = []
        for w in workloads:
            for algo in algorithms:
                if isinstance(w, Trace):
                    specs.append(
                        CellSpec.from_trace(
                            kind, w, algo, predictor, templates=templates
                        )
                    )
                else:
                    specs.append(
                        CellSpec(
                            kind=kind,
                            workload=w,
                            algorithm=algo,
                            predictor=predictor,
                            n_jobs=n_jobs,
                            seed=seed,
                            compress=compress,
                            templates=templates,
                        )
                    )
        return cls(cells=tuple(specs))

    @classmethod
    def for_misprediction(
        cls,
        *,
        workloads: Sequence[str] | Sequence[Trace],
        algorithms: Sequence[str],
        levels: Sequence[float],
        kind: str = "multiplicative",
        noise_seed: int = 0,
        base_predictor: str = "actual",
        n_jobs: int | None = None,
        seed: int | None = None,
        compress: float = 1.0,
    ) -> "ExperimentPlan":
        """The misprediction grid, in campaign order
        (workload → algorithm → error level, levels ascending)."""
        levels = sorted(levels)
        specs: list[CellSpec] = []
        for w in workloads:
            for algo in algorithms:
                for level in levels:
                    if isinstance(w, Trace):
                        specs.append(
                            CellSpec.from_trace(
                                "misprediction",
                                w,
                                algo,
                                base_predictor,
                                error_kind=kind,
                                error_level=level,
                                error_seed=noise_seed,
                            )
                        )
                    else:
                        specs.append(
                            CellSpec(
                                kind="misprediction",
                                workload=w,
                                algorithm=algo,
                                predictor=base_predictor,
                                n_jobs=n_jobs,
                                seed=seed,
                                compress=compress,
                                error_kind=kind,
                                error_level=level,
                                error_seed=noise_seed,
                            )
                        )
        return cls(cells=tuple(specs))

    @classmethod
    def for_grid(
        cls,
        kind: str,
        *,
        workloads: Sequence[str],
        algorithms: Sequence[str],
        predictors: Sequence[str],
        n_jobs: int | None = None,
        seed: int | None = None,
        compress: float = 1.0,
    ) -> "ExperimentPlan":
        """A multi-predictor grid in the CLI's row order
        (workload → algorithm → predictor)."""
        return cls(
            cells=tuple(
                CellSpec(
                    kind=kind,
                    workload=w,
                    algorithm=a,
                    predictor=p,
                    n_jobs=n_jobs,
                    seed=seed,
                    compress=compress,
                )
                for w in workloads
                for a in algorithms
                for p in predictors
            )
        )


@dataclass
class TableRun:
    """Every planned cell's outcome, in plan order."""

    results: list[CellResult] = field(default_factory=list)

    @property
    def cells(self) -> "list[WaitTimeCell | SchedulingCell | MispredictionCell]":
        """Successful cells in plan order."""
        return [r.cell for r in self.results if r.ok]

    @property
    def failures(self) -> list[CellFailure]:
        return [r.failure for r in self.results if r.failure is not None]

    def merged_metrics(self) -> dict:
        """One run-level registry snapshot folded from every cell's."""
        return merge_snapshots(
            *(r.cell.metrics for r in self.results if r.ok and r.cell.metrics)
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-process trace cache: workers are reused across cells, and every
#: cell of a table shares its workload's trace with up to two others.
_TRACE_CACHE: dict[tuple, Trace] = {}


def _cell_trace(spec: CellSpec) -> Trace:
    key = (spec.workload, spec.n_jobs, spec.seed, spec.compress)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = load_paper_workload(spec.workload, n_jobs=spec.n_jobs, seed=spec.seed)
        if spec.compress != 1.0:
            trace = compress_interarrival(trace, spec.compress)
        _TRACE_CACHE[key] = trace
    return trace


def execute_cell(spec: CellSpec) -> "WaitTimeCell | SchedulingCell | MispredictionCell":
    """Run one cell from scratch — the function shipped to pool workers.

    Also usable inline: ``execute_cell(spec)`` in the parent process is
    exactly one serial-driver cell.
    """
    trace = _cell_trace(spec)
    if spec.kind == "wait-time":
        cell, _, _ = run_wait_time_experiment(
            trace,
            spec.algorithm,
            spec.predictor,
            templates=spec.templates,
            scheduler_predictor=spec.scheduler_predictor,
        )
        return cell
    if spec.kind == "misprediction":
        # Imported here: repro.experiments depends on this module for
        # its parallel path, so the reverse edge must stay lazy.
        from repro.experiments.misprediction import (
            ErrorModel,
            run_misprediction_experiment,
        )

        cell, _ = run_misprediction_experiment(
            trace,
            spec.algorithm,
            ErrorModel(
                kind=spec.error_kind, level=spec.error_level, seed=spec.error_seed
            ),
            base_predictor=spec.predictor,
        )
        return cell
    cell, _ = run_scheduling_experiment(
        trace, spec.algorithm, spec.predictor, templates=spec.templates
    )
    return cell


def _profiled_cell(fn, spec: CellSpec):
    """Worker entry point for telemetered runs: run the cell exactly as
    ``fn`` would and ship its resource bill back alongside it.

    Module-level (and composed via :func:`functools.partial`) so it
    pickles; untelemetered runs submit ``fn`` itself, so disabling
    telemetry restores the original callable bit-for-bit.
    """
    probe = resource_probe()
    cell = fn(spec)
    return cell, capture_resources(probe)


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------
def _spec_coords(spec: CellSpec) -> dict:
    """The coordinate fields campaign cell events carry."""
    return {
        "workload": spec.workload,
        "algorithm": spec.algorithm,
        "predictor": spec.predictor,
    }


def run_table_parallel(
    plan: ExperimentPlan,
    *,
    max_workers: int | None = None,
    timeout: float | None = None,
    retries: int = 1,
    cell_fn: "Callable[[CellSpec], WaitTimeCell | SchedulingCell | MispredictionCell] | None" = None,
    telemetry: CampaignTelemetry | None = None,
) -> TableRun:
    """Execute every cell of ``plan`` across a process pool.

    ``timeout`` is a per-cell wall-clock deadline measured from the
    moment the cell's task is handed to a free worker (submission is
    throttled to pool width, so queue time never counts).  A raising or
    timed-out cell is retried up to ``retries`` more times; when the
    budget is exhausted its :class:`CellResult` carries a
    :class:`CellFailure` and the run continues.  ``cell_fn`` swaps the
    worker entry point (it must be a picklable module-level callable) —
    the failure-path tests inject crashes and stalls through it.

    ``telemetry`` turns the run into an observable *campaign*: events
    journal through the telemetry's sink, each result carries its
    worker's resource bill, and the driver's poll period is capped at
    the telemetry's heartbeat so progress stays live during long cells.
    ``campaign_finished`` is emitted only when the plan drains — a
    journal without one marks a killed or crashed campaign.  The caller
    owns the telemetry's lifecycle (close it to flush progress output).

    Results are returned in plan order regardless of completion order.
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    fn = cell_fn if cell_fn is not None else execute_cell
    worker_fn = fn if telemetry is None else partial(_profiled_cell, fn)

    poll = None if timeout is None else min(timeout / 4, 0.05)
    if telemetry is not None:
        poll = (
            telemetry.heartbeat_s if poll is None
            else min(poll, telemetry.heartbeat_s)
        )

    run = TableRun(results=[CellResult(spec, i) for i, spec in enumerate(plan.cells)])
    queue: deque[int] = deque(range(len(plan.cells)))
    in_flight: dict[Future, tuple[int, float]] = {}
    abandoned = False
    if telemetry is not None:
        telemetry.campaign_started(
            cells_total=len(plan.cells), max_workers=max_workers
        )
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        while queue or in_flight:
            # Throttle submission to pool width so a task's deadline
            # starts when a worker actually picks it up.
            while queue and len(in_flight) < max_workers:
                index = queue.popleft()
                result = run.results[index]
                result.attempts += 1
                future = pool.submit(worker_fn, result.spec)
                in_flight[future] = (index, time.monotonic())
                if telemetry is not None:
                    telemetry.cell_dispatched(
                        index, attempt=result.attempts, **_spec_coords(result.spec)
                    )

            done, _ = wait(in_flight, timeout=poll, return_when=FIRST_COMPLETED)
            for future in done:
                index, started = in_flight.pop(future)
                result = run.results[index]
                result.duration_s = time.monotonic() - started
                try:
                    payload = future.result()
                    if telemetry is None:
                        result.cell = payload
                    else:
                        result.cell, result.resources = payload
                    result.failure = None
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    if result.attempts <= retries:
                        queue.append(index)
                        if telemetry is not None:
                            telemetry.cell_retried(
                                index, attempt=result.attempts, error=error
                            )
                    else:
                        result.failure = CellFailure(
                            spec=result.spec,
                            kind="error",
                            error=error,
                            attempts=result.attempts,
                        )
                        if telemetry is not None:
                            telemetry.cell_failed(
                                index,
                                kind="error",
                                error=error,
                                attempts=result.attempts,
                                **_spec_coords(result.spec),
                            )
                    continue
                if telemetry is not None:
                    telemetry.cell_finished(
                        index,
                        duration_s=result.duration_s,
                        attempt=result.attempts,
                        resources=result.resources,
                        **_spec_coords(result.spec),
                    )

            if timeout is not None:
                now = time.monotonic()
                for future, (index, started) in list(in_flight.items()):
                    if now - started < timeout:
                        continue
                    # The worker can't be interrupted mid-task; drop the
                    # future and let the task run its slot dry.
                    future.cancel()
                    in_flight.pop(future)
                    abandoned = True
                    result = run.results[index]
                    result.duration_s = now - started
                    error = f"cell exceeded {timeout}s"
                    if result.attempts <= retries:
                        queue.append(index)
                        if telemetry is not None:
                            telemetry.cell_retried(
                                index, attempt=result.attempts, error=error
                            )
                    else:
                        result.failure = CellFailure(
                            spec=result.spec,
                            kind="timeout",
                            error=error,
                            attempts=result.attempts,
                        )
                        if telemetry is not None:
                            telemetry.cell_failed(
                                index,
                                kind="timeout",
                                error=error,
                                attempts=result.attempts,
                                **_spec_coords(result.spec),
                            )

            if telemetry is not None:
                telemetry.heartbeat(running=len(in_flight))
        if telemetry is not None:
            telemetry.campaign_finished()
    finally:
        # With abandoned (timed-out) tasks still running, a blocking
        # shutdown would wait for them; detach instead — the workers
        # exit once those tasks finish.
        pool.shutdown(wait=not abandoned, cancel_futures=True)
    return run
