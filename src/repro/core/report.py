"""Markdown report generation: paper-vs-measured for every table.

:func:`generate_experiments_report` runs the full experiment grid at a
chosen scale and renders an EXPERIMENTS.md-style markdown document with
one section per paper table, each showing measured values beside the
published ones.  The benchmark harness prints the same rows; this module
exists so the comparison document can be regenerated with one call.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.experiment import (
    run_runtime_prediction_experiment,
    run_scheduling_table,
    run_wait_time_table,
)
from repro.core.paper_reference import (
    SCHEDULING_TABLES,
    TABLE1_WORKLOADS,
    WAIT_TIME_TABLES,
)
from repro.core.registry import PREDICTOR_NAMES
from repro.workloads.archive import load_paper_workload
from repro.workloads.job import Trace
from repro.workloads.stats import summarize

__all__ = ["generate_experiments_report", "markdown_table"]

_WORKLOADS = ("ANL", "CTC", "SDSC95", "SDSC96")


def markdown_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavored markdown table."""
    head = "| " + " | ".join(str(h) for h in header) + " |"
    sep = "|" + "|".join("---" for _ in header) + "|"
    body = ["| " + " | ".join(str(c) for c in r) + " |" for r in rows]
    return "\n".join([head, sep, *body])


def _table1_section(traces: dict[str, Trace]) -> str:
    rows = []
    for name in _WORKLOADS:
        s = summarize(traces[name])
        nodes, requests, mean_rt = TABLE1_WORKLOADS[name]
        rows.append(
            [
                name,
                s.total_nodes,
                f"{s.n_jobs} (paper {requests})",
                f"{s.mean_run_time_minutes:.1f} (paper {mean_rt})",
                f"{s.offered_load:.2f}",
            ]
        )
    return "\n".join(
        [
            "## Table 1 — workload characteristics",
            "",
            markdown_table(
                ["Workload", "Nodes", "Requests", "Mean run time (min)", "Offered load"],
                rows,
            ),
        ]
    )


def _wait_section(predictor: str, traces: dict[str, Trace]) -> str:
    table_no, ref = WAIT_TIME_TABLES[predictor]
    algorithms = ("lwf", "backfill") if predictor == "actual" else (
        "fcfs", "lwf", "backfill"
    )
    cells = run_wait_time_table(
        predictor,
        workloads=[traces[w] for w in _WORKLOADS],
        algorithms=algorithms,
    )
    rows = []
    for c in cells:
        r = ref.get((c.workload, c.algorithm))
        rows.append(
            [
                c.workload,
                c.algorithm,
                f"{c.mean_error_minutes:.2f}",
                f"{c.percent_of_mean_wait:.0f}",
                f"{r.mean_error_minutes}" if r else "—",
                f"{r.percent_of_mean_wait}" if r else "—",
            ]
        )
    return "\n".join(
        [
            f"## Table {table_no} — wait-time prediction, predictor `{predictor}`",
            "",
            markdown_table(
                [
                    "Workload",
                    "Algorithm",
                    "Error (min)",
                    "% of wait",
                    "Paper error (min)",
                    "Paper %",
                ],
                rows,
            ),
        ]
    )


def _sched_section(predictor: str, traces: dict[str, Trace]) -> str:
    table_no, ref = SCHEDULING_TABLES[predictor]
    cells = run_scheduling_table(
        predictor, workloads=[traces[w] for w in _WORKLOADS]
    )
    rows = []
    for c in cells:
        r = ref.get((c.workload, c.algorithm))
        rows.append(
            [
                c.workload,
                c.algorithm,
                f"{c.utilization_percent:.2f}",
                f"{c.mean_wait_minutes:.2f}",
                f"{r.utilization_percent}" if r else "—",
                f"{r.mean_wait_minutes}" if r else "—",
            ]
        )
    return "\n".join(
        [
            f"## Table {table_no} — scheduling performance, predictor `{predictor}`",
            "",
            markdown_table(
                [
                    "Workload",
                    "Algorithm",
                    "Util %",
                    "Mean wait (min)",
                    "Paper util %",
                    "Paper wait (min)",
                ],
                rows,
            ),
        ]
    )


def _runtime_error_section(traces: dict[str, Trace]) -> str:
    rows = []
    for name in _WORKLOADS:
        for predictor in PREDICTOR_NAMES:
            c = run_runtime_prediction_experiment(traces[name], predictor)
            rows.append(
                [
                    name,
                    predictor,
                    f"{c.mean_error_minutes:.2f}",
                    f"{c.percent_of_mean_run_time:.0f}",
                ]
            )
    return "\n".join(
        [
            "## §3 text — run-time prediction error per predictor",
            "",
            "The paper quotes Smith's run-time prediction error at 33-73% of the",
            "mean run time, and 39-92% better than the alternatives.",
            "",
            markdown_table(
                ["Workload", "Predictor", "Error (min)", "% of mean run time"],
                rows,
            ),
        ]
    )


def generate_experiments_report(
    n_jobs: int | None = 1000,
    *,
    progress: Callable[[str], None] | None = None,
) -> str:
    """Build the full EXPERIMENTS.md body at the given per-workload scale."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    traces = {w: load_paper_workload(w, n_jobs=n_jobs) for w in _WORKLOADS}
    scale = (
        f"{n_jobs} jobs per workload" if n_jobs else "full paper-scale workloads"
    )
    sections = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python scripts/make_experiments_report.py` against the",
        f"synthetic workload stand-ins at **{scale}** (see DESIGN.md for the",
        "substitution rationale).  Absolute minutes differ from the paper —",
        "the traces are synthetic and smaller — but the *shapes* the paper",
        "claims are asserted programmatically by `benchmarks/` and visible in",
        "every section below.",
        "",
        _table1_section(traces),
    ]
    note("table 1 done")
    for predictor in ("actual", "max", "smith", "gibbons",
                      "downey-average", "downey-median"):
        sections.append(_wait_section(predictor, traces))
        note(f"wait-time table for {predictor} done")
    for predictor in ("actual", "max", "smith", "gibbons",
                      "downey-average", "downey-median"):
        sections.append(_sched_section(predictor, traces))
        note(f"scheduling table for {predictor} done")
    sections.append(_runtime_error_section(traces))
    note("run-time error grid done")
    sections.append(
        "\n".join(
            [
                "## Shape checklist (asserted by `benchmarks/`)",
                "",
                "- Table 4: FCFS built-in error = 0; backfill ≪ LWF built-in error.",
                "- Tables 5 vs 6: Smith cuts wait-prediction error vs user maxima"
                " on every workload.",
                "- Tables 6 vs 7-9: Smith ≤ Gibbons < Downey in aggregate.",
                "- Tables 10-15: utilization invariant to the predictor;"
                " LWF mean wait < backfill mean wait; accurate predictions help"
                " backfill most on the high-load (ANL) workload.",
                "- §4 compression: doubling SDSC load raises utilization and"
                " waits; Smith stays at least competitive.",
            ]
        )
    )
    return "\n\n".join(sections) + "\n"
