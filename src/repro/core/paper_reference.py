"""The paper's published numbers, transcribed for side-by-side reporting.

Every benchmark prints its measured rows next to these reference rows so
a reader can check the *shape* correspondence (who wins, by what rough
factor) without digging out the PDF.  Keys are (workload, algorithm).

Units: mean errors and mean waits in minutes; percentages as integers as
printed in the paper; utilization in percent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WaitTimeRef",
    "SchedulingRef",
    "TABLE4_ACTUAL",
    "TABLE5_MAX",
    "TABLE6_SMITH",
    "TABLE7_GIBBONS",
    "TABLE8_DOWNEY_AVG",
    "TABLE9_DOWNEY_MED",
    "TABLE10_ACTUAL",
    "TABLE11_MAX",
    "TABLE12_SMITH",
    "TABLE13_GIBBONS",
    "TABLE14_DOWNEY_AVG",
    "TABLE15_DOWNEY_MED",
    "WAIT_TIME_TABLES",
    "SCHEDULING_TABLES",
    "TABLE1_WORKLOADS",
]


@dataclass(frozen=True)
class WaitTimeRef:
    """One row of Tables 4-9: wait-time prediction accuracy."""

    mean_error_minutes: float
    percent_of_mean_wait: int


@dataclass(frozen=True)
class SchedulingRef:
    """One row of Tables 10-15: scheduling performance."""

    utilization_percent: float
    mean_wait_minutes: float


#: Table 1 — (nodes, requests, mean run time in minutes).
TABLE1_WORKLOADS: dict[str, tuple[int, int, float]] = {
    "ANL": (80, 7994, 97.75),
    "CTC": (512, 13217, 171.14),
    "SDSC95": (400, 22885, 108.21),
    "SDSC96": (400, 22337, 166.98),
}

# ---------------------------------------------------------------------
# Tables 4-9: wait-time prediction performance
# ---------------------------------------------------------------------
TABLE4_ACTUAL: dict[tuple[str, str], WaitTimeRef] = {
    ("ANL", "LWF"): WaitTimeRef(37.14, 43),
    ("ANL", "Backfill"): WaitTimeRef(5.84, 3),
    ("CTC", "LWF"): WaitTimeRef(4.05, 39),
    ("CTC", "Backfill"): WaitTimeRef(2.62, 10),
    ("SDSC95", "LWF"): WaitTimeRef(5.83, 39),
    ("SDSC95", "Backfill"): WaitTimeRef(1.12, 4),
    ("SDSC96", "LWF"): WaitTimeRef(3.32, 42),
    ("SDSC96", "Backfill"): WaitTimeRef(0.30, 3),
}

TABLE5_MAX: dict[tuple[str, str], WaitTimeRef] = {
    ("ANL", "FCFS"): WaitTimeRef(996.67, 186),
    ("ANL", "LWF"): WaitTimeRef(97.12, 112),
    ("ANL", "Backfill"): WaitTimeRef(429.05, 242),
    ("CTC", "FCFS"): WaitTimeRef(125.36, 128),
    ("CTC", "LWF"): WaitTimeRef(9.86, 94),
    ("CTC", "Backfill"): WaitTimeRef(51.16, 190),
    ("SDSC95", "FCFS"): WaitTimeRef(162.72, 295),
    ("SDSC95", "LWF"): WaitTimeRef(28.56, 191),
    ("SDSC95", "Backfill"): WaitTimeRef(93.81, 333),
    ("SDSC96", "FCFS"): WaitTimeRef(47.83, 288),
    ("SDSC96", "LWF"): WaitTimeRef(14.19, 180),
    ("SDSC96", "Backfill"): WaitTimeRef(39.66, 350),
}

TABLE6_SMITH: dict[tuple[str, str], WaitTimeRef] = {
    ("ANL", "FCFS"): WaitTimeRef(161.49, 30),
    ("ANL", "LWF"): WaitTimeRef(44.75, 51),
    ("ANL", "Backfill"): WaitTimeRef(75.55, 43),
    ("CTC", "FCFS"): WaitTimeRef(30.84, 31),
    ("CTC", "LWF"): WaitTimeRef(5.74, 55),
    ("CTC", "Backfill"): WaitTimeRef(11.37, 42),
    ("SDSC95", "FCFS"): WaitTimeRef(20.34, 37),
    ("SDSC95", "LWF"): WaitTimeRef(8.72, 58),
    ("SDSC95", "Backfill"): WaitTimeRef(12.49, 44),
    ("SDSC96", "FCFS"): WaitTimeRef(9.74, 59),
    ("SDSC96", "LWF"): WaitTimeRef(4.66, 59),
    ("SDSC96", "Backfill"): WaitTimeRef(5.03, 44),
}

TABLE7_GIBBONS: dict[tuple[str, str], WaitTimeRef] = {
    ("ANL", "FCFS"): WaitTimeRef(350.86, 66),
    ("ANL", "LWF"): WaitTimeRef(76.23, 91),
    ("ANL", "Backfill"): WaitTimeRef(94.01, 53),
    ("CTC", "FCFS"): WaitTimeRef(81.45, 83),
    ("CTC", "LWF"): WaitTimeRef(32.34, 309),
    ("CTC", "Backfill"): WaitTimeRef(13.57, 50),
    ("SDSC95", "FCFS"): WaitTimeRef(54.37, 99),
    ("SDSC95", "LWF"): WaitTimeRef(11.60, 78),
    ("SDSC95", "Backfill"): WaitTimeRef(20.27, 72),
    ("SDSC96", "FCFS"): WaitTimeRef(22.36, 135),
    ("SDSC96", "LWF"): WaitTimeRef(6.88, 87),
    ("SDSC96", "Backfill"): WaitTimeRef(17.31, 153),
}

TABLE8_DOWNEY_AVG: dict[tuple[str, str], WaitTimeRef] = {
    ("ANL", "FCFS"): WaitTimeRef(443.45, 83),
    ("ANL", "LWF"): WaitTimeRef(232.24, 277),
    ("ANL", "Backfill"): WaitTimeRef(339.10, 191),
    ("CTC", "FCFS"): WaitTimeRef(65.22, 66),
    ("CTC", "LWF"): WaitTimeRef(14.78, 141),
    ("CTC", "Backfill"): WaitTimeRef(17.22, 64),
    ("SDSC95", "FCFS"): WaitTimeRef(187.73, 340),
    ("SDSC95", "LWF"): WaitTimeRef(35.84, 240),
    ("SDSC95", "Backfill"): WaitTimeRef(62.96, 223),
    ("SDSC96", "FCFS"): WaitTimeRef(83.62, 503),
    ("SDSC96", "LWF"): WaitTimeRef(28.42, 361),
    ("SDSC96", "Backfill"): WaitTimeRef(47.11, 415),
}

TABLE9_DOWNEY_MED: dict[tuple[str, str], WaitTimeRef] = {
    ("ANL", "FCFS"): WaitTimeRef(534.71, 100),
    ("ANL", "LWF"): WaitTimeRef(254.91, 304),
    ("ANL", "Backfill"): WaitTimeRef(410.57, 232),
    ("CTC", "FCFS"): WaitTimeRef(83.33, 85),
    ("CTC", "LWF"): WaitTimeRef(15.47, 148),
    ("CTC", "Backfill"): WaitTimeRef(19.35, 72),
    ("SDSC95", "FCFS"): WaitTimeRef(62.67, 114),
    ("SDSC95", "LWF"): WaitTimeRef(18.28, 122),
    ("SDSC95", "Backfill"): WaitTimeRef(27.52, 98),
    ("SDSC96", "FCFS"): WaitTimeRef(34.23, 206),
    ("SDSC96", "LWF"): WaitTimeRef(12.65, 161),
    ("SDSC96", "Backfill"): WaitTimeRef(20.70, 183),
}

# ---------------------------------------------------------------------
# Tables 10-15: scheduling performance
# ---------------------------------------------------------------------
TABLE10_ACTUAL: dict[tuple[str, str], SchedulingRef] = {
    ("ANL", "LWF"): SchedulingRef(70.34, 61.20),
    ("ANL", "Backfill"): SchedulingRef(71.04, 142.45),
    ("CTC", "LWF"): SchedulingRef(51.28, 11.15),
    ("CTC", "Backfill"): SchedulingRef(51.28, 23.75),
    ("SDSC95", "LWF"): SchedulingRef(41.14, 14.48),
    ("SDSC95", "Backfill"): SchedulingRef(41.14, 21.98),
    ("SDSC96", "LWF"): SchedulingRef(46.79, 6.80),
    ("SDSC96", "Backfill"): SchedulingRef(46.79, 10.42),
}

TABLE11_MAX: dict[tuple[str, str], SchedulingRef] = {
    ("ANL", "LWF"): SchedulingRef(70.70, 83.81),
    ("ANL", "Backfill"): SchedulingRef(71.04, 177.14),
    ("CTC", "LWF"): SchedulingRef(51.28, 10.48),
    ("CTC", "Backfill"): SchedulingRef(51.28, 26.86),
    ("SDSC95", "LWF"): SchedulingRef(41.14, 14.95),
    ("SDSC95", "Backfill"): SchedulingRef(41.14, 28.20),
    ("SDSC96", "LWF"): SchedulingRef(46.79, 7.88),
    ("SDSC96", "Backfill"): SchedulingRef(46.79, 11.34),
}

TABLE12_SMITH: dict[tuple[str, str], SchedulingRef] = {
    ("ANL", "LWF"): SchedulingRef(70.28, 78.22),
    ("ANL", "Backfill"): SchedulingRef(71.04, 148.77),
    ("CTC", "LWF"): SchedulingRef(51.28, 13.40),
    ("CTC", "Backfill"): SchedulingRef(51.28, 22.54),
    ("SDSC95", "LWF"): SchedulingRef(41.14, 16.19),
    ("SDSC95", "Backfill"): SchedulingRef(41.14, 22.17),
    ("SDSC96", "LWF"): SchedulingRef(46.79, 7.79),
    ("SDSC96", "Backfill"): SchedulingRef(46.79, 10.10),
}

TABLE13_GIBBONS: dict[tuple[str, str], SchedulingRef] = {
    ("ANL", "LWF"): SchedulingRef(70.72, 90.36),
    ("ANL", "Backfill"): SchedulingRef(71.04, 181.38),
    ("CTC", "LWF"): SchedulingRef(51.28, 11.04),
    ("CTC", "Backfill"): SchedulingRef(51.28, 27.31),
    ("SDSC95", "LWF"): SchedulingRef(41.14, 15.99),
    ("SDSC95", "Backfill"): SchedulingRef(41.14, 24.83),
    ("SDSC96", "LWF"): SchedulingRef(46.79, 7.51),
    ("SDSC96", "Backfill"): SchedulingRef(46.79, 10.82),
}

TABLE14_DOWNEY_AVG: dict[tuple[str, str], SchedulingRef] = {
    ("ANL", "LWF"): SchedulingRef(71.04, 154.76),
    ("ANL", "Backfill"): SchedulingRef(70.88, 246.40),
    ("CTC", "LWF"): SchedulingRef(51.28, 9.87),
    ("CTC", "Backfill"): SchedulingRef(51.28, 14.45),
    ("SDSC95", "LWF"): SchedulingRef(41.14, 16.22),
    ("SDSC95", "Backfill"): SchedulingRef(41.14, 20.37),
    ("SDSC96", "LWF"): SchedulingRef(46.79, 7.88),
    ("SDSC96", "Backfill"): SchedulingRef(46.79, 8.25),
}

TABLE15_DOWNEY_MED: dict[tuple[str, str], SchedulingRef] = {
    ("ANL", "LWF"): SchedulingRef(71.04, 154.76),
    ("ANL", "Backfill"): SchedulingRef(71.04, 207.17),
    ("CTC", "LWF"): SchedulingRef(51.28, 11.54),
    ("CTC", "Backfill"): SchedulingRef(51.28, 16.72),
    ("SDSC95", "LWF"): SchedulingRef(41.14, 16.36),
    ("SDSC95", "Backfill"): SchedulingRef(41.14, 19.56),
    ("SDSC96", "LWF"): SchedulingRef(46.79, 7.80),
    ("SDSC96", "Backfill"): SchedulingRef(46.79, 8.02),
}

#: Tables 4-9 keyed by the predictor name the registry uses.
WAIT_TIME_TABLES: dict[str, tuple[int, dict[tuple[str, str], WaitTimeRef]]] = {
    "actual": (4, TABLE4_ACTUAL),
    "max": (5, TABLE5_MAX),
    "smith": (6, TABLE6_SMITH),
    "gibbons": (7, TABLE7_GIBBONS),
    "downey-average": (8, TABLE8_DOWNEY_AVG),
    "downey-median": (9, TABLE9_DOWNEY_MED),
}

#: Tables 10-15 keyed by predictor name.
SCHEDULING_TABLES: dict[str, tuple[int, dict[tuple[str, str], SchedulingRef]]] = {
    "actual": (10, TABLE10_ACTUAL),
    "max": (11, TABLE11_MAX),
    "smith": (12, TABLE12_SMITH),
    "gibbons": (13, TABLE13_GIBBONS),
    "downey-average": (14, TABLE14_DOWNEY_AVG),
    "downey-median": (15, TABLE15_DOWNEY_MED),
}
