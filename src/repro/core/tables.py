"""Plain-text table rendering in the paper's layout."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` selects and orders the columns; by default the keys of
    the first row are used.  Numeric cells are right-aligned.
    """
    if not rows:
        return (title + "\n(no rows)") if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(["" if row.get(c) is None else str(row.get(c)) for c in cols])
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    numeric = [
        all(_is_number(row.get(c)) for row in rows) for c in cols
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(cols))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append(fmt_line(r))
    return "\n".join(lines)


def _is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)
