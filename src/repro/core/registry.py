"""Named factories for predictors and policies.

Experiments identify their configuration by short strings — the same
labels the paper's tables use — and build fresh, stateless-history
instances per run through these factories.
"""

from __future__ import annotations

from typing import Iterable

from repro.predictors.adaptive import (
    DecayedMeanPredictor,
    OnlineMeanPredictor,
    OnlineRegressionPredictor,
)
from repro.predictors.base import RuntimePredictor
from repro.predictors.downey import DowneyPredictor
from repro.predictors.gibbons import GibbonsPredictor
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import Template
from repro.scheduler.policies import (
    BackfillPolicy,
    EASYBackfillPolicy,
    FCFSPolicy,
    LWFPolicy,
    Policy,
)
from repro.workloads.job import Trace

__all__ = ["PREDICTOR_NAMES", "POLICY_NAMES", "make_predictor", "make_policy"]

#: Predictors in the order the paper's tables present them.  The extra
#: "smith-tuned" entry uses the per-workload GA-searched template sets
#: of :mod:`repro.predictors.tuned` (the paper's actual methodology;
#: plain "smith" uses the curated defaults).  The three trailing
#: "online-*"/"decayed-*" entries are the adaptive online learners of
#: :mod:`repro.predictors.adaptive`, which post-date the paper.
PREDICTOR_NAMES: tuple[str, ...] = (
    "actual",
    "max",
    "smith",
    "smith-tuned",
    "gibbons",
    "downey-average",
    "downey-median",
    "online-mean",
    "online-rls",
    "decayed-mean",
)

POLICY_NAMES: tuple[str, ...] = ("fcfs", "lwf", "backfill", "easy")


def make_predictor(
    name: str,
    trace: Trace,
    *,
    templates: Iterable[Template] | None = None,
) -> RuntimePredictor:
    """Build a fresh predictor for ``trace``.

    ``templates`` overrides the Smith predictor's template set (e.g. one
    found by the genetic search); other predictors ignore it.
    """
    if name == "actual":
        return ActualRuntimePredictor()
    if name == "max":
        # Per-queue maxima are derived from the whole trace, as the paper
        # does for the SDSC workloads; user-supplied maxima win when present.
        return MaxRuntimePredictor.from_trace(trace)
    if name == "smith":
        if templates is not None:
            return SmithPredictor(templates)
        return SmithPredictor.for_trace(trace)
    if name == "smith-tuned":
        if templates is not None:
            return SmithPredictor(templates)
        from repro.predictors.tuned import TUNED_TEMPLATES

        # Compressed traces ("SDSC95x2") carry their workload identity
        # explicitly; parsing the display name would misread any base
        # name that itself contains an "x".
        tuned = TUNED_TEMPLATES.get(trace.base_name)
        if tuned is not None:
            return SmithPredictor(tuned)
        return SmithPredictor.for_trace(trace)
    if name == "online-mean":
        return OnlineMeanPredictor.for_trace(trace)
    if name == "online-rls":
        return OnlineRegressionPredictor.for_trace(trace)
    if name == "decayed-mean":
        return DecayedMeanPredictor.for_trace(trace)
    if name == "gibbons":
        return GibbonsPredictor()
    if name == "downey-average":
        return DowneyPredictor("average")
    if name == "downey-median":
        return DowneyPredictor("median")
    raise KeyError(f"unknown predictor {name!r}; expected one of {PREDICTOR_NAMES}")


def make_policy(name: str) -> Policy:
    if name == "fcfs":
        return FCFSPolicy()
    if name == "lwf":
        return LWFPolicy()
    if name == "backfill":
        return BackfillPolicy()
    if name == "easy":
        return EASYBackfillPolicy()
    raise KeyError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}")
