"""Half-up rounding for the paper's integer table columns.

Python's built-in :func:`round` implements banker's rounding
(``round(86.5) == 86``), but the paper's tables — like essentially every
hand-rounded table — round halves away from zero (``86.5`` prints as
``87``).  Reproduced integer percent columns therefore go through
:func:`round_half_up` so a cell landing exactly on ``.5`` matches the
published digit.
"""

from __future__ import annotations

from decimal import ROUND_HALF_UP, Decimal

__all__ = ["round_half_up"]


def round_half_up(value: float, ndigits: int = 0) -> int | float:
    """Round ``value`` to ``ndigits`` decimals, halves away from zero.

    Returns an ``int`` for ``ndigits <= 0`` (the table columns' case)
    and a ``float`` otherwise.  The value is routed through its decimal
    string repr, so ``86.5`` — which the binary float stores exactly —
    rounds on its printed digits, not on binary artifacts.
    """
    quantum = Decimal(1).scaleb(-ndigits)
    rounded = Decimal(str(value)).quantize(quantum, rounding=ROUND_HALF_UP)
    return int(rounded) if ndigits <= 0 else float(rounded)
