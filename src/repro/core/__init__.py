"""Experiment drivers reproducing the paper's tables.

- :mod:`repro.core.registry` — named factories for predictors and
  policies, so experiments are configured by strings;
- :mod:`repro.core.experiment` — the two experiment families: wait-time
  prediction accuracy (Tables 4-9) and scheduling performance
  (Tables 10-15), plus run-time prediction accuracy and the compressed-
  interarrival study;
- :mod:`repro.core.parallel` — process-pool execution of a table's
  (workload, algorithm, predictor) cell grid with deterministic per-cell
  regeneration, bounded retry, and metrics merging;
- :mod:`repro.core.tables` — plain-text rendering in the paper's layout.
"""

from repro.core.registry import (
    PREDICTOR_NAMES,
    POLICY_NAMES,
    make_policy,
    make_predictor,
)
from repro.core.parallel import (
    CellFailure,
    CellResult,
    CellSpec,
    ExperimentPlan,
    ParallelExecutionError,
    TableRun,
    execute_cell,
    run_table_parallel,
)
from repro.core.rounding import round_half_up
from repro.core.experiment import (
    SchedulingCell,
    WaitTimeCell,
    RuntimePredictionCell,
    run_scheduling_experiment,
    run_scheduling_table,
    run_wait_time_experiment,
    run_wait_time_table,
    run_runtime_prediction_experiment,
)
from repro.core.tables import format_table

__all__ = [
    "PREDICTOR_NAMES",
    "POLICY_NAMES",
    "make_policy",
    "make_predictor",
    "SchedulingCell",
    "WaitTimeCell",
    "RuntimePredictionCell",
    "run_scheduling_experiment",
    "run_scheduling_table",
    "run_wait_time_experiment",
    "run_wait_time_table",
    "run_runtime_prediction_experiment",
    "CellSpec",
    "CellResult",
    "CellFailure",
    "ExperimentPlan",
    "TableRun",
    "ParallelExecutionError",
    "execute_cell",
    "run_table_parallel",
    "round_half_up",
    "format_table",
]
