"""Experiment drivers reproducing the paper's tables.

- :mod:`repro.core.registry` — named factories for predictors and
  policies, so experiments are configured by strings;
- :mod:`repro.core.experiment` — the two experiment families: wait-time
  prediction accuracy (Tables 4-9) and scheduling performance
  (Tables 10-15), plus run-time prediction accuracy and the compressed-
  interarrival study;
- :mod:`repro.core.tables` — plain-text rendering in the paper's layout.
"""

from repro.core.registry import (
    PREDICTOR_NAMES,
    POLICY_NAMES,
    make_policy,
    make_predictor,
)
from repro.core.experiment import (
    SchedulingCell,
    WaitTimeCell,
    RuntimePredictionCell,
    run_scheduling_experiment,
    run_scheduling_table,
    run_wait_time_experiment,
    run_wait_time_table,
    run_runtime_prediction_experiment,
)
from repro.core.tables import format_table

__all__ = [
    "PREDICTOR_NAMES",
    "POLICY_NAMES",
    "make_policy",
    "make_predictor",
    "SchedulingCell",
    "WaitTimeCell",
    "RuntimePredictionCell",
    "run_scheduling_experiment",
    "run_scheduling_table",
    "run_wait_time_experiment",
    "run_wait_time_table",
    "run_runtime_prediction_experiment",
    "format_table",
]
