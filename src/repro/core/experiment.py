"""The paper's two experiment families.

**Wait-time prediction** (§3, Tables 4-9): the scheduler runs on user
maximum run times — the paper's stated simulation setup — while a
:class:`~repro.waitpred.predictor.WaitTimePredictor` observer, backed by
the evaluated run-time predictor, predicts every job's wait at
submission.  The cell reports mean |predicted − actual| wait in minutes
and as a percentage of the mean wait.

**Scheduling performance** (§4, Tables 10-15): the evaluated predictor
drives the scheduler itself (LWF's work ordering, backfill's profile);
the cell reports utilization and mean wait time.

A third driver scores raw run-time prediction accuracy (§3's
percentage-of-mean-run-time numbers) via the online replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.registry import make_policy, make_predictor
from repro.core.rounding import round_half_up
from repro.predictors.base import PointEstimator
from repro.predictors.replay import replay_prediction_error
from repro.predictors.templates import Template
from repro.scheduler.metrics import ScheduleResult
from repro.scheduler.simulator import Simulator
from repro.waitpred.evaluation import WaitPredictionReport, evaluate_wait_predictions
from repro.waitpred.predictor import WaitTimePredictor
from repro.workloads.archive import PAPER_WORKLOADS, load_paper_workload
from repro.workloads.job import Trace

__all__ = [
    "WaitTimeCell",
    "SchedulingCell",
    "RuntimePredictionCell",
    "run_wait_time_experiment",
    "run_scheduling_experiment",
    "run_runtime_prediction_experiment",
    "run_wait_time_table",
    "run_scheduling_table",
]


@dataclass(frozen=True)
class WaitTimeCell:
    """One row of a Table 4-9 style result."""

    workload: str
    algorithm: str
    predictor: str
    mean_error_minutes: float
    percent_of_mean_wait: float
    mean_wait_minutes: float
    n_jobs: int
    #: Registry snapshot of the replay that produced the cell (see
    #: repro.obs); excluded from equality so result comparisons stay
    #: about the science, not the bookkeeping.
    metrics: dict | None = field(default=None, compare=False, repr=False)

    def as_row(self) -> dict[str, object]:
        return {
            "Workload": self.workload,
            "Scheduling Algorithm": self.algorithm,
            "Mean Error (minutes)": round(self.mean_error_minutes, 2),
            "Percentage of Mean Wait Time": round_half_up(self.percent_of_mean_wait),
        }


@dataclass(frozen=True)
class SchedulingCell:
    """One row of a Table 10-15 style result."""

    workload: str
    algorithm: str
    predictor: str
    utilization_percent: float
    mean_wait_minutes: float
    n_jobs: int
    #: Registry snapshot of the replay that produced the cell.
    metrics: dict | None = field(default=None, compare=False, repr=False)

    def as_row(self) -> dict[str, object]:
        return {
            "Workload": self.workload,
            "Scheduling Algorithm": self.algorithm,
            "Utilization (percent)": round(self.utilization_percent, 2),
            "Mean Wait Time (minutes)": round(self.mean_wait_minutes, 2),
        }


@dataclass(frozen=True)
class RuntimePredictionCell:
    """Run-time prediction accuracy for one (workload, predictor)."""

    workload: str
    predictor: str
    mean_error_minutes: float
    percent_of_mean_run_time: float
    n_jobs: int

    def as_row(self) -> dict[str, object]:
        return {
            "Workload": self.workload,
            "Predictor": self.predictor,
            "Mean Error (minutes)": round(self.mean_error_minutes, 2),
            "Percentage of Mean Run Time": round_half_up(self.percent_of_mean_run_time),
        }


# ----------------------------------------------------------------------
# single-cell drivers
# ----------------------------------------------------------------------
def _resolve_templates(predictor_name, trace, policy_name, templates):
    """For ``smith-tuned``, prefer the per-(workload, algorithm) searched
    set — the paper's 12-search methodology — over the workload-level one."""
    if templates is not None or predictor_name != "smith-tuned":
        return templates
    from repro.predictors.tuned import TUNED_TEMPLATES_BY_ALGORITHM

    return TUNED_TEMPLATES_BY_ALGORITHM.get((trace.base_name, policy_name), None)


def run_wait_time_experiment(
    trace: Trace,
    policy_name: str,
    predictor_name: str,
    *,
    templates: Iterable[Template] | None = None,
    scheduler_predictor: str = "max",
    instrumentation=None,
) -> tuple[WaitTimeCell, WaitPredictionReport, ScheduleResult]:
    """Tables 4-9 cell: wait-time prediction accuracy.

    The scheduler's own estimates come from ``scheduler_predictor``
    (user maxima, per §3); the observer's come from ``predictor_name``.
    An :class:`repro.obs.Instrumentation` bundle, when given, is shared
    by the simulator, the scheduler's estimator and the observer — with
    ``audit=True`` the replay leaves a full prediction audit trail.
    """
    policy = make_policy(policy_name)
    templates = _resolve_templates(predictor_name, trace, policy_name, templates)
    scheduler_estimator = PointEstimator(
        make_predictor(scheduler_predictor, trace),
        instrumentation=instrumentation,
    )
    sim = Simulator(
        policy,
        scheduler_estimator,
        trace.total_nodes,
        instrumentation=instrumentation,
    )
    observer = WaitTimePredictor(
        policy,
        make_predictor(predictor_name, trace, templates=templates),
        scheduler_estimator=scheduler_estimator,
        instrumentation=instrumentation,
    )
    sim.add_observer(observer)
    result = sim.run(trace)
    report = evaluate_wait_predictions(result, observer.predicted_waits)
    cell = WaitTimeCell(
        workload=trace.name,
        algorithm=policy.name,
        predictor=predictor_name,
        mean_error_minutes=report.mean_abs_error_minutes,
        percent_of_mean_wait=report.percent_of_mean_wait,
        mean_wait_minutes=report.mean_wait_minutes,
        n_jobs=report.n_jobs,
        metrics=sim.metrics_snapshot(),
    )
    return cell, report, result


def run_scheduling_experiment(
    trace: Trace,
    policy_name: str,
    predictor_name: str,
    *,
    templates: Iterable[Template] | None = None,
    instrumentation=None,
) -> tuple[SchedulingCell, ScheduleResult]:
    """Tables 10-15 cell: scheduling performance under a predictor.

    ``instrumentation`` (an :class:`repro.obs.Instrumentation`) is shared
    by the simulator and the estimator; with ``audit=True`` every
    run-time prediction is paired with its outcome.
    """
    policy = make_policy(policy_name)
    templates = _resolve_templates(predictor_name, trace, policy_name, templates)
    estimator = PointEstimator(
        make_predictor(predictor_name, trace, templates=templates),
        instrumentation=instrumentation,
    )
    sim = Simulator(
        policy, estimator, trace.total_nodes, instrumentation=instrumentation
    )
    result = sim.run(trace)
    cell = SchedulingCell(
        workload=trace.name,
        algorithm=policy.name,
        predictor=predictor_name,
        utilization_percent=result.utilization_percent,
        mean_wait_minutes=result.mean_wait_minutes,
        n_jobs=len(result),
        metrics=sim.metrics_snapshot(),
    )
    return cell, result


def run_runtime_prediction_experiment(
    trace: Trace,
    predictor_name: str,
    *,
    templates: Iterable[Template] | None = None,
) -> RuntimePredictionCell:
    """Run-time prediction accuracy via online replay (§3 text numbers)."""
    report = replay_prediction_error(
        trace, make_predictor(predictor_name, trace, templates=templates)
    )
    return RuntimePredictionCell(
        workload=trace.name,
        predictor=predictor_name,
        mean_error_minutes=report.mean_abs_error_minutes,
        percent_of_mean_run_time=100.0 * report.error_fraction_of_mean_run_time,
        n_jobs=report.n_jobs,
    )


# ----------------------------------------------------------------------
# whole-table drivers
# ----------------------------------------------------------------------
def _resolve_traces(
    workloads: Sequence[str] | Sequence[Trace] | None, n_jobs: int | None
) -> list[Trace]:
    if workloads is None:
        workloads = tuple(PAPER_WORKLOADS)
    traces: list[Trace] = []
    for w in workloads:
        if isinstance(w, Trace):
            traces.append(w)
        else:
            traces.append(load_paper_workload(w, n_jobs=n_jobs))
    return traces


def _run_table_cells(
    kind: str,
    predictor_name: str,
    workloads,
    algorithms: Sequence[str],
    n_jobs: int | None,
    templates: Iterable[Template] | None,
    max_workers: int | None,
    cell_timeout: float | None,
    retries: int,
    telemetry=None,
) -> list:
    """Fan the table's cell grid across processes (``max_workers > 1``).

    Cells come back in the serial drivers' order; any cell that still
    fails after its retry budget raises
    :class:`repro.core.parallel.ParallelExecutionError`.  ``telemetry``
    (a :class:`repro.obs.campaign.CampaignTelemetry`) makes the run an
    observable campaign — see :func:`repro.core.parallel.run_table_parallel`.
    """
    from repro.core.parallel import (
        ExperimentPlan,
        ParallelExecutionError,
        run_table_parallel,
    )

    plan = ExperimentPlan.for_table(
        kind,
        predictor_name,
        workloads=workloads,
        algorithms=algorithms,
        n_jobs=n_jobs,
        templates=None if templates is None else tuple(templates),
    )
    run = run_table_parallel(
        plan, max_workers=max_workers, timeout=cell_timeout, retries=retries,
        telemetry=telemetry,
    )
    if run.failures:
        raise ParallelExecutionError(run.failures)
    return run.cells


def run_wait_time_table(
    predictor_name: str,
    *,
    workloads: Sequence[str] | Sequence[Trace] | None = None,
    algorithms: Sequence[str] = ("fcfs", "lwf", "backfill"),
    n_jobs: int | None = None,
    templates: Iterable[Template] | None = None,
    max_workers: int = 1,
    cell_timeout: float | None = None,
    retries: int = 1,
    telemetry=None,
) -> list[WaitTimeCell]:
    """All cells of one of Tables 4-9 (one predictor, all workloads/algos).

    ``max_workers > 1`` runs the grid on a process pool (see
    :mod:`repro.core.parallel`); the default serial path is untouched.
    ``telemetry`` applies to the parallel path only.
    """
    if max_workers != 1:
        return _run_table_cells(
            "wait-time", predictor_name, workloads, algorithms, n_jobs,
            templates, max_workers, cell_timeout, retries, telemetry,
        )
    cells = []
    for trace in _resolve_traces(workloads, n_jobs):
        for algo in algorithms:
            cell, _, _ = run_wait_time_experiment(
                trace, algo, predictor_name, templates=templates
            )
            cells.append(cell)
    return cells


def run_scheduling_table(
    predictor_name: str,
    *,
    workloads: Sequence[str] | Sequence[Trace] | None = None,
    algorithms: Sequence[str] = ("lwf", "backfill"),
    n_jobs: int | None = None,
    templates: Iterable[Template] | None = None,
    max_workers: int = 1,
    cell_timeout: float | None = None,
    retries: int = 1,
    telemetry=None,
) -> list[SchedulingCell]:
    """All cells of one of Tables 10-15 (one predictor).

    ``max_workers > 1`` runs the grid on a process pool (see
    :mod:`repro.core.parallel`); the default serial path is untouched.
    ``telemetry`` applies to the parallel path only.
    """
    if max_workers != 1:
        return _run_table_cells(
            "scheduling", predictor_name, workloads, algorithms, n_jobs,
            templates, max_workers, cell_timeout, retries, telemetry,
        )
    cells = []
    for trace in _resolve_traces(workloads, n_jobs):
        for algo in algorithms:
            cell, _ = run_scheduling_experiment(
                trace, algo, predictor_name, templates=templates
            )
            cells.append(cell)
    return cells
