"""Statistics substrate: confidence intervals and regression estimators.

The run-time predictors of the paper (Section 2.1) rate each candidate
category by the width of the confidence interval around its estimate and
select the tightest one.  This package implements the required machinery
from first principles on top of NumPy:

- :mod:`repro.stats.ci` — running sample moments and Student-t confidence
  intervals for a sample mean;
- :mod:`repro.stats.regression` — linear, inverse, and logarithmic least
  squares regressions with prediction confidence intervals, plus the
  variance-weighted linear regression used by Gibbons' predictor.
"""

from repro.stats.ci import RunningMoments, mean_confidence_interval, t_quantile
from repro.stats.regression import (
    RegressionResult,
    fit_inverse,
    fit_linear,
    fit_logarithmic,
    fit_weighted_linear,
)
from repro.stats.bootstrap import (
    BootstrapInterval,
    bootstrap_mean,
    bootstrap_mean_difference,
)

__all__ = [
    "RunningMoments",
    "mean_confidence_interval",
    "t_quantile",
    "RegressionResult",
    "fit_linear",
    "fit_inverse",
    "fit_logarithmic",
    "fit_weighted_linear",
    "BootstrapInterval",
    "bootstrap_mean",
    "bootstrap_mean_difference",
]
