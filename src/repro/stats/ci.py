"""Sample moments and Student-t confidence intervals.

A *prediction* in this library is always an estimate plus a confidence
interval half-width; the Smith predictor picks, among all categories that
match a job, the category whose interval is tightest (paper §2.1, step
2(d)).  The interval for a category mean over ``n`` points with sample
standard deviation ``s`` is the classic

    mean ± t_{n-1, (1+conf)/2} * s * sqrt(1 + 1/n)

i.e. a *prediction* interval for the next draw rather than a confidence
interval for the mean itself — the quantity of interest is the run time of
the new job, not the category average.  (Using the mean-CI instead only
rescales all widths by roughly ``sqrt(n)`` and does not change which
category wins for same-size categories; the prediction interval is what
makes small, tight categories beat huge, diffuse ones.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["t_quantile", "mean_confidence_interval", "RunningMoments"]

_T_CACHE: dict[tuple[int, float], float] = {}


def _t_quantile_uncached(df: int, p: float) -> float:
    # Inverse CDF of Student's t via the inverse incomplete beta function.
    # Uses scipy when available; otherwise falls back to the Cornish-Fisher
    # expansion around the normal quantile, which is accurate to ~1e-3 for
    # df >= 3 and adequate for ranking interval widths.
    try:  # pragma: no cover - exercised when scipy is installed
        from scipy.stats import t as _t

        return float(_t.ppf(p, df))
    except Exception:  # pragma: no cover - scipy always present in CI
        z = _normal_quantile(p)
        g1 = (z**3 + z) / 4.0
        g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
        g3 = (3 * z**7 + 19 * z**5 + 17 * z**3 - 15 * z) / 384.0
        g4 = (79 * z**9 + 776 * z**7 + 1482 * z**5 - 1920 * z**3 - 945 * z) / 92160.0
        return float(z + g1 / df + g2 / df**2 + g3 / df**3 + g4 / df**4)


def _normal_quantile(p: float) -> float:
    # Acklam's rational approximation to the inverse normal CDF.
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    plow, phigh = 0.02425, 1 - 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p > phigh:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )


def t_quantile(df: int, p: float) -> float:
    """Quantile function of Student's t with ``df`` degrees of freedom.

    Results are memoized — predictors call this with a handful of distinct
    ``(df, p)`` pairs millions of times during a trace replay.
    """
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    key = (df, p)
    v = _T_CACHE.get(key)
    if v is None:
        v = _t_quantile_uncached(df, p)
        _T_CACHE[key] = v
    return v


def mean_confidence_interval(
    values: np.ndarray | list[float],
    confidence: float = 0.90,
    *,
    prediction: bool = True,
) -> tuple[float, float]:
    """Return ``(mean, half_width)`` of the confidence interval for a sample.

    With ``prediction=True`` (default) the half-width is for a *prediction*
    interval on the next observation; with ``False`` it is the interval for
    the mean.  Requires at least two values (otherwise the variance, and
    hence the interval, is undefined); raises :class:`ValueError` below that.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 2:
        raise ValueError("confidence interval requires at least 2 values")
    m = float(x.mean())
    s = float(x.std(ddof=1))
    t = t_quantile(n - 1, 0.5 + confidence / 2.0)
    scale = math.sqrt(1.0 + 1.0 / n) if prediction else math.sqrt(1.0 / n)
    return m, t * s * scale


@dataclass
class RunningMoments:
    """Incrementally maintained count / mean / M2 (Welford's algorithm).

    Supports ``remove`` so bounded-history categories can retire their
    oldest observation in O(1) without rescanning.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    def remove(self, x: float) -> None:
        """Remove a previously added value (inverse Welford update)."""
        if self.count <= 0:
            raise ValueError("cannot remove from an empty RunningMoments")
        if self.count == 1:
            self.count = 0
            self.mean = 0.0
            self._m2 = 0.0
            return
        old_mean = (self.count * self.mean - x) / (self.count - 1)
        self._m2 -= (x - self.mean) * (x - old_mean)
        # Guard against tiny negative residue from floating point cancellation.
        if self._m2 < 0.0:
            self._m2 = 0.0
        self.count -= 1
        self.mean = old_mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0.0 when fewer than two points."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def interval(self, confidence: float = 0.90, *, prediction: bool = True) -> tuple[float, float]:
        """``(mean, half_width)`` as in :func:`mean_confidence_interval`."""
        if self.count < 2:
            raise ValueError("confidence interval requires at least 2 values")
        t = t_quantile(self.count - 1, 0.5 + confidence / 2.0)
        scale = math.sqrt(1.0 + 1.0 / self.count) if prediction else math.sqrt(1.0 / self.count)
        return self.mean, t * self.std * scale
