"""Bootstrap resampling for comparing schedule metrics.

The paper reports point differences between predictors ("2 to 67
percent smaller mean wait times").  Mean waits are heavy-tailed, so
point differences on one trace can be noise; these helpers put
bootstrap confidence intervals on a mean and on the difference of two
paired means, which the robustness benches use to temper their claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import rng_from_seed

__all__ = ["BootstrapInterval", "bootstrap_mean", "bootstrap_mean_difference"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap estimate with its percentile confidence interval."""

    estimate: float
    lo: float
    hi: float
    confidence: float
    resamples: int

    def excludes_zero(self) -> bool:
        """True when the interval lies strictly on one side of zero."""
        return self.lo > 0.0 or self.hi < 0.0


def _check(confidence: float, resamples: int) -> None:
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise ValueError(f"resamples must be >= 10, got {resamples}")


def bootstrap_mean(
    values,
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | np.random.Generator = 0,
) -> BootstrapInterval:
    """Percentile bootstrap interval for the mean of ``values``."""
    _check(confidence, resamples)
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = rng_from_seed(seed)
    idx = rng.integers(0, x.size, size=(resamples, x.size))
    means = x[idx].mean(axis=1)
    half = 100.0 * (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(x.mean()),
        lo=float(np.percentile(means, half)),
        hi=float(np.percentile(means, 100.0 - half)),
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_mean_difference(
    a,
    b,
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | np.random.Generator = 0,
) -> BootstrapInterval:
    """Interval for ``mean(a) - mean(b)`` with **paired** resampling.

    ``a`` and ``b`` must be aligned per-job observations (e.g. the same
    jobs' waits under two predictors); pairing removes the shared
    between-job variance and is the right comparison for same-trace
    experiments.
    """
    _check(confidence, resamples)
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    if xa.size != xb.size:
        raise ValueError(
            f"paired samples must align: {xa.size} vs {xb.size} observations"
        )
    if xa.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    diffs = xa - xb
    rng = rng_from_seed(seed)
    idx = rng.integers(0, diffs.size, size=(resamples, diffs.size))
    means = diffs[idx].mean(axis=1)
    half = 100.0 * (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(diffs.mean()),
        lo=float(np.percentile(means, half)),
        hi=float(np.percentile(means, 100.0 - half)),
        confidence=confidence,
        resamples=resamples,
    )
