"""Least-squares regressions with prediction confidence intervals.

The paper's earlier work [Smith/Foster/Taylor 1998] considered four
category estimators: the mean and three simple regressions of run time
against the requested number of nodes —

- *linear*:       t = b0 + b1 * n
- *inverse*:      t = b0 + b1 / n
- *logarithmic*:  t = b0 + b1 * ln(n)

All three are ordinary least squares in a transformed regressor x = f(n),
so one implementation serves all.  ``fit_weighted_linear`` additionally
implements the variance-weighted regression Gibbons performs across
subcategory means (§2.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.stats.ci import t_quantile

__all__ = [
    "RegressionResult",
    "fit_linear",
    "fit_inverse",
    "fit_logarithmic",
    "fit_weighted_linear",
]


@dataclass(frozen=True)
class RegressionResult:
    """A fitted one-regressor least squares model ``y = b0 + b1 * f(x)``."""

    intercept: float
    slope: float
    n: int
    x_mean: float
    sxx: float
    residual_variance: float
    transform: Callable[[float], float]

    def predict(self, x: float) -> float:
        """Point prediction at raw regressor value ``x``."""
        return self.intercept + self.slope * self.transform(x)

    def prediction_interval(self, x: float, confidence: float = 0.90) -> tuple[float, float]:
        """``(prediction, half_width)`` of the prediction interval at ``x``.

        The half-width uses the standard OLS prediction-variance formula
        ``s^2 * (1 + 1/n + (x - xbar)^2 / Sxx)``.  Degenerate designs
        (``Sxx == 0``, i.e. all observations at one regressor value) fall
        back to treating the fit as a plain mean.
        """
        xf = self.transform(x)
        if self.n < 3:
            raise ValueError("prediction interval requires at least 3 points")
        s2 = self.residual_variance
        if self.sxx > 0.0:
            var = s2 * (1.0 + 1.0 / self.n + (xf - self.x_mean) ** 2 / self.sxx)
            df = self.n - 2
        else:
            var = s2 * (1.0 + 1.0 / self.n)
            df = self.n - 1
        t = t_quantile(max(df, 1), 0.5 + confidence / 2.0)
        return self.predict(x), t * math.sqrt(max(var, 0.0))


def _fit(
    x: np.ndarray, y: np.ndarray, transform: Callable[[float], float]
) -> RegressionResult:
    xf = np.array([transform(v) for v in np.asarray(x, dtype=float)])
    y = np.asarray(y, dtype=float)
    n = y.size
    if n < 2:
        raise ValueError("regression requires at least 2 points")
    if xf.size != n:
        raise ValueError("x and y must have the same length")
    x_mean = float(xf.mean())
    sxx = float(((xf - x_mean) ** 2).sum())
    if sxx > 0.0:
        slope = float(((xf - x_mean) * (y - y.mean())).sum() / sxx)
        intercept = float(y.mean() - slope * x_mean)
        resid = y - (intercept + slope * xf)
        df = n - 2
        residual_variance = float((resid**2).sum() / df) if df > 0 else 0.0
    else:
        # Degenerate design: every point has the same regressor value.  The
        # best fit is the sample mean with zero slope.
        slope = 0.0
        intercept = float(y.mean())
        resid = y - intercept
        df = n - 1
        residual_variance = float((resid**2).sum() / df) if df > 0 else 0.0
    return RegressionResult(
        intercept=intercept,
        slope=slope,
        n=n,
        x_mean=x_mean,
        sxx=sxx,
        residual_variance=residual_variance,
        transform=transform,
    )


def _identity(v: float) -> float:
    return v


def _reciprocal(v: float) -> float:
    if v <= 0:
        raise ValueError(f"inverse regression requires positive x, got {v}")
    return 1.0 / v


def _log(v: float) -> float:
    if v <= 0:
        raise ValueError(f"logarithmic regression requires positive x, got {v}")
    return math.log(v)


def fit_linear(x, y) -> RegressionResult:
    """OLS fit of ``y = b0 + b1 * x``."""
    return _fit(np.asarray(x), np.asarray(y), _identity)


def fit_inverse(x, y) -> RegressionResult:
    """OLS fit of ``y = b0 + b1 / x`` (x must be positive)."""
    return _fit(np.asarray(x), np.asarray(y), _reciprocal)


def fit_logarithmic(x, y) -> RegressionResult:
    """OLS fit of ``y = b0 + b1 * ln x`` (x must be positive)."""
    return _fit(np.asarray(x), np.asarray(y), _log)


def fit_weighted_linear(
    x, y, weights
) -> tuple[float, float]:
    """Weighted least squares fit of ``y = b0 + b1 * x``.

    Returns ``(intercept, slope)``.  Gibbons' predictor regresses the mean
    run time of each subcategory on its mean node count, weighting each
    point by the inverse of the run-time variance within the subcategory
    (§2.2).  Zero-variance subcategories should be given some large finite
    weight by the caller.  A degenerate design again collapses to the
    weighted mean.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    w = np.asarray(weights, dtype=float)
    if not (x.size == y.size == w.size):
        raise ValueError("x, y, weights must have the same length")
    if x.size == 0:
        raise ValueError("weighted regression requires at least 1 point")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    wsum = float(w.sum())
    if wsum <= 0:
        raise ValueError("weights must not all be zero")
    xbar = float((w * x).sum() / wsum)
    ybar = float((w * y).sum() / wsum)
    sxx = float((w * (x - xbar) ** 2).sum())
    if sxx > 0.0:
        slope = float((w * (x - xbar) * (y - ybar)).sum() / sxx)
    else:
        slope = 0.0
    intercept = ybar - slope * xbar
    return intercept, slope
