"""Predictor protocol and the scheduler-facing point-estimate adapter.

A :class:`RuntimePredictor` produces a rich :class:`Prediction` (estimate
plus confidence-interval half-width) or ``None`` when it has no basis for
one — e.g. the Smith predictor during its ramp-up, before any similar job
has completed (paper §2.1).  The scheduler, by contrast, always needs *a*
number.  :class:`PointEstimator` bridges the two with the fallback chain
the experiments use:

    predictor → user-supplied max run time → running mean of all
    completed jobs → a fixed default

and clamps every estimate to at least the elapsed run time, since a job
that has already run ``a`` seconds cannot finish sooner.

Estimate epochs
---------------
Predictors are pure functions of ``(job, elapsed)`` given a fixed
history; only the lifecycle hooks change history.  :class:`PointEstimator`
therefore exposes a ``history_epoch`` counter that it bumps whenever the
wrapped predictor's history (or its own fallback statistics) may have
changed.  The simulator uses the epoch to keep queued-job estimates
cached *across* scheduling passes — recomputing the whole queue only
when the epoch moves — which is exact precisely because of that purity.
An estimator whose predictions vary with wall-clock time or call count
must not advertise an epoch; construct :class:`PointEstimator` with
``volatile=True`` to fall back to per-pass memoization.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.workloads.job import Job

__all__ = ["Prediction", "RuntimePredictor", "PointEstimator", "warm_start"]


def warm_start(predictor: "RuntimePredictor", jobs) -> "RuntimePredictor":
    """Pre-load a predictor's history from a training set.

    The paper notes (§2.1) that the initial ramp-up — no predictions
    until similar jobs have completed — "could be corrected by using a
    training set to initialize C".  This feeds every job of ``jobs``
    (e.g. a prefix trace) to the predictor's completion hook, in order,
    and returns the predictor for chaining.
    """
    for job in jobs:
        predictor.on_finish(job, job.submit_time + job.run_time)
    return predictor


@dataclass(frozen=True)
class Prediction:
    """A run-time estimate with its confidence interval half-width."""

    estimate: float
    interval: float
    source: str = ""

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")


class RuntimePredictor(ABC):
    """Interface all run-time predictors implement.

    ``elapsed`` is how long the job has been executing when the prediction
    is requested (0.0 for queued jobs); history-based predictors condition
    on it.  Lifecycle hooks mirror the simulator's estimator protocol;
    only :meth:`on_finish` matters to the historical predictors, which
    insert a data point as soon as a job completes (§2.1 step 3).
    """

    name: str = "predictor"

    #: Monotone counter of prediction-visible history changes, or ``None``
    #: when the predictor does not track one.  A predictor that returns an
    #: int here promises its ``predict`` output for any fixed
    #: ``(job, elapsed)`` is unchanged while the value is unchanged;
    #: :class:`PointEstimator` then keys its cache-invalidation epoch on
    #: it instead of pessimistically bumping whenever a lifecycle hook is
    #: overridden.
    history_epoch: int | None = None

    #: ``True`` promises ``predict``'s output ignores ``elapsed`` and
    #: ``now`` entirely (given fixed history): the prediction for a
    #: running job equals the prediction made while it was queued.  The
    #: simulator then serves running-job remaining times from its
    #: cross-pass cache instead of re-predicting each pass.  Predictors
    #: that condition on elapsed run time (Smith/category, Downey,
    #: Gibbons) must leave this ``False``.
    elapsed_invariant: bool = False

    @abstractmethod
    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        """Predict the job's total run time, or ``None`` if impossible."""

    # Lifecycle hooks are deliberate no-ops here, NOT excluded from
    # coverage: adaptive predictors override them, and the signature
    # tests in tests/test_predictors_simple_base.py pin their shape so
    # an override that drifts (extra argument, renamed parameter) fails
    # loudly instead of silently never being called.
    def on_submit(self, job: Job, now: float) -> None:
        pass

    def on_start(self, job: Job, now: float) -> None:
        pass

    def on_finish(self, job: Job, now: float) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class PointEstimator:
    """Adapt a :class:`RuntimePredictor` into a scheduler estimator.

    Implements the ``predict(job, elapsed, now) -> float`` protocol of
    :mod:`repro.scheduler.simulator` plus the lifecycle hooks, forwarding
    them to the wrapped predictor so its history stays current.
    """

    def __init__(
        self,
        predictor: RuntimePredictor,
        *,
        fall_back_to_max: bool = True,
        default: float = 600.0,
        cap_at_max: bool = False,
        volatile: bool = False,
        instrumentation=None,
    ) -> None:
        if default <= 0:
            raise ValueError(f"default must be positive, got {default}")
        self.predictor = predictor
        self.fall_back_to_max = fall_back_to_max
        self.default = default
        self.cap_at_max = cap_at_max
        self._completed_sum = 0.0
        self._completed_count = 0
        self._epoch = 0
        self._volatile = volatile
        # Fallback-chain tallies, kept as plain ints (this sits on the
        # replay hot path) and exported via obs_stats() for the metrics
        # snapshot.
        self.predict_calls = 0
        self.predicted = 0
        self.fallback_max = 0
        self.fallback_mean = 0
        self.fallback_default = 0
        # Submit/start hooks are no-ops on the RuntimePredictor base; only
        # bump the epoch for predictors that actually override them, so a
        # start does not needlessly flush the simulator's estimate cache.
        ptype = type(predictor)
        # A predictor with its own history_epoch is trusted to report its
        # changes; otherwise assume any overridden lifecycle hook mutates
        # prediction-visible state and bump pessimistically.
        self._pred_tracks_epoch = (
            getattr(predictor, "history_epoch", None) is not None
        )
        self._bump_on_submit = not self._pred_tracks_epoch and (
            getattr(ptype, "on_submit", None) is not RuntimePredictor.on_submit
        )
        self._bump_on_start = not self._pred_tracks_epoch and (
            getattr(ptype, "on_start", None) is not RuntimePredictor.on_start
        )
        self._bump_on_finish = not self._pred_tracks_epoch and (
            getattr(ptype, "on_finish", None) is not RuntimePredictor.on_finish
        )
        # A completion always moves the running-mean fallback, but that
        # only invalidates cached estimates if some prediction since the
        # last bump actually consumed the mean; track consumption so
        # static predictors (user maxima, actual run times) keep a
        # permanently valid cache.
        self._mean_used = False
        # Prediction audit: when the instrumentation bundle carries one,
        # shadow on_submit with the audited variant on this instance so
        # the un-audited path executes zero extra instructions.
        self._audit = getattr(instrumentation, "audit", None)
        if self._audit is not None:
            self.on_submit = self._on_submit_audited  # type: ignore[method-assign]

    @property
    def name(self) -> str:
        return self.predictor.name

    @property
    def history_epoch(self) -> object | None:
        """Monotone marker; unchanged value means unchanged predictions.

        ``None`` for volatile estimators, which disables cross-pass
        caching in the simulator (every pass re-predicts, the pre-epoch
        behaviour).  When the wrapped predictor tracks its own epoch the
        marker combines it with the adapter's fallback epoch.
        """
        if self._volatile:
            return None
        if self._pred_tracks_epoch:
            pred_epoch = self.predictor.history_epoch
            if pred_epoch is None:
                return None
            return (self._epoch, pred_epoch)
        return self._epoch

    def predict(self, job: Job, elapsed: float, now: float) -> float:
        self.predict_calls += 1
        pred = self.predictor.predict(job, elapsed, now)
        if pred is not None:
            est = pred.estimate
            self.predicted += 1
        elif self.fall_back_to_max and job.max_run_time is not None:
            est = job.max_run_time
            self.fallback_max += 1
        elif self._completed_count > 0:
            est = self._completed_sum / self._completed_count
            self._mean_used = True
            self.fallback_mean += 1
        else:
            # The default gives way to the running mean at the first
            # completion, so it counts as mean consumption too.
            est = self.default
            self._mean_used = True
            self.fallback_default += 1
        if self.cap_at_max and job.max_run_time is not None:
            est = min(est, job.max_run_time)
        return max(est, elapsed)

    def obs_stats(self) -> dict[str, int]:
        """Fallback-chain counters, keyed for the metrics snapshot."""
        return {
            "predict_calls": self.predict_calls,
            "predicted": self.predicted,
            "fallback_max": self.fallback_max,
            "fallback_mean": self.fallback_mean,
            "fallback_default": self.fallback_default,
            "history_epoch_bumps": self._epoch,
        }

    @property
    def elapsed_invariant(self) -> bool:
        """``predict(job, e, t)`` equals ``max(predict(job, 0, t'), e)``.

        Holds at fixed epoch when the wrapped predictor ignores elapsed
        and now: the fallback chain and cap don't consult them, leaving
        the final ``max(est, elapsed)`` clamp as the only dependence.
        Volatile estimators never advertise it.
        """
        return not self._volatile and self.predictor.elapsed_invariant

    def on_submit(self, job: Job, now: float) -> None:
        if self._bump_on_submit:
            self._epoch += 1
        self.predictor.on_submit(job, now)

    def _on_submit_audited(self, job: Job, now: float) -> None:
        type(self).on_submit(self, job, now)
        est, source = self._estimate_with_source(job, now)
        self._audit.record_runtime(
            job.job_id, now, est, predictor=self.name, source=source
        )

    def _estimate_with_source(self, job: Job, now: float) -> tuple[float, str]:
        """The submission-time estimate plus which chain link produced it.

        Re-runs the fallback chain without touching the hot-path tallies
        or the ``_mean_used`` cache signal, so ``obs_stats()`` and the
        epoch sequence are identical with and without auditing.
        """
        pred = self.predictor.predict(job, 0.0, now)
        if pred is not None:
            est = pred.estimate
            source = pred.source or "predicted"
        elif self.fall_back_to_max and job.max_run_time is not None:
            est = job.max_run_time
            source = "fallback_max"
        elif self._completed_count > 0:
            est = self._completed_sum / self._completed_count
            source = "fallback_mean"
        else:
            est = self.default
            source = "fallback_default"
        if self.cap_at_max and job.max_run_time is not None:
            est = min(est, job.max_run_time)
        return max(est, 0.0), source

    def on_start(self, job: Job, now: float) -> None:
        if self._bump_on_start:
            self._epoch += 1
        self.predictor.on_start(job, now)

    def on_finish(self, job: Job, now: float) -> None:
        if self._bump_on_finish or self._mean_used:
            self._epoch += 1
            self._mean_used = False
        self._completed_sum += job.run_time
        self._completed_count += 1
        self.predictor.on_finish(job, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PointEstimator({self.predictor!r})"
