"""Predictor protocol and the scheduler-facing point-estimate adapter.

A :class:`RuntimePredictor` produces a rich :class:`Prediction` (estimate
plus confidence-interval half-width) or ``None`` when it has no basis for
one — e.g. the Smith predictor during its ramp-up, before any similar job
has completed (paper §2.1).  The scheduler, by contrast, always needs *a*
number.  :class:`PointEstimator` bridges the two with the fallback chain
the experiments use:

    predictor → user-supplied max run time → running mean of all
    completed jobs → a fixed default

and clamps every estimate to at least the elapsed run time, since a job
that has already run ``a`` seconds cannot finish sooner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.workloads.job import Job

__all__ = ["Prediction", "RuntimePredictor", "PointEstimator", "warm_start"]


def warm_start(predictor: "RuntimePredictor", jobs) -> "RuntimePredictor":
    """Pre-load a predictor's history from a training set.

    The paper notes (§2.1) that the initial ramp-up — no predictions
    until similar jobs have completed — "could be corrected by using a
    training set to initialize C".  This feeds every job of ``jobs``
    (e.g. a prefix trace) to the predictor's completion hook, in order,
    and returns the predictor for chaining.
    """
    for job in jobs:
        predictor.on_finish(job, job.submit_time + job.run_time)
    return predictor


@dataclass(frozen=True)
class Prediction:
    """A run-time estimate with its confidence interval half-width."""

    estimate: float
    interval: float
    source: str = ""

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be >= 0, got {self.interval}")


class RuntimePredictor(ABC):
    """Interface all run-time predictors implement.

    ``elapsed`` is how long the job has been executing when the prediction
    is requested (0.0 for queued jobs); history-based predictors condition
    on it.  Lifecycle hooks mirror the simulator's estimator protocol;
    only :meth:`on_finish` matters to the historical predictors, which
    insert a data point as soon as a job completes (§2.1 step 3).
    """

    name: str = "predictor"

    @abstractmethod
    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        """Predict the job's total run time, or ``None`` if impossible."""

    def on_submit(self, job: Job, now: float) -> None:  # pragma: no cover - hook
        pass

    def on_start(self, job: Job, now: float) -> None:  # pragma: no cover - hook
        pass

    def on_finish(self, job: Job, now: float) -> None:  # pragma: no cover - hook
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class PointEstimator:
    """Adapt a :class:`RuntimePredictor` into a scheduler estimator.

    Implements the ``predict(job, elapsed, now) -> float`` protocol of
    :mod:`repro.scheduler.simulator` plus the lifecycle hooks, forwarding
    them to the wrapped predictor so its history stays current.
    """

    def __init__(
        self,
        predictor: RuntimePredictor,
        *,
        fall_back_to_max: bool = True,
        default: float = 600.0,
        cap_at_max: bool = False,
    ) -> None:
        if default <= 0:
            raise ValueError(f"default must be positive, got {default}")
        self.predictor = predictor
        self.fall_back_to_max = fall_back_to_max
        self.default = default
        self.cap_at_max = cap_at_max
        self._completed_sum = 0.0
        self._completed_count = 0

    @property
    def name(self) -> str:
        return self.predictor.name

    def predict(self, job: Job, elapsed: float, now: float) -> float:
        pred = self.predictor.predict(job, elapsed, now)
        if pred is not None:
            est = pred.estimate
        elif self.fall_back_to_max and job.max_run_time is not None:
            est = job.max_run_time
        elif self._completed_count > 0:
            est = self._completed_sum / self._completed_count
        else:
            est = self.default
        if self.cap_at_max and job.max_run_time is not None:
            est = min(est, job.max_run_time)
        return max(est, elapsed)

    def on_submit(self, job: Job, now: float) -> None:
        self.predictor.on_submit(job, now)

    def on_start(self, job: Job, now: float) -> None:
        self.predictor.on_start(job, now)

    def on_finish(self, job: Job, now: float) -> None:
        self._completed_sum += job.run_time
        self._completed_count += 1
        self.predictor.on_finish(job, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PointEstimator({self.predictor!r})"
