"""Prediction workloads recorded from scheduling simulations (§2.1).

The paper does not score predictors on a fixed request stream: each
scheduling algorithm asks for predictions at different moments —

- *wait-time prediction*: every running and queued job is predicted at
  every submission;
- *LWF scheduling*: all waiting jobs are predicted at every scheduling
  attempt (any submission or completion);
- *backfill scheduling*: all running **and** waiting jobs are predicted
  at every attempt, running ones conditioned on their elapsed time;

and jobs are inserted into the history as they complete.  The paper
records these streams from simulations driven by max-run-time estimates
("we generate our run-time prediction workloads for scheduling using
maximum run times") and searches templates against them, one search per
algorithm/trace pair — 12 searches in all.

This module reproduces that methodology: :func:`record_prediction_workload`
runs the simulation and captures the exact (job, elapsed, time) request
stream plus insertions; :func:`replay_workload_error` scores any
predictor against a recorded stream; the genetic search accepts such a
workload as its fitness target.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.predictors.base import PointEstimator, RuntimePredictor
from repro.scheduler.simulator import Simulator
from repro.workloads.job import Job, Trace

__all__ = [
    "PredictionRequest",
    "Insertion",
    "PredictionWorkload",
    "record_prediction_workload",
    "replay_workload_error",
]


@dataclass(frozen=True)
class PredictionRequest:
    """One moment at which the scheduler needed a run-time prediction."""

    job: Job
    elapsed: float
    time: float


@dataclass(frozen=True)
class Insertion:
    """One completed job entering the historical database."""

    job: Job
    time: float


@dataclass(frozen=True)
class PredictionWorkload:
    """A time-ordered stream of prediction requests and insertions."""

    name: str
    events: tuple[PredictionRequest | Insertion, ...]

    @property
    def n_requests(self) -> int:
        return sum(1 for e in self.events if isinstance(e, PredictionRequest))

    @property
    def n_insertions(self) -> int:
        return sum(1 for e in self.events if isinstance(e, Insertion))

    def subsample(self, max_requests: int) -> "PredictionWorkload":
        """Keep every insertion but at most ``max_requests`` requests,
        evenly spaced — fitness evaluations stay cheap while the history
        still evolves exactly as recorded."""
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        requests = [e for e in self.events if isinstance(e, PredictionRequest)]
        if len(requests) <= max_requests:
            return self
        keep_idx = set(
            int(i)
            for i in np.linspace(0, len(requests) - 1, max_requests).round()
        )
        kept: list[PredictionRequest | Insertion] = []
        seen = 0
        for e in self.events:
            if isinstance(e, PredictionRequest):
                if seen in keep_idx:
                    kept.append(e)
                seen += 1
            else:
                kept.append(e)
        return PredictionWorkload(name=self.name, events=tuple(kept))


class _Recorder:
    """Estimator wrapper that logs every prediction request/insertion."""

    def __init__(self, inner: PointEstimator) -> None:
        self.inner = inner
        self.events: list[PredictionRequest | Insertion] = []

    def predict(self, job: Job, elapsed: float, now: float) -> float:
        self.events.append(PredictionRequest(job=job, elapsed=elapsed, time=now))
        return self.inner.predict(job, elapsed, now)

    def on_submit(self, job: Job, now: float) -> None:
        self.inner.on_submit(job, now)

    def on_start(self, job: Job, now: float) -> None:
        self.inner.on_start(job, now)

    def on_finish(self, job: Job, now: float) -> None:
        self.events.append(Insertion(job=job, time=now))
        self.inner.on_finish(job, now)


def record_prediction_workload(
    trace: Trace,
    policy_name: str,
    *,
    driver: str = "max",
) -> PredictionWorkload:
    """Record the prediction stream a scheduling simulation generates.

    The simulation is driven by ``driver`` estimates (user maxima by
    default, per the paper); every ``predict`` the policy issues through
    the scheduler view and every completion is captured in order.
    """
    from repro.core.registry import make_policy, make_predictor

    recorder = _Recorder(PointEstimator(make_predictor(driver, trace)))
    sim = Simulator(make_policy(policy_name), recorder, trace.total_nodes)
    sim.run(trace)
    return PredictionWorkload(
        name=f"{trace.name}/{policy_name}", events=tuple(recorder.events)
    )


def replay_workload_error(
    workload: PredictionWorkload,
    predictor: RuntimePredictor,
    *,
    default: float = 600.0,
    fall_back_to_max: bool = True,
) -> float:
    """Mean absolute error (seconds) of ``predictor`` over the stream.

    The predictor is mutated; pass a fresh instance.  Requests are
    scored with the standard fallback chain so template sets that cover
    nothing are penalized by the fallback's error rather than skipped.
    """
    estimator = PointEstimator(
        predictor, default=default, fall_back_to_max=fall_back_to_max
    )
    total = 0.0
    count = 0
    for event in workload.events:
        if isinstance(event, Insertion):
            estimator.on_finish(event.job, event.time)
        else:
            est = estimator.predict(event.job, event.elapsed, event.time)
            total += abs(est - event.job.run_time)
            count += 1
    return total / count if count else 0.0
