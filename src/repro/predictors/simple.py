"""Baseline predictors: actual run times and user-supplied maxima.

- :class:`ActualRuntimePredictor` is the oracle the paper uses as the
  upper bound in Tables 4 and 10: the prediction *is* the run time.
- :class:`MaxRuntimePredictor` is the EASY-style baseline (Table 5/11):
  the user's declared maximum run time.  The SDSC traces record no
  per-job maxima, so — exactly as the paper does — the maximum for a
  queue is the longest-running job ever seen in that queue, computed over
  the whole trace with :meth:`MaxRuntimePredictor.from_trace` (or learned
  online if no trace is supplied).
"""

from __future__ import annotations

from repro.predictors.base import Prediction, RuntimePredictor
from repro.workloads.job import Job, Trace

__all__ = ["ActualRuntimePredictor", "MaxRuntimePredictor"]


class ActualRuntimePredictor(RuntimePredictor):
    """The clairvoyant oracle: predicts the exact run time."""

    name = "actual"
    elapsed_invariant = True

    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction:
        return Prediction(estimate=job.run_time, interval=0.0, source="actual")


class MaxRuntimePredictor(RuntimePredictor):
    """User-supplied maximum run times, with per-queue derivation."""

    name = "max"
    elapsed_invariant = True

    def __init__(self, queue_maxima: dict[str, float] | None = None) -> None:
        self._queue_maxima: dict[str, float] = dict(queue_maxima or {})
        self._static = queue_maxima is not None
        self._global_max = max(self._queue_maxima.values(), default=0.0)
        # Predictions only change when a stored maximum moves (never, in
        # the precomputed from_trace mode) — declare it so PointEstimator
        # keeps cached estimates across completions.
        self.history_epoch = 0

    @classmethod
    def from_trace(cls, trace: Trace) -> "MaxRuntimePredictor":
        """Precompute per-queue maxima over the whole trace (paper §3)."""
        maxima: dict[str, float] = {}
        for job in trace:
            if job.queue is not None:
                maxima[job.queue] = max(maxima.get(job.queue, 0.0), job.run_time)
        return cls(maxima)

    def on_finish(self, job: Job, now: float) -> None:
        # Online fallback mode only: learn queue maxima as jobs complete.
        if self._static or job.queue is None:
            return
        if (
            job.run_time > self._queue_maxima.get(job.queue, 0.0)
            or job.run_time > self._global_max
        ):
            self.history_epoch += 1
        self._queue_maxima[job.queue] = max(
            self._queue_maxima.get(job.queue, 0.0), job.run_time
        )
        self._global_max = max(self._global_max, job.run_time)

    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        if job.max_run_time is not None:
            return Prediction(
                estimate=job.max_run_time, interval=0.0, source="max:user"
            )
        if job.queue is not None and job.queue in self._queue_maxima:
            return Prediction(
                estimate=self._queue_maxima[job.queue],
                interval=0.0,
                source="max:queue",
            )
        if self._global_max > 0.0:
            return Prediction(
                estimate=self._global_max, interval=0.0, source="max:global"
            )
        return None
