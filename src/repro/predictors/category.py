"""Categories: the per-template history buckets predictions come from.

A :class:`Category` accumulates :class:`DataPoint` observations from
completed jobs that matched one template's key, bounded by the template's
maximum history (oldest evicted first, §2.1 step 3(b)ii).  Predictions
come from the template's estimator:

- ``mean`` — sample mean of the stored datum with a Student-t prediction
  interval (incremental moments serve the common elapsed==0 case; the
  conditioned case filters points whose total run time is at least the
  elapsed time);
- ``linear`` / ``inverse`` / ``log`` — least squares of the datum against
  the (transformed) node count, evaluated at the queried job's nodes,
  with the OLS prediction interval.

For *relative* templates the stored datum is ``run_time / max_run_time``
and predictions are scaled back by the queried job's own maximum.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.stats.ci import RunningMoments, mean_confidence_interval
from repro.stats.regression import fit_inverse, fit_linear, fit_logarithmic
from repro.predictors.templates import Template
from repro.workloads.job import Job

__all__ = ["DataPoint", "Category"]

_FITTERS = {
    "linear": fit_linear,
    "inverse": fit_inverse,
    "log": fit_logarithmic,
}

#: Minimum points for a valid prediction: 2 gives a defined variance for
#: the mean; regressions need 3 for a prediction interval.
_MIN_POINTS_MEAN = 2
_MIN_POINTS_REGRESSION = 3


@dataclass(frozen=True)
class DataPoint:
    """One completed job's contribution to a category."""

    run_time: float
    nodes: int
    value: float  # run_time, or run_time / max_run_time for relative templates


class Category:
    """Bounded history of similar jobs with an attached estimator."""

    def __init__(self, template: Template) -> None:
        self.template = template
        self._points: deque[DataPoint] = deque()
        self._moments = RunningMoments()

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> tuple[DataPoint, ...]:
        return tuple(self._points)

    def add(self, job: Job) -> None:
        """Insert a completed job, evicting the oldest at capacity."""
        if self.template.relative:
            if job.max_run_time is None:
                raise ValueError(
                    f"relative template {self.template.describe()} cannot store "
                    f"job {job.job_id} without a max run time"
                )
            value = job.run_time / job.max_run_time
        else:
            value = job.run_time
        limit = self.template.max_history
        if limit is not None and len(self._points) >= limit:
            old = self._points.popleft()
            self._moments.remove(old.value)
        self._points.append(DataPoint(run_time=job.run_time, nodes=job.nodes, value=value))
        self._moments.add(value)

    def predict(
        self, job: Job, elapsed: float = 0.0, confidence: float = 0.90
    ) -> tuple[float, float] | None:
        """``(estimate, interval_half_width)`` for ``job`` or ``None``.

        ``elapsed`` conditions the prediction on the job having already
        run that long: only historical points whose total run time is at
        least ``elapsed`` participate (corrected §2.1 semantics), and the
        estimate is floored at ``elapsed``.
        """
        if self.template.relative and job.max_run_time is None:
            return None
        if elapsed > 0.0:
            pts = [p for p in self._points if p.run_time >= elapsed]
        else:
            pts = None  # use incremental moments / full deque

        kind = self.template.estimator
        if kind == "mean":
            if pts is None:
                if self._moments.count < _MIN_POINTS_MEAN:
                    return None
                est, hw = self._moments.interval(confidence)
            else:
                if len(pts) < _MIN_POINTS_MEAN:
                    return None
                est, hw = mean_confidence_interval(
                    [p.value for p in pts], confidence
                )
        else:
            sample = list(self._points) if pts is None else pts
            if len(sample) < _MIN_POINTS_REGRESSION:
                return None
            xs = np.array([p.nodes for p in sample], dtype=float)
            ys = np.array([p.value for p in sample], dtype=float)
            try:
                fit = _FITTERS[kind](xs, ys)
            except ValueError:
                return None
            est, hw = fit.prediction_interval(job.nodes, confidence)

        if self.template.relative:
            assert job.max_run_time is not None
            est *= job.max_run_time
            hw *= job.max_run_time
        est = max(est, elapsed)
        return est, max(hw, 0.0)
