"""Gibbons' run-time predictor (paper §2.2, Table 3).

Gibbons uses a *fixed* template hierarchy, tried in order until one can
produce a valid prediction:

====  ===============  ==================
 #    Template         Predictor
====  ===============  ==================
 1    (u, e, n, rtime) mean
 2    (u, e)           linear regression
 3    (e, n, rtime)    mean
 4    (e)              linear regression
 5    (n, rtime)       mean
 6    ()               linear regression
====  ===============  ==================

Node ranges are the fixed exponential bins 1, 2-3, 4-7, 8-15, ...; the
``rtime`` component conditions the mean on the job's elapsed run time.
The regression templates operate on the *subcategories* of their parent:
a weighted linear regression of each subcategory's mean run time against
its mean node count, weighted by the inverse of the subcategory's
run-time variance.

The traces differ in which identity field plays the role of "executable":
ANL records a real executable name, CTC a LoadLeveler script, SDSC only a
queue.  The constructor's ``executable_attr="auto"`` resolves, per job,
to the first of executable / script / queue that is present, mirroring
how Gibbons' profiler would be deployed on each system.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.predictors.base import Prediction, RuntimePredictor
from repro.stats.regression import fit_weighted_linear
from repro.workloads.job import Job

__all__ = ["GibbonsPredictor", "exponential_node_bin"]


def exponential_node_bin(nodes: int) -> int:
    """Gibbons' fixed exponential node ranges: 1 | 2-3 | 4-7 | 8-15 | ..."""
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    return int(math.floor(math.log2(nodes)))


@dataclass
class _SubCategory:
    """Points for one (parent key, node bin) cell."""

    run_times: list[float] = field(default_factory=list)
    nodes: list[int] = field(default_factory=list)

    def add(self, job: Job) -> None:
        self.run_times.append(job.run_time)
        self.nodes.append(job.nodes)

    def conditioned(self, elapsed: float) -> list[float]:
        if elapsed <= 0:
            return self.run_times
        return [t for t in self.run_times if t >= elapsed]

    def mean_run_time(self) -> float:
        return sum(self.run_times) / len(self.run_times)

    def mean_nodes(self) -> float:
        return sum(self.nodes) / len(self.nodes)

    def variance(self) -> float:
        n = len(self.run_times)
        if n < 2:
            return 0.0
        m = self.mean_run_time()
        return sum((t - m) ** 2 for t in self.run_times) / (n - 1)


class GibbonsPredictor(RuntimePredictor):
    """Fixed-hierarchy historical predictor."""

    name = "gibbons"

    #: Parent template levels, most to least specific.  Each parent owns
    #: exponential-node-bin subcategories; the mean templates read one
    #: subcategory, the regression templates read all of a parent's.
    _LEVELS = ("ue", "e", "")

    def __init__(
        self,
        *,
        executable_attr: str = "auto",
        min_points: int = 2,
        min_subcategories: int = 2,
    ) -> None:
        if min_points < 1:
            raise ValueError("min_points must be >= 1")
        if min_subcategories < 2:
            raise ValueError("min_subcategories must be >= 2 (slope needs 2 points)")
        self.executable_attr = executable_attr
        self.min_points = min_points
        self.min_subcategories = min_subcategories
        # level -> parent key -> node bin -> subcategory
        self._store: dict[str, dict[tuple, dict[int, _SubCategory]]] = {
            lvl: defaultdict(dict) for lvl in self._LEVELS
        }

    # ------------------------------------------------------------------
    def _executable(self, job: Job) -> str | None:
        if self.executable_attr == "auto":
            return job.executable or job.script or job.queue
        return getattr(job, self.executable_attr)

    def _parent_key(self, level: str, job: Job) -> tuple | None:
        if level == "ue":
            e = self._executable(job)
            if job.user is None or e is None:
                return None
            return (job.user, e)
        if level == "e":
            e = self._executable(job)
            if e is None:
                return None
            return (e,)
        return ()

    # ------------------------------------------------------------------
    def on_finish(self, job: Job, now: float) -> None:
        nbin = exponential_node_bin(job.nodes)
        for level in self._LEVELS:
            key = self._parent_key(level, job)
            if key is None:
                continue
            subs = self._store[level][key]
            sub = subs.get(nbin)
            if sub is None:
                sub = subs[nbin] = _SubCategory()
            sub.add(job)

    # ------------------------------------------------------------------
    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        nbin = exponential_node_bin(job.nodes)
        for level in self._LEVELS:
            key = self._parent_key(level, job)
            if key is None:
                continue
            subs = self._store[level].get(key)
            if not subs:
                continue
            # Mean template on the matching subcategory.
            sub = subs.get(nbin)
            if sub is not None:
                pts = sub.conditioned(elapsed)
                if len(pts) >= self.min_points:
                    est = max(sum(pts) / len(pts), elapsed)
                    return Prediction(
                        estimate=est,
                        interval=0.0,
                        source=f"gibbons:{level or '()'}:mean",
                    )
            # Regression template across the parent's subcategories.
            est = self._regress(subs, job.nodes)
            if est is not None:
                return Prediction(
                    estimate=max(est, elapsed),
                    interval=0.0,
                    source=f"gibbons:{level or '()'}:regression",
                )
        return None

    def _regress(self, subs: dict[int, _SubCategory], nodes: int) -> float | None:
        cells = [s for s in subs.values() if s.run_times]
        if len(cells) < self.min_subcategories:
            return None
        xs = [c.mean_nodes() for c in cells]
        ys = [c.mean_run_time() for c in cells]
        ws = []
        for c in cells:
            var = c.variance()
            if var <= 0.0:
                # Zero-variance (or single-point) cell: weight as if the
                # spread were 10% of its mean, floored at 1 s².
                var = max((0.1 * c.mean_run_time()) ** 2, 1.0)
            ws.append(1.0 / var)
        intercept, slope = fit_weighted_linear(xs, ys, ws)
        est = intercept + slope * nodes
        if not math.isfinite(est) or est <= 0.0:
            return None
        return est
