"""Similarity templates.

A *template* (paper §2.1) names the job characteristics that make two
jobs "similar": a subset of the categorical characteristics of Table 2,
optionally the number of nodes discretized into ranges of a given size,
and bookkeeping attributes — maximum history per category, whether the
stored datum is the absolute run time or the ratio to the user's maximum
(relative), and which estimator turns a category's points into a
prediction (mean or one of three regressions).

Applying a template to a job yields the job's *category key* under that
template; jobs sharing a key are similar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.fields import CHARACTERISTICS, TEMPLATE_CHARACTERISTICS
from repro.workloads.job import Job

__all__ = ["Template", "ESTIMATOR_KINDS", "default_templates"]

#: Estimator kinds a template may request (paper §2.1: the mean plus
#: linear / inverse / logarithmic regressions on the node count).
ESTIMATOR_KINDS = ("mean", "linear", "inverse", "log")


@dataclass(frozen=True)
class Template:
    """One similarity template."""

    characteristics: tuple[str, ...] = ()
    node_range_size: int | None = None
    max_history: int | None = None
    relative: bool = False
    estimator: str = "mean"

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for c in self.characteristics:
            if c not in TEMPLATE_CHARACTERISTICS:
                raise ValueError(
                    f"unknown template characteristic {c!r}; "
                    f"expected one of {TEMPLATE_CHARACTERISTICS}"
                )
            if c in seen:
                raise ValueError(f"duplicate characteristic {c!r} in template")
            seen.add(c)
        if self.node_range_size is not None and self.node_range_size < 1:
            raise ValueError(f"node_range_size must be >= 1, got {self.node_range_size}")
        if self.max_history is not None and self.max_history < 1:
            raise ValueError(f"max_history must be >= 1, got {self.max_history}")
        if self.estimator not in ESTIMATOR_KINDS:
            raise ValueError(
                f"unknown estimator {self.estimator!r}; expected one of {ESTIMATOR_KINDS}"
            )

    @property
    def uses_nodes(self) -> bool:
        return self.node_range_size is not None

    def node_bin(self, nodes: int) -> int:
        """Range index of a node count: size 4 puts 1-4 in bin 0, 5-8 in 1."""
        if self.node_range_size is None:
            raise ValueError("template does not partition on nodes")
        return (nodes - 1) // self.node_range_size

    def category_key(self, job: Job) -> tuple | None:
        """The job's category under this template.

        Returns ``None`` when the job lacks a value for one of the
        template's characteristics (that trace does not record it), or —
        for relative templates — lacks a maximum run time, so the ratio
        datum cannot be formed.
        """
        if self.relative and job.max_run_time is None:
            return None
        key: list[object] = []
        for c in self.characteristics:
            value = CHARACTERISTICS[c].getter(job)
            if value is None:
                return None
            key.append(value)
        if self.node_range_size is not None:
            key.append(self.node_bin(job.nodes))
        return tuple(key)

    def describe(self) -> str:
        """Compact paper-style rendering, e.g. ``(u, e, n=4)``."""
        parts = list(self.characteristics)
        if self.node_range_size is not None:
            parts.append(f"n={self.node_range_size}")
        body = ", ".join(parts)
        suffix = []
        if self.relative:
            suffix.append("rel")
        if self.estimator != "mean":
            suffix.append(self.estimator)
        if self.max_history is not None:
            suffix.append(f"hist={self.max_history}")
        tail = f" [{', '.join(suffix)}]" if suffix else ""
        return f"({body}){tail}"


def default_templates(
    available: frozenset[str] | set[str] | None,
    *,
    has_max_run_time: bool = False,
    node_range_size: int = 4,
) -> list[Template]:
    """A curated template set for a workload recording ``available`` fields.

    This stands in for the paper's offline genetic searches when a quick,
    reasonable template set is wanted: the global mean, each single
    characteristic, informative pairs, node-ranged refinements, and (when
    the trace has user maxima) relative-run-time variants — the
    ingredients the paper reports its searches discovering.
    """
    avail = set(available) if available is not None else set(TEMPLATE_CHARACTERISTICS)
    avail &= set(TEMPLATE_CHARACTERISTICS)
    templates: list[Template] = [Template()]
    singles = [c for c in ("u", "e", "s", "q", "c", "t") if c in avail]
    for c in singles:
        templates.append(Template(characteristics=(c,)))
    pair_candidates = [("u", "e"), ("u", "s"), ("q", "u"), ("u", "a"), ("t", "u")]
    pairs = [p for p in pair_candidates if set(p) <= avail]
    for p in pairs:
        templates.append(Template(characteristics=p))
    # Node-ranged refinements of the most specific identities available.
    for chars in ([("u",)] + [list(p) for p in pairs[:2]]):
        if set(chars) <= avail:
            templates.append(
                Template(characteristics=tuple(chars), node_range_size=node_range_size)
            )
    if has_max_run_time:
        for chars in [("u",)] + [list(p) for p in pairs[:1]]:
            if set(chars) <= avail:
                templates.append(Template(characteristics=tuple(chars), relative=True))
    # Deduplicate while preserving order.
    seen: set[Template] = set()
    out: list[Template] = []
    for t in templates:
        if t not in seen:
            seen.add(t)
            out.append(t)
    return out
