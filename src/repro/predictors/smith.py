"""The paper's run-time predictor (Smith/Foster/Taylor).

Given a set of templates, each completed job is inserted into one
category per template (created on demand, bounded by the template's
maximum history).  To predict a job's run time, every template is applied
to the job; categories that exist and can produce a valid estimate each
offer ``(estimate, confidence interval)``, and **the estimate with the
smallest confidence interval wins** (§2.1 step 2(d)).  That selection
rule is the heart of the technique: specific-but-sparse categories
compete with generic-but-populous ones on the tightness of what they
claim to know.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.predictors.base import Prediction, RuntimePredictor
from repro.predictors.category import Category
from repro.predictors.templates import Template, default_templates
from repro.workloads.job import Job, Trace

__all__ = ["SmithPredictor"]


class SmithPredictor(RuntimePredictor):
    """Template-set historical predictor with smallest-CI selection."""

    name = "smith"

    def __init__(
        self,
        templates: Iterable[Template] | None = None,
        *,
        confidence: float = 0.90,
    ) -> None:
        tpl = list(templates) if templates is not None else default_templates(None)
        if not tpl:
            raise ValueError("SmithPredictor requires at least one template")
        if not 0 < confidence < 1:
            raise ValueError(f"confidence must be in (0,1), got {confidence}")
        self.templates: tuple[Template, ...] = tuple(tpl)
        self.confidence = confidence
        # Categories keyed by (template index, category key).
        self._categories: dict[tuple[int, tuple], Category] = {}
        # How often each template's category won the smallest-CI contest.
        self._wins: list[int] = [0] * len(self.templates)
        self._misses = 0

    @classmethod
    def for_trace(cls, trace: Trace, **kwargs) -> "SmithPredictor":
        """A predictor with curated default templates for a trace."""
        has_max = any(j.max_run_time is not None for j in trace)
        return cls(
            default_templates(trace.available_fields, has_max_run_time=has_max),
            **kwargs,
        )

    # ------------------------------------------------------------------
    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        best: tuple[float, float, int] | None = None  # (interval, estimate, idx)
        for idx, template in enumerate(self.templates):
            key = template.category_key(job)
            if key is None:
                continue
            cat = self._categories.get((idx, key))
            if cat is None:
                continue
            result = cat.predict(job, elapsed, self.confidence)
            if result is None:
                continue
            est, hw = result
            if best is None or hw < best[0]:
                best = (hw, est, idx)
        if best is None:
            self._misses += 1
            return None
        hw, est, idx = best
        self._wins[idx] += 1
        return Prediction(
            estimate=est, interval=hw, source=self.templates[idx].describe()
        )

    def on_finish(self, job: Job, now: float) -> None:
        for idx, template in enumerate(self.templates):
            key = template.category_key(job)
            if key is None:
                continue
            cat = self._categories.get((idx, key))
            if cat is None:
                cat = Category(template)
                self._categories[(idx, key)] = cat
            cat.add(job)

    # ------------------------------------------------------------------
    @property
    def category_count(self) -> int:
        return len(self._categories)

    def usage_stats(self) -> dict[str, int]:
        """Smallest-CI wins per template (plus unserved predictions).

        Diagnostic for template-set tuning: templates that never win are
        dead weight; a large ``(no prediction)`` count signals ramp-up
        or coverage gaps.
        """
        stats = {
            t.describe(): wins for t, wins in zip(self.templates, self._wins)
        }
        stats["(no prediction)"] = self._misses
        return stats

    def categories_for(self, job: Job) -> Sequence[Category]:
        """Existing categories this job falls into (for inspection/tests)."""
        out = []
        for idx, template in enumerate(self.templates):
            key = template.category_key(job)
            if key is None:
                continue
            cat = self._categories.get((idx, key))
            if cat is not None:
                out.append(cat)
        return out
