"""Run-time predictors.

The paper's central objects: given a job (and possibly how long it has
already run), estimate its total run time.  Implemented families:

- :mod:`repro.predictors.smith` — the paper's contribution: template-based
  categories with smallest-confidence-interval selection;
- :mod:`repro.predictors.gibbons` — Gibbons' fixed template hierarchy
  (Table 3) with variance-weighted cross-category regression;
- :mod:`repro.predictors.downey` — Downey's log-uniform conditional
  median / conditional average estimators, categorized by queue;
- :mod:`repro.predictors.simple` — the two baselines: actual run times
  (oracle) and user-supplied maximum run times (EASY-style);
- :mod:`repro.predictors.adaptive` — online learners that update per
  completion: incremental mean, recursive least squares, decayed mean;
- :mod:`repro.predictors.ga` — the genetic-algorithm template search;
- :mod:`repro.predictors.replay` — online replay of a trace through a
  predictor to score its accuracy.

All predictors implement :class:`repro.predictors.base.RuntimePredictor`;
:class:`repro.predictors.base.PointEstimator` adapts any of them (plus a
fallback chain) into the plain ``predict -> float`` estimator the
scheduler consumes.
"""

from repro.predictors.base import (
    Prediction,
    RuntimePredictor,
    PointEstimator,
    warm_start,
)
from repro.predictors.templates import Template, default_templates
from repro.predictors.category import Category, DataPoint
from repro.predictors.smith import SmithPredictor
from repro.predictors.gibbons import GibbonsPredictor
from repro.predictors.downey import DowneyPredictor
from repro.predictors.simple import ActualRuntimePredictor, MaxRuntimePredictor
from repro.predictors.adaptive import (
    DecayedMeanPredictor,
    OnlineMeanPredictor,
    OnlineRegressionPredictor,
)
from repro.predictors.ga import GAConfig, TemplateSearch, search_templates
from repro.predictors.replay import replay_prediction_error, ReplayReport
from repro.predictors.prediction_workload import (
    PredictionWorkload,
    record_prediction_workload,
    replay_workload_error,
)
from repro.predictors.tuned import TUNED_TEMPLATES, tuned_templates

__all__ = [
    "Prediction",
    "RuntimePredictor",
    "PointEstimator",
    "warm_start",
    "Template",
    "default_templates",
    "Category",
    "DataPoint",
    "SmithPredictor",
    "GibbonsPredictor",
    "DowneyPredictor",
    "ActualRuntimePredictor",
    "MaxRuntimePredictor",
    "OnlineMeanPredictor",
    "OnlineRegressionPredictor",
    "DecayedMeanPredictor",
    "GAConfig",
    "TemplateSearch",
    "search_templates",
    "replay_prediction_error",
    "ReplayReport",
    "PredictionWorkload",
    "record_prediction_workload",
    "replay_workload_error",
    "TUNED_TEMPLATES",
    "tuned_templates",
]
