"""Per-workload template sets discovered by the genetic search.

The paper runs a separate offline GA search per workload and uses the
best template set found.  These sets were produced the same way against
the synthetic stand-in workloads (``search_templates`` with population
16, 10 generations, 600-job fitness replays, seed 0 — the exact command
is in the module's provenance note below) and are shipped so experiments
can use searched templates without paying the search cost.

Regenerate with::

    from repro.predictors.ga import GAConfig, search_templates
    from repro.workloads.archive import load_paper_workload
    templates, _ = search_templates(
        load_paper_workload(NAME, n_jobs=1200),
        config=GAConfig(population=16, generations=10, eval_jobs=600, seed=0),
    )

Replay errors at discovery time (1200-job traces, minutes of mean
absolute error): ANL 50.0, CTC 95.1, SDSC95 55.5, SDSC96 67.0 — versus
curated defaults of roughly 62, 103, 64 and 75 on the same traces.
"""

from __future__ import annotations

from repro.predictors.templates import Template

__all__ = [
    "TUNED_TEMPLATES",
    "TUNED_TEMPLATES_BY_ALGORITHM",
    "tuned_templates",
]

TUNED_TEMPLATES: dict[str, tuple[Template, ...]] = {
    "ANL": (
        Template(characteristics=("t", "e"), node_range_size=32, estimator="log"),
        Template(node_range_size=512, max_history=1024, relative=True),
        Template(characteristics=("t",), node_range_size=512, max_history=256,
                 relative=True, estimator="inverse"),
        Template(characteristics=("e", "a"), estimator="log"),
        Template(characteristics=("t", "a"), max_history=256),
        Template(characteristics=("e", "a"), node_range_size=128, estimator="log"),
        Template(characteristics=("t", "u"), node_range_size=8, max_history=4096,
                 relative=True, estimator="linear"),
    ),
    "CTC": (
        Template(characteristics=("u",), max_history=128, relative=True,
                 estimator="linear"),
        Template(characteristics=("u", "s", "na"), max_history=32768,
                 estimator="linear"),
        Template(characteristics=("c", "s"), node_range_size=512, max_history=4,
                 relative=True, estimator="linear"),
        Template(characteristics=("t", "u", "s", "na"), max_history=2048,
                 estimator="linear"),
        Template(characteristics=("t", "c", "u"), max_history=128, relative=True),
        Template(relative=True, estimator="inverse"),
        Template(characteristics=("t", "s", "na"), estimator="log"),
        Template(characteristics=("c",), max_history=128, relative=True),
    ),
    "SDSC95": (
        Template(characteristics=("q",), max_history=2, estimator="linear"),
        Template(characteristics=("q", "u"), node_range_size=128,
                 estimator="inverse"),
        Template(characteristics=("u",), estimator="log"),
        Template(characteristics=("u",), max_history=32768, estimator="inverse"),
        Template(characteristics=("q",), node_range_size=512, max_history=4096),
        Template(characteristics=("q", "u"), node_range_size=2,
                 estimator="inverse"),
        Template(characteristics=("q", "u"), node_range_size=128),
        Template(characteristics=("q", "u"), estimator="log"),
        Template(characteristics=("u",), node_range_size=512, max_history=32768,
                 estimator="inverse"),
    ),
    "SDSC96": (
        Template(characteristics=("q", "u"), estimator="linear"),
        Template(characteristics=("q",), node_range_size=512, max_history=16384,
                 estimator="log"),
        Template(characteristics=("q",), node_range_size=512, max_history=4096,
                 estimator="log"),
    ),
}


#: The paper's full methodology searches one template set per
#: (workload, scheduling algorithm) pair, fitting against the prediction
#: request stream that algorithm actually generates (predictions of
#: waiting jobs for LWF; running + waiting, elapsed-conditioned, for
#: backfill).  These sets came from ``TemplateSearch(...,
#: prediction_workload=record_prediction_workload(trace, algo))`` with
#: the same budget as above (population 16, 8 generations, 600-request
#: fitness streams, seed 0).
TUNED_TEMPLATES_BY_ALGORITHM: dict[tuple[str, str], tuple[Template, ...]] = {
    # ANL/lwf: recorded-stream error 71.5 min
    ("ANL", "lwf"): (
        Template(characteristics=("t", "e", "a"), estimator="log"),
        Template(node_range_size=256, relative=True, estimator="inverse"),
        Template(characteristics=("t", "e"), node_range_size=512, relative=True,
                 estimator="inverse"),
        Template(characteristics=("t", "u"), max_history=16, estimator="linear"),
        Template(characteristics=("e", "a"), node_range_size=512,
                 estimator="inverse"),
        Template(characteristics=("t", "u", "a"), node_range_size=512,
                 relative=True, estimator="log"),
        Template(characteristics=("t", "u", "a"), node_range_size=512,
                 estimator="inverse"),
        Template(characteristics=("t", "a"), node_range_size=512,
                 estimator="inverse"),
    ),
    # ANL/backfill: recorded-stream error 73.5 min
    ("ANL", "backfill"): (
        Template(characteristics=("u", "e"), node_range_size=256, max_history=256,
                 relative=True, estimator="inverse"),
        Template(characteristics=("u",), node_range_size=512, max_history=512,
                 estimator="log"),
        Template(characteristics=("t",), relative=True, estimator="log"),
        Template(characteristics=("u",), relative=True, estimator="linear"),
        Template(characteristics=("t", "e", "a")),
        Template(characteristics=("t", "a"), node_range_size=32, relative=True),
        Template(characteristics=("t", "a"), node_range_size=128, relative=True),
        Template(characteristics=("t", "u", "e"), relative=True),
        Template(characteristics=("t",), node_range_size=8, max_history=256,
                 relative=True, estimator="inverse"),
    ),
    # CTC/lwf: recorded-stream error 66.8 min
    ("CTC", "lwf"): (
        Template(characteristics=("c", "u", "s"), node_range_size=512,
                 max_history=16384),
        Template(characteristics=("c",), max_history=64, estimator="linear"),
        Template(characteristics=("t", "u"), max_history=32768, relative=True,
                 estimator="linear"),
        Template(characteristics=("t",), node_range_size=1, max_history=32,
                 estimator="inverse"),
        Template(characteristics=("t", "c", "u", "na"), node_range_size=4,
                 max_history=2048, estimator="linear"),
        Template(characteristics=("t", "c"), node_range_size=128,
                 estimator="log"),
        Template(characteristics=("t", "u", "s", "na"), max_history=8192,
                 relative=True),
        Template(characteristics=("c",), max_history=32, relative=True),
    ),
    # CTC/backfill: recorded-stream error 125.1 min
    ("CTC", "backfill"): (
        Template(characteristics=("c", "u", "na"), node_range_size=128,
                 relative=True, estimator="inverse"),
        Template(characteristics=("t",), node_range_size=512, relative=True,
                 estimator="linear"),
        Template(characteristics=("na",), node_range_size=512, max_history=64,
                 relative=True, estimator="log"),
        Template(characteristics=("na",), node_range_size=512, relative=True),
        Template(characteristics=("c", "u"), max_history=64, relative=True),
        Template(characteristics=("c", "u", "s"), node_range_size=512),
        Template(characteristics=("c", "u"), max_history=65536, relative=True),
        Template(characteristics=("s",), max_history=8, estimator="inverse"),
        Template(characteristics=("s", "na"), max_history=8192, relative=True),
        Template(characteristics=("s", "na"), node_range_size=512, relative=True),
    ),
    # SDSC95/lwf: recorded-stream error 49.4 min
    ("SDSC95", "lwf"): (
        Template(characteristics=("q",), max_history=2, estimator="linear"),
        Template(characteristics=("u",), node_range_size=8, max_history=32,
                 estimator="inverse"),
        Template(characteristics=("q", "u"), max_history=16, estimator="inverse"),
        Template(characteristics=("u",), max_history=64),
        Template(characteristics=("q",), node_range_size=512, max_history=4096,
                 estimator="linear"),
    ),
    # SDSC95/backfill: recorded-stream error 84.9 min
    ("SDSC95", "backfill"): (
        Template(characteristics=("u",), node_range_size=32, max_history=65536),
        Template(characteristics=("q", "u"), node_range_size=8,
                 estimator="inverse"),
        Template(characteristics=("q", "u"), node_range_size=16, max_history=4096,
                 estimator="log"),
        Template(characteristics=("q",), estimator="log"),
        Template(max_history=16384, estimator="linear"),
        Template(characteristics=("u",), max_history=128, estimator="log"),
        Template(characteristics=("q",), node_range_size=256),
        Template(characteristics=("u",), node_range_size=8, max_history=16,
                 estimator="log"),
    ),
    # SDSC96/lwf: recorded-stream error 140.4 min
    ("SDSC96", "lwf"): (
        Template(characteristics=("u",), node_range_size=32, max_history=65536),
        Template(characteristics=("q", "u"), node_range_size=512),
        Template(characteristics=("q", "u"), node_range_size=16, max_history=4096,
                 estimator="log"),
        Template(characteristics=("q", "u"), node_range_size=8, estimator="log"),
        Template(characteristics=("q", "u"), node_range_size=16, max_history=16,
                 estimator="log"),
        Template(characteristics=("q",), node_range_size=16, max_history=4096,
                 estimator="inverse"),
        Template(characteristics=("q",), estimator="log"),
        Template(estimator="linear"),
        Template(characteristics=("u",), max_history=16384, estimator="log"),
    ),
    # SDSC96/backfill: recorded-stream error 94.5 min
    ("SDSC96", "backfill"): (
        Template(characteristics=("q",), node_range_size=2, max_history=65536,
                 estimator="linear"),
        Template(characteristics=("q",), node_range_size=512, max_history=256,
                 estimator="log"),
        Template(characteristics=("u",)),
        Template(characteristics=("q", "u"), node_range_size=64, estimator="log"),
        Template(characteristics=("q", "u"), estimator="log"),
        Template(characteristics=("q",), node_range_size=512, estimator="log"),
        Template(characteristics=("u",), node_range_size=8, max_history=32,
                 estimator="linear"),
        Template(characteristics=("q",), node_range_size=512, max_history=512,
                 estimator="inverse"),
        Template(characteristics=("q",), max_history=1024),
        Template(characteristics=("u",), node_range_size=4, max_history=65536,
                 estimator="log"),
    ),
}


def tuned_templates(
    workload: str, algorithm: str | None = None
) -> tuple[Template, ...]:
    """Searched template set for a paper workload (KeyError if unknown).

    With ``algorithm`` ("lwf" or "backfill") the per-algorithm set —
    searched against that algorithm's recorded prediction stream — is
    returned, falling back to the workload-level set for algorithms
    without one (e.g. "fcfs", which issues no predictions).
    """
    if algorithm is not None:
        per_algo = TUNED_TEMPLATES_BY_ALGORITHM.get((workload, algorithm))
        if per_algo is not None:
            return per_algo
    try:
        return TUNED_TEMPLATES[workload]
    except KeyError:
        raise KeyError(
            f"no tuned template set for workload {workload!r}; "
            f"available: {sorted(TUNED_TEMPLATES)}"
        ) from None
