"""Online-learning run-time predictors.

The historical predictors of this package (Smith, Gibbons, Downey) keep
a *static* model shape — a fixed template set or parametric family — and
append completed jobs to stored per-category histories.  The predictors
here treat every completion as an O(1) **model update** over the same
template structure: an incremental mean, a recursive least-squares
regression, or an exponentially decayed mean whose recent completions
dominate.  No per-job history is retained — state per category is a
handful of floats — and jobs no template covers are served from a global
pool instead of punting to the fallback chain (whose user-maximum link
overestimates by an order of magnitude during ramp-up).

They are the learning side of the misprediction-cost loop
(:mod:`repro.experiments.misprediction`): the harness measures what
prediction error costs the scheduler, these predictors are how the error
is driven down online.

All three honor the epoch contract of :mod:`repro.predictors.base`:

- ``predict`` is a pure function of ``(job, elapsed)`` at fixed history
  (the ``elapsed`` dependence is delegated to
  :class:`~repro.predictors.base.PointEstimator`'s final clamp, so
  ``elapsed_invariant`` is ``True``);
- every :meth:`on_finish` that changes prediction-visible state bumps
  ``history_epoch``, which is exactly when the simulator's cross-pass
  estimate cache must flush.

The contract is enforced for any conforming predictor by the property
suite in ``tests/test_properties_epoch_contract.py``.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.predictors.base import Prediction, RuntimePredictor
from repro.predictors.templates import Template, default_templates
from repro.stats.ci import RunningMoments, t_quantile
from repro.workloads.job import Job, Trace

__all__ = [
    "OnlineMeanPredictor",
    "OnlineRegressionPredictor",
    "DecayedMeanPredictor",
]

#: Minimum observations before a group serves a prediction (a variance,
#: and hence an interval, needs two points).
_MIN_POINTS = 2


class _GroupedOnlinePredictor(RuntimePredictor):
    """Shared plumbing: per-(template, category) state + a global pool.

    Subclasses implement :meth:`_new_group` (fresh per-category state),
    :meth:`_ingest` (fold one completed job's datum into a group) and
    :meth:`_estimate` (turn a group's state into ``(estimate,
    half_width)`` or ``None``).  Prediction follows Smith's rule — every
    matching category offers an interval, the tightest wins — but over
    streaming state instead of stored points.  Jobs no category covers
    fall to the global pool, so an adaptive predictor serves *some*
    prediction as soon as two jobs have completed.

    Relative templates store the ``run_time / max_run_time`` ratio and
    scale predictions back by the queried job's own maximum, exactly as
    :class:`repro.predictors.category.Category` does.
    """

    def __init__(
        self,
        templates: Iterable[Template] | None = None,
        *,
        confidence: float = 0.90,
    ) -> None:
        if not 0 < confidence < 1:
            raise ValueError(f"confidence must be in (0,1), got {confidence}")
        tpl = list(templates) if templates is not None else default_templates(None)
        if not tpl:
            raise ValueError(f"{type(self).__name__} requires at least one template")
        self.templates: tuple[Template, ...] = tuple(tpl)
        self.confidence = confidence
        self.history_epoch = 0
        self.updates = 0
        self._groups: dict[tuple[int, tuple], object] = {}
        self._global: object = self._new_group()

    @classmethod
    def for_trace(cls, trace: Trace, **kwargs) -> "_GroupedOnlinePredictor":
        """A predictor with the curated default templates for a trace."""
        has_max = any(j.max_run_time is not None for j in trace)
        return cls(
            default_templates(trace.available_fields, has_max_run_time=has_max),
            **kwargs,
        )

    # -- subclass surface ----------------------------------------------
    def _new_group(self) -> object:
        raise NotImplementedError

    def _ingest(self, group: object, value: float, job: Job) -> None:
        raise NotImplementedError

    def _estimate(self, group: object, job: Job) -> tuple[float, float] | None:
        raise NotImplementedError

    # -- RuntimePredictor protocol -------------------------------------
    elapsed_invariant = True

    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        best: tuple[float, float, int] | None = None  # (half_width, estimate, idx)
        for idx, template in enumerate(self.templates):
            key = template.category_key(job)
            if key is None:
                continue
            group = self._groups.get((idx, key))
            if group is None:
                continue
            result = self._estimate(group, job)
            if result is None:
                continue
            est, hw = result
            if template.relative:
                # category_key returned non-None, so max_run_time is set.
                est *= job.max_run_time
                hw *= job.max_run_time
            if best is None or hw < best[0]:
                best = (hw, est, idx)
        if best is not None:
            hw, est, idx = best
            return Prediction(
                estimate=max(est, 0.0),
                interval=max(hw, 0.0),
                source=f"{self.name}:{self.templates[idx].describe()}",
            )
        result = self._estimate(self._global, job)
        if result is None:
            return None
        est, hw = result
        return Prediction(
            estimate=max(est, 0.0),
            interval=max(hw, 0.0),
            source=f"{self.name}:global",
        )

    def on_finish(self, job: Job, now: float) -> None:
        for idx, template in enumerate(self.templates):
            key = template.category_key(job)
            if key is None:
                continue
            group = self._groups.get((idx, key))
            if group is None:
                group = self._groups[(idx, key)] = self._new_group()
            value = (
                job.run_time / job.max_run_time if template.relative else job.run_time
            )
            self._ingest(group, value, job)
        self._ingest(self._global, job.run_time, job)
        self.updates += 1
        # Every completion moves the global pool, hence some prediction.
        self.history_epoch += 1

    @property
    def group_count(self) -> int:
        return len(self._groups)


class OnlineMeanPredictor(_GroupedOnlinePredictor):
    """Streaming Smith: per-category Welford means, smallest-CI selection.

    For unbounded mean templates and queued jobs (``elapsed == 0``) the
    served estimates match :class:`~repro.predictors.smith.SmithPredictor`
    over the same template set bit-for-bit — the moments are the same
    arithmetic — while storing no points and additionally covering the
    ramp-up jobs Smith cannot (global pool instead of the fallback
    chain).
    """

    name = "online-mean"

    def _new_group(self) -> RunningMoments:
        return RunningMoments()

    def _ingest(self, group: RunningMoments, value: float, job: Job) -> None:
        group.add(value)

    def _estimate(self, group: RunningMoments, job: Job) -> tuple[float, float] | None:
        if group.count < _MIN_POINTS:
            return None
        return group.interval(self.confidence)


class _RLSState:
    """Recursive least squares of the datum on ``[1, log1p(nodes)]``.

    Sherman-Morrison updates of the inverse Gram matrix ``P`` keep each
    completion O(d²) with d = 2; ``P`` starts at ``(1/ridge) · I``, i.e.
    a ridge-seeded regression that stays defined before the design
    matrix has full rank.  The accumulated *a priori* residuals feed the
    prediction interval — out-of-sample error is what the next job sees.
    """

    __slots__ = ("p00", "p01", "p11", "t0", "t1", "n", "rss")

    def __init__(self, ridge: float = 1e-4) -> None:
        self.p00 = 1.0 / ridge
        self.p01 = 0.0
        self.p11 = 1.0 / ridge
        self.t0 = 0.0  # theta (coefficients)
        self.t1 = 0.0
        self.n = 0
        self.rss = 0.0

    @staticmethod
    def features(job: Job) -> tuple[float, float]:
        return 1.0, math.log1p(job.nodes)

    def update(self, value: float, job: Job) -> None:
        x0, x1 = self.features(job)
        # k = P x / (1 + x' P x)
        px0 = self.p00 * x0 + self.p01 * x1
        px1 = self.p01 * x0 + self.p11 * x1
        denom = 1.0 + x0 * px0 + x1 * px1
        k0 = px0 / denom
        k1 = px1 / denom
        err = value - (self.t0 * x0 + self.t1 * x1)
        self.rss += err * err / denom
        self.t0 += k0 * err
        self.t1 += k1 * err
        # P <- P - k (x' P)
        self.p00 -= k0 * px0
        self.p01 -= k0 * px1
        self.p11 -= k1 * px1
        self.n += 1

    def estimate(self, job: Job, confidence: float) -> tuple[float, float] | None:
        if self.n < 3:  # 2 coefficients + 1 residual degree of freedom
            return None
        x0, x1 = self.features(job)
        est = self.t0 * x0 + self.t1 * x1
        df = self.n - 2
        sigma2 = self.rss / df
        # x' P x approximates the leverage term of the OLS interval.
        px0 = self.p00 * x0 + self.p01 * x1
        px1 = self.p01 * x0 + self.p11 * x1
        leverage = max(x0 * px0 + x1 * px1, 0.0)
        hw = t_quantile(df, 0.5 + confidence / 2.0) * math.sqrt(sigma2 * (1.0 + leverage))
        return est, hw


class OnlineRegressionPredictor(_GroupedOnlinePredictor):
    """Per-category recursive least squares over template features.

    The streaming counterpart of Smith's ``linear``/``log`` template
    estimators: within each category the datum is regressed on
    ``log1p(nodes)`` and updated per completion in O(1) — no refit, no
    stored points — so node-count trends inside a category (bigger jobs
    run longer/shorter) sharpen the plain category mean.
    """

    name = "online-rls"

    def __init__(
        self,
        templates: Iterable[Template] | None = None,
        *,
        confidence: float = 0.90,
        ridge: float = 1e-4,
    ) -> None:
        if ridge <= 0:
            raise ValueError(f"ridge must be positive, got {ridge}")
        self.ridge = ridge
        super().__init__(templates, confidence=confidence)

    def _new_group(self) -> _RLSState:
        return _RLSState(self.ridge)

    def _ingest(self, group: _RLSState, value: float, job: Job) -> None:
        group.update(value, job)

    def _estimate(self, group: _RLSState, job: Job) -> tuple[float, float] | None:
        return group.estimate(job, self.confidence)


class _DecayedMoments:
    """Exponentially decayed weighted mean / variance.

    Every new observation multiplies all previous weights by ``decay``;
    the effective sample size ``(Σw)² / Σw²`` replaces ``n`` in the
    t-interval, so a group whose history has decayed to ~k jobs is as
    uncertain as one that only ever saw k.
    """

    __slots__ = ("w_sum", "w2_sum", "mean", "s")

    def __init__(self) -> None:
        self.w_sum = 0.0
        self.w2_sum = 0.0
        self.mean = 0.0
        self.s = 0.0  # weighted sum of squared deviations

    def add(self, x: float, decay: float) -> None:
        self.w_sum *= decay
        self.w2_sum *= decay * decay
        self.s *= decay
        self.w_sum += 1.0
        self.w2_sum += 1.0
        delta = x - self.mean
        self.mean += delta / self.w_sum
        self.s += delta * (x - self.mean)

    @property
    def n_eff(self) -> float:
        if self.w2_sum <= 0.0:
            return 0.0
        return self.w_sum * self.w_sum / self.w2_sum

    def interval(self, confidence: float) -> tuple[float, float] | None:
        n_eff = self.n_eff
        if n_eff < _MIN_POINTS:
            return None
        var = max(self.s / self.w_sum, 0.0) * n_eff / (n_eff - 1.0)
        df = max(int(n_eff) - 1, 1)
        hw = (
            t_quantile(df, 0.5 + confidence / 2.0)
            * math.sqrt(var)
            * math.sqrt(1.0 + 1.0 / n_eff)
        )
        return self.mean, hw


class DecayedMeanPredictor(_GroupedOnlinePredictor):
    """Recency-weighted category means: recent completions dominate.

    ``decay`` is the per-completion weight multiplier (0.95 ≈ a ~20-job
    memory); 1.0 degenerates to :class:`OnlineMeanPredictor` up to
    interval degrees-of-freedom rounding.  This is the variant that
    tracks workload drift — the regime ``AccuracyMonitor``'s
    ``drift_ratio`` flags on frozen predictors.
    """

    name = "decayed-mean"

    def __init__(
        self,
        templates: Iterable[Template] | None = None,
        *,
        confidence: float = 0.90,
        decay: float = 0.95,
    ) -> None:
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0,1], got {decay}")
        self.decay = decay
        super().__init__(templates, confidence=confidence)

    def _new_group(self) -> _DecayedMoments:
        return _DecayedMoments()

    def _ingest(self, group: _DecayedMoments, value: float, job: Job) -> None:
        group.add(value, self.decay)

    def _estimate(self, group: _DecayedMoments, job: Job) -> tuple[float, float] | None:
        return group.interval(self.confidence)
