"""Genetic-algorithm search for template sets (paper §2.1).

The paper's novelty over Gibbons and Downey is *searching* for the
similarity templates instead of fixing them.  An individual is a template
set of 1-10 templates; each template is a fixed-width bit string
encoding:

- 2 bits — estimator (mean / linear / inverse / logarithmic regression);
- 1 bit — absolute vs. relative run times;
- one bit per categorical characteristic the workload records;
- 1 + 4 bits — whether nodes partition the template and the range size
  (powers of two, 1..512);
- 1 + 4 bits — whether category history is bounded and the limit
  (powers of two, 2..65536).

Generational loop exactly as described: fitness is a linear rescaling of
the replay error into ``[F_min, F_max]`` with ``F_max = 4 F_min``;
parents are drawn by stochastic sampling with replacement; crossover
splices whole-template prefixes with one bit-level cut inside the
boundary templates (respecting the 10-template cap); every child bit
mutates with probability 0.01; the two best individuals pass to the next
generation unmutated (elitism).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.predictors.replay import replay_prediction_error
from repro.predictors.smith import SmithPredictor
from repro.predictors.templates import ESTIMATOR_KINDS, Template
from repro.utils.rng import rng_from_seed
from repro.workloads.fields import TEMPLATE_CHARACTERISTICS
from repro.workloads.job import Trace

__all__ = [
    "GAConfig",
    "TemplateGenome",
    "SearchHistory",
    "TemplateSearch",
    "search_templates",
]

_NODE_EXP_MAX = 9  # range sizes 2^0 .. 2^9 = 1 .. 512
_HIST_EXP_MAX = 15  # histories 2^1 .. 2^16 = 2 .. 65536


@dataclass(frozen=True)
class GAConfig:
    """Knobs of the genetic search."""

    population: int = 24
    generations: int = 12
    mutation_rate: float = 0.01
    max_templates: int = 10
    fitness_min: float = 1.0  # F_max is fixed at 4*F_min per the paper
    eval_jobs: int | None = 1000  # cap on fitness-replay length (None = all)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 4 or self.population % 2:
            raise ValueError("population must be an even number >= 4")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0 <= self.mutation_rate <= 1:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 1 <= self.max_templates <= 10:
            raise ValueError("max_templates must be in [1, 10]")
        if self.fitness_min <= 0:
            raise ValueError("fitness_min must be positive")


class TemplateGenome:
    """Bit-level encoding of one template for a given characteristic list."""

    def __init__(self, chars: tuple[str, ...], has_max_run_time: bool) -> None:
        for c in chars:
            if c not in TEMPLATE_CHARACTERISTICS:
                raise ValueError(f"unknown characteristic {c!r}")
        self.chars = chars
        self.has_max_run_time = has_max_run_time
        self.bits_per_template = 2 + 1 + len(chars) + 1 + 4 + 1 + 4

    # -- encoding ------------------------------------------------------
    def decode(self, bits: np.ndarray) -> Template:
        if bits.shape != (self.bits_per_template,):
            raise ValueError(
                f"expected {self.bits_per_template} bits, got {bits.shape}"
            )
        pos = 0

        def take(n: int) -> np.ndarray:
            nonlocal pos
            out = bits[pos : pos + n]
            pos += n
            return out

        est_bits = take(2)
        est_idx = int(est_bits[0]) * 2 + int(est_bits[1])
        estimator = ESTIMATOR_KINDS[est_idx]
        relative = bool(take(1)[0]) and self.has_max_run_time
        enabled = take(len(self.chars))
        characteristics = tuple(
            c for c, e in zip(self.chars, enabled) if e
        )
        node_flag = bool(take(1)[0])
        node_exp = min(self._bits_to_int(take(4)), _NODE_EXP_MAX)
        hist_flag = bool(take(1)[0])
        hist_exp = min(self._bits_to_int(take(4)), _HIST_EXP_MAX)
        return Template(
            characteristics=characteristics,
            node_range_size=2**node_exp if node_flag else None,
            max_history=2 ** (hist_exp + 1) if hist_flag else None,
            relative=relative,
            estimator=estimator,
        )

    def encode(self, template: Template) -> np.ndarray:
        bits = np.zeros(self.bits_per_template, dtype=np.int8)
        est_idx = ESTIMATOR_KINDS.index(template.estimator)
        bits[0] = est_idx >> 1
        bits[1] = est_idx & 1
        bits[2] = int(template.relative)
        offset = 3
        enabled = set(template.characteristics)
        for i, c in enumerate(self.chars):
            bits[offset + i] = int(c in enabled)
        offset += len(self.chars)
        if template.node_range_size is not None:
            bits[offset] = 1
            self._int_to_bits(
                int(np.log2(template.node_range_size)), bits, offset + 1, 4
            )
        offset += 5
        if template.max_history is not None:
            bits[offset] = 1
            self._int_to_bits(
                int(np.log2(template.max_history)) - 1, bits, offset + 1, 4
            )
        return bits

    @staticmethod
    def _bits_to_int(bits: np.ndarray) -> int:
        v = 0
        for b in bits:
            v = (v << 1) | int(b)
        return v

    @staticmethod
    def _int_to_bits(value: int, out: np.ndarray, offset: int, width: int) -> None:
        for i in range(width):
            out[offset + width - 1 - i] = (value >> i) & 1

    def random_individual(
        self, rng: np.random.Generator, max_templates: int
    ) -> list[np.ndarray]:
        count = int(rng.integers(1, max_templates + 1))
        return [
            rng.integers(0, 2, size=self.bits_per_template).astype(np.int8)
            for _ in range(count)
        ]

    def decode_individual(self, individual: list[np.ndarray]) -> list[Template]:
        return [self.decode(t) for t in individual]


@dataclass
class SearchHistory:
    """Best error per generation, for convergence inspection."""

    best_errors: list[float] = field(default_factory=list)
    mean_errors: list[float] = field(default_factory=list)


class TemplateSearch:
    """The generational GA over template sets."""

    def __init__(
        self,
        trace: Trace,
        *,
        characteristics: tuple[str, ...] | None = None,
        config: GAConfig | None = None,
        prediction_workload=None,
    ) -> None:
        """``prediction_workload`` switches the fitness function from the
        submit-time replay to a recorded algorithm-specific request
        stream (see :mod:`repro.predictors.prediction_workload`) — the
        paper's per-algorithm/trace search setup.  ``config.eval_jobs``
        then caps the number of scored requests instead of jobs."""
        self.trace = trace
        self.config = config or GAConfig()
        if characteristics is None:
            avail = trace.available_fields or frozenset(TEMPLATE_CHARACTERISTICS)
            characteristics = tuple(
                c for c in TEMPLATE_CHARACTERISTICS if c in avail
            )
        if not characteristics:
            raise ValueError("no categorical characteristics available to search over")
        has_max = any(j.max_run_time is not None for j in trace)
        self.genome = TemplateGenome(characteristics, has_max)
        self._fitness_cache: dict[tuple, float] = {}
        self._prediction_workload = prediction_workload
        if prediction_workload is not None:
            if self.config.eval_jobs is not None:
                self._prediction_workload = prediction_workload.subsample(
                    self.config.eval_jobs
                )
            self._eval_trace = trace
        elif self.config.eval_jobs is not None and self.config.eval_jobs < len(trace):
            from repro.workloads.transform import head

            self._eval_trace = head(trace, self.config.eval_jobs)
        else:
            self._eval_trace = trace

    # -- fitness --------------------------------------------------------
    def _genome_key(self, individual: list[np.ndarray]) -> tuple:
        return tuple(tuple(int(b) for b in t) for t in individual)

    def error(self, individual: list[np.ndarray]) -> float:
        """Mean absolute replay error of an individual (lower is better)."""
        key = self._genome_key(individual)
        cached = self._fitness_cache.get(key)
        if cached is not None:
            return cached
        templates = self.genome.decode_individual(individual)
        predictor = SmithPredictor(templates)
        if self._prediction_workload is not None:
            from repro.predictors.prediction_workload import replay_workload_error

            err = replay_workload_error(self._prediction_workload, predictor)
        else:
            report = replay_prediction_error(self._eval_trace, predictor)
            err = report.mean_abs_error
        self._fitness_cache[key] = err
        return err

    def _fitnesses(self, errors: np.ndarray) -> np.ndarray:
        f_min = self.config.fitness_min
        f_max = 4.0 * f_min
        e_min, e_max = float(errors.min()), float(errors.max())
        if e_max <= e_min:
            return np.full_like(errors, (f_min + f_max) / 2.0)
        return f_min + (e_max - errors) / (e_max - e_min) * (f_max - f_min)

    # -- operators -------------------------------------------------------
    def _crossover(
        self,
        p1: list[np.ndarray],
        p2: list[np.ndarray],
        rng: np.random.Generator,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        b = self.genome.bits_per_template
        n, m = len(p1), len(p2)
        cap = self.config.max_templates
        for _ in range(64):
            i = int(rng.integers(0, n))
            j = int(rng.integers(0, m))
            len1 = i + 1 + (m - j - 1)
            len2 = j + 1 + (n - i - 1)
            if 1 <= len1 <= cap and 1 <= len2 <= cap:
                break
        else:  # extremely unlikely; splice at the heads
            i = j = 0
        p = int(rng.integers(1, b))  # cut strictly inside the template
        n1 = np.concatenate([p1[i][:p], p2[j][p:]])
        n2 = np.concatenate([p2[j][:p], p1[i][p:]])
        child1 = [t.copy() for t in p1[:i]] + [n1] + [t.copy() for t in p2[j + 1 :]]
        child2 = [t.copy() for t in p2[:j]] + [n2] + [t.copy() for t in p1[i + 1 :]]
        return child1, child2

    def _mutate(self, individual: list[np.ndarray], rng: np.random.Generator) -> None:
        rate = self.config.mutation_rate
        if rate <= 0:
            return
        for t in individual:
            flips = rng.uniform(size=t.shape) < rate
            t[flips] ^= 1

    # -- main loop -------------------------------------------------------
    def run(self) -> tuple[list[Template], SearchHistory]:
        cfg = self.config
        rng = rng_from_seed(cfg.seed)
        population = [
            self.genome.random_individual(rng, cfg.max_templates)
            for _ in range(cfg.population)
        ]
        history = SearchHistory()
        best_individual: list[np.ndarray] | None = None
        best_error = float("inf")
        for _gen in range(cfg.generations):
            errors = np.array([self.error(ind) for ind in population])
            order = np.argsort(errors)
            if errors[order[0]] < best_error:
                best_error = float(errors[order[0]])
                best_individual = [t.copy() for t in population[int(order[0])]]
            history.best_errors.append(float(errors[order[0]]))
            history.mean_errors.append(float(errors.mean()))
            fitness = self._fitnesses(errors)
            probs = fitness / fitness.sum()
            next_pop: list[list[np.ndarray]] = []
            # Crossover fills all but the two elite slots.
            while len(next_pop) < cfg.population - 2:
                i1 = int(rng.choice(cfg.population, p=probs))
                i2 = int(rng.choice(cfg.population, p=probs))
                c1, c2 = self._crossover(population[i1], population[i2], rng)
                self._mutate(c1, rng)
                self._mutate(c2, rng)
                next_pop.append(c1)
                if len(next_pop) < cfg.population - 2:
                    next_pop.append(c2)
            # Elitism: the two best survive unmutated.
            next_pop.append([t.copy() for t in population[int(order[0])]])
            next_pop.append([t.copy() for t in population[int(order[1])]])
            population = next_pop
        assert best_individual is not None
        return self.genome.decode_individual(best_individual), history


def search_templates(
    trace: Trace,
    *,
    config: GAConfig | None = None,
    characteristics: tuple[str, ...] | None = None,
) -> tuple[list[Template], SearchHistory]:
    """Convenience wrapper: run a :class:`TemplateSearch` over ``trace``."""
    return TemplateSearch(
        trace, characteristics=characteristics, config=config
    ).run()
