"""Downey's run-time predictor (paper §2.2).

Downey models the cumulative distribution of run times within a category
(he categorizes by submission queue) as log-uniform:

    F(t) = beta0 + beta1 * ln t

fit by least squares over the empirical CDF.  Writing
``tmax = e^{(1.0 - beta0)/beta1}`` for the distribution's upper end, the
two predictors for a job that has already run ``a`` are

- **conditional median**:   sqrt(a * tmax)
- **conditional average**:  (tmax - a) / (ln tmax - ln a)

Both degenerate at ``a = 0`` (a queued job), so ``a`` is floored at the
smallest run time observed in the category — the natural lower end of a
log-uniform model; with that floor the unconditional median becomes the
geometric mean of the distribution's ends, as in Downey's own paper.

For traces without queues (ANL, CTC) all jobs share one global category,
per Downey's remark that any characteristic (or none) can be used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.predictors.base import Prediction, RuntimePredictor
from repro.workloads.job import Job

__all__ = ["DowneyPredictor", "LogUniformFit", "fit_log_uniform"]


@dataclass(frozen=True)
class LogUniformFit:
    """A fitted F(t) = beta0 + beta1 ln t model."""

    beta0: float
    beta1: float
    t_min: float
    n: int

    @property
    def t_max(self) -> float:
        """Run time at which the fitted CDF reaches 1."""
        return math.exp((1.0 - self.beta0) / self.beta1)

    def conditional_median(self, age: float) -> float:
        a = max(age, self.t_min, 1e-9)
        return math.sqrt(a * self.t_max)

    def conditional_average(self, age: float) -> float:
        a = max(age, self.t_min, 1e-9)
        tmax = self.t_max
        if tmax <= a * (1.0 + 1e-12):
            return a
        return (tmax - a) / (math.log(tmax) - math.log(a))


def fit_log_uniform(run_times: list[float]) -> LogUniformFit | None:
    """Least-squares fit of the empirical CDF to ``beta0 + beta1 ln t``.

    Returns ``None`` when the sample cannot support the model: fewer than
    two points, no spread in ``ln t``, or a non-increasing fit
    (``beta1 <= 0``).
    """
    n = len(run_times)
    if n < 2:
        return None
    ts = np.sort(np.asarray(run_times, dtype=float))
    if ts[0] <= 0:
        ts = np.clip(ts, 1e-9, None)
    x = np.log(ts)
    if float(x.max() - x.min()) <= 0.0:
        return None
    # Hazen plotting positions avoid F=0 and F=1 exactly.
    f = (np.arange(1, n + 1) - 0.5) / n
    x_mean = float(x.mean())
    sxx = float(((x - x_mean) ** 2).sum())
    beta1 = float(((x - x_mean) * (f - f.mean())).sum() / sxx)
    if beta1 <= 0.0:
        return None
    beta0 = float(f.mean() - beta1 * x_mean)
    return LogUniformFit(beta0=beta0, beta1=beta1, t_min=float(ts[0]), n=n)


class DowneyPredictor(RuntimePredictor):
    """Log-uniform conditional median / average predictor."""

    KINDS = ("median", "average")

    def __init__(self, kind: str = "median", *, max_history: int | None = None) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {kind!r}")
        if max_history is not None and max_history < 2:
            raise ValueError("max_history must be >= 2")
        self.kind = kind
        self.max_history = max_history
        self.name = f"downey-{kind}"
        self._samples: dict[str, list[float]] = {}
        self._fits: dict[str, LogUniformFit | None] = {}

    @staticmethod
    def _category(job: Job) -> str:
        return job.queue if job.queue is not None else "()"

    def on_finish(self, job: Job, now: float) -> None:
        key = self._category(job)
        bucket = self._samples.setdefault(key, [])
        bucket.append(job.run_time)
        if self.max_history is not None and len(bucket) > self.max_history:
            del bucket[0]
        self._fits.pop(key, None)  # invalidate the cached fit

    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        key = self._category(job)
        if key not in self._fits:
            self._fits[key] = fit_log_uniform(self._samples.get(key, []))
        fit = self._fits[key]
        if fit is None:
            return None
        if self.kind == "median":
            est = fit.conditional_median(elapsed)
        else:
            est = fit.conditional_average(elapsed)
        if not math.isfinite(est) or est <= 0.0:
            return None
        return Prediction(
            estimate=max(est, elapsed),
            interval=0.0,
            source=f"downey-{self.kind}:{key}",
        )
