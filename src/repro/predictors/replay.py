"""Online replay of a trace through a predictor.

Scores a predictor the way the paper's run-time prediction experiments
do: walk the trace in submission order, predict each job's run time at
the moment it is submitted, and insert completed jobs into the
predictor's history as soon as they finish.  Scheduling is not simulated
here — completion is approximated as ``submit + run`` (zero wait), which
preserves the online causal order (a job's own outcome is never visible
to its prediction) while staying cheap enough to serve as the genetic
search's fitness function.

The full-fidelity variant, where predictions fire at every scheduling
attempt of a real simulation, lives in :mod:`repro.core.experiment`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.predictors.base import PointEstimator, RuntimePredictor
from repro.utils.timeutils import seconds_to_minutes
from repro.workloads.job import Trace

__all__ = ["ReplayReport", "replay_prediction_error"]


@dataclass(frozen=True)
class ReplayReport:
    """Accuracy of one predictor over one trace replay."""

    n_jobs: int
    n_predicted: int  # predictions served by the predictor itself
    n_fallback: int  # predictions served by the fallback chain
    mean_abs_error: float  # seconds
    mean_run_time: float  # seconds

    @property
    def mean_abs_error_minutes(self) -> float:
        return seconds_to_minutes(self.mean_abs_error)

    @property
    def error_fraction_of_mean_run_time(self) -> float:
        """The paper's 'percentage of mean run time' metric, as a fraction."""
        if self.mean_run_time <= 0:
            return 0.0
        return self.mean_abs_error / self.mean_run_time


def replay_prediction_error(
    trace: Trace,
    predictor: RuntimePredictor,
    *,
    default: float = 600.0,
    fall_back_to_max: bool = True,
) -> ReplayReport:
    """Replay ``trace`` through ``predictor`` and report its accuracy.

    The predictor is mutated (its history grows); pass a fresh instance.
    """
    estimator = PointEstimator(
        predictor, default=default, fall_back_to_max=fall_back_to_max
    )
    completions: list[tuple[float, int]] = []  # (finish_time, index into trace)
    jobs = list(trace)
    abs_errors = np.empty(len(jobs))
    n_predicted = 0
    for i, job in enumerate(jobs):
        while completions and completions[0][0] <= job.submit_time:
            finish_time, idx = heapq.heappop(completions)
            estimator.on_finish(jobs[idx], finish_time)
        if predictor.predict(job, 0.0, job.submit_time) is not None:
            n_predicted += 1
        est = estimator.predict(job, 0.0, job.submit_time)
        abs_errors[i] = abs(est - job.run_time)
        heapq.heappush(completions, (job.submit_time + job.run_time, i))
    n = len(jobs)
    return ReplayReport(
        n_jobs=n,
        n_predicted=n_predicted,
        n_fallback=n - n_predicted,
        mean_abs_error=float(abs_errors.mean()) if n else 0.0,
        mean_run_time=float(np.mean([j.run_time for j in jobs])) if n else 0.0,
    )
