"""Experiment harnesses beyond the paper's table grids.

- :mod:`repro.experiments.misprediction` — the misprediction-cost
  harness: inject controlled error into the run-time oracle, replay the
  scheduler, and map prediction error to schedule degradation.
"""

from repro.experiments.misprediction import (
    DEFAULT_ERROR_LEVELS,
    DegradationCurve,
    ErrorModel,
    MispredictionCell,
    NoisyPredictor,
    run_misprediction_campaign,
    run_misprediction_experiment,
)

__all__ = [
    "DEFAULT_ERROR_LEVELS",
    "DegradationCurve",
    "ErrorModel",
    "MispredictionCell",
    "NoisyPredictor",
    "run_misprediction_campaign",
    "run_misprediction_experiment",
]
