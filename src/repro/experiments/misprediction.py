"""The misprediction-cost harness: what prediction error costs the scheduler.

Every predictor experiment in :mod:`repro.core.experiment` measures
accuracy *or* schedule quality; this harness measures the exchange rate
between them, in the spirit of Mitzenmacher's "Scheduling with
Predictions and the Price of Misprediction".  A :class:`NoisyPredictor`
wraps the run-time oracle and perturbs each prediction with a
controlled, seeded error distribution; replaying the same workload and
policy across a ladder of error levels yields a **degradation curve** —
prediction error in, mean-wait/slowdown degradation out.

Design constraints, all load-bearing:

- **Purity.**  The injected noise is a deterministic function of
  ``(seed, job_id)``, never of call count or wall clock, so a
  :class:`NoisyPredictor` is as pure as its base predictor and the
  simulator's epoch-keyed estimate cache stays exact (the epoch contract
  of :mod:`repro.predictors.base`).
- **Zero-error identity.**  At ``level == 0`` the wrapped prediction is
  returned *unchanged* (same object, no float round trip), so the
  zero-error cell of every curve is bit-identical to the plain oracle
  cell — asserted in ``tests/test_misprediction.py``.
- **Injection audit.**  Each cell records injected-vs-realized error
  through :class:`repro.obs.accuracy.AccuracyMonitor`, so the same tail
  metrics (p99/p50 ratio) that score real predictors validate that the
  injected distribution is the one asked for.

Cells fan across worker processes through the existing parallel table
layer (:mod:`repro.core.parallel`) — ``kind="misprediction"`` specs ride
the same plan/retry/timeout machinery as the paper tables.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.accuracy import AccuracyMonitor
from repro.predictors.base import PointEstimator, Prediction, RuntimePredictor
from repro.scheduler.metrics import ScheduleResult
from repro.scheduler.simulator import Simulator
from repro.utils.timeutils import seconds_to_minutes
from repro.workloads.job import Job, Trace

__all__ = [
    "ERROR_KINDS",
    "DEFAULT_ERROR_LEVELS",
    "ErrorModel",
    "NoisyPredictor",
    "MispredictionCell",
    "DegradationCurve",
    "run_misprediction_experiment",
    "run_misprediction_campaign",
]

#: Supported injected-error families.
ERROR_KINDS = ("multiplicative", "additive")

#: The default error ladder: the exact-oracle anchor plus three
#: log-spaced levels (sigma of the log-normal factor for multiplicative
#: noise; seconds of Gaussian offset for additive noise).
DEFAULT_ERROR_LEVELS = (0.0, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class ErrorModel:
    """A controlled error distribution applied to run-time predictions.

    ``multiplicative`` scales the estimate by ``exp(level · g)`` with
    ``g ~ N(0, 1)`` — a median-preserving log-normal factor whose
    magnitude is the paper-style *relative* error (level 0.5 ≈ ±65%
    typical misprediction).  ``additive`` shifts by ``level · g``
    seconds, floored at zero.  ``level == 0`` is the exact oracle for
    both kinds.
    """

    kind: str = "multiplicative"
    level: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ERROR_KINDS:
            raise ValueError(
                f"unknown error kind {self.kind!r}; expected one of {ERROR_KINDS}"
            )
        if self.level < 0:
            raise ValueError(f"level must be >= 0, got {self.level}")

    def gauss(self, job_id: int) -> float:
        """The job's standard-normal draw — a pure function of (seed, id).

        Seeding with a string routes through ``random.Random``'s SHA-512
        path, which is stable across processes and interpreter runs
        (unlike ``hash``-based seeding under ``PYTHONHASHSEED``).
        """
        return random.Random(f"misprediction:{self.seed}:{job_id}").gauss(0.0, 1.0)

    def apply(self, estimate: float, job_id: int) -> float:
        """Perturb ``estimate`` for ``job_id``; identity at level 0."""
        if self.level == 0.0:
            return estimate
        g = self.gauss(job_id)
        if self.kind == "multiplicative":
            return estimate * math.exp(self.level * g)
        return max(estimate + self.level * g, 0.0)

    def describe(self) -> str:
        return f"{self.kind}@{self.level:g}"


class NoisyPredictor(RuntimePredictor):
    """Wrap a predictor and inject an :class:`ErrorModel` into estimates.

    Forwards the lifecycle hooks and proxies ``history_epoch`` /
    ``elapsed_invariant``, so the wrapper is exactly as cacheable as its
    base.  Confidence-interval half-widths pass through unchanged — the
    harness studies *point*-estimate error, which is all the scheduler
    consumes.
    """

    def __init__(self, base: RuntimePredictor, model: ErrorModel) -> None:
        self.base = base
        self.model = model
        self.name = f"noisy-{model.describe()}({base.name})"
        #: Noise factors are deterministic per job id; memoize them so a
        #: replay's many predictions per job hash one string each.
        self._noise_cache: dict[int, float] = {}

    @property
    def history_epoch(self) -> int | None:
        return self.base.history_epoch

    @property
    def elapsed_invariant(self) -> bool:
        return self.base.elapsed_invariant

    def predict(self, job: Job, elapsed: float = 0.0, now: float = 0.0) -> Prediction | None:
        pred = self.base.predict(job, elapsed, now)
        if pred is None or self.model.level == 0.0:
            # Zero-error identity: the base Prediction object itself, so
            # level-0 cells are bit-identical to un-wrapped oracle cells.
            return pred
        g = self._noise_cache.get(job.job_id)
        if g is None:
            g = self._noise_cache[job.job_id] = self.model.gauss(job.job_id)
        if self.model.kind == "multiplicative":
            est = pred.estimate * math.exp(self.model.level * g)
        else:
            est = max(pred.estimate + self.model.level * g, 0.0)
        return Prediction(estimate=est, interval=pred.interval, source=self.name)

    def on_submit(self, job: Job, now: float) -> None:
        self.base.on_submit(job, now)

    def on_start(self, job: Job, now: float) -> None:
        self.base.on_start(job, now)

    def on_finish(self, job: Job, now: float) -> None:
        self.base.on_finish(job, now)


@dataclass(frozen=True)
class MispredictionCell:
    """One (workload, policy, error-level) replay outcome."""

    workload: str
    algorithm: str
    base_predictor: str
    error_kind: str
    error_level: float
    error_seed: int
    utilization_percent: float
    mean_wait_minutes: float
    mean_bounded_slowdown: float
    n_jobs: int
    #: Injected-vs-realized run-time error over the replayed jobs.
    injected_mae_minutes: float
    injected_p99_minutes: float
    injected_tail_ratio: float | None
    #: Full AccuracyMonitor snapshot of the injection (excluded from
    #: equality, like the cells of repro.core.experiment).
    accuracy: dict | None = field(default=None, compare=False, repr=False)
    #: Registry snapshot of the replay that produced the cell.
    metrics: dict | None = field(default=None, compare=False, repr=False)

    def as_row(self) -> dict[str, object]:
        return {
            "Workload": self.workload,
            "Scheduling Algorithm": self.algorithm,
            "Error": self.error_kind,
            "Level": self.error_level,
            "Injected MAE (min)": round(self.injected_mae_minutes, 2),
            "Mean Wait Time (minutes)": round(self.mean_wait_minutes, 2),
            "Utilization (percent)": round(self.utilization_percent, 2),
            "Bounded Slowdown": round(self.mean_bounded_slowdown, 2),
        }


@dataclass(frozen=True)
class DegradationCurve:
    """One policy's error-level ladder on one workload, zero-anchored."""

    workload: str
    algorithm: str
    error_kind: str
    cells: tuple[MispredictionCell, ...]

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a degradation curve needs at least one cell")
        levels = [c.error_level for c in self.cells]
        if levels != sorted(levels):
            raise ValueError(f"cells must be ordered by error level, got {levels}")

    @property
    def baseline(self) -> MispredictionCell:
        """The lowest-level cell (level 0 anchors the curve exactly)."""
        return self.cells[0]

    def degradation_percent(self, cell: MispredictionCell) -> float | None:
        """Mean-wait change vs the baseline cell, in percent.

        ``None`` when the baseline wait is zero (degenerate tiny traces).
        """
        base = self.baseline.mean_wait_minutes
        if base <= 0.0:
            return None
        return 100.0 * (cell.mean_wait_minutes - base) / base

    def rows(self) -> list[dict[str, object]]:
        """Table-ready rows, one per level, with the Δ-wait column."""
        out = []
        for cell in self.cells:
            row = cell.as_row()
            deg = self.degradation_percent(cell)
            row["Wait vs oracle (%)"] = "-" if deg is None else round(deg, 1)
            out.append(row)
        return out


def _injection_audit(
    trace: Trace, noisy: NoisyPredictor, *, window: int
) -> AccuracyMonitor:
    """Score the injected estimates against the realized run times.

    Exact for history-free bases (the oracle, the harness default): the
    noisy submission-time estimate is a pure function of the job, so
    probing after the replay reproduces it bit-for-bit.
    """
    monitor = AccuracyMonitor(window=window)
    for job in trace:
        pred = noisy.predict(job, 0.0, job.submit_time)
        if pred is None:
            continue
        monitor.observe(
            "run_time", noisy.name, pred.estimate, job.run_time, key=pred.source
        )
    return monitor


def run_misprediction_experiment(
    trace: Trace,
    policy_name: str,
    model: ErrorModel,
    *,
    base_predictor: str = "actual",
    instrumentation=None,
) -> tuple[MispredictionCell, ScheduleResult]:
    """One cell: replay ``trace`` under ``policy_name`` with injected error.

    Mirrors :func:`repro.core.experiment.run_scheduling_experiment` —
    same simulator, same estimator plumbing — except the predictor is
    ``base_predictor`` wrapped in a :class:`NoisyPredictor`.  At
    ``model.level == 0`` the schedule is bit-identical to the plain
    ``base_predictor`` cell.
    """
    from repro.core.registry import make_policy, make_predictor

    policy = make_policy(policy_name)
    noisy = NoisyPredictor(make_predictor(base_predictor, trace), model)
    estimator = PointEstimator(noisy, instrumentation=instrumentation)
    sim = Simulator(policy, estimator, trace.total_nodes, instrumentation=instrumentation)
    result = sim.run(trace)

    monitor = _injection_audit(trace, noisy, window=min(len(trace), 200) or 1)
    groups = monitor.groups()
    stats = groups[0].snapshot() if groups else None
    cell = MispredictionCell(
        workload=trace.name,
        algorithm=policy.name,
        base_predictor=base_predictor,
        error_kind=model.kind,
        error_level=model.level,
        error_seed=model.seed,
        utilization_percent=result.utilization_percent,
        mean_wait_minutes=result.mean_wait_minutes,
        mean_bounded_slowdown=result.mean_bounded_slowdown(),
        n_jobs=len(result),
        injected_mae_minutes=seconds_to_minutes(stats["mae"]) if stats else 0.0,
        injected_p99_minutes=seconds_to_minutes(stats["p99"] or 0.0) if stats else 0.0,
        injected_tail_ratio=stats["tail_ratio"] if stats else None,
        accuracy=monitor.snapshot(),
        metrics=sim.metrics_snapshot(),
    )
    return cell, result


def _curves_from_cells(
    cells: Sequence[MispredictionCell],
    workload_names: Sequence[str],
    algorithms: Sequence[str],
    levels: Sequence[float],
    kind: str,
) -> list[DegradationCurve]:
    """Regroup a plan-ordered cell list into per-(workload, policy) curves."""
    curves = []
    it = iter(cells)
    for w in workload_names:
        for _algo in algorithms:
            ladder = tuple(next(it) for _ in levels)
            curves.append(
                DegradationCurve(
                    workload=w,
                    algorithm=ladder[0].algorithm,
                    error_kind=kind,
                    cells=ladder,
                )
            )
    return curves


def run_misprediction_campaign(
    *,
    workloads: Sequence[str] | Sequence[Trace] | None = None,
    algorithms: Sequence[str] = ("backfill", "easy"),
    levels: Sequence[float] = DEFAULT_ERROR_LEVELS,
    kind: str = "multiplicative",
    noise_seed: int = 0,
    base_predictor: str = "actual",
    n_jobs: int | None = None,
    seed: int | None = None,
    max_workers: int = 1,
    cell_timeout: float | None = None,
    retries: int = 1,
    telemetry=None,
) -> list[DegradationCurve]:
    """The (workload × policy × error-level) grid, as degradation curves.

    ``levels`` is sorted ascending and anchored: a run that omits level
    0 still produces curves, but their baseline is the lowest level
    rather than the exact oracle.  ``max_workers > 1`` fans the cells
    across the parallel table layer (:mod:`repro.core.parallel`) with
    the usual plan-order, timeout, and retry semantics; ``telemetry``
    (a :class:`repro.obs.campaign.CampaignTelemetry`) makes that run an
    observable campaign and applies to the parallel path only.
    """
    from repro.core.parallel import (
        ExperimentPlan,
        ParallelExecutionError,
        run_table_parallel,
    )
    from repro.workloads.archive import PAPER_WORKLOADS, load_paper_workload

    levels = sorted(levels)
    if not levels:
        raise ValueError("at least one error level is required")
    if workloads is None:
        workloads = tuple(PAPER_WORKLOADS)
    traces = [
        w if isinstance(w, Trace) else load_paper_workload(w, n_jobs=n_jobs, seed=seed)
        for w in workloads
    ]
    names = [t.name for t in traces]

    if max_workers != 1:
        plan = ExperimentPlan.for_misprediction(
            workloads=traces,
            algorithms=algorithms,
            levels=levels,
            kind=kind,
            noise_seed=noise_seed,
            base_predictor=base_predictor,
            seed=seed,
        )
        run = run_table_parallel(
            plan, max_workers=max_workers, timeout=cell_timeout, retries=retries,
            telemetry=telemetry,
        )
        if run.failures:
            raise ParallelExecutionError(run.failures)
        return _curves_from_cells(run.cells, names, algorithms, levels, kind)

    cells: list[MispredictionCell] = []
    for trace in traces:
        for algo in algorithms:
            for level in levels:
                cell, _ = run_misprediction_experiment(
                    trace,
                    algo,
                    ErrorModel(kind=kind, level=level, seed=noise_seed),
                    base_predictor=base_predictor,
                )
                cells.append(cell)
    return _curves_from_cells(cells, names, algorithms, levels, kind)
