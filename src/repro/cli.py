"""Command-line interface: run any of the paper's experiments directly.

Installed as the ``repro-sched`` console script::

    repro-sched scheduling --workloads ANL --predictors actual max smith
    repro-sched wait-time --algorithms backfill --n-jobs 500
    repro-sched misprediction --workloads ANL --levels 0 0.5 1 --parallel 2
    repro-sched runtime-error
    repro-sched summarize --n-jobs 2000
    repro-sched report --n-jobs 1000 -o EXPERIMENTS.md
    repro-sched trace --workload ANL --n-jobs 300 -o trace.jsonl --summary
    repro-sched trace --wait-pred state -o trace.jsonl --metrics > metrics.json
    repro-sched report trace.jsonl --metrics metrics.json --check
    repro-sched scheduling --parallel 4 --progress --journal campaign.jsonl
    repro-sched campaign campaign.jsonl --summary
    repro-sched campaign campaign.jsonl --check
    repro-sched trace --detail -o trace.jsonl
    repro-sched explain trace.jsonl --job 42
    repro-sched timeline trace.jsonl --metric util queue backlog
    repro-sched serve --workload SDSC96 --algorithm backfill --port 7099
    repro-sched query --replay 80 --workload SDSC96 --all-queued --stats
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.config import ExperimentConfig
from repro.core.experiment import (
    run_runtime_prediction_experiment,
    run_scheduling_experiment,
    run_wait_time_experiment,
)
from repro.core.registry import POLICY_NAMES, PREDICTOR_NAMES
from repro.core.tables import format_table
from repro.experiments.misprediction import DEFAULT_ERROR_LEVELS, ERROR_KINDS
from repro.obs.timeseries import TIMESERIES_METRICS
from repro.workloads.archive import PAPER_WORKLOADS, load_paper_workload
from repro.workloads.stats import summarize
from repro.workloads.transform import compress_interarrival

__all__ = ["main", "build_parser", "run_config", "run_trace",
           "run_report_from_trace", "run_misprediction", "run_campaign",
           "run_explain", "run_timeline", "run_serve", "run_query"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=(
            "Reproduction of Smith/Taylor/Foster (IPPS 1999): run-time "
            "prediction for queue wait-time estimation and scheduling."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_grid_args(p: argparse.ArgumentParser, *, algorithms: bool) -> None:
        p.add_argument(
            "--workloads",
            nargs="+",
            default=list(PAPER_WORKLOADS),
            choices=sorted(PAPER_WORKLOADS),
            metavar="W",
        )
        if algorithms:
            p.add_argument(
                "--algorithms",
                nargs="+",
                default=["lwf", "backfill"],
                choices=POLICY_NAMES,
                metavar="A",
            )
        p.add_argument(
            "--predictors",
            nargs="+",
            default=["actual", "max", "smith"],
            choices=PREDICTOR_NAMES,
            metavar="P",
        )
        p.add_argument("--n-jobs", type=int, default=1000,
                       help="jobs per workload (0 = full paper size)")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--compress", type=float, default=1.0,
                       help="divide interarrival gaps by this factor")
        p.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="fan the grid's cells across N worker "
                       "processes (1 = serial; 0 = one per CPU)")
        add_campaign_args(p)

    def add_campaign_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--progress", action="store_true",
                       help="(parallel runs) live campaign status line on "
                       "stderr: cells done, throughput, ETA, stragglers")
        p.add_argument("--journal", default=None, metavar="FILE",
                       help="(parallel runs) write the campaign event "
                       "journal (kill-safe JSONL) for `repro-sched "
                       "campaign` to inspect")

    p_sched = sub.add_parser("scheduling", help="Tables 10-15 style grid")
    add_grid_args(p_sched, algorithms=True)
    p_wait = sub.add_parser("wait-time", help="Tables 4-9 style grid")
    add_grid_args(p_wait, algorithms=True)
    p_rt = sub.add_parser("runtime-error", help="§3 run-time accuracy grid")
    add_grid_args(p_rt, algorithms=False)

    p_mis = sub.add_parser(
        "misprediction",
        help="error -> schedule-degradation curves (noisy run-time oracle)",
    )
    p_mis.add_argument(
        "--workloads",
        nargs="+",
        default=["ANL"],
        choices=sorted(PAPER_WORKLOADS),
        metavar="W",
    )
    p_mis.add_argument(
        "--algorithms",
        nargs="+",
        default=["backfill", "easy"],
        choices=POLICY_NAMES,
        metavar="A",
    )
    p_mis.add_argument(
        "--levels",
        nargs="+",
        type=float,
        default=list(DEFAULT_ERROR_LEVELS),
        metavar="L",
        help="injected error levels (sorted ascending; include 0 to anchor "
        "the curve at the exact oracle)",
    )
    p_mis.add_argument("--error-kind", default="multiplicative",
                       choices=ERROR_KINDS)
    p_mis.add_argument("--noise-seed", type=int, default=0,
                       help="seed of the per-job error draws")
    p_mis.add_argument("--base-predictor", default="actual",
                       choices=PREDICTOR_NAMES,
                       help="predictor the noise wraps (default: the oracle)")
    p_mis.add_argument("--n-jobs", type=int, default=300,
                       help="jobs per workload (0 = full paper size)")
    p_mis.add_argument("--seed", type=int, default=None)
    p_mis.add_argument("--compress", type=float, default=1.0,
                       help="divide interarrival gaps by this factor")
    p_mis.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="fan the (workload x policy x level) cells "
                       "across N worker processes (1 = serial; 0 = one "
                       "per CPU)")
    add_campaign_args(p_mis)

    p_cam = sub.add_parser(
        "campaign",
        help="inspect a campaign journal written by --journal: replay it "
        "into a summary (completed/dispatched/failed cells, throughput, "
        "stragglers) or validate it",
    )
    p_cam.add_argument("journal", help="campaign JSONL journal file")
    p_cam.add_argument("--summary", action="store_true",
                       help="print the replayed campaign summary (default; "
                       "tolerates the torn final line a SIGKILL can leave)")
    p_cam.add_argument("--check", action="store_true",
                       help="strictly validate every journal line against "
                       "the event schema and cross-check cell consistency; "
                       "fails cleanly on truncated or incomplete journals")
    p_cam.add_argument("--json", action="store_true",
                       help="emit the summary as JSON")

    p_sum = sub.add_parser("summarize", help="Table 1 style characterization")
    p_sum.add_argument("--n-jobs", type=int, default=1000)

    p_rep = sub.add_parser(
        "report",
        help="write the EXPERIMENTS.md grid, or — given a recorded JSONL "
        "trace — a self-contained run report (schedule outcomes, "
        "prediction accuracy, instrumentation overhead)",
    )
    p_rep.add_argument(
        "trace", nargs="?", default=None,
        help="JSONL trace from `repro-sched trace`; when given, build a "
        "run report from it instead of the EXPERIMENTS.md grid",
    )
    p_rep.add_argument("--n-jobs", type=int, default=1000,
                       help="(grid mode) jobs per workload")
    p_rep.add_argument("-o", "--output", default=None,
                       help="output file (grid mode default: EXPERIMENTS.md; "
                       "run-report mode default: stdout)")
    p_rep.add_argument("--metrics", default=None,
                       help="(run-report mode) metrics snapshot JSON, e.g. "
                       "captured from `repro-sched trace --metrics`")
    p_rep.add_argument("--json", action="store_true",
                       help="(run-report mode) emit the report as JSON")
    p_rep.add_argument("--check", action="store_true",
                       help="(run-report mode) validate the report against "
                       "the minimal report schema")
    p_rep.add_argument("--window", type=int, default=200,
                       help="(run-report mode) rolling window for the drift "
                       "signal")

    p_tr = sub.add_parser(
        "trace", help="replay with structured event tracing (repro.obs)"
    )
    p_tr.add_argument("--workload", default="ANL", choices=sorted(PAPER_WORKLOADS))
    p_tr.add_argument(
        "--algorithms",
        nargs="+",
        default=["backfill"],
        choices=POLICY_NAMES,
        metavar="A",
    )
    p_tr.add_argument("--predictor", default="max", choices=PREDICTOR_NAMES)
    p_tr.add_argument("--n-jobs", type=int, default=300,
                      help="jobs to replay (0 = full paper size)")
    p_tr.add_argument("--seed", type=int, default=None)
    p_tr.add_argument("--compress", type=float, default=1.0,
                      help="divide interarrival gaps by this factor")
    p_tr.add_argument("-o", "--out", default="trace.jsonl",
                      help="JSONL event file to write")
    p_tr.add_argument("--detail", action="store_true",
                      help="also emit per-estimate cache_hit/cache_miss "
                      "events and decision provenance (start_blocked / "
                      "reservation_binding / backfill_hole_used)")
    p_tr.add_argument("--from", dest="from_file", default=None, metavar="FILE",
                      help="inspect an existing trace instead of replaying: "
                      "--summary/--check read FILE and nothing is written")
    p_tr.add_argument("--wait-pred", default="none",
                      choices=["none", "forward", "state"],
                      help="also attach a wait-time predictor observer, so "
                      "the audit trail pairs wait predictions with realized "
                      "waits (forward simulation or state-based)")
    p_tr.add_argument("--summary", action="store_true",
                      help="print a per-policy event-type breakdown")
    p_tr.add_argument("--check", action="store_true",
                      help="validate the written trace against the event schema "
                      "and the started/finished counts against the job count")
    p_tr.add_argument("--metrics", action="store_true",
                      help="print the merged metrics registry as JSON")

    p_ex = sub.add_parser(
        "explain",
        help="explain why a job waited: decision timeline and wait "
        "decomposition from a recorded trace (best with `trace --detail`)",
    )
    p_ex.add_argument("trace", help="JSONL trace from `repro-sched trace`")
    p_ex.add_argument("--job", type=int, nargs="+", required=True,
                      metavar="ID", help="job id(s) to explain")
    p_ex.add_argument("--policy", default=None,
                      help="policy name when the trace interleaves several "
                      "replays (e.g. Backfill, FCFS)")
    p_ex.add_argument("--json", action="store_true",
                      help="emit the explanation(s) as JSON")
    p_ex.add_argument("--no-timeline", action="store_true",
                      help="omit the per-event timeline from text output")

    p_tl = sub.add_parser(
        "timeline",
        help="render scheduler state over simulated time (sparklines) "
        "rebuilt from a recorded trace",
    )
    p_tl.add_argument("trace", help="JSONL trace from `repro-sched trace`")
    p_tl.add_argument("--metric", nargs="+", default=["util"],
                      choices=sorted(TIMESERIES_METRICS), metavar="M",
                      help="metrics to render: "
                      + ", ".join(sorted(TIMESERIES_METRICS)))
    p_tl.add_argument("--policy", default=None,
                      help="policy name when the trace interleaves several "
                      "replays")
    p_tl.add_argument("--total-nodes", type=int, default=None,
                      help="machine size (default: inferred from peak "
                      "concurrent allocation)")
    p_tl.add_argument("--width", type=int, default=60,
                      help="sparkline width in columns")
    p_tl.add_argument("--max-points", type=int, default=2048,
                      help="reservoir size of the rebuilt series")
    p_tl.add_argument("-o", "--out", default=None, metavar="FILE",
                      help="also write the raw points as JSONL")

    p_srv = sub.add_parser(
        "serve",
        help="run the online wait-time prediction service: a JSON-lines "
        "TCP server fed scheduler events, answering wait queries from "
        "epoch-cached analytic predictions (repro.service)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7099,
                       help="TCP port (0 = ask the OS; the bound port is "
                       "printed on stderr)")
    p_srv.add_argument("--workload", default="ANL",
                       choices=sorted(PAPER_WORKLOADS),
                       help="workload whose machine size and job history "
                       "shape the service (nodes, predictor warm-up)")
    p_srv.add_argument("--algorithm", default="backfill", choices=POLICY_NAMES,
                       help="scheduling policy the predictions assume")
    p_srv.add_argument("--predictor", default="max", choices=PREDICTOR_NAMES,
                       help="run-time predictor supplying believed durations")
    p_srv.add_argument("--n-jobs", type=int, default=300,
                       help="jobs used to size/warm the predictor "
                       "(0 = full paper size)")
    p_srv.add_argument("--slow", action="store_true",
                       help="disable the analytic shortcuts; every miss "
                       "runs the reference forward simulation")

    p_q = sub.add_parser(
        "query",
        help="client for `repro-sched serve`: stream replay events to the "
        "server and/or ask it for predicted waits",
    )
    p_q.add_argument("--host", default="127.0.0.1")
    p_q.add_argument("--port", type=int, default=7099)
    p_q.add_argument("--replay", type=int, default=None, metavar="N",
                     help="replay the workload's first N jobs locally, "
                     "streaming each submit/start/finish to the server; "
                     "stops at the last submission so a live queue remains")
    p_q.add_argument("--workload", default="ANL",
                     choices=sorted(PAPER_WORKLOADS),
                     help="(--replay) workload to replay")
    p_q.add_argument("--algorithm", default="backfill", choices=POLICY_NAMES,
                     help="(--replay) policy driving the local replay — "
                     "use the one the server was started with")
    p_q.add_argument("--predictor", default="max", choices=PREDICTOR_NAMES,
                     help="(--replay) estimator driving the local replay")
    p_q.add_argument("--compress", type=float, default=1.0,
                     help="(--replay) divide interarrival gaps by this "
                     "factor — raises contention so a queue builds up")
    p_q.add_argument("--drain", action="store_true",
                     help="(--replay) run the replay to completion instead "
                     "of stopping at the last submission")
    p_q.add_argument("--job", type=int, nargs="+", default=None, metavar="ID",
                     help="predict the wait of these job ids")
    p_q.add_argument("--all-queued", action="store_true",
                     help="predict the wait of every queued job")
    p_q.add_argument("--state", action="store_true",
                     help="print the server's mirrored state")
    p_q.add_argument("--stats", action="store_true",
                     help="print the server's metrics snapshot as JSON")
    p_q.add_argument("--shutdown", action="store_true",
                     help="stop the server after the other actions")

    p_ga = sub.add_parser("ga-search", help="genetic template search (§2.1)")
    p_ga.add_argument("--workload", default="ANL", choices=sorted(PAPER_WORKLOADS))
    p_ga.add_argument("--n-jobs", type=int, default=800)
    p_ga.add_argument("--population", type=int, default=16)
    p_ga.add_argument("--generations", type=int, default=8)
    p_ga.add_argument("--eval-jobs", type=int, default=400)
    p_ga.add_argument("--seed", type=int, default=0)
    p_ga.add_argument(
        "--algorithm",
        default=None,
        choices=POLICY_NAMES,
        help="fit against a recorded per-algorithm prediction workload "
        "instead of the submit-time replay",
    )
    return parser


def _config_from_args(args: argparse.Namespace, kind: str) -> ExperimentConfig:
    raw_parallel = getattr(args, "parallel", 1)
    return ExperimentConfig(
        kind=kind,
        workloads=tuple(args.workloads),
        algorithms=tuple(getattr(args, "algorithms", ("lwf", "backfill"))),
        predictors=tuple(args.predictors),
        n_jobs=None if args.n_jobs <= 0 else args.n_jobs,
        seed=args.seed,
        compress=args.compress,
        parallel=(os.cpu_count() or 1) if raw_parallel <= 0 else raw_parallel,
    )


def _load(config: ExperimentConfig, name: str):
    trace = load_paper_workload(name, n_jobs=config.n_jobs, seed=config.seed)
    if config.compress != 1.0:
        trace = compress_interarrival(trace, config.compress)
    return trace


def _make_telemetry(args: argparse.Namespace, *, parallel_active: bool):
    """Build the campaign telemetry a grid command asked for, or ``None``.

    ``--progress``/``--journal`` only make sense on the parallel path;
    a serial run gets a stderr note and no telemetry, so serial output
    (and the absence of a journal file) stays bit-identical to a run
    without the flags.
    """
    progress = getattr(args, "progress", False)
    journal = getattr(args, "journal", None)
    if not progress and journal is None:
        return None
    if not parallel_active:
        print(
            "note: --progress/--journal apply to parallel runs only "
            "(--parallel > 1); ignoring",
            file=sys.stderr,
        )
        return None
    from repro.obs.campaign import CampaignTelemetry, ProgressRenderer

    return CampaignTelemetry(
        journal, progress=ProgressRenderer() if progress else None
    )


def _run_config_parallel(
    config: ExperimentConfig, telemetry=None
) -> list[dict[str, object]]:
    """Fan a scheduling/wait-time grid across worker processes.

    Cells come back in the serial iteration order (workload → algorithm
    → predictor), so the printed rows are identical to a serial run's.
    """
    from repro.core.parallel import (
        ExperimentPlan,
        ParallelExecutionError,
        run_table_parallel,
    )

    plan = ExperimentPlan.for_grid(
        "scheduling" if config.kind == "scheduling" else "wait-time",
        workloads=config.workloads,
        algorithms=config.algorithms,
        predictors=config.predictors,
        n_jobs=config.n_jobs,
        seed=config.seed,
        compress=config.compress,
    )
    run = run_table_parallel(
        plan, max_workers=config.parallel, telemetry=telemetry
    )
    if run.failures:
        raise ParallelExecutionError(run.failures)
    rows = []
    for result in run.results:
        row = result.cell.as_row()
        row["Predictor"] = result.spec.predictor
        rows.append(row)
    return rows


def run_config(config: ExperimentConfig, *, telemetry=None) -> list[dict[str, object]]:
    """Execute a config and return printable row dicts.

    ``telemetry`` (a :class:`repro.obs.campaign.CampaignTelemetry`)
    applies to the parallel path only; the caller owns its lifecycle.
    """
    if config.parallel > 1 and config.kind in ("scheduling", "wait-time"):
        return _run_config_parallel(config, telemetry)
    rows: list[dict[str, object]] = []
    for workload in config.workloads:
        trace = _load(config, workload)
        if config.kind == "runtime-error":
            for predictor in config.predictors:
                cell = run_runtime_prediction_experiment(trace, predictor)
                rows.append(cell.as_row())
            continue
        for algorithm in config.algorithms:
            for predictor in config.predictors:
                if config.kind == "scheduling":
                    cell, _ = run_scheduling_experiment(trace, algorithm, predictor)
                    row = cell.as_row()
                else:
                    cell, _, _ = run_wait_time_experiment(
                        trace, algorithm, predictor
                    )
                    row = cell.as_row()
                row["Predictor"] = predictor
                rows.append(row)
    return rows


def run_misprediction(args: argparse.Namespace) -> int:
    """The ``misprediction`` subcommand: degradation curves per policy."""
    from repro.experiments.misprediction import run_misprediction_campaign

    n_jobs = None if args.n_jobs <= 0 else args.n_jobs
    traces = [
        load_paper_workload(w, n_jobs=n_jobs, seed=args.seed)
        for w in args.workloads
    ]
    if args.compress != 1.0:
        traces = [compress_interarrival(t, args.compress) for t in traces]
    max_workers = (os.cpu_count() or 1) if args.parallel <= 0 else args.parallel
    telemetry = _make_telemetry(args, parallel_active=max_workers > 1)
    try:
        curves = run_misprediction_campaign(
            workloads=traces,
            algorithms=tuple(args.algorithms),
            levels=tuple(args.levels),
            kind=args.error_kind,
            noise_seed=args.noise_seed,
            base_predictor=args.base_predictor,
            max_workers=max_workers,
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    for curve in curves:
        print(
            format_table(
                curve.rows(),
                title=(
                    f"misprediction degradation ({curve.workload}, "
                    f"{curve.algorithm}, {curve.error_kind}, "
                    f"base={args.base_predictor})"
                ),
            )
        )
    return 0


def _format_trace_summary(events: list, *, title: str, source: str) -> str:
    """The ``--summary`` rendering — an explicit message for an empty
    trace instead of a contentless zero-row table."""
    from repro.obs import summarize_events

    if not events:
        return f"empty trace (0 events): {source}"
    return format_table(summarize_events(events), title=title)


def _inspect_trace_file(args: argparse.Namespace) -> int:
    """``trace --from FILE``: check/summarize an existing trace."""
    from repro.obs import TraceSchemaError, read_jsonl, validate_events

    try:
        events = read_jsonl(args.from_file)
    except (OSError, TraceSchemaError) as exc:
        print(f"trace FAILED: cannot read {args.from_file}: {exc}",
              file=sys.stderr)
        return 1
    if args.check:
        try:
            n = validate_events(events)
        except TraceSchemaError as exc:
            print(f"trace check FAILED: {exc}", file=sys.stderr)
            return 1
        print(f"trace check OK: {n} events schema-valid", file=sys.stderr)
    if args.summary or not args.check:
        print(
            _format_trace_summary(
                events,
                title=f"trace summary ({args.from_file})",
                source=args.from_file,
            )
        )
    return 0


def run_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: replay under a tracer, then inspect."""
    import json

    from repro.core.registry import make_policy, make_predictor
    from repro.obs import (
        Instrumentation,
        JsonlSink,
        Tracer,
        TraceSchemaError,
        merge_snapshots,
        read_jsonl,
        validate_events,
    )
    from repro.predictors.base import PointEstimator
    from repro.scheduler.simulator import Simulator

    if args.from_file:
        return _inspect_trace_file(args)

    wl = load_paper_workload(
        args.workload, n_jobs=None if args.n_jobs <= 0 else args.n_jobs,
        seed=args.seed,
    )
    if args.compress != 1.0:
        wl = compress_interarrival(wl, args.compress)

    job_counts: dict[str, int] = {}
    snapshots = []
    with JsonlSink(args.out) as sink:
        tracer = Tracer(sink)
        for algorithm in args.algorithms:
            policy = make_policy(algorithm)
            # Fresh bundle (registry + audit) per algorithm, sharing the
            # sink: pending predictions never leak across replays.
            inst = Instrumentation(
                tracer=tracer, detail=args.detail, audit=True
            )
            estimator = PointEstimator(
                make_predictor(args.predictor, wl), instrumentation=inst
            )
            sim = Simulator(
                policy, estimator, wl.total_nodes, instrumentation=inst
            )
            if args.wait_pred == "forward":
                from repro.waitpred.predictor import WaitTimePredictor

                sim.add_observer(
                    WaitTimePredictor(
                        policy,
                        make_predictor(args.predictor, wl),
                        scheduler_estimator=estimator,
                        instrumentation=inst,
                    )
                )
            elif args.wait_pred == "state":
                from repro.waitpred.statebased import StateBasedWaitPredictor

                # Its own estimator copy: the observer feeds completions
                # into its history itself, and sharing the scheduler's
                # instance would ingest each completion twice.
                sim.add_observer(
                    StateBasedWaitPredictor(
                        PointEstimator(make_predictor(args.predictor, wl)),
                        instrumentation=inst,
                    )
                )
            result = sim.run(wl)
            job_counts[policy.name] = job_counts.get(policy.name, 0) + len(result)
            snapshots.append(sim.metrics_snapshot())
            print(
                f"  {policy.name}: {len(result)} jobs replayed, "
                f"{sink.events_written} events so far",
                file=sys.stderr,
            )
    print(f"wrote {args.out} ({sink.events_written} events)", file=sys.stderr)

    if args.check:
        try:
            events = read_jsonl(args.out)
            n = validate_events(events)
        except TraceSchemaError as exc:
            print(f"trace check FAILED: {exc}", file=sys.stderr)
            return 1
        for policy_name, jobs in job_counts.items():
            for etype in ("job_started", "job_finished"):
                got = sum(
                    1
                    for e in events
                    if e["type"] == etype and e.get("policy") == policy_name
                )
                if got != jobs:
                    print(
                        f"trace check FAILED: {policy_name} has {got} "
                        f"{etype} events for {jobs} jobs",
                        file=sys.stderr,
                    )
                    return 1
        print(
            f"trace check OK: {n} events schema-valid, started/finished "
            f"counts match job counts",
            file=sys.stderr,
        )
    elif args.summary:
        events = read_jsonl(args.out)

    if args.summary:
        print(
            _format_trace_summary(
                events,
                title=f"trace summary ({args.workload}, {args.predictor})",
                source=args.out,
            )
        )
    if args.metrics:
        print(json.dumps(merge_snapshots(*snapshots), indent=2, sort_keys=True))
    return 0


def _format_campaign_summary(summary: dict) -> str:
    """Human rendering of :func:`repro.obs.campaign.summarize_campaign`."""
    lines = [
        f"campaign {summary['campaign_id'] or '(unknown)'}:"
        f" {summary['cells_done']}/{summary['cells_total']} cells done,"
        f" {summary['cells_failed']} failed,"
        f" {summary['cells_running']} dispatched-unfinished"
        + ("" if summary["complete"] else "  [INCOMPLETE — no campaign_finished]"),
        f"  workers {summary['max_workers']},"
        f" elapsed {summary['elapsed_s']:.2f}s,"
        f" throughput {summary['throughput_cells_per_s']:.2f} cells/s,"
        f" utilization {100 * summary['utilization']:.0f}%",
    ]
    if summary["duration_p50_s"] is not None:
        lines.append(
            f"  cell duration p50 {summary['duration_p50_s']:.3g}s"
            f"  p90 {summary['duration_p90_s']:.3g}s"
            f"  p99 {summary['duration_p99_s']:.3g}s"
        )
    if summary["cells_retried"]:
        lines.append(f"  retries: {summary['cells_retried']}")
    for s in summary["stragglers"]:
        state = "still running" if s["running"] else "finished"
        lines.append(
            f"  straggler: cell {s['cell_index']} ({s['cell']}) — "
            f"{s['duration_s']:.3g}s, {state}"
        )
    for f in summary["cells"]["failed"]:
        lines.append(
            f"  failed: cell {f['cell_index']} ({f['cell']}): {f['error']}"
        )
    for d in summary["cells"]["dispatched_unfinished"]:
        lines.append(
            f"  unfinished: cell {d['cell_index']} ({d['cell']}) was "
            "dispatched but never completed"
        )
    return "\n".join(lines)


def run_campaign(args: argparse.Namespace) -> int:
    """The ``campaign`` subcommand: inspect a ``--journal`` file."""
    import json

    from repro.obs.campaign import (
        CampaignCheckError,
        check_campaign_journal,
        read_campaign_journal,
        summarize_campaign,
    )
    from repro.obs.schema import TraceSchemaError

    if args.check:
        try:
            events = read_campaign_journal(args.journal, strict=True)
            stats = check_campaign_journal(events)
        except (OSError, TraceSchemaError, CampaignCheckError) as exc:
            print(f"campaign check FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"campaign check OK: {stats['events']} events, "
            f"{stats['cells_done']}/{stats['cells_total']} cells done, "
            f"{stats['cells_failed']} failed",
            file=sys.stderr,
        )
        return 0
    try:
        events = read_campaign_journal(args.journal)
    except (OSError, TraceSchemaError) as exc:
        print(f"campaign summary FAILED: {exc}", file=sys.stderr)
        return 1
    if not events:
        # An all-zero summary of nothing reads like a finished campaign;
        # say what actually happened instead.
        print(f"empty campaign journal (0 events): {args.journal}")
        return 0
    summary = summarize_campaign(events)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_format_campaign_summary(summary))
    return 0


def run_explain(args: argparse.Namespace) -> int:
    """The ``explain`` subcommand: per-job wait decomposition."""
    import json

    from repro.obs import (
        TraceSchemaError,
        explain_job,
        format_explanation,
        read_jsonl,
    )

    try:
        events = read_jsonl(args.trace)
    except (OSError, TraceSchemaError) as exc:
        print(f"explain FAILED: cannot read trace {args.trace}: {exc}",
              file=sys.stderr)
        return 1
    if not events:
        print(f"explain FAILED: empty trace (0 events): {args.trace}",
              file=sys.stderr)
        return 1
    explanations = []
    for job_id in args.job:
        try:
            explanations.append(explain_job(events, job_id, policy=args.policy))
        except ValueError as exc:
            print(f"explain FAILED: {exc}", file=sys.stderr)
            return 1
    if args.json:
        payload = explanations[0] if len(explanations) == 1 else explanations
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            "\n\n".join(
                format_explanation(exp, timeline=not args.no_timeline)
                for exp in explanations
            )
        )
    return 0


def run_timeline(args: argparse.Namespace) -> int:
    """The ``timeline`` subcommand: state series rebuilt from a trace."""
    from repro.obs import (
        StateSeries,
        TraceSchemaError,
        format_timeseries,
        read_jsonl,
    )

    try:
        events = read_jsonl(args.trace)
    except (OSError, TraceSchemaError) as exc:
        print(f"timeline FAILED: cannot read trace {args.trace}: {exc}",
              file=sys.stderr)
        return 1
    if not events:
        print(f"timeline FAILED: empty trace (0 events): {args.trace}",
              file=sys.stderr)
        return 1
    try:
        series = StateSeries.from_events(
            events,
            policy=args.policy,
            total_nodes=args.total_nodes,
            max_points=args.max_points,
        )
    except ValueError as exc:
        print(f"timeline FAILED: {exc}", file=sys.stderr)
        return 1
    if not series.points:
        print(
            f"timeline FAILED: no job life-cycle events in {args.trace}",
            file=sys.stderr,
        )
        return 1
    if args.out:
        n = series.to_jsonl(args.out)
        print(f"wrote {args.out} ({n} points)", file=sys.stderr)
    print(
        "\n\n".join(
            format_timeseries(series, metric, width=args.width)
            for metric in args.metric
        )
    )
    return 0


def run_report_from_trace(args: argparse.Namespace) -> int:
    """The ``report <trace.jsonl>`` mode: trace (+ metrics) -> run report."""
    import json

    from repro.obs import (
        ReportSchemaError,
        TraceSchemaError,
        build_report,
        format_report,
        read_jsonl,
        report_to_json,
        validate_events,
        validate_report,
    )

    try:
        events = read_jsonl(args.trace)
        validate_events(events)
    except (OSError, TraceSchemaError) as exc:
        print(f"report FAILED: cannot use trace {args.trace}: {exc}",
              file=sys.stderr)
        return 1
    metrics = None
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as fh:
            metrics = json.load(fh)
    report = build_report(events, metrics, window=args.window)
    if args.check:
        try:
            validate_report(report)
        except ReportSchemaError as exc:
            print(f"report check FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"report check OK: {len(events)} events -> "
            f"{len(report['schedule'])} policies, "
            f"{len(report['accuracy']['groups'])} accuracy groups",
            file=sys.stderr,
        )
    body = (
        report_to_json(report) if args.json else format_report(report)
    ) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(body)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(body, end="")
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: bind the prediction service on TCP."""
    from repro.core.registry import make_policy, make_predictor
    from repro.predictors.base import PointEstimator
    from repro.service import PredictionServer, PredictionService

    wl = load_paper_workload(
        args.workload, n_jobs=None if args.n_jobs <= 0 else args.n_jobs
    )
    policy = make_policy(args.algorithm)
    estimator = PointEstimator(make_predictor(args.predictor, wl))
    service = PredictionService(
        policy, estimator, wl.total_nodes, fast=not args.slow
    )
    with PredictionServer((args.host, args.port), service) as server:
        print(
            f"serving on {args.host}:{server.port} "
            f"({args.workload}, {wl.total_nodes} nodes, "
            f"policy={policy.name}, predictor={args.predictor})",
            file=sys.stderr,
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    print("server stopped", file=sys.stderr)
    return 0


def run_query(args: argparse.Namespace) -> int:
    """The ``query`` subcommand: replay into / interrogate a server."""
    import json

    from repro.service import ServiceClient, UnknownJobError

    actions = (args.replay is not None, args.job, args.all_queued,
               args.state, args.stats, args.shutdown)
    if not any(actions):
        print("query: nothing to do (see --replay/--job/--all-queued/"
              "--state/--stats/--shutdown)", file=sys.stderr)
        return 2
    try:
        client = ServiceClient(args.host, args.port)
    except OSError as exc:
        print(f"query FAILED: cannot connect to {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return 1
    with client:
        if args.replay is not None:
            from repro.core.registry import make_policy, make_predictor
            from repro.predictors.base import PointEstimator
            from repro.scheduler.simulator import Simulator
            from repro.service.server import ClientFeed

            wl = load_paper_workload(
                args.workload,
                n_jobs=None if args.replay <= 0 else args.replay,
            )
            if args.compress != 1.0:
                wl = compress_interarrival(wl, args.compress)
            sim = Simulator(
                make_policy(args.algorithm),
                PointEstimator(make_predictor(args.predictor, wl)),
                wl.total_nodes,
            )
            sim.add_observer(ClientFeed(client))
            last_submit = max(job.submit_time for job in wl.jobs)
            sim.run(wl, until_time=None if args.drain else last_submit)
            state = client.state()
            print(
                f"replayed {len(wl.jobs)} jobs ({args.workload}) into "
                f"{args.host}:{args.port}: server now at epoch "
                f"{state['epoch']}, {len(state['queued'])} queued, "
                f"{len(state['running'])} running",
                file=sys.stderr,
            )
        if args.job:
            for job_id in args.job:
                try:
                    wait = client.predict(job_id)
                except UnknownJobError as exc:
                    print(f"job {job_id}: unknown ({exc})")
                    continue
                print(f"job {job_id}: predicted wait {wait:.1f}s")
        if args.all_queued:
            waits = client.predict_batch()
            if not waits:
                print("no queued jobs")
            for job_id in sorted(waits):
                print(f"job {job_id}: predicted wait {waits[job_id]:.1f}s")
        if args.state:
            state = client.state()
            print(json.dumps(
                {k: v for k, v in state.items() if k != "ok"},
                indent=2, sort_keys=True,
            ))
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        if args.shutdown:
            client.shutdown()
            print("server shut down", file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "summarize":
        rows = [
            summarize(
                load_paper_workload(
                    w, n_jobs=None if args.n_jobs <= 0 else args.n_jobs
                )
            ).as_row()
            for w in PAPER_WORKLOADS
        ]
        print(format_table(rows, title="Workload characteristics (Table 1)"))
        return 0
    if args.command == "trace":
        return run_trace(args)
    if args.command == "campaign":
        return run_campaign(args)
    if args.command == "explain":
        return run_explain(args)
    if args.command == "timeline":
        return run_timeline(args)
    if args.command == "misprediction":
        return run_misprediction(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "query":
        return run_query(args)
    if args.command == "ga-search":
        from repro.predictors.ga import GAConfig, TemplateSearch
        from repro.predictors.replay import replay_prediction_error
        from repro.predictors.smith import SmithPredictor

        trace = load_paper_workload(args.workload, n_jobs=args.n_jobs)
        cfg = GAConfig(
            population=args.population,
            generations=args.generations,
            eval_jobs=args.eval_jobs,
            seed=args.seed,
        )
        workload = None
        if args.algorithm is not None:
            from repro.predictors.prediction_workload import (
                record_prediction_workload,
            )

            workload = record_prediction_workload(trace, args.algorithm)
        search = TemplateSearch(trace, config=cfg, prediction_workload=workload)
        templates, history = search.run()
        print(
            format_table(
                [{"Template": t.describe()} for t in templates],
                title=f"Best template set ({args.workload}"
                + (f"/{args.algorithm}" if args.algorithm else "")
                + ")",
            )
        )
        report = replay_prediction_error(trace, SmithPredictor(templates))
        print(
            f"\nbest-per-generation error (min): "
            f"{[round(e / 60, 1) for e in history.best_errors]}"
        )
        print(
            f"full-replay error: {report.mean_abs_error_minutes:.1f} min "
            f"({100 * report.error_fraction_of_mean_run_time:.0f}% of mean run time)"
        )
        return 0
    if args.command == "report":
        if args.trace is not None:
            return run_report_from_trace(args)
        from repro.core.report import generate_experiments_report

        output = args.output if args.output is not None else "EXPERIMENTS.md"
        body = generate_experiments_report(
            None if args.n_jobs <= 0 else args.n_jobs,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr),
        )
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(body)
        print(f"wrote {output}")
        return 0

    kind = {"scheduling": "scheduling", "wait-time": "wait-time",
            "runtime-error": "runtime-error"}[args.command]
    config = _config_from_args(args, kind)
    telemetry = _make_telemetry(
        args,
        parallel_active=(
            config.parallel > 1 and kind in ("scheduling", "wait-time")
        ),
    )
    try:
        rows = run_config(config, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    print(format_table(rows, title=f"{kind} experiment"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
