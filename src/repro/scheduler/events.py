"""Typed event heap for the simulator.

Event kinds, in same-instant processing order:

1. job completions (``FINISH``) and reservation expiries (``RES_END``)
   — releases first, so freed nodes are visible to everything else at
   the same instant;
2. reservation activations (``RES_START``) — advance reservations claim
   their nodes before the scheduler considers queued jobs;
3. job submissions (``SUBMIT``).

This is the convention real batch schedulers follow and the one that
makes wait-time prediction at submit time well defined.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Iterator

__all__ = ["FINISH", "RES_END", "RES_START", "SUBMIT", "EventQueue"]

#: Event kind priorities; lower sorts first at equal timestamps.
FINISH = 0
RES_END = 1
RES_START = 2
SUBMIT = 3

_KINDS = (FINISH, RES_END, RES_START, SUBMIT)


class EventQueue:
    """A heap of ``(time, kind, seq, payload)`` events.

    ``seq`` is a monotonically increasing tiebreaker so equal-time,
    equal-kind events pop in insertion order and the simulation is fully
    deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0

    def push(self, time: float, kind: int, payload: Any) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown event kind {kind}")
        heapq.heappush(self._heap, (time, kind, self._seq, payload))
        self._seq += 1

    def extend(self, events: Iterable[tuple[float, int, Any]]) -> None:
        """Batch-load ``(time, kind, payload)`` events with one heapify.

        Sequence numbers are assigned in iteration order, so pop order is
        identical to pushing the events one at a time — O(n) instead of
        O(n log n), which matters when a whole trace is loaded at once.
        """
        heap = self._heap
        seq = self._seq
        for time, kind, payload in events:
            if kind not in _KINDS:
                raise ValueError(f"unknown event kind {kind}")
            heap.append((time, kind, seq, payload))
            seq += 1
        self._seq = seq
        heapq.heapify(heap)

    def pop(self) -> tuple[float, int, Any]:
        time, kind, _, payload = heapq.heappop(self._heap)
        return time, kind, payload

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[tuple[float, int, Any]]:
        """Pop events until empty (used by tests)."""
        while self._heap:
            yield self.pop()
