"""The unoptimized reference replay engine (equivalence oracle).

:mod:`repro.scheduler.simulator` carries several exact hot-path
optimizations: an epoch-gated estimate cache that survives across
scheduling passes, O(1) id-keyed queue/running bookkeeping, batch event
loading, a batch-built reusable availability profile, and early-exit
scheduling passes.  Every one of them is *claimed* to be
schedule-preserving.

This module is the proof harness: a deliberately naive engine that
re-predicts every job on every pass, keeps plain lists, pushes events
one at a time, and replans the full queue with the primitive
``add_release``/``earliest_start``/``carve`` profile operations — the
semantics of the engine before the hot-path overhaul.  The golden parity
tests (``tests/test_simulator_parity.py``) replay the paper workloads
through both engines and assert bit-identical :class:`ScheduleResult`s;
``benchmarks/bench_simulator_hotpath.py`` uses it as the baseline the
measured speedup is computed against.

Scope: trace replay with observers.  Advance reservations are not
supported here — reservation behaviour is covered by the main engine's
own test suite, not by parity.
"""

from __future__ import annotations

import heapq

from repro.obs import Instrumentation
from repro.scheduler.cluster import NodePool
from repro.scheduler.events import FINISH, SUBMIT
from repro.scheduler.metrics import JobRecord, ScheduleResult
from repro.scheduler.policies.backfill import AvailabilityProfile
from repro.scheduler.policies.base import Policy
from repro.scheduler.simulator import QueuedJob, RunningJob, RuntimeEstimator
from repro.workloads.job import Job, Trace

__all__ = [
    "ReferenceView",
    "ReferenceSimulator",
    "ReferenceFCFSPolicy",
    "ReferenceLWFPolicy",
    "ReferenceBackfillPolicy",
]

_EPS = 1e-6


class ReferenceView:
    """Per-pass view: estimates memoized for this pass only (pre-epoch
    semantics — every pass re-predicts the whole queue)."""

    def __init__(self, sim: "ReferenceSimulator") -> None:
        self._sim = sim
        self._cache: dict[int, float] = {}

    @property
    def now(self) -> float:
        return self._sim.now

    @property
    def free_nodes(self) -> int:
        return self._sim.pool.free

    @property
    def total_nodes(self) -> int:
        return self._sim.pool.total

    @property
    def queued(self):
        return self._sim.queued

    @property
    def running(self):
        return self._sim.running

    @property
    def active_reservations(self):
        return ()

    @property
    def reservations(self):
        return ()

    def estimate(self, qj: QueuedJob) -> float:
        est = self._cache.get(qj.job_id)
        if est is None:
            est = self._sim.estimator.predict(qj.job, 0.0, self.now)
            est = max(float(est), _EPS)
            self._cache[qj.job_id] = est
        return est

    def remaining(self, rj: RunningJob) -> float:
        elapsed = rj.elapsed(self.now)
        est = self._cache.get(rj.job_id)
        if est is None:
            est = float(self._sim.estimator.predict(rj.job, elapsed, self.now))
            self._cache[rj.job_id] = est
        return max(est - elapsed, _EPS)


class ReferenceFCFSPolicy(Policy):
    """First-come first-served with head-of-line blocking (reference copy)."""

    name = "FCFS"

    def select(self, view):
        free = view.free_nodes
        started = []
        for qj in view.queued:  # arrival order
            if qj.job.nodes <= free:
                started.append(qj)
                free -= qj.job.nodes
            else:
                break
        return started


class ReferenceLWFPolicy(Policy):
    """Least-work-first, full re-sort with fresh estimates every pass."""

    name = "LWF"

    def select(self, view):
        order = sorted(
            view.queued,
            key=lambda qj: (
                qj.job.nodes * view.estimate(qj),
                qj.job.submit_time,
                qj.job.job_id,
            ),
        )
        free = view.free_nodes
        started = []
        for qj in order:
            if qj.job.nodes <= free:
                started.append(qj)
                free -= qj.job.nodes
        return started


class ReferenceBackfillPolicy(Policy):
    """Conservative backfill, full-queue replan with primitive profile ops.

    A fresh profile per pass, one O(n) ``add_release`` per running job,
    and an ``earliest_start`` + ``carve`` pair for *every* queued job —
    no early exit, no batch construction, no fused reserve.
    """

    name = "Backfill"
    min_duration: float = 1e-6

    def select(self, view):
        profile = AvailabilityProfile(view.now, view.free_nodes, view.total_nodes)
        for rj in view.running:
            profile.add_release(view.now + view.remaining(rj), rj.job.nodes)
        started = []
        for qj in view.queued:  # arrival order
            duration = max(view.estimate(qj), self.min_duration)
            start = profile.earliest_start(qj.job.nodes, duration)
            profile.carve(start, duration, qj.job.nodes)
            if start <= view.now:
                started.append(qj)
        return started


class ReferenceSimulator:
    """Naive trace replay with the pre-overhaul engine semantics.

    Same event ordering contract as :class:`repro.scheduler.Simulator`
    (FINISH before SUBMIT at equal times, insertion order within a kind),
    same estimator/observer hook protocol, same records — but plain-list
    bookkeeping, one heap push per event, a scheduling pass after every
    drained timestamp, and per-pass estimate memoization only.
    """

    def __init__(
        self,
        policy: Policy,
        estimator: RuntimeEstimator,
        total_nodes: int,
        *,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.policy = policy
        self.estimator = estimator
        self.pool = NodePool(total_nodes)
        self.now = 0.0
        self.queued: list[QueuedJob] = []
        self.running: list[RunningJob] = []
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._records: list[JobRecord] = []
        self._started: dict[int, float] = {}
        self._observers: list[object] = []
        # Same registry metric names as the optimized engine, so counter
        # parity can be asserted snapshot-to-snapshot.
        obs = instrumentation if instrumentation is not None else Instrumentation()
        self.obs = obs
        reg = obs.registry
        self._c_events = reg.counter("sim.events_processed")
        self._c_passes = reg.counter("sim.schedule_passes")
        self._c_submitted = reg.counter("sim.jobs_submitted")
        self._c_started = reg.counter("sim.jobs_started")
        self._c_finished = reg.counter("sim.jobs_finished")

    @property
    def events_processed(self) -> int:
        """Backward-compat alias for the ``sim.events_processed`` counter."""
        return self._c_events.value

    @property
    def schedule_passes(self) -> int:
        """Backward-compat alias for the ``sim.schedule_passes`` counter."""
        return self._c_passes.value

    def metrics_snapshot(self) -> dict:
        """JSON-serializable snapshot of this run's registry."""
        return self.obs.registry.snapshot()

    def add_observer(self, observer: object) -> None:
        self._observers.append(observer)

    def _push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._heap, (time, kind, self._seq, payload))
        self._seq += 1

    def run(self, trace: Trace) -> ScheduleResult:
        if self.pool.total != trace.total_nodes:
            raise ValueError(
                f"simulator built for {self.pool.total} nodes but trace "
                f"declares {trace.total_nodes}"
            )
        for job in trace:
            self._push(job.submit_time, SUBMIT, job)
        heap = self._heap
        while heap:
            t = heap[0][0]
            if t < self.now - 1e-9:
                raise RuntimeError(f"time went backwards: {t} < {self.now}")
            self.now = max(self.now, t)
            while heap and heap[0][0] == t:
                _, kind, _, payload = heapq.heappop(heap)
                self._c_events.value += 1
                if kind == FINISH:
                    self._handle_finish(payload)
                else:
                    self._handle_submit(payload)
            self._schedule_pass()
        return self.result()

    def result(self) -> ScheduleResult:
        return ScheduleResult(self._records, total_nodes=self.pool.total)

    @property
    def started_times(self) -> dict[int, float]:
        return dict(self._started)

    def _handle_submit(self, job: Job) -> None:
        qj = QueuedJob(job)
        self.queued.append(qj)
        self._c_submitted.value += 1
        self._notify_estimator("on_submit", job)
        view = ReferenceView(self)
        for obs in self._observers:
            hook = getattr(obs, "on_submit", None)
            if hook is not None:
                hook(view, qj)

    def _handle_finish(self, rj: RunningJob) -> None:
        self.running.remove(rj)
        self.pool.release(rj.job.nodes)
        self._records.append(
            JobRecord(
                job_id=rj.job_id,
                submit_time=rj.job.submit_time,
                start_time=rj.start_time,
                finish_time=self.now,
                nodes=rj.job.nodes,
            )
        )
        self._c_finished.value += 1
        self._notify_estimator("on_finish", rj.job)
        view = ReferenceView(self)
        for obs in self._observers:
            hook = getattr(obs, "on_finish", None)
            if hook is not None:
                hook(view, rj.job)

    def _schedule_pass(self) -> None:
        if not self.queued:
            return
        self._c_passes.value += 1
        view = ReferenceView(self)
        for qj in list(self.policy.select(view)):
            self._start(qj)

    def _start(self, qj: QueuedJob) -> None:
        self.pool.allocate(qj.job.nodes)
        self.queued.remove(qj)
        rj = RunningJob(job=qj.job, start_time=self.now)
        self.running.append(rj)
        self._started[qj.job_id] = self.now
        self._push(self.now + max(qj.job.run_time, 0.0), FINISH, rj)
        self._c_started.value += 1
        self._notify_estimator("on_start", qj.job)
        view = ReferenceView(self)
        for obs in self._observers:
            hook = getattr(obs, "on_start", None)
            if hook is not None:
                hook(view, qj.job)

    def _notify_estimator(self, hook_name: str, job: Job) -> None:
        hook = getattr(self.estimator, hook_name, None)
        if hook is not None:
            hook(job, self.now)
