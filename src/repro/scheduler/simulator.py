"""The event-driven scheduling simulator.

One engine serves both of the paper's uses:

- :meth:`Simulator.run` replays a whole trace under a policy and a
  run-time estimator, producing a :class:`~repro.scheduler.metrics.ScheduleResult`;
- :func:`forward_simulate` takes a :class:`SystemSnapshot` (the running
  and queued jobs at some instant), replaces every unknown run time with
  a predictor's estimate, and plays the schedule forward *with no future
  arrivals* to find when a given job starts — the paper's queue wait-time
  prediction technique (§3).

Estimator protocol
------------------
Any object with ``predict(job, elapsed, now) -> float`` works as an
estimator; ``elapsed`` is how long the job has been running (0.0 for
queued jobs).  Optional lifecycle hooks ``on_submit(job, now)``,
``on_start(job, now)`` and ``on_finish(job, now)`` are called if present
— the historical predictors use ``on_finish`` to grow their category
databases.  The same protocol is shared by observers (used for wait-time
evaluation), whose hooks additionally receive the live view.

Estimate caching
----------------
Estimators may additionally expose an integer ``history_epoch`` that
changes whenever their predictions may have changed (see
:mod:`repro.predictors.base`).  For such estimators the simulator keeps
queued-job estimates in a cache that survives across scheduling passes
and is flushed only when the epoch moves, instead of re-predicting the
whole queue at every event.  Estimators without an epoch get the
historical behaviour: estimates are memoized per pass only.  Running-job
``remaining`` estimates condition on elapsed time and are always
per-pass.

Instrumentation
---------------
Every simulator carries an :class:`repro.obs.Instrumentation`, but the
replay loop itself stays observability-free: job life-cycle counts and
the wait-time histogram are *derived* from state the engine keeps anyway
(``_started``, ``_records``, ``running``) when :meth:`metrics_snapshot`
folds them into the registry, and the traced variants of the event
handlers/scheduling pass are bound over the plain ones in ``__init__``
only when tracing, detail mode or pass timing is requested.  See the
Observability section of ``docs/architecture.md`` for the event taxonomy
and the overhead budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.obs import (
    BACKFILL_DEPTH_BUCKETS,
    Instrumentation,
    PASS_DURATION_BUCKETS,
    WAIT_TIME_BUCKETS,
)
from repro.scheduler.cluster import NodePool
from repro.scheduler.events import FINISH, RES_END, RES_START, SUBMIT, EventQueue
from repro.scheduler.metrics import JobRecord, ScheduleResult
from repro.scheduler.policies.base import Policy
from repro.scheduler.reservations import Reservation, ReservationRecord
from repro.workloads.job import Job, Trace

__all__ = [
    "QueuedJob",
    "RunningJob",
    "PendingReservation",
    "IndexedJobList",
    "SchedulerView",
    "SystemSnapshot",
    "Simulator",
    "FrozenEstimator",
    "forward_simulate",
]

#: Smallest duration/remaining-time an estimate may collapse to, so the
#: schedule never stalls on a zero or negative estimate.
_EPS = 1e-6


@runtime_checkable
class RuntimeEstimator(Protocol):
    """Structural type for scheduler-side run-time estimators."""

    def predict(self, job: Job, elapsed: float, now: float) -> float: ...


@dataclass(frozen=True)
class QueuedJob:
    """A job waiting in the queue."""

    job: Job

    @property
    def job_id(self) -> int:
        return self.job.job_id


@dataclass(frozen=True)
class RunningJob:
    """A job currently holding nodes."""

    job: Job
    start_time: float

    @property
    def job_id(self) -> int:
        return self.job.job_id

    def elapsed(self, now: float) -> float:
        return now - self.start_time


@dataclass(frozen=True)
class ActiveReservation:
    """A reservation currently holding nodes, with its known end time."""

    reservation: Reservation
    end_time: float

    @property
    def nodes(self) -> int:
        return self.reservation.nodes


@dataclass(frozen=True)
class PendingReservation:
    """A not-yet-active reservation as policies see it.

    ``effective_start`` is the promised start for future reservations,
    or *now* for reservations already past their start and waiting for
    nodes (they will claim capacity the instant it frees).
    """

    reservation: Reservation
    effective_start: float

    @property
    def nodes(self) -> int:
        return self.reservation.nodes

    @property
    def duration(self) -> float:
        return self.reservation.duration


class IndexedJobList:
    """Insertion-ordered job collection with O(1) lookup and removal.

    Replaces the plain lists the simulator used for ``queued`` and
    ``running``: iteration preserves insertion (arrival/start) order via
    dict ordering, while ``remove``/``__contains__`` key on ``job_id``
    instead of scanning.  Supports the small list-like surface the rest
    of the codebase (and tests) use: ``append``, ``remove``, iteration,
    ``len``, membership, and positional indexing.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items: dict[int, Any] = {}
        for item in items:
            self.append(item)

    def append(self, item: Any) -> None:
        jid = item.job_id
        if jid in self._items:
            raise ValueError(f"job {jid} already present")
        self._items[jid] = item

    def remove(self, item: Any) -> None:
        current = self._items.get(item.job_id)
        if current is not item and current != item:
            raise ValueError(f"job {item.job_id} not present")
        del self._items[item.job_id]

    def get(self, job_id: int) -> Any | None:
        """The entry for ``job_id``, or ``None``."""
        return self._items.get(job_id)

    def ids(self) -> Iterable[int]:
        """Job ids in iteration (insertion) order, as a dict keys view.

        Lets bulk consumers (backfill's provenance seeding) pair ids
        with per-job data at C speed instead of attribute-chasing each
        entry in a Python loop.
        """
        return self._items.keys()

    def clear(self) -> None:
        self._items.clear()

    def __contains__(self, item: Any) -> bool:
        current = self._items.get(getattr(item, "job_id", None))
        return current is item or (current is not None and current == item)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, index):
        return list(self._items.values())[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexedJobList({list(self._items.values())!r})"


class SchedulerView:
    """What a policy (or observer) may see of the simulator state.

    Queued-job estimates are served from the simulator's epoch-gated
    cache (cross-pass for epoch-aware estimators, per-view otherwise);
    within one pass each job's estimate is consistent across the
    policy's comparisons, as the paper's algorithms require.  Remaining
    times of running jobs condition on elapsed time and are memoized per
    view only.
    """

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._cache = sim._shared_estimate_cache()
        self._remaining: dict[int, float] = {}
        self._elapsed_invariant = sim._est_invariant

    @property
    def now(self) -> float:
        return self._sim.now

    @property
    def free_nodes(self) -> int:
        return self._sim.pool.free

    @property
    def total_nodes(self) -> int:
        return self._sim.pool.total

    @property
    def queued(self) -> Sequence[QueuedJob]:
        """Waiting jobs in arrival order."""
        return self._sim.queued

    @property
    def running(self) -> Sequence[RunningJob]:
        return self._sim.running

    @property
    def active_reservations(self) -> Sequence[ActiveReservation]:
        """Reservations currently holding nodes (they release at known
        times, which reservation-aware policies fold into their
        availability profiles like running jobs)."""
        return tuple(self._sim.active_reservations)

    @property
    def reservations(self) -> Sequence[PendingReservation]:
        """Advance reservations not yet holding nodes, soonest first.

        Reservation-aware policies (backfill) carve these out of their
        availability profiles; myopic policies ignore them and any
        resulting collision shows up as reservation delay.
        """
        sim = self._sim
        if not sim.waiting_reservations and not sim.pending_reservations:
            return ()
        out = [PendingReservation(r, sim.now) for r in sim.waiting_reservations]
        out.extend(
            PendingReservation(r, r.start_time) for r in sim.pending_reservations
        )
        out.sort(key=lambda p: (p.effective_start, p.reservation.res_id))
        return tuple(out)

    @property
    def tracer(self):
        """The simulator's tracer when tracing is on, else ``None``.

        Policies use this to emit decision events (backfill's
        reservation placed/shifted stream) without paying anything when
        tracing is disabled; reference views simply lack the attribute.
        """
        sim = self._sim
        return sim._tracer if sim._trace_enabled else None

    @property
    def provenance_tracer(self):
        """The tracer when decision provenance is on, else ``None``.

        A second, stricter gate over :attr:`tracer`: the policies' traced
        walks only attribute binding constraints (``start_blocked`` /
        ``reservation_binding`` / ``backfill_hole_used``) when the
        instrumentation's ``provenance`` knob asked for them, so plain
        tracing pays nothing for attribution bookkeeping.
        """
        sim = self._sim
        return sim._tracer if sim._provenance else None

    def estimate(self, qj: QueuedJob) -> float:
        """Estimated total run time of a queued job (>= tiny epsilon)."""
        est = self._cache.get(qj.job_id)
        if est is None:
            sim = self._sim
            sim._n_est_misses += 1
            est = sim.estimator.predict(qj.job, 0.0, sim.now)
            est = float(est)
            if est < _EPS:
                est = _EPS
            self._cache[qj.job_id] = est
        return est

    def remaining(self, rj: RunningJob) -> float:
        """Estimated remaining run time of a running job (>= epsilon).

        The total estimate is conditioned on the elapsed time and clamped
        to at least the elapsed time — a job that has run ``a`` seconds
        cannot finish before ``a`` (§2 corrected semantics).
        """
        sim = self._sim
        elapsed = rj.elapsed(sim.now)
        if self._elapsed_invariant:
            # predict(job, e, t) == max(predict(job, 0, t'), e) at fixed
            # epoch, so the queued-time estimate from the cross-pass
            # cache doubles as the running-job base — no re-prediction.
            base = self._cache.get(rj.job_id)
            if base is None:
                base = float(sim.estimator.predict(rj.job, 0.0, sim.now))
                self._cache[rj.job_id] = base
            est = base if base > elapsed else elapsed
            return max(est - elapsed, _EPS)
        est = self._remaining.get(rj.job_id)
        if est is None:
            est = float(sim.estimator.predict(rj.job, elapsed, sim.now))
            self._remaining[rj.job_id] = est
        return max(est - elapsed, _EPS)

    def invalidate(self) -> None:
        self._cache.clear()
        self._remaining.clear()


class InstrumentedSchedulerView(SchedulerView):
    """A :class:`SchedulerView` that also counts estimate-cache hits and,
    when tracing, emits per-estimate ``cache_hit``/``cache_miss`` events.

    Selected by the simulator only in detail mode
    (:class:`repro.obs.Instrumentation` ``detail=True``) so the default
    hot path — the plain view above — stays byte-for-byte unchanged.
    """

    def estimate(self, qj: QueuedJob) -> float:
        sim = self._sim
        est = self._cache.get(qj.job_id)
        if est is not None:
            sim._n_est_hits += 1
            if sim._trace_enabled:
                sim._tracer.emit(
                    "cache_hit",
                    sim_time=sim.now,
                    job_id=qj.job_id,
                    policy=sim._policy_name,
                )
            return est
        sim._n_est_misses += 1
        est = float(sim.estimator.predict(qj.job, 0.0, sim.now))
        if est < _EPS:
            est = _EPS
        self._cache[qj.job_id] = est
        if sim._trace_enabled:
            sim._tracer.emit(
                "cache_miss",
                sim_time=sim.now,
                job_id=qj.job_id,
                policy=sim._policy_name,
            )
        return est


@dataclass(frozen=True)
class SystemSnapshot:
    """The scheduler state at one instant, as wait-time prediction needs it."""

    now: float
    running: tuple[RunningJob, ...]
    queued: tuple[QueuedJob, ...]
    total_nodes: int


class Simulator:
    """Replay a trace under a policy with a pluggable run-time estimator."""

    def __init__(
        self,
        policy: Policy,
        estimator: RuntimeEstimator,
        total_nodes: int,
        *,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.policy = policy
        self.estimator = estimator
        self.pool = NodePool(total_nodes)
        self.now = 0.0
        self.queued: IndexedJobList = IndexedJobList()
        self.running: IndexedJobList = IndexedJobList()
        self._events = EventQueue()
        self._records: list[JobRecord] = []
        self._started: dict[int, float] = {}
        self._observers: list[object] = []
        self.pending_reservations: list[Reservation] = []
        self.waiting_reservations: list[Reservation] = []
        self.active_reservations: list[ActiveReservation] = []
        self.reservation_records: list[ReservationRecord] = []
        #: Monotone counter of queued/running mutations (submit, start,
        #: finish, snapshot load).  An unchanged value at an unchanged
        #: ``now`` means :meth:`snapshot` would return an equal snapshot,
        #: which is what lets it be memoized and lets outside consumers
        #: (the prediction service's epoch-keyed caches) detect change in
        #: O(1) instead of diffing state.
        self.state_epoch: int = 0
        self._snapshot_cache: SystemSnapshot | None = None
        self._snapshot_key: tuple | None = None
        #: Queued-job estimates surviving across passes, gated by the
        #: estimator's ``history_epoch`` (see _shared_estimate_cache).
        self._est_cache: dict[int, float] = {}
        self._est_cache_epoch: object = object()  # != any int: first sync clears
        self._est_invariant = bool(getattr(estimator, "elapsed_invariant", False))
        #: Observability wiring (see repro.obs).  The hot loops bump plain
        #: int attributes and append raw samples; metrics_snapshot() folds
        #: them into the registry lazily, so the default replay pays only
        #: integer increments and list appends.  Pass timing, hit counting,
        #: depth tracking and event emission are gated by the knobs below.
        obs = instrumentation if instrumentation is not None else Instrumentation()
        self.obs = obs
        self._tracer = obs.tracer
        self._trace_enabled = obs.tracer.enabled
        self._time_passes = obs.time_passes
        self._provenance = bool(obs.provenance) and self._trace_enabled
        self._view_cls = InstrumentedSchedulerView if obs.detail else SchedulerView
        self._policy_name = policy.name
        self._n_events = 0
        self._n_passes = 0
        self._n_backfilled = 0
        self._n_est_hits = 0
        self._n_est_misses = 0
        self._n_est_flushes = 0
        self._depth_samples: list[int] = []
        self._depth_folded = 0
        #: Backfill-depth tracking walks the queue once per selecting pass;
        #: the default mode skips it to stay inside the overhead budget.
        self._track_depth = obs.detail or obs.tracer.enabled
        if self._trace_enabled:
            # Shadow the plain handlers with the event-emitting variants;
            # the untraced replay keeps handlers with zero obs code.
            self._handle_submit = self._handle_submit_traced
            self._handle_finish = self._handle_finish_traced
        self._audit = obs.audit
        if self._audit is not None:
            # Wrap whatever finish/start paths the modes above bound —
            # composing with tracing instead of multiplying variants.
            # The default replay keeps the plain methods untouched.
            self._inner_handle_finish = self._handle_finish
            self._handle_finish = self._handle_finish_audited
            self._inner_start = self._start
            self._start = self._start_audited
        if self._time_passes:
            self._h_pass = obs.registry.histogram(
                "sim.pass_duration_seconds", PASS_DURATION_BUCKETS
            )
            # Shadow the plain pass with the span-wrapped variant; the
            # default path keeps the unwrapped method (zero extra frames).
            self._schedule_pass = self._schedule_pass_timed
        if obs.timeseries is not None:
            self.add_observer(obs.timeseries)

    @property
    def events_processed(self) -> int:
        """Events drained so far (back-compat alias of ``sim.events_processed``)."""
        return self._n_events

    @property
    def schedule_passes(self) -> int:
        """Policy invocations so far (back-compat alias of ``sim.schedule_passes``)."""
        return self._n_passes

    def metrics_snapshot(self) -> dict:
        """Fold the hot-path tallies into the registry and snapshot it.

        The engine counts with plain int attributes and collects raw
        wait/depth samples in lists — folding into registry objects
        happens here, not per event, so instrumentation-off replays pay
        almost nothing.  Counter folds are assignments (idempotent);
        histogram folds only observe samples not folded before, so
        repeated snapshots never double-count.  Estimators exposing
        ``obs_stats()`` (see :class:`repro.predictors.base.PointEstimator`)
        get their counters folded in under ``estimator.*``.
        """
        reg = self.obs.registry
        n_started = len(self._started)
        reg.counter("sim.events_processed").value = self._n_events
        reg.counter("sim.schedule_passes").value = self._n_passes
        # Job life-cycle counts are derived, not counted: every admitted
        # job is queued or started, every started job is running or
        # recorded — so the replay loop carries no tallies for them.
        reg.counter("sim.jobs_submitted").value = n_started + len(self.queued)
        reg.counter("sim.jobs_started").value = n_started
        reg.counter("sim.jobs_backfilled").value = self._n_backfilled
        reg.counter("sim.jobs_finished").value = len(self._records)
        reg.counter("sim.estimate_cache_hits").value = self._n_est_hits
        reg.counter("sim.estimate_cache_misses").value = self._n_est_misses
        reg.counter("sim.estimate_cache_flushes").value = self._n_est_flushes
        h_wait = reg.histogram("sim.wait_time_seconds", WAIT_TIME_BUCKETS)
        h_wait.reset()
        for rec in self._records:
            h_wait.observe(rec.start_time - rec.submit_time)
        for rj in self.running:
            h_wait.observe(rj.start_time - rj.job.submit_time)
        reg.histogram("sim.pass_duration_seconds", PASS_DURATION_BUCKETS)
        h_depth = reg.histogram("sim.backfill_depth", BACKFILL_DEPTH_BUCKETS)
        for value in self._depth_samples[self._depth_folded :]:
            h_depth.observe(value)
        self._depth_folded = len(self._depth_samples)
        snap = reg.snapshot()
        stats = getattr(self.estimator, "obs_stats", None)
        if stats is not None:
            counters = snap["counters"]
            for key, value in stats().items():
                name = f"estimator.{key}"
                counters[name] = counters.get(name, 0) + value
        return snap

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def add_observer(self, observer: object) -> None:
        """Attach an observer receiving on_submit/on_start/on_finish hooks."""
        self._observers.append(observer)

    def load_trace(self, trace: Trace) -> None:
        if self.pool.total != trace.total_nodes:
            raise ValueError(
                f"simulator built for {self.pool.total} nodes but trace "
                f"declares {trace.total_nodes}"
            )
        self._events.extend((job.submit_time, SUBMIT, job) for job in trace)

    def add_reservations(self, reservations: Iterable[Reservation]) -> None:
        """Register advance reservations (before or during :meth:`run`).

        Each reservation claims its nodes at its start time — or, if the
        machine is too busy then, the instant enough nodes free up,
        ahead of any queued job.  Outcomes land in
        :attr:`reservation_records`.
        """
        for res in reservations:
            if res.nodes > self.pool.total:
                raise ValueError(
                    f"reservation {res.res_id} wants {res.nodes} nodes on a "
                    f"{self.pool.total}-node machine"
                )
            if res.start_time < self.now:
                raise ValueError(
                    f"reservation {res.res_id} starts in the past "
                    f"({res.start_time} < {self.now})"
                )
            self.pending_reservations.append(res)
            self._events.push(res.start_time, RES_START, res)
            if self._trace_enabled:
                self._tracer.emit(
                    "reservation_placed",
                    sim_time=self.now,
                    policy=self._policy_name,
                    cause="advance_reservation",
                    res_id=res.res_id,
                    start_s=res.start_time,
                    nodes=res.nodes,
                )

    def load_snapshot(self, snapshot: SystemSnapshot) -> None:
        """Initialize mid-flight state for a forward simulation.

        Running jobs are re-admitted with their original start times and
        finish events at ``now + job.run_time - elapsed`` (callers replace
        ``run_time`` with predictions first); queued jobs enter the queue
        in their original arrival order.
        """
        self.now = snapshot.now
        self.state_epoch += 1
        for rj in snapshot.running:
            self.pool.allocate(rj.job.nodes)
            self.running.append(rj)
            self._started[rj.job_id] = rj.start_time
            remaining = max(rj.job.run_time - rj.elapsed(snapshot.now), _EPS)
            self._events.push(snapshot.now + remaining, FINISH, rj)
        for qj in snapshot.queued:
            self.queued.append(qj)

    def snapshot(self) -> SystemSnapshot:
        """Capture the current running/queued state.

        Memoized per ``(state_epoch, now)``: repeated calls between
        events return the same object instead of rebuilding the tuples,
        so snapshot consumers polling a live simulator pay O(1).  The
        queue/running lengths ride along in the key as a guard for
        callers (tests, mostly) that mutate the job lists directly
        without going through an event handler.
        """
        key = (self.state_epoch, self.now, len(self.queued), len(self.running))
        if self._snapshot_cache is not None and self._snapshot_key == key:
            return self._snapshot_cache
        snap = SystemSnapshot(
            now=self.now,
            running=tuple(self.running),
            queued=tuple(self.queued),
            total_nodes=self.pool.total,
        )
        self._snapshot_key = key
        self._snapshot_cache = snap
        return snap

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Trace | None = None,
        *,
        until_started: int | None = None,
        until_time: float | None = None,
    ) -> ScheduleResult:
        """Process all events; return the schedule.

        With ``until_started`` the simulation stops as soon as that job id
        begins executing (used by forward simulation, where nothing after
        the target's start matters).  With ``until_time`` it stops before
        processing any event past that instant, leaving live mid-flight
        state (running jobs, a populated queue) — call :meth:`run` again
        to continue.
        """
        if trace is not None:
            self.load_trace(trace)
        events = self._events
        while events:
            t = events.peek_time()
            assert t is not None
            if until_time is not None and t > until_time:
                self.now = max(self.now, until_time)
                return self.result()
            if t < self.now - 1e-9:
                raise RuntimeError(f"time went backwards: {t} < {self.now}")
            self.now = max(self.now, t)
            # Drain every event at this instant (finishes first) so the
            # scheduling pass sees the complete state.
            while events and events.peek_time() == t:
                _, kind, payload = events.pop()
                self._n_events += 1
                if kind == FINISH:
                    self._handle_finish(payload)
                elif kind == RES_END:
                    self._handle_reservation_end(payload)
                elif kind == RES_START:
                    self._handle_reservation_start(payload)
                else:
                    self._handle_submit(payload)
            self._activate_waiting_reservations()
            started = self._schedule_pass()
            if until_started is not None and any(
                qj.job_id == until_started for qj in started
            ):
                return self.result()
        return self.result()

    def schedule_now(self) -> list[QueuedJob]:
        """Run one scheduling pass at the current instant; return starts.

        Public entry point for callers that hold mid-flight state (e.g.
        a freshly loaded snapshot) and need the starts that require no
        event at all — the same activation + pass sequence :meth:`run`
        performs after draining a timestamp.
        """
        self._activate_waiting_reservations()
        return self._schedule_pass()

    def result(self) -> ScheduleResult:
        return ScheduleResult(self._records, total_nodes=self.pool.total)

    @property
    def started_times(self) -> dict[int, float]:
        """job_id -> start time for every job started so far."""
        return dict(self._started)

    # ------------------------------------------------------------------
    # estimate cache
    # ------------------------------------------------------------------
    def _shared_estimate_cache(self) -> dict[int, float]:
        """The queued-estimate cache valid for the estimator's current epoch.

        Epoch-aware estimators (``history_epoch`` attribute) share one
        dict across passes, flushed whenever the epoch moves.  Estimators
        without an epoch — or volatile ones advertising ``None`` — get a
        fresh dict per view, i.e. the historical per-pass memoization.
        """
        epoch = getattr(self.estimator, "history_epoch", None)
        if epoch is None:
            return {}
        if epoch != self._est_cache_epoch:
            self._est_cache_epoch = epoch
            if self._est_cache:
                self._n_est_flushes += 1
                if self._trace_enabled:
                    self._tracer.emit(
                        "replan_triggered",
                        sim_time=self.now,
                        policy=self._policy_name,
                        cause="history_epoch_advanced",
                        flushed=len(self._est_cache),
                    )
                self._est_cache.clear()
        return self._est_cache

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _handle_submit(self, job: Job) -> None:
        qj = QueuedJob(job)
        self.queued.append(qj)
        self.state_epoch += 1
        self._notify_estimator("on_submit", job)
        if self._observers:
            view = self._view_cls(self)
            for obs in self._observers:
                hook = getattr(obs, "on_submit", None)
                if hook is not None:
                    hook(view, qj)

    def _handle_finish(self, rj: RunningJob) -> None:
        try:
            self.running.remove(rj)
        except ValueError:
            raise RuntimeError(f"finish event for job {rj.job_id} not running")
        self.state_epoch += 1
        self.pool.release(rj.job.nodes)
        self._records.append(
            JobRecord(
                job_id=rj.job_id,
                submit_time=rj.job.submit_time,
                start_time=rj.start_time,
                finish_time=self.now,
                nodes=rj.job.nodes,
            )
        )
        self._notify_estimator("on_finish", rj.job)
        if self._observers:
            view = self._view_cls(self)
            for obs in self._observers:
                hook = getattr(obs, "on_finish", None)
                if hook is not None:
                    hook(view, rj.job)

    def _handle_submit_traced(self, job: Job) -> None:
        """:meth:`_handle_submit` plus the ``job_submitted`` event — bound
        over the plain handler in ``__init__`` when tracing is on."""
        self._tracer.emit(
            "job_submitted",
            sim_time=self.now,
            job_id=job.job_id,
            policy=self._policy_name,
            nodes=job.nodes,
        )
        type(self)._handle_submit(self, job)

    def _handle_finish_traced(self, rj: RunningJob) -> None:
        """:meth:`_handle_finish` plus the ``job_finished`` event."""
        self._tracer.emit(
            "job_finished",
            sim_time=self.now,
            job_id=rj.job_id,
            policy=self._policy_name,
            run_s=self.now - rj.start_time,
        )
        type(self)._handle_finish(self, rj)

    def _handle_finish_audited(self, rj: RunningJob) -> None:
        """Run the finish path the other modes bound (plain or traced),
        then resolve the job's run-time predictions against the actual."""
        self._inner_handle_finish(rj)
        self._audit.resolve_runtime(
            rj.job_id, self.now, self.now - rj.start_time,
            policy=self._policy_name,
        )

    def _start_audited(self, qj: QueuedJob) -> None:
        """Run the bound start path, then resolve the job's wait-time
        predictions against the realized wait."""
        wait_s = self.now - qj.job.submit_time
        self._inner_start(qj)
        self._audit.resolve_wait(
            qj.job_id, self.now, wait_s, policy=self._policy_name
        )

    def _handle_reservation_start(self, res: Reservation) -> None:
        self.pending_reservations.remove(res)
        self.waiting_reservations.append(res)

    def _handle_reservation_end(self, active: "ActiveReservation") -> None:
        self.active_reservations.remove(active)
        self.pool.release(active.reservation.nodes)

    def _activate_waiting_reservations(self) -> None:
        """Give due reservations first claim on free nodes."""
        if not self.waiting_reservations:
            return
        still_waiting: list[Reservation] = []
        for res in self.waiting_reservations:
            if self.pool.free >= res.nodes:
                self.pool.allocate(res.nodes)
                active = ActiveReservation(res, self.now + res.duration)
                self.active_reservations.append(active)
                self._events.push(active.end_time, RES_END, active)
                self.reservation_records.append(
                    ReservationRecord(
                        res_id=res.res_id,
                        scheduled_start=res.start_time,
                        actual_start=self.now,
                        nodes=res.nodes,
                        duration=res.duration,
                    )
                )
                if self._trace_enabled and self.now > res.start_time:
                    self._tracer.emit(
                        "reservation_shifted",
                        sim_time=self.now,
                        cause="machine_busy",
                        res_id=res.res_id,
                        start_s=self.now,
                        scheduled_start_s=res.start_time,
                        nodes=res.nodes,
                    )
            else:
                still_waiting.append(res)
        self.waiting_reservations = still_waiting

    def _schedule_pass(self) -> list[QueuedJob]:
        if not self.queued:
            return []
        if self.pool.free == 0:
            # Every job needs >= 1 node, so no policy can start anything;
            # reservations are recomputed from scratch next pass anyway.
            return []
        self._n_passes += 1
        view = self._view_cls(self)
        selections = list(self.policy.select(view))
        selected_ids = {qj.job_id for qj in selections}
        if len(selected_ids) != len(selections):
            raise RuntimeError(f"{self.policy.name} selected a job twice")
        if self._track_depth and selections:
            depths = self._selection_depths(selected_ids)
            for qj in selections:
                if qj not in self.queued:
                    raise RuntimeError(
                        f"{self.policy.name} selected job {qj.job_id} not in queue"
                    )
                self._start_tracked(qj, depths.get(qj.job_id, 0))
            return selections
        for qj in selections:
            if qj not in self.queued:
                raise RuntimeError(
                    f"{self.policy.name} selected job {qj.job_id} not in queue"
                )
            self._start(qj)
        return selections

    def _schedule_pass_timed(self) -> list[QueuedJob]:
        """Span-wrapped pass, bound over :meth:`_schedule_pass` in
        ``__init__`` when pass timing is on — the default replay keeps the
        plain method and never sees this frame.  The early exits mirror the
        plain pass so spans map one-to-one onto counted passes."""
        if not self.queued or self.pool.free == 0:
            return []
        with self._tracer.span(
            "schedule_pass",
            histogram=self._h_pass,
            sim_time=self.now,
            policy=self._policy_name,
            queued=len(self.queued),
        ) as span:
            selections = type(self)._schedule_pass(self)
            span.annotate(started=len(selections))
        return selections

    def _selection_depths(self, selected_ids: set[int]) -> dict[int, int]:
        """Queue depth each selected job jumps: the number of *unselected*
        jobs queued ahead of it.  Depth 0 is an in-order start; depth > 0
        means the start leapfrogged earlier arrivals (a backfill)."""
        depths: dict[int, int] = {}
        ahead = 0
        for qj in self.queued:
            if qj.job_id in selected_ids:
                depths[qj.job_id] = ahead
                if len(depths) == len(selected_ids):
                    break
            else:
                ahead += 1
        return depths

    def _start(self, qj: QueuedJob) -> None:
        self.pool.allocate(qj.job.nodes)  # raises if the policy overcommitted
        self.queued.remove(qj)
        self.state_epoch += 1
        if not self._est_invariant:
            # No longer queued; keep the cache small.  Elapsed-invariant
            # estimators keep the entry — it doubles as the running-job
            # base in SchedulerView.remaining.
            self._est_cache.pop(qj.job_id, None)
        rj = RunningJob(job=qj.job, start_time=self.now)
        self.running.append(rj)
        self._started[qj.job_id] = self.now
        self._events.push(self.now + max(qj.job.run_time, 0.0), FINISH, rj)
        self._notify_estimator("on_start", qj.job)
        if self._observers:
            view = self._view_cls(self)
            for obs in self._observers:
                hook = getattr(obs, "on_start", None)
                if hook is not None:
                    hook(view, qj.job)

    def _start_tracked(self, qj: QueuedJob, depth: int) -> None:
        """:meth:`_start` plus depth accounting and life-cycle events —
        the detail/tracing start path (see ``_track_depth``)."""
        self._start(qj)
        self._depth_samples.append(depth)
        if depth > 0:
            self._n_backfilled += 1
        if self._trace_enabled:
            self._tracer.emit(
                "job_started",
                sim_time=self.now,
                job_id=qj.job_id,
                policy=self._policy_name,
                wait_s=self.now - qj.job.submit_time,
                nodes=qj.job.nodes,
                depth=depth,
            )
            if depth > 0:
                self._tracer.emit(
                    "job_backfilled",
                    sim_time=self.now,
                    job_id=qj.job_id,
                    policy=self._policy_name,
                    cause="out_of_order_start",
                    depth=depth,
                )

    def _notify_estimator(self, hook_name: str, job: Job) -> None:
        hook = getattr(self.estimator, hook_name, None)
        if hook is not None:
            hook(job, self.now)


class FrozenEstimator:
    """An estimator that returns a fixed prediction per job id.

    Forward simulations freeze the predictions made at the moment of the
    wait-time query: within the imagined future, the scheduler believes
    exactly those numbers.
    """

    #: Predictions never change, so the estimate cache never flushes.
    history_epoch = 0
    #: ...and ignore elapsed/now entirely, so max(predict(job, e), e)
    #: depends only on the cached elapsed-0 prediction.
    elapsed_invariant = True

    def __init__(self, predictions: dict[int, float]) -> None:
        self._predictions = dict(predictions)

    def predict(self, job: Job, elapsed: float, now: float) -> float:
        try:
            return self._predictions[job.job_id]
        except KeyError:
            raise KeyError(f"no frozen prediction for job {job.job_id}") from None


def forward_simulate(
    snapshot: SystemSnapshot,
    policy: Policy,
    durations: dict[int, float],
    target_job_id: int,
    *,
    estimates: dict[int, float] | None = None,
) -> float:
    """Predicted start time of ``target_job_id`` given per-job predictions.

    ``durations`` maps each running/queued job id to a predicted *total*
    run time, used as the jobs' actual durations inside the simulation
    (the paper's "using the predicted run times as the run times of the
    applications", §3).  Running jobs' remaining times are the prediction
    minus the time already run (floored at ~0); queued jobs run for their
    full prediction.

    ``estimates`` supplies the run-time estimates the *simulated
    scheduler* bases its decisions on — these must mirror what the real
    scheduler uses (user maxima in the paper's §3 setup), not the
    evaluated predictor, or the imagined backfill reservations diverge
    from the real ones even with perfect run-time knowledge.  Defaults to
    ``durations`` (a self-consistent imagined world) when omitted.

    No future arrivals are injected — the paper predicts the wait as of
    submission, accepting the built-in error later arrivals cause for
    LWF (§3, Table 4).
    """
    if target_job_id not in durations:
        raise KeyError(f"no prediction supplied for target job {target_job_id}")
    adj_running = tuple(
        RunningJob(
            job=rj.job.with_(
                run_time=max(
                    durations[rj.job_id], rj.elapsed(snapshot.now) + _EPS
                )
            ),
            start_time=rj.start_time,
        )
        for rj in snapshot.running
    )
    adj_queued = tuple(
        QueuedJob(job=qj.job.with_(run_time=max(durations[qj.job_id], _EPS)))
        for qj in snapshot.queued
    )
    adj_snapshot = SystemSnapshot(
        now=snapshot.now,
        running=adj_running,
        queued=adj_queued,
        total_nodes=snapshot.total_nodes,
    )
    sim = Simulator(
        policy,
        FrozenEstimator(estimates if estimates is not None else durations),
        snapshot.total_nodes,
    )
    sim.load_snapshot(adj_snapshot)
    # The snapshot state may admit immediate starts (e.g. the brand-new
    # job fits right now); run() performs a pass at the first event, but
    # an explicit pass at t=now catches starts that need no event at all.
    sim.now = snapshot.now
    started = sim.schedule_now()
    if any(qj.job_id == target_job_id for qj in started):
        return snapshot.now
    sim.run(until_started=target_job_id)
    start = sim.started_times.get(target_job_id)
    if start is None:
        raise RuntimeError(
            f"forward simulation ended without starting job {target_job_id}"
        )
    return start
