"""Advance reservations — the paper's §5 co-allocation building block.

    "Further, we will expand our work in using run-time prediction
    techniques for scheduling to the problem of combining queue-based
    scheduling and reservations.  Reservations are one way to
    co-allocate resources in metacomputing systems."

A :class:`Reservation` blocks out ``nodes`` nodes over
``[start_time, start_time + duration)`` for an external party (e.g. the
local half of a multi-machine co-allocation).  The simulator activates
it at its start time if the nodes are free; otherwise the reservation
*waits* — it claims nodes the moment enough are released, ahead of any
queued job — and the delay is recorded.  Whether reservations start on
time therefore depends on how well the queue scheduler kept the window
clear, which is exactly where run-time prediction accuracy enters:
backfill carves pending reservations into its availability profile and
will not start a job it *believes* overlaps one, but a belief based on
bad estimates protects nothing.

:class:`ReservationRecord` (delivered in
:attr:`repro.scheduler.simulator.Simulator.reservation_records`) carries
the scheduled versus actual start for delay accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Reservation", "ReservationRecord"]


@dataclass(frozen=True)
class Reservation:
    """A fixed block of nodes promised to an external party."""

    res_id: int
    start_time: float
    duration: float
    nodes: int

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"reservation {self.res_id}: nodes must be >= 1")
        if self.duration <= 0:
            raise ValueError(f"reservation {self.res_id}: duration must be > 0")
        if self.start_time < 0:
            raise ValueError(f"reservation {self.res_id}: start_time must be >= 0")

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


@dataclass(frozen=True)
class ReservationRecord:
    """Outcome of one reservation: when it was promised vs. honoured."""

    res_id: int
    scheduled_start: float
    actual_start: float
    nodes: int
    duration: float

    @property
    def delay(self) -> float:
        return self.actual_start - self.scheduled_start
