"""Event-driven space-sharing scheduler simulator.

This package is the substrate the paper's experiments run on: a machine
with ``total_nodes`` identical nodes, a submission queue, and a pluggable
scheduling policy (FCFS / LWF / backfill) that consults a pluggable
run-time estimator.  The same engine serves two roles:

- **trace replay** (:class:`Simulator.run`): process a whole workload and
  record per-job start/finish times, wait times and utilization;
- **forward simulation** (:func:`repro.scheduler.simulator.forward_simulate`):
  start from a snapshot of running/queued jobs with *predicted* run times
  and no future arrivals, and determine when a particular job would start
  — the paper's wait-time prediction technique (§3).
"""

from repro.scheduler.cluster import NodePool
from repro.scheduler.events import EventQueue, FINISH, RES_END, RES_START, SUBMIT
from repro.scheduler.metrics import JobRecord, ScheduleResult
from repro.scheduler.reservations import Reservation, ReservationRecord
from repro.scheduler.simulator import (
    PendingReservation,
    QueuedJob,
    RunningJob,
    SchedulerView,
    Simulator,
    SystemSnapshot,
    forward_simulate,
)
from repro.scheduler.policies import (
    BackfillPolicy,
    EASYBackfillPolicy,
    FCFSPolicy,
    LWFPolicy,
    Policy,
)
from repro.scheduler.validate import ValidationReport, validate_schedule

__all__ = [
    "NodePool",
    "EventQueue",
    "SUBMIT",
    "FINISH",
    "RES_START",
    "RES_END",
    "JobRecord",
    "ScheduleResult",
    "Reservation",
    "ReservationRecord",
    "PendingReservation",
    "QueuedJob",
    "RunningJob",
    "SchedulerView",
    "Simulator",
    "SystemSnapshot",
    "forward_simulate",
    "Policy",
    "FCFSPolicy",
    "LWFPolicy",
    "BackfillPolicy",
    "EASYBackfillPolicy",
    "ValidationReport",
    "validate_schedule",
]
