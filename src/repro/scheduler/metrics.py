"""Per-job records and aggregate schedule metrics.

The paper's scheduling tables (10-15) report two aggregates per
(workload, algorithm, predictor) cell: machine **utilization** (percent)
and **mean wait time** (minutes).  :class:`ScheduleResult` carries the
per-job records and derives those plus a few extras used by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.timeutils import seconds_to_minutes

__all__ = ["JobRecord", "ScheduleResult"]


@dataclass(frozen=True)
class JobRecord:
    """The scheduling outcome for one job."""

    job_id: int
    submit_time: float
    start_time: float
    finish_time: float
    nodes: int

    def __post_init__(self) -> None:
        if self.start_time < self.submit_time:
            raise ValueError(
                f"job {self.job_id}: started before submission "
                f"({self.start_time} < {self.submit_time})"
            )
        if self.finish_time < self.start_time:
            raise ValueError(
                f"job {self.job_id}: finished before start "
                f"({self.finish_time} < {self.start_time})"
            )

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float:
        return self.finish_time - self.start_time


class ScheduleResult:
    """All job records from one simulation plus aggregate metrics."""

    def __init__(self, records: Iterable[JobRecord], *, total_nodes: int) -> None:
        self._records: list[JobRecord] = sorted(records, key=lambda r: r.job_id)
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        self.total_nodes = total_nodes
        self._by_id = {r.job_id: r for r in self._records}
        if len(self._by_id) != len(self._records):
            raise ValueError("duplicate job_id in schedule records")

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, job_id: int) -> JobRecord:
        return self._by_id[job_id]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_id

    @property
    def records(self) -> Sequence[JobRecord]:
        return tuple(self._records)

    @property
    def wait_times(self) -> np.ndarray:
        return np.array([r.wait_time for r in self._records], dtype=float)

    @property
    def mean_wait_minutes(self) -> float:
        """Mean wait time in minutes (the paper's unit)."""
        if not self._records:
            return 0.0
        return seconds_to_minutes(float(self.wait_times.mean()))

    @property
    def makespan(self) -> float:
        """First submission to last completion."""
        if not self._records:
            return 0.0
        start = min(r.submit_time for r in self._records)
        end = max(r.finish_time for r in self._records)
        return end - start

    @property
    def utilization(self) -> float:
        """Busy node-time over capacity across the makespan, in [0, 1]."""
        span = self.makespan
        if span <= 0:
            return 0.0
        busy = sum(r.run_time * r.nodes for r in self._records)
        return busy / (span * self.total_nodes)

    @property
    def utilization_percent(self) -> float:
        return 100.0 * self.utilization

    def wait_percentile(self, p: float) -> float:
        """The ``p``-th percentile of wait times, in minutes."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._records:
            return 0.0
        return seconds_to_minutes(float(np.percentile(self.wait_times, p)))

    def mean_bounded_slowdown(self, tau: float = 600.0) -> float:
        """Mean bounded slowdown: max(1, (wait + run) / max(run, tau)).

        The standard companion metric to mean wait (Feitelson et al.):
        ``tau`` shields the statistic from very short jobs dominating.
        """
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if not self._records:
            return 0.0
        values = [
            max(1.0, (r.wait_time + r.run_time) / max(r.run_time, tau))
            for r in self._records
        ]
        return float(np.mean(values))

    def per_class_mean_wait(self, classify) -> dict[object, float]:
        """Mean wait in minutes per class of ``classify(record)``.

        Example: ``result.per_class_mean_wait(lambda r: r.nodes >= 32)``
        splits wide from narrow jobs.
        """
        groups: dict[object, list[float]] = {}
        for r in self._records:
            groups.setdefault(classify(r), []).append(r.wait_time)
        return {
            key: seconds_to_minutes(float(np.mean(vs)))
            for key, vs in groups.items()
        }

    def max_concurrent_nodes(self) -> int:
        """Peak simultaneous node usage (must never exceed ``total_nodes``)."""
        deltas: list[tuple[float, int]] = []
        for r in self._records:
            if r.run_time > 0:
                deltas.append((r.start_time, r.nodes))
                deltas.append((r.finish_time, -r.nodes))
        # Releases before allocations at the same instant, matching the
        # simulator's finish-before-submit event ordering.
        deltas.sort(key=lambda d: (d[0], d[1]))
        peak = cur = 0
        for _, d in deltas:
            cur += d
            peak = max(peak, cur)
        return peak
