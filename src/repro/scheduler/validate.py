"""Schedule validation: is a ScheduleResult feasible for a Trace?

The invariants every legal space-shared schedule obeys — extracted from
the test suite into a reusable checker so downstream users (custom
policies, imported schedules) can verify their results the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.metrics import ScheduleResult
from repro.workloads.job import Trace

__all__ = ["ValidationReport", "validate_schedule"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a schedule validation."""

    ok: bool
    violations: tuple[str, ...] = field(default=())

    def raise_if_invalid(self) -> None:
        if not self.ok:
            raise AssertionError(
                "invalid schedule:\n" + "\n".join(f"- {v}" for v in self.violations)
            )


def validate_schedule(
    trace: Trace, result: ScheduleResult, *, run_time_tolerance: float = 1e-6
) -> ValidationReport:
    """Check completeness, causality, duration fidelity and capacity.

    Verifies that every trace job appears exactly once, starts no
    earlier than its submission, runs for exactly its trace run time
    (within ``run_time_tolerance``), and that concurrent node usage
    never exceeds the machine.
    """
    violations: list[str] = []
    trace_ids = {j.job_id for j in trace}
    result_ids = {r.job_id for r in result.records}
    missing = trace_ids - result_ids
    extra = result_ids - trace_ids
    if missing:
        violations.append(f"jobs never scheduled: {sorted(missing)[:10]}")
    if extra:
        violations.append(f"jobs not in trace: {sorted(extra)[:10]}")

    by_id = {j.job_id: j for j in trace}
    for rec in result.records:
        job = by_id.get(rec.job_id)
        if job is None:
            continue
        if rec.submit_time != job.submit_time:
            violations.append(
                f"job {rec.job_id}: submit time altered "
                f"({rec.submit_time} != {job.submit_time})"
            )
        if rec.start_time < job.submit_time - 1e-9:
            violations.append(
                f"job {rec.job_id}: started before submission"
            )
        if abs(rec.run_time - job.run_time) > run_time_tolerance:
            violations.append(
                f"job {rec.job_id}: ran {rec.run_time}, trace says {job.run_time}"
            )
        if rec.nodes != job.nodes:
            violations.append(
                f"job {rec.job_id}: used {rec.nodes} nodes, trace says {job.nodes}"
            )

    peak = result.max_concurrent_nodes()
    if peak > trace.total_nodes:
        violations.append(
            f"capacity exceeded: peak {peak} nodes on a "
            f"{trace.total_nodes}-node machine"
        )
    return ValidationReport(ok=not violations, violations=tuple(violations))
