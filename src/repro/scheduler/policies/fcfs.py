"""First-come first-served.

Jobs receive resources strictly in arrival order: the head of the queue
starts whenever enough nodes are free, and nothing behind a blocked head
may start (paper §2.1).  FCFS never consults run-time estimates, which is
why the paper's Tables 10-15 omit it from the predictor-sensitivity
comparison.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduler.policies.base import Policy

__all__ = ["FCFSPolicy"]


class FCFSPolicy(Policy):
    """First-come first-served: strict arrival order, head-of-line blocking."""

    name = "FCFS"

    def select(self, view) -> Sequence:
        free = view.free_nodes
        started = []
        for qj in view.queued:  # arrival order
            if qj.job.nodes <= free:
                started.append(qj)
                free -= qj.job.nodes
            else:
                break
        return started
