"""First-come first-served.

Jobs receive resources strictly in arrival order: the head of the queue
starts whenever enough nodes are free, and nothing behind a blocked head
may start (paper §2.1).  FCFS never consults run-time estimates, which is
why the paper's Tables 10-15 omit it from the predictor-sensitivity
comparison.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduler.policies.base import Policy, ReleaseAttributor

__all__ = ["FCFSPolicy"]


class FCFSPolicy(Policy):
    """First-come first-served: strict arrival order, head-of-line blocking."""

    name = "FCFS"

    def __init__(self) -> None:
        # job_id -> last (blocker_kind, blocker_id); provenance-only
        # state so start_blocked events report moves, not every pass.
        self._last_blocked: dict[int, tuple] = {}

    def select(self, view) -> Sequence:
        prov = getattr(view, "provenance_tracer", None)
        if prov is not None:
            return self._select_traced(view, prov)
        free = view.free_nodes
        started = []
        for qj in view.queued:  # arrival order
            if qj.job.nodes <= free:
                started.append(qj)
                free -= qj.job.nodes
            else:
                break
        return started

    def _select_traced(self, view, prov) -> Sequence:
        """Selection-identical walk emitting ``start_blocked`` provenance.

        The blocked head is attributed to the release that first clears
        its node deficit; everything behind it is ``queue_order``-blocked
        on the head (FCFS's head-of-line rule), whatever its own fit.
        """
        free = view.free_nodes
        now = view.now
        last = self._last_blocked
        started = []
        head_id: int | None = None
        for qj in view.queued:  # arrival order
            if head_id is None and qj.job.nodes <= free:
                started.append(qj)
                free -= qj.job.nodes
                last.pop(qj.job_id, None)
                continue
            if head_id is None:
                head_id = qj.job_id
                attr = ReleaseAttributor(view)
                for sj in started:
                    attr.add(
                        now + view.estimate(sj), sj.job.nodes,
                        "running_job", sj.job_id,
                    )
                kind, bid = attr.binding(qj.job.nodes, free)
            else:
                kind, bid = "queue_order", head_id
            if last.get(qj.job_id) != (kind, bid):
                last[qj.job_id] = (kind, bid)
                if bid is None:
                    prov.emit(
                        "start_blocked", sim_time=now, job_id=qj.job_id,
                        policy=self.name, blocker_kind=kind, free_nodes=free,
                    )
                else:
                    prov.emit(
                        "start_blocked", sim_time=now, job_id=qj.job_id,
                        policy=self.name, blocker_kind=kind, blocker_id=bid,
                        free_nodes=free,
                    )
        return started
